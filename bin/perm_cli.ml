(* The Perm browser as a terminal client (paper Fig. 4): send SQL-PLE
   statements, see results, rewritten SQL and both algebra trees, switch
   rewrite strategies and contribution semantics interactively. *)

module Engine = Perm_engine.Engine
module Obs_server = Perm_engine.Obs_server
module Render = Perm_engine.Render
module Trace = Perm_obs.Trace
module Metrics = Perm_obs.Metrics
module History = Perm_obs.History
module Eventlog = Perm_obs.Eventlog
module Err = Perm_err
module Fault = Perm_fault

type session = {
  engine : Engine.t;
  mutable show_panes : bool;  (* print the four browser panes per query *)
  mutable timing : bool;  (* print wall-clock time per statement *)
  mutable trace : bool;  (* print the span tree per statement *)
  mutable progress : bool;  (* sample live progress while statements run *)
  mutable watch : (bool Atomic.t * unit Domain.t) option;
      (* the \watch dashboard sampler domain, while switched on *)
  mutable serve : Obs_server.t option;
      (* the HTTP observability plane, while switched on *)
}

(* ------------------------------------------------------------------ *)
(* The \serve HTTP observability plane                                 *)
(* ------------------------------------------------------------------ *)

let default_http_port = 7133

let start_serve session port =
  match session.serve with
  | Some srv ->
    Printf.printf "already serving on http://127.0.0.1:%d (\\serve off to stop)\n"
      (Obs_server.port srv)
  | None -> (
    match Obs_server.start ~port session.engine with
    | Ok srv ->
      session.serve <- Some srv;
      Printf.printf
        "serving observability plane on http://127.0.0.1:%d (generation %d)\n\
        \  /metrics /stats/<relation> /healthz /readyz /trace /events \
         /debug/bundles\n"
        (Obs_server.port srv) (Obs_server.generation srv)
    | Error msg -> Printf.printf "ERROR: cannot serve on port %d: %s\n" port msg)

let stop_serve session =
  match session.serve with
  | None -> ()
  | Some srv ->
    Obs_server.stop srv;
    session.serve <- None

(* Live progress sampler: a domain polling the engine's lock-free progress
   snapshot while the statement runs on this one. Stderr, so redirected
   result output stays clean. *)
let progress_interval_s = 0.2

let start_progress_sampler session =
  if not session.progress then None
  else begin
    let stop = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          let rec loop () =
            Unix.sleepf progress_interval_s;
            if not (Atomic.get stop) then begin
              (match Engine.progress session.engine with
              | Some p when p.Engine.pr_running ->
                if p.Engine.pr_morsels_total > 0 then
                  Printf.eprintf
                    "progress: %d rows, morsel %d/%d, %.0f ms elapsed\n%!"
                    p.Engine.pr_rows p.Engine.pr_morsels_done
                    p.Engine.pr_morsels_total p.Engine.pr_elapsed_ms
                else
                  Printf.eprintf "progress: %d rows, %.0f ms elapsed\n%!"
                    p.Engine.pr_rows p.Engine.pr_elapsed_ms
              | _ -> ());
              loop ()
            end
          in
          loop ())
    in
    Some (stop, d)
  end

let stop_progress_sampler = function
  | None -> ()
  | Some (stop, d) ->
    Atomic.set stop true;
    Domain.join d

(* ------------------------------------------------------------------ *)
(* The \watch live dashboard                                           *)
(* ------------------------------------------------------------------ *)

let clip n s =
  if String.length s <= n then s else String.sub s 0 (max 0 (n - 3)) ^ "..."

let spark_chars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min Float.infinity values in
    let hi = List.fold_left Float.max Float.neg_infinity values in
    let range = hi -. lo in
    String.concat ""
      (List.map
         (fun v ->
           let idx =
             if range <= 0. then 0
             else int_of_float (Float.round ((v -. lo) /. range *. 7.))
           in
           spark_chars.(max 0 (min 7 idx)))
         values)

let watch_interval_s = 0.5
let watch_window = 24  (* samples retained in the throughput sparkline *)

(* The dashboard domain reads only the engine's lock-free progress
   snapshot (atomics), like the \progress sampler — never the metrics or
   history hashtables, which the REPL domain mutates while a statement
   runs. The history summary prints once, from the REPL domain, when the
   dashboard is toggled on.

   The WAL and spill panes follow the same discipline: the spill counters
   are process-global atomics, and the WAL status reads word-sized int
   fields (a concurrent commit can make them momentarily stale, never
   torn). Each pane reprints only when its numbers change, so an idle
   session stays quiet. *)
let watch_wal_pane session =
  match Engine.wal_status session.engine with
  | None -> ""
  | Some ws ->
    Printf.sprintf "watch: wal epoch=%d log=%dB records=%d fsyncs=%d%s\n"
      ws.Engine.ws_epoch ws.Engine.ws_bytes ws.Engine.ws_records
      ws.Engine.ws_fsyncs
      (if ws.Engine.ws_dirty then " [DIRTY]" else "")

let watch_spill_pane () =
  let sc = Perm_storage.Spill.counters () in
  if sc.Perm_storage.Spill.c_spills = 0 && sc.Perm_storage.Spill.c_fallbacks = 0
  then ""
  else
    Printf.sprintf
      "watch: spill spills=%d runs=%d chunks=%d rows=%d bytes=%d fallbacks=%d\n"
      sc.Perm_storage.Spill.c_spills sc.Perm_storage.Spill.c_runs
      sc.Perm_storage.Spill.c_chunks sc.Perm_storage.Spill.c_rows
      sc.Perm_storage.Spill.c_bytes sc.Perm_storage.Spill.c_fallbacks

let start_watch session =
  match session.watch with
  | Some _ -> print_endline "watch is already on (\\watch off to stop)"
  | None ->
    let h = Engine.history session.engine in
    Printf.printf
      "watch on: %d fingerprint%s, %d regression%s retained; live dashboard \
       prints to stderr while statements run\n"
      (List.length (History.fingerprints h))
      (if List.length (History.fingerprints h) = 1 then "" else "s")
      (List.length (History.regressions h))
      (if List.length (History.regressions h) = 1 then "" else "s");
    let stop = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          let samples = ref [] in  (* rows/s, newest last *)
          let last = ref None in  (* previous (rows, unix seconds) *)
          let last_wal = ref "" in
          let last_spill = ref "" in
          let panes () =
            let wal = watch_wal_pane session in
            if wal <> "" && wal <> !last_wal then begin
              last_wal := wal;
              Printf.eprintf "%s%!" wal
            end;
            let spill = watch_spill_pane () in
            if spill <> "" && spill <> !last_spill then begin
              last_spill := spill;
              Printf.eprintf "%s%!" spill
            end
          in
          let rec loop () =
            Unix.sleepf watch_interval_s;
            if not (Atomic.get stop) then begin
              panes ();
              (match Engine.progress session.engine with
              | Some p when p.Engine.pr_running ->
                let now = Unix.gettimeofday () in
                let rate =
                  match !last with
                  | Some (r0, t0) when now > t0 ->
                    float_of_int (p.Engine.pr_rows - r0) /. (now -. t0)
                  | _ -> 0.
                in
                last := Some (p.Engine.pr_rows, now);
                samples := !samples @ [ rate ];
                let n = List.length !samples in
                if n > watch_window then
                  samples :=
                    List.filteri (fun i _ -> i >= n - watch_window) !samples;
                let morsels =
                  if p.Engine.pr_morsels_total > 0 then
                    Printf.sprintf " morsel %d/%d" p.Engine.pr_morsels_done
                      p.Engine.pr_morsels_total
                  else ""
                in
                Printf.eprintf "watch: %-32s %s %d rows (%.0f/s)%s %.0f ms\n%!"
                  (clip 32 (String.trim p.Engine.pr_sql))
                  (sparkline !samples) p.Engine.pr_rows rate morsels
                  p.Engine.pr_elapsed_ms
              | _ ->
                last := None;
                samples := []);
              loop ()
            end
          in
          loop ())
    in
    session.watch <- Some (stop, d)

let stop_watch session =
  match session.watch with
  | None -> ()
  | Some (stop, d) ->
    Atomic.set stop true;
    Domain.join d;
    session.watch <- None

let print_outcome session sql outcome =
  match (outcome : Engine.outcome) with
  | Engine.Rows rs ->
    if session.show_panes then begin
      match Engine.explain session.engine sql with
      | Ok e ->
        print_endline "-- original algebra tree:";
        print_string e.Engine.original_tree;
        print_endline "-- rewritten algebra tree:";
        print_string e.Engine.rewritten_tree;
        print_endline "-- rewritten SQL:";
        print_endline e.Engine.rewritten_sql;
        if e.Engine.agg_strategies <> [] then
          Printf.printf "-- aggregation rewrite strategies: %s\n"
            (String.concat ", " e.Engine.agg_strategies);
        print_endline "-- result:"
      | Error _ -> ()
    end;
    print_string (Render.table ~columns:rs.Engine.columns ~rows:rs.Engine.rows)
  | Engine.Affected n -> Printf.printf "(%d row%s affected)\n" n (if n = 1 then "" else "s")
  | Engine.Message m -> print_endline m
  | Engine.Explained e ->
    print_endline "-- original algebra tree:";
    print_string e.Engine.original_tree;
    print_endline "-- rewritten algebra tree:";
    print_string e.Engine.rewritten_tree;
    print_endline "-- optimized algebra tree:";
    print_string e.Engine.optimized_tree;
    print_endline "-- rewritten SQL:";
    print_endline e.Engine.rewritten_sql;
    if e.Engine.agg_strategies <> [] then
      Printf.printf "-- aggregation rewrite strategies: %s\n"
        (String.concat ", " e.Engine.agg_strategies)
  | Engine.Analyzed ea ->
    print_endline "-- optimized plan (actual):";
    print_string ea.Engine.ea_tree;
    List.iter
      (fun (name, ms) -> Printf.printf "-- %-8s %8.3f ms\n" name ms)
      ea.Engine.ea_phases;
    if ea.Engine.ea_strategies <> [] then
      Printf.printf "-- aggregation rewrite strategies: %s\n"
        (String.concat ", " ea.Engine.ea_strategies);
    Printf.printf "-- %d row%s, %.3f ms total\n" ea.Engine.ea_rows
      (if ea.Engine.ea_rows = 1 then "" else "s")
      ea.Engine.ea_total_ms

let run_sql session sql =
  let sql = String.trim sql in
  if sql <> "" then begin
    let before = Engine.last_trace session.engine in
    let sampler = start_progress_sampler session in
    let result = Engine.execute_err session.engine sql in
    stop_progress_sampler sampler;
    (match result with
    | Ok outcome -> print_outcome session sql outcome
    | Error e -> Printf.printf "ERROR: %s\n" (Err.describe e));
    (* both \trace and \timing read the engine's span tree, so the time
       reported is the pipeline's own measurement (excludes rendering);
       parse failures record no new trace — print nothing rather than the
       previous statement's numbers *)
    match Engine.last_trace session.engine with
    | Some root when (match before with Some b -> b != root | None -> true) ->
      if session.trace then print_string (Trace.to_string root);
      if session.timing then begin
        let phases =
          List.map
            (fun sp ->
              Printf.sprintf "%s %.3f" (Trace.name sp) (Trace.duration_ms sp))
            (Trace.children root)
        in
        Printf.printf "Time: %.3f ms%s\n"
          (Trace.duration_ms root)
          (if phases = [] then ""
           else " (" ^ String.concat ", " phases ^ ")")
      end
    | Some _ | None -> ()
  end

let help_text =
  {|Perm browser commands:
  \q                       quit
  \d                       list tables, views and virtual system relations
  \panes on|off            show algebra trees + rewritten SQL per query
  \timing on|off           print wall-clock time + phase breakdown per statement
  \trace on|off            per-operator instrumentation + span tree per statement
  \trace export FILE       write all statement spans as Chrome trace-event JSON
                           (load in about://tracing or ui.perfetto.dev)
  \log FILE                log statements as JSON lines to FILE (slow-query log)
  \log min MS              only log statements at least MS milliseconds slow
  \log off                 close the statement log
  \metrics                 session metrics (counters, gauges, latency histograms)
  \metrics PREFIX          only metrics whose name starts with PREFIX
                           (e.g. \metrics executor.par)
  \progress on|off         sample live query progress (rows, morsels, elapsed)
                           on an interval while each statement runs
  \watch [on|off]          live sparkline dashboard (row throughput, morsels,
                           WAL epoch/bytes/fsyncs, spill runs/bytes) on stderr
                           while statements run
  \debug [last]            pretty-print the most recent forensics bundle
  \debug list              captured anomaly bundles (id, class, detail)
  \debug dump ID           pretty-print one bundle by id
                           (PERM_FORENSICS_DIR also mirrors bundles to disk)
  \history [PREFIX]        retained per-fingerprint execution history and the
                           regression watchdog's findings (optionally only
                           fingerprints starting with PREFIX)
  \telemetry export FILE   stream the retained history (executions, regressions,
                           metric samples) as JSON lines to FILE
  \serve [on [PORT]|off]   HTTP observability plane on 127.0.0.1 (default port
                           7133, 0 = ephemeral; also via PERM_HTTP_PORT):
                           /metrics (Prometheus), /stats/<relation> (JSON),
                           /healthz, /readyz, /trace (Chrome trace),
                           /events (SSE: eventlog + progress + anomalies),
                           /debug/bundles[/<id>] (forensics bundles)
  \strategy join|lateral|heuristic|cost
                           aggregation rewrite strategy (paper 2.2)
  \optimizer on|off        toggle the planner rewrites
  \set parallel on|off|N   morsel-driven parallel execution on worker domains
                           (on = recommended domain count; N = exact count;
                           results are bit-identical to serial execution)
  \set parallel_threshold N
                           min driving-table rows before a query fans out
  \set morsel_rows N       rows per morsel (0 = planner-sized from the
                           driving table, batch size, and domain count)
  \set batch_rows N        rows per executor batch on the vectorized path
                           (default 1024; PERM_BATCH_ROWS overrides at start)
  \set vectorized on|off   batch-at-a-time executor (default on; off runs
                           the row-at-a-time closures)
  \set statement_timeout MS
                           kill statements running longer than MS ms (0 = off)
  \set row_limit N         kill statements returning more than N rows (0 = off)
  \set tuple_budget N      kill statements moving more than N tuples across
                           operators (0 = off); with spill on, the budget is
                           a spill threshold instead of a kill
  \set spill on|off        degrade gracefully past the tuple budget (external
                           sort, chunked join build) instead of erroring
                           (default on)
  \set spill_dir DIR       directory for spill temp files (default $TMPDIR)
  \set wal on DIR          write-ahead log in DIR: replay committed state,
                           then log every mutation (PERM_WAL_DIR at start)
  \set wal off             close the log; the session keeps running in memory
  \set wal_fsync on|off    fsync the log on every commit (default on)
  \wal status              log size, record count, last LSN, replay summary
  \checkpoint              compact: snapshot.sql + truncate the log
  \set history N           history ring capacity per fingerprint (0 = off;
                           default 128)
  \set watchdog FACTOR     flag executions over FACTOR x the fingerprint's
                           baseline (default 3)
  \set history_cadence S   seconds between metric-history samples (default 1)
  \set eventlog N          in-memory event-log ring capacity (default 256)
  \fault POINT PROB        deterministic fault injection: make the named point
                           (e.g. heap.scan, join.build, pool.dispatch,
                           engine.commit) fail with probability PROB
  \fault seed N            reseed the injection PRNG (also via PERM_FAULT=N)
  \fault list              registered fault points, hit and injection counts
  \fault off               disarm all fault points and clear counters
  \demo                    load the paper's example forum database (Fig. 1)
  \save FILE               dump all tables and views as a SQL script
  \load FILE               execute a SQL script (e.g. a \save dump)
  \help                    this text
Anything else is executed as an SQL-PLE statement (end with ;).
Telemetry is also queryable as relations: perm_stat_statements,
perm_stat_relations, perm_stat_plans, perm_stat_workers, perm_metrics,
perm_stat_history, perm_stat_regressions, perm_metrics_history,
perm_stat_anomalies
(try SELECT * FROM perm_stat_regressions ORDER BY seq DESC;).|}

let print_replay_summary dir (rp : Perm_wal.replay) =
  Printf.printf
    "WAL on %s: replayed %s%d records (%d transactions committed, %d frames \
     discarded, %d already in snapshot, %d torn bytes truncated)\n"
    dir
    (if rp.Perm_wal.rp_snapshot then "snapshot + " else "")
    rp.Perm_wal.rp_records rp.Perm_wal.rp_committed rp.Perm_wal.rp_discarded
    rp.Perm_wal.rp_skipped rp.Perm_wal.rp_truncated_bytes

let handle_meta session line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\q" ] -> `Quit
  | [ "\\help" ] | [ "\\?" ] ->
    print_endline help_text;
    `Continue
  | [ "\\d" ] ->
    let cat = Engine.catalog session.engine in
    List.iter
      (fun (t : Perm_catalog.Catalog.table_def) ->
        Printf.printf "table %-20s %s\n" t.Perm_catalog.Catalog.table_name
          (Format.asprintf "%a" Perm_catalog.Schema.pp t.Perm_catalog.Catalog.table_schema))
      (Perm_catalog.Catalog.tables cat);
    List.iter
      (fun (v : Perm_catalog.Catalog.view_def) ->
        Printf.printf "view  %-20s AS %s\n" v.Perm_catalog.Catalog.view_name
          v.Perm_catalog.Catalog.view_sql)
      (Perm_catalog.Catalog.views cat);
    List.iter
      (fun (v : Perm_catalog.Catalog.virtual_def) ->
        Printf.printf "sys   %-20s %s\n" v.Perm_catalog.Catalog.virtual_name
          (Format.asprintf "%a" Perm_catalog.Schema.pp
             v.Perm_catalog.Catalog.virtual_schema))
      (Perm_catalog.Catalog.virtuals cat);
    `Continue
  | [ "\\panes"; v ] ->
    session.show_panes <- (v = "on");
    `Continue
  | [ "\\timing"; v ] ->
    session.timing <- (v = "on");
    `Continue
  | [ "\\trace"; "export"; path ] ->
    (match
       Engine.locked session.engine (fun () ->
           Engine.trace_log session.engine)
     with
    | [] -> print_endline "no statement traces recorded yet"
    | roots -> (
      let json = Trace.to_chrome_json roots in
      try
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Perm_obs.Json.to_string json));
        Printf.printf "wrote %d statement trace%s to %s\n" (List.length roots)
          (if List.length roots = 1 then "" else "s")
          path
      with Sys_error msg -> Printf.printf "ERROR: %s\n" msg));
    `Continue
  | [ "\\trace"; v ] ->
    session.trace <- (v = "on");
    (* tracing the span tree alone is cheap; the interesting part is the
       per-operator row/time stats, so couple the two *)
    Engine.set_instrumentation session.engine (v = "on");
    `Continue
  | [ "\\log"; "min"; ms ] ->
    (match float_of_string_opt ms with
    | Some v ->
      Engine.locked session.engine (fun () ->
          Perm_obs.Eventlog.set_min_ms (Engine.event_log session.engine) v);
      Printf.printf "logging statements taking at least %g ms\n" v
    | None -> print_endline "usage: \\log min MS");
    `Continue
  | [ "\\log"; "off" ] ->
    Engine.locked session.engine (fun () ->
        Perm_obs.Eventlog.close (Engine.event_log session.engine));
    print_endline "statement log closed";
    `Continue
  | [ "\\log"; path ] ->
    (try
       Engine.locked session.engine (fun () ->
           Perm_obs.Eventlog.open_file (Engine.event_log session.engine) path);
       Printf.printf "logging statements to %s (min %g ms)\n" path
         (Perm_obs.Eventlog.min_ms (Engine.event_log session.engine))
     with Sys_error msg -> Printf.printf "ERROR: %s\n" msg);
    `Continue
  | [ "\\metrics" ] ->
    let m = Engine.metrics session.engine in
    Metrics.set_gc_gauges m;
    print_string (Metrics.dump_text m);
    `Continue
  | [ "\\metrics"; prefix ] ->
    let m = Engine.metrics session.engine in
    Metrics.set_gc_gauges m;
    print_string (Metrics.dump_text ~prefix m);
    `Continue
  | [ "\\progress"; v ] ->
    session.progress <- (v = "on");
    Printf.printf "live progress sampling %s\n" (if v = "on" then "on" else "off");
    `Continue
  | [ "\\strategy"; v ] ->
    (match v with
    | "join" -> Engine.set_agg_strategy session.engine Engine.Use_join
    | "lateral" -> Engine.set_agg_strategy session.engine Engine.Use_lateral
    | "heuristic" -> Engine.set_agg_strategy session.engine Engine.Use_heuristic
    | "cost" -> Engine.set_agg_strategy session.engine Engine.Use_cost_based
    | _ -> print_endline "unknown strategy; use join|lateral|heuristic|cost");
    `Continue
  | [ "\\optimizer"; v ] ->
    Engine.set_optimizer_config session.engine
      (if v = "on" then Perm_planner.Planner.default_config
       else Perm_planner.Planner.disabled_config);
    `Continue
  | [ "\\set"; "parallel"; v ] ->
    (match v with
    | "off" ->
      Engine.set_parallel session.engine Engine.Par_off;
      print_endline "parallel execution off"
    | "on" ->
      Engine.set_parallel session.engine Engine.Par_on;
      Printf.printf "parallel execution on (%d worker domains)\n"
        (Engine.parallel_domains session.engine)
    | n -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
        Engine.set_parallel session.engine (Engine.Par_domains n);
        if Engine.parallel_domains session.engine = 0 then
          print_endline "parallel execution off"
        else
          Printf.printf "parallel execution on (%d worker domains)\n"
            (Engine.parallel_domains session.engine)
      | _ -> print_endline "usage: \\set parallel on|off|N"));
    `Continue
  | [ "\\set"; "parallel_threshold"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 0 ->
      Engine.set_parallel_threshold session.engine n;
      Printf.printf "parallel threshold: %d rows\n" n
    | _ -> print_endline "usage: \\set parallel_threshold N");
    `Continue
  | [ "\\set"; "morsel_rows"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 0 ->
      Engine.set_morsel_rows session.engine n;
      if n = 0 then print_endline "morsel size: planner-chosen"
      else Printf.printf "morsel size: %d rows\n" n
    | _ -> print_endline "usage: \\set morsel_rows N (0 = planner-chosen)");
    `Continue
  | [ "\\set"; "batch_rows"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 1 ->
      Engine.set_batch_rows session.engine n;
      Printf.printf "batch size: %d rows\n" n
    | _ -> print_endline "usage: \\set batch_rows N");
    `Continue
  | [ "\\set"; "vectorized"; v ] ->
    (match v with
    | "on" ->
      Engine.set_vectorized session.engine true;
      print_endline "vectorized execution on"
    | "off" ->
      Engine.set_vectorized session.engine false;
      print_endline "vectorized execution off (row-at-a-time)"
    | _ -> print_endline "usage: \\set vectorized on|off");
    `Continue
  | [ "\\set"; "statement_timeout"; ms ] ->
    (match float_of_string_opt ms with
    | Some v when v >= 0. ->
      Engine.set_statement_timeout session.engine v;
      if v = 0. then print_endline "statement timeout off"
      else Printf.printf "statement timeout: %g ms\n" v
    | _ -> print_endline "usage: \\set statement_timeout MS (0 = off)");
    `Continue
  | [ "\\set"; "row_limit"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 0 ->
      Engine.set_row_limit session.engine n;
      if n = 0 then print_endline "row limit off"
      else Printf.printf "row limit: %d rows\n" n
    | _ -> print_endline "usage: \\set row_limit N (0 = off)");
    `Continue
  | [ "\\set"; "tuple_budget"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 0 ->
      Engine.set_tuple_budget session.engine n;
      if n = 0 then print_endline "tuple budget off"
      else Printf.printf "tuple budget: %d tuples\n" n
    | _ -> print_endline "usage: \\set tuple_budget N (0 = off)");
    `Continue
  | [ "\\set"; "spill"; v ] ->
    (match v with
    | "on" ->
      Engine.set_spill session.engine true;
      print_endline "spill on (tuple budget degrades to disk instead of killing)"
    | "off" ->
      Engine.set_spill session.engine false;
      print_endline "spill off (tuple budget kills statements again)"
    | _ -> print_endline "usage: \\set spill on|off");
    `Continue
  | [ "\\set"; "spill_dir"; dir ] ->
    Engine.set_spill_dir session.engine dir;
    Printf.printf "spill directory: %s\n" dir;
    `Continue
  | [ "\\set"; "wal"; "on"; dir ] ->
    (match Engine.enable_wal session.engine dir with
    | Ok rp -> print_replay_summary dir rp
    | Error e -> Printf.printf "ERROR: %s\n" (Err.to_string e));
    `Continue
  | [ "\\set"; "wal"; "off" ] ->
    if Engine.wal_enabled session.engine then begin
      Engine.disable_wal session.engine;
      print_endline "WAL closed (session continues without durability)"
    end
    else print_endline "WAL is not enabled";
    `Continue
  | [ "\\set"; "wal_fsync"; v ] ->
    (match v with
    | "on" | "off" ->
      Engine.set_wal_fsync session.engine (v = "on");
      Printf.printf "WAL fsync on commit: %s\n" v
    | _ -> print_endline "usage: \\set wal_fsync on|off");
    `Continue
  | [ "\\wal" ] | [ "\\wal"; "status" ] ->
    (match Engine.wal_status session.engine with
    | None -> print_endline "WAL is not enabled (\\set wal on DIR)"
    | Some ws ->
      Printf.printf "dir:    %s\n" ws.Engine.ws_dir;
      Printf.printf "log:    %d bytes, %d records since checkpoint, last LSN %d%s\n"
        ws.Engine.ws_bytes ws.Engine.ws_records ws.Engine.ws_last_lsn
        (if ws.Engine.ws_dirty then "  [DIRTY: rebuild pending]" else "");
      Printf.printf "fsync:  %s (%d since open)\n"
        (if ws.Engine.ws_fsync_on then "on every commit" else "off")
        ws.Engine.ws_fsyncs;
      Printf.printf "epoch:  %d\n" ws.Engine.ws_epoch;
      let rp = ws.Engine.ws_replay in
      Printf.printf
        "replay: %s%d records, %d transactions committed, %d frames discarded, \
         %d already in snapshot, %d torn bytes truncated\n"
        (if rp.Perm_wal.rp_snapshot then "snapshot + " else "")
        rp.Perm_wal.rp_records rp.Perm_wal.rp_committed rp.Perm_wal.rp_discarded
        rp.Perm_wal.rp_skipped rp.Perm_wal.rp_truncated_bytes);
    `Continue
  | [ "\\checkpoint" ] ->
    (match Engine.checkpoint session.engine with
    | Ok () -> print_endline "checkpoint written; log truncated"
    | Error e -> Printf.printf "ERROR: %s\n" (Err.to_string e));
    `Continue
  | [ "\\debug" ] | [ "\\debug"; "last" ] ->
    (match Engine.Forensics.last session.engine with
    | Some doc -> print_endline (Perm_obs.Json.to_pretty_string doc)
    | None -> print_endline "no forensics bundles captured yet");
    `Continue
  | [ "\\debug"; "list" ] ->
    (match Engine.Forensics.list session.engine with
    | [] -> print_endline "no forensics bundles captured yet"
    | bundles ->
      List.iter
        (fun (s : Engine.Forensics.summary) ->
          Printf.printf "#%-5d %-18s %-16s %s\n" s.Engine.Forensics.fs_id
            s.Engine.Forensics.fs_class
            (clip 16 s.Engine.Forensics.fs_fingerprint)
            (clip 60
               (if s.Engine.Forensics.fs_detail <> "" then
                  s.Engine.Forensics.fs_detail
                else s.Engine.Forensics.fs_sql)))
        bundles;
      Printf.printf "%d bundle%s retained (capacity %d); \\debug dump ID for \
                     the full document\n"
        (List.length bundles)
        (if List.length bundles = 1 then "" else "s")
        (Engine.Forensics.capacity session.engine));
    `Continue
  | [ "\\debug"; "dump"; id ] ->
    (match int_of_string_opt id with
    | None -> print_endline "usage: \\debug dump ID"
    | Some id -> (
      match Engine.Forensics.get session.engine id with
      | Some doc -> print_endline (Perm_obs.Json.to_pretty_string doc)
      | None -> Printf.printf "no bundle %d (evicted or never captured)\n" id));
    `Continue
  | [ "\\watch" ] | [ "\\watch"; "on" ] ->
    start_watch session;
    `Continue
  | [ "\\watch"; "off" ] ->
    (match session.watch with
    | None -> print_endline "watch is not on"
    | Some _ ->
      stop_watch session;
      print_endline "watch off");
    `Continue
  | "\\history" :: rest ->
    let prefix =
      String.lowercase_ascii (String.trim (String.concat " " rest))
    in
    let h = Engine.history session.engine in
    let matches fp = prefix = "" || String.starts_with ~prefix fp in
    let fps = List.filter matches (History.fingerprints h) in
    if not (History.enabled h) then
      print_endline "history recording is off (\\set history N to enable)"
    else if fps = [] then print_endline "no matching execution history"
    else begin
      List.iter
        (fun fp ->
          let recs = History.executions_for h fp in
          let ms = List.map (fun r -> r.History.ex_ms) recs in
          let last = List.nth recs (List.length recs - 1) in
          let base =
            match History.baseline h fp with
            | Some (b, _) -> Printf.sprintf "%.2f" b
            | None -> "-"
          in
          Printf.printf "%-48s n=%-4d last=%8.3f ms base=%s ms %s %s\n"
            (clip 48 fp) (List.length recs) last.History.ex_ms base
            (sparkline ms) last.History.ex_plan_hash)
        fps;
      match
        List.filter (fun r -> matches r.History.rg_fingerprint)
          (History.regressions h)
      with
      | [] -> ()
      | regs ->
        print_endline "regressions:";
        List.iter
          (fun r ->
            Printf.printf "  #%-5d %-44s %8.3f ms (%.1fx) %-11s %s\n"
              r.History.rg_seq
              (clip 44 r.History.rg_fingerprint)
              r.History.rg_ms r.History.rg_factor
              (History.cause_label r.History.rg_cause)
              r.History.rg_detail)
          regs
    end;
    `Continue
  | [ "\\telemetry"; "export"; path ] ->
    (* streamed record by record: each JSON object is rendered and written
       individually, so the export never materializes in memory. Under the
       engine lock so an HTTP reader can't interleave with a snapshot *)
    (try
       let count = ref 0 in
       Out_channel.with_open_text path (fun oc ->
           Engine.locked session.engine (fun () ->
               History.iter_export (Engine.history session.engine) (fun j ->
                   Out_channel.output_string oc (Perm_obs.Json.to_string j);
                   Out_channel.output_char oc '\n';
                   incr count)));
       Printf.printf "wrote %d telemetry record%s to %s\n" !count
         (if !count = 1 then "" else "s")
         path
     with Sys_error msg -> Printf.printf "ERROR: %s\n" msg);
    `Continue
  | [ "\\serve" ] ->
    (match session.serve with
    | Some srv ->
      Printf.printf
        "serving on http://127.0.0.1:%d (generation %d)\n"
        (Obs_server.port srv) (Obs_server.generation srv)
    | None -> print_endline "not serving (\\serve on [PORT] to start)");
    `Continue
  | [ "\\serve"; "on" ] ->
    start_serve session default_http_port;
    `Continue
  | [ "\\serve"; "on"; port ] ->
    (match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 -> start_serve session p
    | _ -> print_endline "usage: \\serve on [PORT] (0 = ephemeral)");
    `Continue
  | [ "\\serve"; "off" ] ->
    (match session.serve with
    | None -> print_endline "not serving"
    | Some _ ->
      stop_serve session;
      print_endline "observability server stopped");
    `Continue
  | [ "\\set"; "history"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 0 ->
      Engine.locked session.engine (fun () ->
          History.set_capacity (Engine.history session.engine) n);
      if n = 0 then print_endline "history recording off (retained records discarded)"
      else Printf.printf "history: %d records per fingerprint\n" n
    | _ -> print_endline "usage: \\set history N (records per fingerprint, 0 = off)");
    `Continue
  | [ "\\set"; "watchdog"; f ] ->
    (match float_of_string_opt f with
    | Some v when v >= 0. ->
      Engine.locked session.engine (fun () ->
          History.set_factor (Engine.history session.engine) v);
      Printf.printf "watchdog flags executions over %gx the baseline\n" v
    | _ -> print_endline "usage: \\set watchdog FACTOR");
    `Continue
  | [ "\\set"; "history_cadence"; s ] ->
    (match float_of_string_opt s with
    | Some v when v >= 0. ->
      Engine.locked session.engine (fun () ->
          History.set_cadence (Engine.history session.engine) v);
      Printf.printf "metric sampling cadence: %g s\n" v
    | _ -> print_endline "usage: \\set history_cadence SECONDS");
    `Continue
  | [ "\\set"; "eventlog"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 1 ->
      Engine.locked session.engine (fun () ->
          Eventlog.set_capacity (Engine.event_log session.engine) n);
      Printf.printf "event log ring: %d events\n" n
    | _ -> print_endline "usage: \\set eventlog N (ring capacity, >= 1)");
    `Continue
  | [ "\\fault"; "list" ] ->
    List.iter
      (fun (name, prob, hits, injected) ->
        Printf.printf "%-18s p=%-6g hits=%-8d injected=%d\n" name prob hits
          injected)
      (Fault.points ());
    Printf.printf "seed=%d\n" (Fault.seed ());
    `Continue
  | [ "\\fault"; "off" ] ->
    Fault.reset ();
    print_endline "fault injection off (counters cleared)";
    `Continue
  | [ "\\fault"; "seed"; n ] ->
    (match int_of_string_opt n with
    | Some s ->
      Fault.set_seed s;
      Printf.printf "fault seed: %d\n" s
    | None -> print_endline "usage: \\fault seed N");
    `Continue
  | [ "\\fault"; name; prob ] ->
    (match float_of_string_opt prob with
    | Some p when p >= 0. && p <= 1. ->
      Fault.set name p;
      Printf.printf "fault point %s armed at p=%g (seed %d)\n" name p
        (Fault.seed ())
    | _ -> print_endline "usage: \\fault POINT PROB (0 <= PROB <= 1)");
    `Continue
  | [ "\\save"; path ] ->
    (try
       Out_channel.with_open_text path (fun oc ->
           Out_channel.output_string oc (Engine.dump_sql session.engine));
       Printf.printf "dumped session to %s\n" path
     with Sys_error msg -> Printf.printf "ERROR: %s\n" msg);
    `Continue
  | [ "\\load"; path ] ->
    (try
       let sql = In_channel.with_open_text path In_channel.input_all in
       match Engine.execute_script session.engine sql with
       | Ok outcomes -> Printf.printf "executed %d statements\n" (List.length outcomes)
       | Error msg -> Printf.printf "ERROR: %s\n" msg
     with Sys_error msg -> Printf.printf "ERROR: %s\n" msg);
    `Continue
  | [ "\\demo" ] ->
    Perm_workload.Forum.load session.engine;
    print_endline "loaded the paper's example database (messages, users, imports, approved, view v1)";
    `Continue
  | _ ->
    Printf.printf "unknown command %s (try \\help)\n" line;
    `Continue

let repl session =
  print_endline "Perm provenance management system — type \\help for commands";
  let buffer = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buffer = 0 then "perm> " else "  ... ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      if Buffer.length buffer = 0 && String.length (String.trim line) > 0
         && (String.trim line).[0] = '\\'
      then (
        match handle_meta session line with
        | `Quit -> ()
        | `Continue -> loop ())
      else begin
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        if String.contains text ';' then begin
          Buffer.clear buffer;
          run_sql session text
        end;
        loop ()
      end
  in
  loop ()

let main demo script command =
  let session =
    {
      engine = Engine.create ();
      show_panes = false;
      timing = false;
      trace = false;
      progress = false;
      watch = None;
      serve = None;
    }
  in
  (* PERM_FORENSICS_DIR mirrors every captured anomaly bundle to disk, so
     scripted/CI sessions keep their forensics past process exit. Set
     before the WAL below so a startup-replay bundle is mirrored too *)
  (match Sys.getenv_opt "PERM_FORENSICS_DIR" with
  | Some dir when String.trim dir <> "" ->
    Engine.Forensics.set_dir session.engine (Some (String.trim dir))
  | _ -> ());
  (* PERM_WAL_DIR enables durability before anything mutates: recovered
     state is replayed here, and every later statement (demo load included)
     is logged *)
  (match Sys.getenv_opt "PERM_WAL_DIR" with
  | Some dir when String.trim dir <> "" -> (
    let dir = String.trim dir in
    match Engine.enable_wal session.engine dir with
    | Ok rp -> print_replay_summary dir rp
    | Error e ->
      Printf.eprintf "ERROR: PERM_WAL_DIR=%s: %s\n%!" dir (Err.to_string e);
      exit 1)
  | _ -> ());
  if demo then Perm_workload.Forum.load session.engine;
  (* PERM_HTTP_PORT starts the observability plane before any statement
     runs, so scripted/CI sessions are scrapeable without a \serve line *)
  (match Sys.getenv_opt "PERM_HTTP_PORT" with
  | Some p -> (
    match int_of_string_opt (String.trim p) with
    | Some port when port >= 0 && port < 65536 -> (
      match Obs_server.start ~port session.engine with
      | Ok srv ->
        session.serve <- Some srv;
        Printf.eprintf "serving observability plane on http://127.0.0.1:%d\n%!"
          (Obs_server.port srv)
      | Error msg ->
        Printf.eprintf "WARNING: PERM_HTTP_PORT=%s: %s\n%!" p msg)
    | _ -> Printf.eprintf "WARNING: ignoring bad PERM_HTTP_PORT=%s\n%!" p)
  | None -> ());
  (match script, command with
  | Some path, _ ->
    let sql = In_channel.with_open_text path In_channel.input_all in
    (match Engine.execute_script session.engine sql with
    | Ok outcomes -> List.iter (print_outcome session "") outcomes
    | Error msg ->
      Printf.eprintf "ERROR: %s\n" msg;
      exit 1)
  | None, Some sql -> run_sql session sql
  | None, None -> repl session);
  (* stop the \watch dashboard domain and drain the observability server,
     then release the worker-domain pool, if a parallel query created one
     (Engine.close would also drain the server via its at_close hook;
     stopping here first is just the explicit order) *)
  stop_watch session;
  stop_serve session;
  Engine.close session.engine

open Cmdliner

let demo_flag =
  Arg.(value & flag & info [ "demo" ] ~doc:"Load the paper's Figure 1 example database at startup.")

let script_arg =
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Execute the SQL script and exit.")

let command_arg =
  Arg.(value & opt (some string) None & info [ "c"; "command" ] ~docv:"SQL" ~doc:"Execute one statement and exit.")

let cmd =
  let doc = "interactive client for the Perm provenance management system" in
  Cmd.v
    (Cmd.info "perm_cli" ~doc)
    Term.(const main $ demo_flag $ script_arg $ command_arg)

let () = exit (Cmd.eval cmd)
