(* Kill-and-recover chaos harness for the write-ahead log.

   [run] opens an engine on a WAL directory, arms one fault point at a
   seeded probability, and executes a deterministic workload. Each fully
   successful unit prints [ACK i]; the first fault-induced error makes the
   process SIGKILL itself mid-commit, leaving whatever the log held at
   that instant — including a torn tail — on disk.

   [check] reopens an engine on the same directory (replaying the log)
   and compares its [dump_sql] byte-for-byte against an oracle: a fresh
   in-memory engine that re-runs the first K acknowledged units. A fault
   injected at [wal.fsync] lands after the Commit frame was written, so
   the in-flight unit may legitimately survive a process kill — the
   oracle accepts K or K+1 committed units.

   Driven by the CI wal-recovery job and test/test_wal.ml's in-process
   twin; runnable by hand:

     dune exec bin/wal_harness.exe -- run --dir /tmp/w --seed 3 \
       --point wal.append --prob 0.05
     dune exec bin/wal_harness.exe -- check --dir /tmp/w --seed 3 --acked 17 *)

module Engine = Perm_engine.Engine
module Fault = Perm_fault
module Err = Perm_err

let default_units = 60

(* Deterministic 63-bit LCG so run and check derive the identical
   workload from a seed, independent of Random's implementation. *)
let lcg state =
  state := ((!state * 2685821657736338717) + 1442695040888963) land max_int;
  !state

let workload ~seed ~units =
  let state = ref (seed lxor 0x5deece66d) in
  let rand k = lcg state mod k in
  List.init units (fun i ->
      if i = 0 then [ "CREATE TABLE t (k INTEGER, v TEXT);" ]
      else
        let x = rand 1000 in
        match rand 10 with
        | 0 | 1 ->
          (* explicit transaction: the only path where engine.commit trips *)
          [
            "BEGIN;";
            Printf.sprintf "INSERT INTO t VALUES (%d, 'a%d');" x x;
            Printf.sprintf "INSERT INTO t VALUES (%d, 'b%d');" (x + 1000) x;
            "COMMIT;";
          ]
        | 2 -> [ Printf.sprintf "DELETE FROM t WHERE k %% 11 = %d;" (x mod 11) ]
        | 3 ->
          [ Printf.sprintf "UPDATE t SET v = 'u%d' WHERE k %% 7 = %d;" x (x mod 7) ]
        | _ ->
          [
            Printf.sprintf "INSERT INTO t VALUES (%d, 'r%d'), (%d, 'r%d');" x x
              (x + 100) x;
          ])

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let opt args name =
  let rec go = function
    | [] -> None
    | k :: v :: _ when k = name -> Some v
    | _ :: rest -> go rest
  in
  go args

let req args name =
  match opt args name with
  | Some v -> v
  | None -> die "missing %s" name

let run args =
  let dir = req args "--dir" in
  let seed = int_of_string (req args "--seed") in
  let units = Option.value ~default:default_units
      (Option.map int_of_string (opt args "--units")) in
  let point = opt args "--point" in
  let prob = Option.value ~default:0.05
      (Option.map float_of_string (opt args "--prob")) in
  let e = Engine.create () in
  (match Engine.enable_wal e dir with
  | Ok _ -> ()
  | Error err -> die "enable_wal: %s" (Err.to_string err));
  Fault.set_seed seed;
  (match point with Some p -> Fault.set p prob | None -> ());
  List.iteri
    (fun i unit_stmts ->
      List.iter
        (fun sql ->
          match Engine.execute_err e sql with
          | Ok _ -> ()
          | Error err ->
            if point <> None then begin
              (* crash mid-commit: SIGKILL leaves the torn log behind *)
              Printf.printf "CRASH %d %s\n%!" i (Err.kind_label err.Err.kind);
              Unix.kill (Unix.getpid ()) Sys.sigkill
            end
            else die "unit %d: %s" i (Err.to_string err))
        unit_stmts;
      Printf.printf "ACK %d\n%!" i)
    (workload ~seed ~units);
  print_endline "DONE";
  Engine.close e

let oracle_dump ~seed ~units k =
  let e = Engine.create () in
  let all = workload ~seed ~units in
  List.iteri
    (fun i unit_stmts ->
      if i < k then
        List.iter
          (fun sql ->
            match Engine.execute_err e sql with
            | Ok _ -> ()
            | Error err -> die "oracle unit %d: %s" i (Err.to_string err))
          unit_stmts)
    all;
  let dump = Engine.dump_sql e in
  Engine.close e;
  dump

let check args =
  let dir = req args "--dir" in
  let seed = int_of_string (req args "--seed") in
  let units = Option.value ~default:default_units
      (Option.map int_of_string (opt args "--units")) in
  let acked = int_of_string (req args "--acked") in
  let e = Engine.create () in
  let replay =
    match Engine.enable_wal e dir with
    | Ok rp -> rp
    | Error err -> die "recovery failed: %s" (Err.to_string err)
  in
  let recovered = Engine.dump_sql e in
  Engine.close e;
  let matches k = k <= units && String.equal recovered (oracle_dump ~seed ~units k) in
  if matches acked then begin
    Printf.printf "OK recovered state = %d committed units (replayed %d records)\n"
      acked replay.Perm_wal.rp_records;
    exit 0
  end
  else if matches (acked + 1) then begin
    (* the in-flight unit's Commit frame hit the file before the injected
       fsync fault errored the statement — legitimately durable *)
    Printf.printf
      "OK recovered state = %d committed units (in-flight commit survived)\n"
      (acked + 1);
    exit 0
  end
  else begin
    Printf.printf "MISMATCH: recovered state matches neither %d nor %d units\n"
      acked (acked + 1);
    Printf.printf "--- recovered ---\n%s\n--- oracle(%d) ---\n%s\n" recovered
      acked (oracle_dump ~seed ~units acked);
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: "run" :: args -> run args
  | _ :: "check" :: args -> check args
  | _ ->
    prerr_endline
      "usage: wal_harness run --dir DIR --seed N [--point P] [--prob F] [--units N]\n\
      \       wal_harness check --dir DIR --seed N --acked K [--units N]";
    exit 2
