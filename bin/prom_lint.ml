(* Validate a Prometheus text exposition read from stdin (or a file given
   as argv) with the same round-trip parser the test suite uses: name and
   label charsets, duplicate samples, histogram bucket monotonicity, the
   terminal +Inf bucket and its agreement with _count. CI pipes the live
   /metrics scrape through this.

   Exit 0 and a one-line summary on success; exit 1 with the first
   violation otherwise. *)

let () =
  let input =
    match Sys.argv with
    | [| _; path |] -> In_channel.with_open_text path In_channel.input_all
    | _ -> In_channel.input_all In_channel.stdin
  in
  match Perm_obs.Prometheus.validate input with
  | Ok samples ->
    Printf.printf "OK: %d samples, exposition is well-formed\n" samples
  | Error msg ->
    Printf.eprintf "INVALID: %s\n" msg;
    exit 1
