(* Validate forensics bundle documents against the perm.forensics/1
   schema with the same checker the test suite uses: required sections
   (plan, metrics delta, event tail, WAL, spill, settings), field types
   and the anomaly-class enum. CI runs every bundle a forensics scenario
   produced through this.

   With file arguments, each is validated independently; without, one
   document is read from stdin. Exit 0 and a one-line summary per
   bundle on success; exit 1 after reporting every violation. *)

let check label input =
  match Perm_obs.Bundle_schema.validate_string input with
  | Ok cls ->
    Printf.printf "OK: %s is a well-formed %s bundle\n" label cls;
    true
  | Error msg ->
    Printf.eprintf "INVALID: %s: %s\n" label msg;
    false

let () =
  let ok =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as paths) ->
      List.fold_left
        (fun acc path ->
          let input =
            In_channel.with_open_text path In_channel.input_all
          in
          check path input && acc)
        true paths
    | _ -> check "<stdin>" (In_channel.input_all In_channel.stdin)
  in
  if not ok then exit 1
