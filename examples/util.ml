(* Shared helpers for the example programs. *)

module Engine = Perm_engine.Engine
module Render = Perm_engine.Render

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let run engine sql =
  Printf.printf "perm> %s\n" sql;
  match Engine.execute engine sql with
  | Ok (Engine.Rows rs) ->
    print_string (Render.table ~columns:rs.Engine.columns ~rows:rs.Engine.rows)
  | Ok (Engine.Affected n) ->
    Printf.printf "(%d row%s affected)\n" n (if n = 1 then "" else "s")
  | Ok (Engine.Message m) -> print_endline m
  | Ok (Engine.Explained e) ->
    print_endline "-- original algebra tree:";
    print_string e.Engine.original_tree;
    print_endline "-- rewritten algebra tree:";
    print_string e.Engine.rewritten_tree;
    print_endline "-- rewritten SQL:";
    print_endline e.Engine.rewritten_sql
  | Ok (Engine.Analyzed ea) ->
    print_endline "-- optimized plan (actual):";
    print_string ea.Engine.ea_tree;
    List.iter
      (fun (name, ms) -> Printf.printf "-- %-8s %8.3f ms\n" name ms)
      ea.Engine.ea_phases
  | Error msg -> Printf.printf "ERROR: %s\n" msg

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
