# Single entry point for CI and local hacking: `make check` is the gate.

.PHONY: all build test bench-smoke bench-compare bench fmt check

all: build

build:
	dune build

test:
	dune runtest

# Quick instrumented pass over representative queries; also regenerates
# BENCH_phases.json (per-query phase breakdowns + session metrics).
bench-smoke:
	dune exec bench/main.exe -- --smoke --json

# Regression gate: a fresh smoke pass diffed against the committed
# BENCH_phases.json, per query and per phase. The generous default
# threshold (5x + 25 ms slack) only trips on real slowdowns, not
# machine-to-machine or run-to-run noise. The baseline is taken from git
# HEAD (bench-smoke may have just rewritten the working-tree copy);
# outside a checkout it falls back to the file as-is.
bench-compare:
	@git show HEAD:BENCH_phases.json > .bench_baseline.json 2>/dev/null \
	  || cp BENCH_phases.json .bench_baseline.json
	dune exec bench/main.exe -- --compare .bench_baseline.json
	@rm -f .bench_baseline.json

# Full Bechamel benchmark series (minutes).
bench:
	dune exec bench/main.exe

# `dune build @fmt` requires ocamlformat on PATH; the toolchain image does
# not ship it, so formatting is a separate opt-in target, not part of check.
fmt:
	dune build @fmt --auto-promote

check: build test bench-smoke bench-compare
