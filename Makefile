# Single entry point for CI and local hacking: `make check` is the gate.

.PHONY: all build test bench-smoke bench fmt check

all: build

build:
	dune build

test:
	dune runtest

# Quick instrumented pass over representative queries; also regenerates
# BENCH_phases.json (per-query phase breakdowns + session metrics).
bench-smoke:
	dune exec bench/main.exe -- --smoke --json

# Full Bechamel benchmark series (minutes).
bench:
	dune exec bench/main.exe

# `dune build @fmt` requires ocamlformat on PATH; the toolchain image does
# not ship it, so formatting is a separate opt-in target, not part of check.
fmt:
	dune build @fmt --auto-promote

check: build test bench-smoke
