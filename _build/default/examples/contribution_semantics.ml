(* Contribution semantics side by side (paper §2.4: INFLUENCE is the
   Why-provenance flavour, COPY variants are Where-provenance flavours).

   The example query copies [text] from the view (hence from messages and
   imports) but only *uses* [approved] to compute the count — so under COPY
   semantics the approved tuples do not qualify and their provenance
   columns are NULL, while INFLUENCE keeps them. *)

open Util

let query semantics =
  Printf.sprintf
    "SELECT PROVENANCE ON CONTRIBUTION (%s) count(*), text FROM v1 JOIN \
     approved a ON v1.mid = a.mid GROUP BY v1.mid, text"
    semantics

let () =
  let engine = Engine.create () in
  Perm_workload.Forum.load engine;

  section "INFLUENCE (Why-provenance): every witness tuple contributes";
  run engine (query "INFLUENCE");

  section "COPY (Where-provenance, partial): only relations whose values are copied";
  run engine (query "COPY");

  section "COPY COMPLETE: only relations ALL of whose attributes are copied";
  run engine (query "COPY COMPLETE");

  section "copying whole rows qualifies under COPY COMPLETE too";
  run engine
    "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) uid, mid FROM approved \
     WHERE mid = 4";

  section "projection drops a column: approved no longer completely copied";
  run engine
    "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) mid FROM approved \
     WHERE mid = 4"
