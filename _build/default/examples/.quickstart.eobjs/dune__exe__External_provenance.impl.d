examples/external_provenance.ml: Engine Perm_workload Util
