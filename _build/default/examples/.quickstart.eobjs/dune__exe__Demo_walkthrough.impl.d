examples/demo_walkthrough.ml: Engine List Perm_provenance Perm_workload Printf String Util
