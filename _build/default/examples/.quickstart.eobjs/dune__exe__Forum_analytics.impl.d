examples/forum_analytics.ml: Engine Perm_workload Util
