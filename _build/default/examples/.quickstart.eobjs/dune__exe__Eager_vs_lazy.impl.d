examples/eager_vs_lazy.ml: Engine Perm_workload Printf String Util
