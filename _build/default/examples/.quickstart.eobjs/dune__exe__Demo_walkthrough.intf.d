examples/demo_walkthrough.mli:
