examples/eager_vs_lazy.mli:
