examples/quickstart.ml: Engine Perm_workload Util
