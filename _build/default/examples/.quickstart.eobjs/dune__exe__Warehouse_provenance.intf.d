examples/warehouse_provenance.mli:
