examples/browser_panes.mli:
