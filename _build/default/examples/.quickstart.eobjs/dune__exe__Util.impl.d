examples/util.ml: Perm_engine Printf Unix
