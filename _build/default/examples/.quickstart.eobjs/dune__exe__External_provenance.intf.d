examples/external_provenance.mli:
