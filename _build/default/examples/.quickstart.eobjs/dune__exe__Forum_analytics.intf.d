examples/forum_analytics.mli:
