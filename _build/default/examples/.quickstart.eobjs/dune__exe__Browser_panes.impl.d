examples/browser_panes.ml: Engine Perm_workload Printf String Util
