examples/contribution_semantics.mli:
