examples/contribution_semantics.ml: Engine Perm_workload Printf Util
