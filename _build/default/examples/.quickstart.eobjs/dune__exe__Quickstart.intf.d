examples/quickstart.mli:
