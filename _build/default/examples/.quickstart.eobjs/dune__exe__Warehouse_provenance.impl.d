examples/warehouse_provenance.ml: Engine Perm_workload Util
