(* A realistic analytics scenario from the paper's introduction: provenance
   used to trace errors, estimate data quality and gain insight — here, a
   moderation dashboard over the forum.

   The centerpiece is the paper's §2.4 query: "messages imported from the
   'superForum' board that were approved by at least N users" — a query
   over provenance, expressed in plain SQL around a SELECT PROVENANCE
   subquery. *)

open Util

let () =
  let engine = Engine.create () in
  Perm_workload.Forum.load_scaled engine ~messages:2000 ~users:100 ~seed:7 ();

  section "the dashboard aggregate: approvals per message";
  run engine
    "SELECT count(*) AS approvals, text FROM v1 JOIN approved a ON v1.mid = \
     a.mid GROUP BY v1.mid, text ORDER BY approvals DESC LIMIT 5";

  section "paper 2.4: imported 'superForum' messages approved by >= 3 users";
  run engine
    "SELECT text, prov_imports_origin FROM (SELECT PROVENANCE count(*) AS \
     cnt, text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, \
     text) AS prov WHERE cnt >= 3 AND prov_imports_origin = 'superForum' \
     LIMIT 5";

  section "data quality: which import boards feed the popular messages?";
  run engine
    "SELECT prov_imports_origin AS board, count(*) AS popular_messages FROM \
     (SELECT PROVENANCE count(*) AS cnt, text FROM v1 JOIN approved a ON \
     v1.mid = a.mid GROUP BY v1.mid, text) AS prov WHERE cnt >= 2 AND \
     prov_imports_origin IS NOT NULL GROUP BY prov_imports_origin ORDER BY \
     popular_messages DESC";

  section "error tracing: find the users behind approvals of one message";
  run engine
    "SELECT DISTINCT u.name FROM (SELECT PROVENANCE count(*) AS cnt, text \
     FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text) AS \
     prov JOIN users u ON u.uid = prov.prov_approved_uid WHERE prov.cnt >= 3 \
     ORDER BY u.name LIMIT 5";

  section "store the dashboard's provenance for the weekly audit (eager)";
  run engine
    "STORE PROVENANCE SELECT count(*) AS cnt, text FROM v1 JOIN approved a \
     ON v1.mid = a.mid GROUP BY v1.mid, text INTO audit_week";
  run engine "SELECT count(*) FROM audit_week"
