(* Quickstart: the paper's running example end to end.

   Loads the Figure 1 forum database, runs queries q1/q2/q3, and computes
   the provenance of q1 — the output of the second query below is exactly
   the paper's Figure 2 table. *)

open Util

let () =
  let engine = Engine.create () in

  section "Figure 1: example database (messages, users, imports, approved)";
  Perm_workload.Forum.load engine;
  run engine "SELECT * FROM messages";
  run engine "SELECT * FROM users";
  run engine "SELECT * FROM imports";
  run engine "SELECT * FROM approved";

  section "q1: all messages, entered or imported";
  run engine Perm_workload.Forum.q1;

  section "q2 created view v1; q3: approval counts per message";
  run engine Perm_workload.Forum.q3;

  section "Figure 2: the provenance of q1 (SELECT PROVENANCE ...)";
  run engine Perm_workload.Forum.q1_provenance;

  section "provenance of q3: which base tuples produced each count";
  run engine
    "SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = \
     a.mid GROUP BY v1.mid, text"
