(* Data-warehouse provenance — the paper's introduction motivates
   provenance for warehouses and e-science: "trace errors, estimate data
   quality and gain additional insights".

   This example audits an aggregated revenue report on a TPC-H-like star
   schema: a suspicious total is traced back to the exact line items and
   part rows that produced it, then one bad source row is repaired and the
   report recomputed. *)

open Util

let () =
  let engine = Engine.create () in
  Perm_workload.Star.load engine ~scale:300 ();

  section "the report: revenue per part brand";
  run engine Perm_workload.Star.revenue_by_brand;

  section "auditor: which base tuples produced the 'acme' total?";
  run engine
    "SELECT prov_lineitem_orderkey, prov_lineitem_extendedprice, \
     prov_part_name FROM (SELECT PROVENANCE p.brand, sum(l.extendedprice) AS \
     revenue FROM lineitem l JOIN part p ON l.partkey = p.partkey GROUP BY \
     p.brand) rep WHERE brand = 'acme' ORDER BY prov_lineitem_extendedprice \
     DESC LIMIT 5";

  section "error tracing: plant a corrupted line item and find it";
  run engine "INSERT INTO lineitem VALUES (1, 1, 1, 9999999.0, 0.0)";
  run engine
    "SELECT brand, revenue FROM (SELECT PROVENANCE p.brand, \
     sum(l.extendedprice) AS revenue FROM lineitem l JOIN part p ON \
     l.partkey = p.partkey GROUP BY p.brand) rep WHERE \
     prov_lineitem_extendedprice > 1000000.0";
  run engine
    "SELECT DISTINCT prov_lineitem_orderkey, prov_lineitem_extendedprice \
     FROM (SELECT PROVENANCE p.brand, sum(l.extendedprice) AS revenue FROM \
     lineitem l JOIN part p ON l.partkey = p.partkey GROUP BY p.brand) rep \
     WHERE prov_lineitem_extendedprice > 1000000.0";

  section "repair the source and recompute";
  run engine "DELETE FROM lineitem WHERE extendedprice > 1000000.0";
  run engine
    "SELECT count(*) AS suspicious FROM (SELECT PROVENANCE p.brand, \
     sum(l.extendedprice) AS revenue FROM lineitem l JOIN part p ON \
     l.partkey = p.partkey GROUP BY p.brand) rep WHERE \
     prov_lineitem_extendedprice > 1000000.0";

  section "quality estimate: witnesses per segment report row";
  run engine
    "SELECT segment, count(*) AS witnesses FROM (SELECT PROVENANCE \
     c.segment, sum(l.extendedprice) AS revenue FROM customer c JOIN orders \
     o ON c.custkey = o.custkey JOIN lineitem l ON o.orderkey = l.orderkey \
     GROUP BY c.segment) rep GROUP BY segment ORDER BY witnesses DESC"
