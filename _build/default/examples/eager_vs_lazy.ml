(* Lazy vs. eager provenance computation (paper §1: the user decides
   "whether he will store the provenance of a query for later reuse or let
   the system compute it on the fly").

   Lazy: every SELECT PROVENANCE recomputes the rewritten query.
   Eager: STORE PROVENANCE ... INTO materializes the provenance once; later
   queries read the stored table and can keep propagating its provenance
   columns with the PROVENANCE (...) annotation. *)

open Util

let repeat = 20

let () =
  let engine = Engine.create () in
  Perm_workload.Forum.load_scaled engine ~messages:5000 ~users:200 ();

  let provenance_query =
    "SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = \
     a.mid GROUP BY v1.mid, text"
  in

  section "lazy: run the provenance query repeatedly";
  let _, lazy_time =
    time_it (fun () ->
        for _ = 1 to repeat do
          match Engine.query engine provenance_query with
          | Ok _ -> ()
          | Error msg -> failwith msg
        done)
  in
  Printf.printf "%d lazy provenance computations: %.3f s (%.1f ms each)\n"
    repeat lazy_time
    (lazy_time /. float_of_int repeat *. 1000.);

  section "eager: materialize once with STORE PROVENANCE";
  let _, store_time =
    time_it (fun () ->
        run engine
          (Printf.sprintf "STORE PROVENANCE %s INTO q3_prov"
             "SELECT count(*) AS cnt, text FROM v1 JOIN approved a ON v1.mid \
              = a.mid GROUP BY v1.mid, text"))
  in
  Printf.printf "one eager materialization: %.3f s\n" store_time;
  (match Engine.provenance_columns engine "q3_prov" with
  | Some cols ->
    Printf.printf "registered provenance columns: %s\n" (String.concat ", " cols)
  | None -> ());

  section "then read the stored provenance repeatedly";
  let _, eager_time =
    time_it (fun () ->
        for _ = 1 to repeat do
          match Engine.query engine "SELECT * FROM q3_prov" with
          | Ok _ -> ()
          | Error msg -> failwith msg
        done)
  in
  Printf.printf "%d reads of stored provenance: %.3f s (%.1f ms each)\n" repeat
    eager_time
    (eager_time /. float_of_int repeat *. 1000.);

  section "stored provenance keeps propagating through new queries";
  run engine
    "SELECT PROVENANCE cnt FROM q3_prov PROVENANCE (prov_messages_mid, \
     prov_messages_text, prov_messages_uid) WHERE cnt > 2 LIMIT 3";

  Printf.printf
    "\nsummary: lazy %.1f ms/query vs eager %.3f s once + %.1f ms/read\n"
    (lazy_time /. float_of_int repeat *. 1000.)
    store_time
    (eager_time /. float_of_int repeat *. 1000.)
