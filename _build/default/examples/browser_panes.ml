(* The Perm browser panes (paper Figure 4): for one query, show the input
   SQL (marker 1), the rewritten SQL statement (marker 2), the original
   algebra tree (marker 3), the rewritten algebra tree (marker 4) and the
   query result (marker 5). *)

open Util

let () =
  let engine = Engine.create () in
  Perm_workload.Forum.load engine;

  let sql =
    "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text FROM v1 \
     JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text"
  in
  section "marker 1: input SQL";
  print_endline sql;

  match Engine.explain engine sql with
  | Error msg -> Printf.printf "ERROR: %s\n" msg
  | Ok panes ->
    section "marker 3: algebra tree of the original query";
    print_string panes.Engine.original_tree;
    section "marker 4: algebra tree of the rewritten query";
    print_string panes.Engine.rewritten_tree;
    section "marker 2: rewritten query as an SQL statement";
    print_endline panes.Engine.rewritten_sql;
    if panes.Engine.agg_strategies <> [] then
      Printf.printf "\n(aggregation rewrite strategy: %s)\n"
        (String.concat ", " panes.Engine.agg_strategies);
    section "marker 5: query result";
    run engine sql;
    section "planner view: the optimized tree that actually executes";
    print_string panes.Engine.optimized_tree
