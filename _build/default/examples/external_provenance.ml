(* External and incremental provenance (paper §2.2/§2.4).

   Perm's rewrite rules "are unaware of how the provenance attributes of
   their input were produced", so the system can propagate provenance that
   was created manually or by another provenance management system, and can
   stop rewriting at a view boundary with BASERELATION. *)

open Util

let () =
  let engine = Engine.create () in
  Perm_workload.Forum.load engine;

  section "a curated table with manually maintained provenance columns";
  run engine
    "CREATE TABLE curated (gene text, score int, prov_source_db text, \
     prov_source_id int)";
  run engine
    "INSERT INTO curated VALUES ('brca1', 9, 'ensembl', 117), ('tp53', 7, \
     'genbank', 512), ('myc', 3, 'ensembl', 44)";

  section "PROVENANCE (attrs): propagate the manual provenance through a query";
  run engine
    "SELECT PROVENANCE gene, score FROM curated PROVENANCE (prov_source_db, \
     prov_source_id) WHERE score > 5";

  section "it composes with ordinary provenance from other relations";
  run engine
    "SELECT PROVENANCE u.name, c.gene FROM users u JOIN curated c PROVENANCE \
     (prov_source_db, prov_source_id) ON u.uid = c.score - 6";

  section "BASERELATION: stop the rewrite at the view v1 (paper 2.4 example)";
  (* v1's own definition is not unfolded for provenance: the view's output
     tuples become their provenance *)
  run engine "SELECT PROVENANCE text FROM v1 BASERELATION WHERE mid > 1";

  section "contrast: the same query without BASERELATION traces to base tables";
  run engine "SELECT PROVENANCE text FROM v1 WHERE mid > 1"
