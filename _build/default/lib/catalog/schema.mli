(** The schema of a stored relation: an ordered list of columns with
    distinct names. *)

type t

val make : Column.t list -> (t, string) result
(** Rejects duplicate column names (after lower-casing) and empty schemas. *)

val make_exn : Column.t list -> t
val columns : t -> Column.t list
val arity : t -> int
val find : t -> string -> (int * Column.t) option
(** Case-insensitive lookup; returns the column position. *)

val column_at : t -> int -> Column.t
val names : t -> string list
val types : t -> Perm_value.Dtype.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
