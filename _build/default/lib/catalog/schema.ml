type t = Column.t array

let make cols =
  if cols = [] then Error "a relation schema must have at least one column"
  else
    let seen = Hashtbl.create 8 in
    let rec check = function
      | [] -> Ok (Array.of_list cols)
      | (c : Column.t) :: rest ->
        if Hashtbl.mem seen c.name then
          Error (Printf.sprintf "duplicate column name %S" c.name)
        else (
          Hashtbl.add seen c.name ();
          check rest)
    in
    check cols

let make_exn cols =
  match make cols with Ok t -> t | Error e -> invalid_arg e

let columns t = Array.to_list t
let arity = Array.length

let find t name =
  let name = String.lowercase_ascii name in
  let rec go i =
    if i >= Array.length t then None
    else if String.equal t.(i).Column.name name then Some (i, t.(i))
    else go (i + 1)
  in
  go 0

let column_at t i = t.(i)
let names t = Array.to_list (Array.map (fun (c : Column.t) -> c.name) t)
let types t = Array.to_list (Array.map (fun (c : Column.t) -> c.ty) t)

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Column.equal x y) a b

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Column.pp)
    (columns t)
