type t = { name : string; ty : Perm_value.Dtype.t }

let make name ty = { name = String.lowercase_ascii name; ty }
let equal a b = String.equal a.name b.name && Perm_value.Dtype.equal a.ty b.ty

let pp ppf { name; ty } =
  Format.fprintf ppf "%s %s" name (Perm_value.Dtype.to_string ty)
