lib/catalog/schema.mli: Column Format Perm_value
