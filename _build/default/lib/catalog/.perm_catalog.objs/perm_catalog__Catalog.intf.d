lib/catalog/catalog.mli: Schema
