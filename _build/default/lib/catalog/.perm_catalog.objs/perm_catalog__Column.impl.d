lib/catalog/column.ml: Format Perm_value String
