lib/catalog/column.mli: Format Perm_value
