lib/catalog/schema.ml: Array Column Format Hashtbl Printf String
