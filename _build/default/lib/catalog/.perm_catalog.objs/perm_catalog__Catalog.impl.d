lib/catalog/catalog.ml: Hashtbl List Printf Schema String
