(** A named, typed column of a stored relation or view. *)

type t = {
  name : string;  (** lower-cased; SQL identifiers are case-insensitive *)
  ty : Perm_value.Dtype.t;
}

val make : string -> Perm_value.Dtype.t -> t
(** [make name ty] lower-cases [name]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
