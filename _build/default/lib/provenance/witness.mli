(** Structured decoding of provenance result sets.

    Perm represents provenance as flat [prov_<rel>_<col>] columns appended
    to the query result (paper §2.1). Downstream code usually wants the
    structured view back: for each result row, the list of witness tuples
    per base relation. This module recovers it from a result's column
    names alone, so it works on lazy query results, stored provenance
    tables, and CSV re-imports alike. *)

type block = {
  rel : string;  (** base relation display name, e.g. ["messages"] *)
  occurrence : int;  (** 0 for [prov_r_*], k for [prov_r_k_*] (self-joins) *)
  columns : string list;  (** base column names, in schema order *)
  positions : int list;  (** column positions within the result row *)
}

val blocks : columns:string list -> known_rels:string list -> block list
(** Groups a result's [prov_*] columns into per-relation-instance blocks.
    [known_rels] disambiguates relation names containing underscores
    (column names are parsed as [prov_<rel>[_<occ>]_<col>] with the longest
    matching known relation name). Columns that match no known relation are
    grouped by the longest prefix heuristic. *)

type witness = {
  w_rel : string;
  w_occurrence : int;
  w_tuple : Perm_value.Value.t array;  (** values in [columns] order *)
}

val decode_row :
  block list -> Perm_value.Value.t array -> witness list
(** The witnesses embedded in one provenance result row; all-NULL blocks
    (the relation did not contribute to this row, Figure 2's padding) are
    omitted. *)

val originals : block list -> Perm_value.Value.t array -> Perm_value.Value.t array
(** The row restricted to its non-provenance columns. *)
