module Plan = Perm_algebra.Plan
module Attr = Perm_algebra.Attr
module Dtype = Perm_value.Dtype

type origin = From_scan of string | From_baserel | From_external | From_nested_prov

type instance = {
  inst_rel : string;
  inst_cols : (string * Dtype.t) list;
  inst_origin : origin;
}

(* Depth-first, left-to-right collection of relation instances. This
   traversal order is the contract between the analyzer (which allocates the
   provenance attributes) and the rewriter (which produces the bindings):
   Rewriter.rewrite mirrors it case by case. *)
let rec instances (plan : Plan.t) =
  match plan with
  | Plan.Scan { table; attrs } | Plan.Index_scan { table; attrs; _ } ->
    [
      {
        inst_rel = table;
        inst_cols = List.map (fun (a : Attr.t) -> (a.Attr.name, a.Attr.ty)) attrs;
        inst_origin = From_scan table;
      };
    ]
  | Plan.Values _ -> []
  | Plan.Baserel { child; rel_name } ->
    [
      {
        inst_rel = rel_name;
        inst_cols =
          List.map
            (fun (a : Attr.t) -> (a.Attr.name, a.Attr.ty))
            (Plan.schema child);
        inst_origin = From_baserel;
      };
    ]
  | Plan.External { ext_attrs; _ } ->
    [
      {
        inst_rel = "external";
        inst_cols =
          List.map (fun (a : Attr.t) -> (a.Attr.name, a.Attr.ty)) ext_attrs;
        inst_origin = From_external;
      };
    ]
  | Plan.Prov { sources; _ } ->
    (* A nested SELECT PROVENANCE: its provenance columns are propagated as
       externally produced provenance of the enclosing computation. *)
    List.map
      (fun (s : Plan.prov_source) ->
        {
          inst_rel = s.prov_rel;
          inst_cols = [ (s.prov_attr.Attr.name, s.prov_attr.Attr.ty) ];
          inst_origin = From_nested_prov;
        })
      sources
  | Plan.Join { kind = Plan.Anti; left; _ } -> instances left
  | Plan.Apply { kind = Plan.A_anti; left; _ } -> instances left
  | Plan.Join { left; right; _ }
  | Plan.Apply { left; right; _ }
  | Plan.Set_op { left; right; _ } ->
    instances left @ instances right
  | Plan.Project { child; _ }
  | Plan.Filter { child; _ }
  | Plan.Aggregate { child; _ }
  | Plan.Distinct child
  | Plan.Sort { child; _ }
  | Plan.Limit { child; _ } ->
    instances child

let prov_sources plan =
  let insts = instances plan in
  (* Count relation-name occurrences to disambiguate self-joins. *)
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun inst ->
      match inst.inst_origin with
      | From_external | From_nested_prov ->
        (* names are already provenance-style; keep them *)
        List.map
          (fun (col, ty) ->
            {
              Plan.prov_attr = Attr.fresh col ty;
              prov_rel = inst.inst_rel;
              prov_col = col;
            })
          inst.inst_cols
      | From_scan _ | From_baserel ->
        let occurrence =
          match Hashtbl.find_opt seen inst.inst_rel with
          | Some n ->
            Hashtbl.replace seen inst.inst_rel (n + 1);
            n + 1
          | None ->
            Hashtbl.replace seen inst.inst_rel 0;
            0
        in
        let prefix =
          if occurrence = 0 then Printf.sprintf "prov_%s" inst.inst_rel
          else Printf.sprintf "prov_%s_%d" inst.inst_rel occurrence
        in
        List.map
          (fun (col, ty) ->
            {
              Plan.prov_attr = Attr.fresh (prefix ^ "_" ^ col) ty;
              prov_rel = inst.inst_rel;
              prov_col = col;
            })
          inst.inst_cols)
    insts
