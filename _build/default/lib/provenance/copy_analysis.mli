(** Static analysis behind the [COPY] contribution semantics
    (Where-provenance, paper §1/§2.4).

    Where-provenance only considers base tuples whose attribute {e values
    are copied} to the query result. The analysis computes, for every
    relation instance of a plan (in {!Sources.instances} order), whether it
    qualifies:

    - [Copy_partial]: at least one of the instance's attributes is copied
      verbatim (through projections, joins, set operations, group-by keys)
      to some output column;
    - [Copy_complete]: every attribute of the instance is copied to the
      output;
    - [Influence]: every instance qualifies (no restriction).

    Externally declared provenance and nested [SELECT PROVENANCE] columns
    always qualify — they already {e are} provenance and are propagated
    untouched.

    The rewriter NULLs the provenance columns of non-qualifying instances,
    producing Figure-2-shaped results where only copying branches carry
    values. *)

val qualifying :
  Perm_algebra.Plan.prov_semantics -> Perm_algebra.Plan.t -> bool list
(** One flag per {!Sources.instances} entry, same order. *)
