module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr

module Pair_set = Set.Make (struct
  type t = int * string

  let compare = compare
end)

(* Map from attribute id to the set of (instance index, column name) pairs
   whose values the attribute copies verbatim. *)
type env = { mutable map : Pair_set.t Attr.Map.t; mutable next_instance : int }

let lookup env (a : Attr.t) =
  match Attr.Map.find_opt a env.map with
  | Some s -> s
  | None -> Pair_set.empty

let bind env (a : Attr.t) s = env.map <- Attr.Map.add a s env.map

let copy_of_expr env = function
  | Expr.Attr a -> lookup env a
  | Expr.Const _ | Expr.Binop _ | Expr.Unop _ | Expr.Case _ | Expr.Cast _
  | Expr.Func _ ->
    Pair_set.empty

(* Walks the plan allocating instance indices in Sources.instances order and
   populating the copy map for every node's output attributes. *)
let rec walk env (plan : Plan.t) =
  match plan with
  | Plan.Scan { attrs; _ } | Plan.Index_scan { attrs; _ } ->
    let idx = env.next_instance in
    env.next_instance <- idx + 1;
    List.iter
      (fun (a : Attr.t) -> bind env a (Pair_set.singleton (idx, a.Attr.name)))
      attrs
  | Plan.Values _ -> ()
  | Plan.Baserel { child; _ } ->
    let idx = env.next_instance in
    env.next_instance <- idx + 1;
    List.iter
      (fun (a : Attr.t) -> bind env a (Pair_set.singleton (idx, a.Attr.name)))
      (Plan.schema child)
  | Plan.External { ext_attrs; _ } ->
    (* one instance, always-qualifying; no copy tracking needed *)
    env.next_instance <- env.next_instance + 1;
    ignore ext_attrs
  | Plan.Prov { sources; _ } ->
    env.next_instance <- env.next_instance + List.length sources
  | Plan.Project { child; cols } ->
    walk env child;
    List.iter (fun (e, out) -> bind env out (copy_of_expr env e)) cols
  | Plan.Filter { child; _ }
  | Plan.Distinct child
  | Plan.Sort { child; _ }
  | Plan.Limit { child; _ } ->
    walk env child
  | Plan.Join { kind = Plan.Anti; left; _ } -> walk env left
  | Plan.Apply { kind = Plan.A_anti; left; _ } -> walk env left
  | Plan.Join { left; right; _ } ->
    walk env left;
    walk env right
  | Plan.Apply { kind; left; right } -> (
    walk env left;
    walk env right;
    match kind with
    | Plan.A_scalar a -> (
      match Plan.schema right with
      | [ r0 ] -> bind env a (lookup env r0)
      | _ -> bind env a Pair_set.empty)
    | Plan.A_cross | Plan.A_outer | Plan.A_semi | Plan.A_anti -> ())
  | Plan.Aggregate { child; group_by; aggs } ->
    walk env child;
    List.iter (fun (e, out) -> bind env out (copy_of_expr env e)) group_by;
    List.iter
      (fun (c : Plan.agg_call) -> bind env c.agg_out Pair_set.empty)
      aggs
  | Plan.Set_op { left; right; attrs; _ } ->
    walk env left;
    walk env right;
    let ls = Plan.schema left and rs = Plan.schema right in
    List.iteri
      (fun i (out : Attr.t) ->
        let l = List.nth ls i and r = List.nth rs i in
        bind env out (Pair_set.union (lookup env l) (lookup env r)))
      attrs

let qualifying semantics plan =
  let insts = Sources.instances plan in
  match semantics with
  | Plan.Influence -> List.map (fun _ -> true) insts
  | Plan.Copy_partial | Plan.Copy_complete ->
    let env = { map = Attr.Map.empty; next_instance = 0 } in
    walk env plan;
    let copied =
      List.fold_left
        (fun acc (a : Attr.t) -> Pair_set.union acc (lookup env a))
        Pair_set.empty (Plan.schema plan)
    in
    List.mapi
      (fun idx inst ->
        match inst.Sources.inst_origin with
        | Sources.From_external | Sources.From_nested_prov -> true
        | Sources.From_scan _ | Sources.From_baserel -> (
          let col_copied col = Pair_set.mem (idx, col) copied in
          match semantics with
          | Plan.Copy_partial ->
            List.exists (fun (col, _) -> col_copied col) inst.Sources.inst_cols
          | Plan.Copy_complete ->
            List.for_all (fun (col, _) -> col_copied col) inst.Sources.inst_cols
          | Plan.Influence -> true))
      insts
