lib/provenance/sources.ml: Hashtbl List Perm_algebra Perm_value Printf
