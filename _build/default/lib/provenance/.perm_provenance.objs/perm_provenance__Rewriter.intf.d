lib/provenance/rewriter.mli: Perm_algebra
