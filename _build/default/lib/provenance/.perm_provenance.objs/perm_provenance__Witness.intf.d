lib/provenance/witness.mli: Perm_value
