lib/provenance/copy_analysis.mli: Perm_algebra
