lib/provenance/sources.mli: Perm_algebra Perm_value
