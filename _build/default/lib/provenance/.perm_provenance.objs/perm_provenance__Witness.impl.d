lib/provenance/witness.ml: Array List Perm_value String
