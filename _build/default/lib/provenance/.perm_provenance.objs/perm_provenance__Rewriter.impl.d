lib/provenance/rewriter.ml: Copy_analysis List Perm_algebra Perm_value Printf Sources
