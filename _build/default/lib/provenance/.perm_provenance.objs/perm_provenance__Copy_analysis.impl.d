lib/provenance/copy_analysis.ml: List Perm_algebra Set Sources
