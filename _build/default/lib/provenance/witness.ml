module Value = Perm_value.Value

type block = {
  rel : string;
  occurrence : int;
  columns : string list;
  positions : int list;
}

type parsed = { p_rel : string; p_occ : int; p_col : string }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Parse "prov_<rel>[_<occ>]_<col>". Relation names may contain
   underscores, so prefer the longest known relation match; fall back to
   the first underscore split. *)
let parse_prov_column ~known_rels name =
  if not (starts_with ~prefix:"prov_" name) then None
  else
    let rest = String.sub name 5 (String.length name - 5) in
    let try_rel rel =
      if starts_with ~prefix:(rel ^ "_") rest then begin
        let tail = String.sub rest (String.length rel + 1) (String.length rest - String.length rel - 1) in
        (* optional numeric occurrence segment *)
        match String.index_opt tail '_' with
        | Some i when i > 0 -> (
          let seg = String.sub tail 0 i in
          match int_of_string_opt seg with
          | Some occ when occ > 0 ->
            Some { p_rel = rel; p_occ = occ; p_col = String.sub tail (i + 1) (String.length tail - i - 1) }
          | _ -> Some { p_rel = rel; p_occ = 0; p_col = tail })
        | _ -> Some { p_rel = rel; p_occ = 0; p_col = tail }
      end
      else None
    in
    let known_sorted =
      List.sort (fun a b -> compare (String.length b) (String.length a)) known_rels
    in
    let rec first_known = function
      | [] -> None
      | rel :: rest_rels -> (
        match try_rel (String.lowercase_ascii rel) with
        | Some p -> Some p
        | None -> first_known rest_rels)
    in
    match first_known known_sorted with
    | Some p -> Some p
    | None -> (
      (* heuristic: rel is the first segment *)
      match String.index_opt rest '_' with
      | Some i when i > 0 ->
        Some
          {
            p_rel = String.sub rest 0 i;
            p_occ = 0;
            p_col = String.sub rest (i + 1) (String.length rest - i - 1);
          }
      | _ -> Some { p_rel = rest; p_occ = 0; p_col = rest })

let blocks ~columns ~known_rels =
  let parsed =
    List.mapi
      (fun pos name -> (pos, parse_prov_column ~known_rels name))
      columns
  in
  (* group consecutive columns of the same (rel, occurrence): provenance
     blocks are contiguous by construction (DFS order) *)
  let rec group acc current = function
    | [] -> List.rev (match current with Some b -> b :: acc | None -> acc)
    | (pos, Some p) :: rest -> (
      match current with
      | Some b when b.rel = p.p_rel && b.occurrence = p.p_occ ->
        group acc
          (Some
             {
               b with
               columns = b.columns @ [ p.p_col ];
               positions = b.positions @ [ pos ];
             })
          rest
      | Some b ->
        group (b :: acc)
          (Some { rel = p.p_rel; occurrence = p.p_occ; columns = [ p.p_col ]; positions = [ pos ] })
          rest
      | None ->
        group acc
          (Some { rel = p.p_rel; occurrence = p.p_occ; columns = [ p.p_col ]; positions = [ pos ] })
          rest)
    | (_, None) :: rest -> (
      match current with
      | Some b -> group (b :: acc) None rest
      | None -> group acc None rest)
  in
  group [] None parsed

type witness = {
  w_rel : string;
  w_occurrence : int;
  w_tuple : Value.t array;
}

let decode_row blocks row =
  List.filter_map
    (fun b ->
      let tuple = Array.of_list (List.map (fun pos -> row.(pos)) b.positions) in
      if Array.for_all Value.is_null tuple then None
      else Some { w_rel = b.rel; w_occurrence = b.occurrence; w_tuple = tuple })
    blocks

let originals blocks row =
  let prov_positions =
    List.concat_map (fun b -> b.positions) blocks
  in
  let keep = Array.make (Array.length row) true in
  List.iter (fun pos -> keep.(pos) <- false) prov_positions;
  let out = ref [] in
  Array.iteri (fun i v -> if keep.(i) then out := v :: !out) row;
  Array.of_list (List.rev !out)
