(** Provenance source computation.

    Determines, for a plan subtree, which provenance attributes a rewrite
    will append to its result: one column per attribute of every base
    relation the query accesses (paper §2.1), in depth-first, left-to-right
    order — the order of Figure 2 ("provenance attributes from messages",
    then "from imports").

    A {e relation instance} is one access to a base relation (a self-join
    yields two instances), a [BASERELATION]-marked view/subquery (its output
    schema plays the base-relation role), an external-provenance
    declaration, or a nested [SELECT PROVENANCE] subquery (whose provenance
    columns propagate, §2.2). Instances that can never contribute — the
    right side of anti joins — are excluded, as are constant relations
    ([VALUES]), which have no stored tuples.

    The analyzer calls {!prov_sources} when it builds a [Plan.Prov] marker,
    so enclosing queries can resolve [prov_*] column references before any
    rewriting happens; the rewriter then binds exactly these attributes. *)

type origin =
  | From_scan of string  (** base table access *)
  | From_baserel  (** BASERELATION boundary *)
  | From_external  (** PROVENANCE (attrs) declaration — names kept as-is *)
  | From_nested_prov  (** provenance columns of a nested SELECT PROVENANCE *)

type instance = {
  inst_rel : string;  (** display name used in [prov_<rel>_<col>] *)
  inst_cols : (string * Perm_value.Dtype.t) list;
  inst_origin : origin;
}

val instances : Perm_algebra.Plan.t -> instance list

val prov_sources : Perm_algebra.Plan.t -> Perm_algebra.Plan.prov_source list
(** Flattens {!instances} and allocates the output attributes with Perm's
    naming scheme: [prov_<relation>_<column>], disambiguating repeated
    relation names with a numeric infix ([prov_r_1_a] for the second access
    to [r]); external attributes keep their declared names. *)
