lib/planner/planner.mli: Perm_algebra
