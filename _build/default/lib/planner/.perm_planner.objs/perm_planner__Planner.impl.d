lib/planner/planner.ml: List Option Perm_algebra Perm_value
