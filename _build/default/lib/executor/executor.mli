(** Plan execution (paper Fig. 3, "Executor").

    Interprets logical algebra plans directly over in-memory relations:
    hash joins for equi- and null-safe-equality predicates (the shape the
    provenance rewriter emits for its rejoin rules), nested-loop fallback,
    hash aggregation and duplicate elimination, bag-semantics set
    operations, stable sorting, and correlated [Apply] evaluation for
    de-correlated subqueries.

    Plans must be marker-free: [Plan.Prov] nodes are rejected (the engine
    always runs the provenance rewriter first); stray [Baserel]/[External]
    markers execute as identity.

    NULL handling follows SQL: predicates use three-valued logic and only
    [True] passes; grouping, DISTINCT and set operations use null-safe
    equality; plain join equality never matches NULL keys. *)

exception Runtime_error of string

type provider = {
  scan_table : string -> Perm_storage.Tuple.t Seq.t;
      (** full scan of a base table *)
  probe_index : string -> int -> Perm_value.Value.t -> Perm_storage.Tuple.t Seq.t;
      (** [probe_index table col key]: rows whose column [col] equals [key]
          — backs [Plan.Index_scan]; only called for indexes the planner
          saw in its statistics *)
}

val run : provider:provider -> Perm_algebra.Plan.t -> (Perm_storage.Tuple.t list, string) result
(** Executes the plan and materializes the result in plan-schema column
    order. Runtime errors (division by zero, failing casts, scalar
    subqueries returning several rows) are returned as [Error]. *)

val eval_const : Perm_algebra.Expr.t -> (Perm_value.Value.t, string) result
(** Evaluates a closed expression (no attribute references) — INSERT rows,
    DEFAULT-style constants. *)

val compile_row_predicate :
  schema:Perm_algebra.Attr.t list ->
  Perm_algebra.Expr.t ->
  Perm_storage.Tuple.t ->
  (bool, string) result
(** Row-at-a-time predicate evaluation against a fixed schema (DELETE /
    UPDATE row selection); [true] iff the predicate is SQL-[TRUE]. *)
