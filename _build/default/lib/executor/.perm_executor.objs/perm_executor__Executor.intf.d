lib/executor/executor.mli: Perm_algebra Perm_storage Perm_value Seq
