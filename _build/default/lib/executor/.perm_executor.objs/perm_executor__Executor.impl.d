lib/executor/executor.ml: Array Hashtbl List Option Perm_algebra Perm_storage Perm_value Printf Seq
