(** Runtime SQL values.

    A value is either [Null] or a typed constant. All engine tuples are
    arrays of values. Comparison and arithmetic follow SQL semantics:
    operations involving [Null] yield [Null] (see {!Tristate} for predicate
    logic), and mixed int/float arithmetic promotes to float. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Text of string
  | Date of int  (** days since 1970-01-01 (may be negative) *)

val type_of : t -> Dtype.t
(** [type_of Null] is {!Dtype.Any}. *)

val is_null : t -> bool

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality; [equal Null Null = true]. Int/float cross-type
    numeric equality holds when values coincide ([Int 1 = Float 1.0]).
    This is the *null-safe* notion used for grouping, set operations and
    provenance rejoin predicates — not SQL [=], which is {!sql_eq}. *)

val compare : t -> t -> int
(** Total order used by ORDER BY and sort-based operators. [Null] sorts
    first (NULLS FIRST, PostgreSQL's default for ASC is NULLS LAST, but a
    fixed convention is enough for the engine; tests pin it). Numeric values
    compare numerically across Int/Float. Comparing incomparable types
    (e.g. [Int] vs [Text]) orders by type tag — it cannot arise in
    well-typed plans but keeps the order total. *)

val hash : t -> int
(** Compatible with {!equal}: equal values hash equally (numeric values
    hash via their float embedding). *)

(** {1 SQL operations — all return [Null] on [Null] input} *)

val sql_eq : t -> t -> t
val sql_neq : t -> t -> t
val sql_lt : t -> t -> t
val sql_leq : t -> t -> t
val sql_gt : t -> t -> t
val sql_geq : t -> t -> t

(** {1 Calendar dates} *)

val date_of_ymd : int -> int -> int -> (t, string) result
(** [date_of_ymd y m d] validates the civil date (rejecting e.g. Feb 30). *)

val date_to_ymd : int -> int * int * int
(** Inverse of the epoch-day encoding. *)

val date_of_string : string -> (t, string) result
(** Parses [YYYY-MM-DD]. *)

(** {1 SQL operations — all return [Null] on [Null] input}

    [add]/[sub] also implement date arithmetic: [date + int] / [date - int]
    shift by days, [date - date] is the day difference. *)

val add : t -> t -> (t, string) result
val sub : t -> t -> (t, string) result
val mul : t -> t -> (t, string) result
val div : t -> t -> (t, string) result
(** [div] returns [Error] on division by zero. *)

val neg : t -> (t, string) result
val concat : t -> t -> (t, string) result
val like : t -> t -> t
(** SQL [LIKE] with [%] and [_] wildcards. *)

val cast : Dtype.t -> t -> (t, string) result
(** Explicit cast; [Null] casts to [Null] of any type. Text parses to
    numerics/bools PostgreSQL-style; anything casts to text. *)

(** {1 Formatting} *)

val to_string : t -> string
(** Unquoted rendering; [Null] prints as ["null"] (matches the paper's
    Figure 2 rendering). *)

val to_sql : t -> string
(** SQL literal syntax: text is single-quoted with quote doubling. *)

val pp : Format.formatter -> t -> unit
