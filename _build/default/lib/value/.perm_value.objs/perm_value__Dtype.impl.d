lib/value/dtype.ml: Format String
