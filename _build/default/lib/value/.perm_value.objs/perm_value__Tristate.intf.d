lib/value/tristate.mli: Format Value
