lib/value/dtype.mli: Format
