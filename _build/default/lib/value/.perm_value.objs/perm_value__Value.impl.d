lib/value/value.ml: Buffer Dtype Float Format Hashtbl Printf Stdlib String
