lib/value/tristate.ml: Dtype Format Value
