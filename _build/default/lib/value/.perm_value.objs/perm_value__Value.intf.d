lib/value/value.mli: Dtype Format
