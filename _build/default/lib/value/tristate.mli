(** SQL three-valued predicate logic.

    WHERE/HAVING/JOIN predicates evaluate to [True], [False] or [Unknown];
    only [True] keeps a tuple. [Unknown] arises from comparisons against
    [NULL]. *)

type t = True | False | Unknown

val of_bool : bool -> t

val of_value : Value.t -> (t, string) result
(** [Null -> Unknown], [Bool b -> of_bool b]; other types are a type error. *)

val to_value : t -> Value.t
(** [Unknown -> Null]. *)

val ( &&& ) : t -> t -> t
(** Kleene AND: [False] dominates. *)

val ( ||| ) : t -> t -> t
(** Kleene OR: [True] dominates. *)

val not_ : t -> t
val is_true : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
