type t = True | False | Unknown

let of_bool b = if b then True else False

let of_value = function
  | Value.Null -> Ok Unknown
  | Value.Bool b -> Ok (of_bool b)
  | v ->
    Error
      ("expected a boolean predicate value, got "
      ^ Dtype.to_string (Value.type_of v))

let to_value = function
  | True -> Value.Bool true
  | False -> Value.Bool false
  | Unknown -> Value.Null

let ( &&& ) a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | (True | Unknown), (True | Unknown) -> Unknown

let ( ||| ) a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | (False | Unknown), (False | Unknown) -> Unknown

let not_ = function True -> False | False -> True | Unknown -> Unknown
let is_true = function True -> true | False | Unknown -> false

let equal a b =
  match a, b with
  | True, True | False, False | Unknown, Unknown -> true
  | (True | False | Unknown), _ -> false

let pp ppf t =
  Format.pp_print_string ppf
    (match t with True -> "true" | False -> "false" | Unknown -> "unknown")
