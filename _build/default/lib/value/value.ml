type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Text of string
  | Date of int

let type_of = function
  | Null -> Dtype.Any
  | Int _ -> Dtype.Int
  | Float _ -> Dtype.Float
  | Bool _ -> Dtype.Bool
  | Text _ -> Dtype.Text
  | Date _ -> Dtype.Date

let is_null = function
  | Null -> true
  | Int _ | Float _ | Bool _ | Text _ | Date _ -> false

(* Civil-calendar conversions (Howard Hinnant's algorithms): epoch days are
   days since 1970-01-01 in the proleptic Gregorian calendar. *)
let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = if m > 2 then m - 3 else m + 9 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let date_of_ymd y m d =
  if m < 1 || m > 12 || d < 1 || d > 31 then
    Error (Printf.sprintf "invalid date %04d-%02d-%02d" y m d)
  else
    let days = days_from_civil y m d in
    let y', m', d' = civil_from_days days in
    if y = y' && m = m' && d = d' then Ok (Date days)
    else Error (Printf.sprintf "invalid date %04d-%02d-%02d" y m d)

let date_to_ymd = civil_from_days

let date_of_string s =
  let s = String.trim s in
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
    match int_of_string_opt y, int_of_string_opt m, int_of_string_opt d with
    | Some y, Some m, Some d -> date_of_ymd y m d
    | _ -> Error (Printf.sprintf "invalid date syntax %S" s))
  | _ -> Error (Printf.sprintf "invalid date syntax %S" s)

let date_string days =
  let y, m, d = civil_from_days days in
  Printf.sprintf "%04d-%02d-%02d" y m d

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | Bool a, Bool b -> a = b
  | Text a, Text b -> String.equal a b
  | Date a, Date b -> a = b
  | (Null | Int _ | Float _ | Bool _ | Text _ | Date _), _ -> false

(* Type-tag rank for the total order over incomparable types. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3
  | Date _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int a, Int b -> Stdlib.compare a b
  | Float a, Float b -> Stdlib.compare a b
  | Int a, Float b -> Stdlib.compare (float_of_int a) b
  | Float a, Int b -> Stdlib.compare a (float_of_int b)
  | Bool a, Bool b -> Stdlib.compare a b
  | Text a, Text b -> String.compare a b
  | Date a, Date b -> Stdlib.compare a b
  | a, b -> Stdlib.compare (rank a) (rank b)

let hash = function
  | Null -> 0
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Bool b -> Hashtbl.hash b
  | Text s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (`Date d)

let lift_cmp op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | a, b -> Bool (op (compare a b) 0)

let sql_eq a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | a, b -> Bool (equal a b)

let sql_neq a b =
  match sql_eq a b with
  | Bool v -> Bool (not v)
  | v -> v

let sql_lt a b = lift_cmp ( < ) a b
let sql_leq a b = lift_cmp ( <= ) a b
let sql_gt a b = lift_cmp ( > ) a b
let sql_geq a b = lift_cmp ( >= ) a b

let numeric_op name iop fop a b =
  match a, b with
  | Null, _ | _, Null -> Ok Null
  | Int a, Int b -> Ok (Int (iop a b))
  | Float a, Float b -> Ok (Float (fop a b))
  | Int a, Float b -> Ok (Float (fop (float_of_int a) b))
  | Float a, Int b -> Ok (Float (fop a (float_of_int b)))
  | a, b ->
    Error
      (Printf.sprintf "cannot apply %s to %s and %s" name
         (Dtype.to_string (type_of a))
         (Dtype.to_string (type_of b)))

let add a b =
  match a, b with
  | Date d, Int n | Int n, Date d -> Ok (Date (d + n))
  | a, b -> numeric_op "+" ( + ) ( +. ) a b

let sub a b =
  match a, b with
  | Date d, Int n -> Ok (Date (d - n))
  | Date a, Date b -> Ok (Int (a - b))
  | a, b -> numeric_op "-" ( - ) ( -. ) a b
let mul a b = numeric_op "*" ( * ) ( *. ) a b

let div a b =
  match a, b with
  | Null, _ | _, Null -> Ok Null
  | _, Int 0 -> Error "division by zero"
  | _, Float 0. -> Error "division by zero"
  | a, b -> numeric_op "/" ( / ) ( /. ) a b

let neg = function
  | Null -> Ok Null
  | Int i -> Ok (Int (-i))
  | Float f -> Ok (Float (-.f))
  | v -> Error ("cannot negate " ^ Dtype.to_string (type_of v))

let concat a b =
  match a, b with
  | Null, _ | _, Null -> Ok Null
  | Text a, Text b -> Ok (Text (a ^ b))
  | a, b ->
    Error
      (Printf.sprintf "cannot concatenate %s and %s"
         (Dtype.to_string (type_of a))
         (Dtype.to_string (type_of b)))

(* LIKE matching: '%' matches any sequence, '_' any single character.
   Classic two-pointer backtracking over the last '%'. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si star_p star_s =
    if si = ns then
      (* consume trailing '%'s *)
      let rec only_pct pi = pi = np || (pattern.[pi] = '%' && only_pct (pi + 1)) in
      only_pct pi
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si (Some pi) si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_p star_s
    else
      match star_p with
      | Some sp -> go (sp + 1) (star_s + 1) star_p (star_s + 1)
      | None -> false
  in
  go 0 0 None 0

let like v pat =
  match v, pat with
  | Null, _ | _, Null -> Null
  | Text s, Text p -> Bool (like_match ~pattern:p s)
  | _ -> Bool false

let cast ty v =
  match v, ty with
  | Null, _ -> Ok Null
  | v, Dtype.Any -> Ok v
  | Int _, Dtype.Int | Float _, Dtype.Float | Bool _, Dtype.Bool | Text _, Dtype.Text
  | Date _, Dtype.Date ->
    Ok v
  | Text s, Dtype.Date -> date_of_string s
  | Date d, Dtype.Text -> Ok (Text (date_string d))
  | Int i, Dtype.Float -> Ok (Float (float_of_int i))
  | Float f, Dtype.Int -> Ok (Int (int_of_float f))
  | Int i, Dtype.Bool -> Ok (Bool (i <> 0))
  | Bool b, Dtype.Int -> Ok (Int (if b then 1 else 0))
  | Text s, Dtype.Int -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> Ok (Int i)
    | None -> Error (Printf.sprintf "invalid input for int: %S" s))
  | Text s, Dtype.Float -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Ok (Float f)
    | None -> Error (Printf.sprintf "invalid input for float: %S" s))
  | Text s, Dtype.Bool -> (
    match String.lowercase_ascii (String.trim s) with
    | "t" | "true" | "1" | "yes" | "on" -> Ok (Bool true)
    | "f" | "false" | "0" | "no" | "off" -> Ok (Bool false)
    | _ -> Error (Printf.sprintf "invalid input for bool: %S" s))
  | (Int _ | Float _ | Bool _), Dtype.Text ->
    Ok
      (Text
         (match v with
         | Int i -> string_of_int i
         | Float f -> Printf.sprintf "%g" f
         | Bool b -> if b then "true" else "false"
         | Null | Text _ | Date _ -> assert false))
  | v, ty ->
    Error
      (Printf.sprintf "cannot cast %s to %s"
         (Dtype.to_string (type_of v))
         (Dtype.to_string ty))

let to_string = function
  | Null -> "null"
  | Date d -> date_string d
  | Int i -> string_of_int i
  | Float f ->
    (* Render integral floats with a trailing .0 so float-typed columns are
       visually distinct from ints, matching PostgreSQL's numeric output. *)
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Bool b -> if b then "true" else "false"
  | Text s -> s

let to_sql = function
  | Date d -> Printf.sprintf "DATE '%s'" (date_string d)
  | Text s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | v -> to_string v

let pp ppf v = Format.pp_print_string ppf (to_string v)
