type t = Int | Float | Bool | Text | Date | Any

let equal a b =
  match a, b with
  | Int, Int | Float, Float | Bool, Bool | Text, Text | Date, Date | Any, Any ->
    true
  | (Int | Float | Bool | Text | Date | Any), _ -> false

let unify a b =
  match a, b with
  | Any, t | t, Any -> Some t
  | Int, Float | Float, Int -> Some Float
  | a, b -> if equal a b then Some a else None

let is_numeric = function
  | Int | Float -> true
  | Bool | Text | Date | Any -> false

let to_string = function
  | Int -> "int"
  | Float -> "float"
  | Bool -> "bool"
  | Text -> "text"
  | Date -> "date"
  | Any -> "any"

let of_string s =
  match String.lowercase_ascii s with
  | "int" | "integer" | "bigint" | "smallint" | "int4" | "int8" -> Some Int
  | "float" | "double" | "real" | "numeric" | "decimal" | "float8" -> Some Float
  | "bool" | "boolean" -> Some Bool
  | "date" -> Some Date
  | "text" | "varchar" | "char" | "string" -> Some Text
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
