(** SQL data types supported by the engine.

    Perm inherits PostgreSQL's type system; this engine supports the subset
    exercised by the paper's example database and benchmarks: integers,
    floats, booleans and text. [Any] is the type of an untyped [NULL]
    literal; it unifies with every other type. *)

type t =
  | Int
  | Float
  | Bool
  | Text
  | Date  (** calendar dates, stored as days since 1970-01-01 *)
  | Any  (** type of a bare [NULL] literal; unifies with everything *)

val equal : t -> t -> bool

val unify : t -> t -> t option
(** [unify a b] is the common type of [a] and [b] if they are compatible:
    equal types unify to themselves, [Any] unifies with anything, and
    [Int]/[Float] unify to [Float] (SQL numeric promotion). *)

val is_numeric : t -> bool

val to_string : t -> string
(** Lower-case SQL-ish name, e.g. ["int"], ["float"], ["text"]. *)

val of_string : string -> t option
(** Parses type names as written in [CREATE TABLE]; accepts common synonyms
    ([integer], [bigint], [double], [real], [varchar], [boolean], ...). *)

val pp : Format.formatter -> t -> unit
