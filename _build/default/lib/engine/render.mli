(** psql-style result rendering for the CLI and examples (the result pane of
    the Perm browser, paper Fig. 4 marker 5). *)

val table : columns:string list -> rows:Perm_storage.Tuple.t list -> string
(** Aligned text table with a header rule and a row-count footer, e.g.:
    {v
      mid | text        | prov_messages_mid
     -----+-------------+-------------------
      1   | lorem ipsum | 1
     (1 row)
    v} *)
