let parse input =
  let n = String.length input in
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted = ref false in
  (* [quoted] marks that the *current finished field* was quoted, so an
     empty quoted field is "" rather than NULL *)
  let finish_field () =
    let text = Buffer.contents buf in
    let field =
      if (not !quoted) && text = "" then None else Some text
    in
    fields := field :: !fields;
    Buffer.clear buf;
    quoted := false
  in
  let finish_row () =
    finish_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec plain i =
    if i >= n then begin
      if Buffer.length buf > 0 || !fields <> [] || !quoted then finish_row ();
      Ok (List.rev !rows)
    end
    else
      match input.[i] with
      | ',' ->
        finish_field ();
        plain (i + 1)
      | '\n' ->
        finish_row ();
        plain (i + 1)
      | '\r' when i + 1 < n && input.[i + 1] = '\n' ->
        finish_row ();
        plain (i + 2)
      | '"' when Buffer.length buf = 0 && not !quoted -> in_quotes (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and in_quotes i =
    if i >= n then Error "unterminated quoted CSV field"
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        in_quotes (i + 2)
      | '"' ->
        quoted := true;
        plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        in_quotes (i + 1)
  in
  plain 0

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s || s = ""

let render_field = function
  | None -> ""
  | Some s ->
    if needs_quoting s then begin
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"';
      Buffer.contents buf
    end
    else s

let render_row fields = String.concat "," (List.map render_field fields)
