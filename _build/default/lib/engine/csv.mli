(** Minimal RFC-4180 CSV codec for [COPY table FROM/TO 'file'].

    Unquoted empty fields read as NULL (PostgreSQL's text-format
    convention); quoted fields may contain commas, newlines and doubled
    quotes. Values are coerced to the target column types on import. *)

val parse : string -> (string option list list, string) result
(** Rows of fields; [None] is an unquoted empty field (NULL). Handles
    [\r\n] and a trailing newline. *)

val render_row : string option list -> string
(** One CSV line (no trailing newline); [None] renders as empty, fields are
    quoted when needed. *)
