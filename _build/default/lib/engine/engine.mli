(** The Perm provenance management system: sessions and end-to-end SQL-PLE
    execution.

    A session runs every query through the paper's Fig. 3 pipeline:
    {e parser & analyzer} (syntactic/semantic analysis, view unfolding) →
    {e provenance rewriter} → {e planner} (optimization) → {e executor}.
    The rewriter runs unconditionally; queries without provenance
    constructs pass through unchanged.

    Lazy provenance is the default ([SELECT PROVENANCE ...] computes on the
    fly); eager provenance materializes a provenance query with
    [STORE PROVENANCE <query> INTO <table>] and registers the stored
    provenance columns so follow-up queries can re-propagate them with the
    [PROVENANCE (...)] FROM-item annotation (paper §1: "store the
    provenance of a query for later reuse"). *)

type t

val create : unit -> t

type result_set = {
  columns : string list;
  rows : Perm_storage.Tuple.t list;
}

(** The four Perm-browser panes for one query (paper Fig. 4): the input
    SQL, both algebra trees, the rewritten query as SQL, plus the rewrite
    strategy decisions taken. *)
type explain = {
  input_sql : string;
  original_tree : string;  (** marker 3: algebra tree of the original query *)
  rewritten_tree : string;  (** marker 4: tree after provenance rewriting *)
  optimized_tree : string;  (** after the planner, what actually runs *)
  rewritten_sql : string;  (** marker 2: rewritten query as SQL *)
  agg_strategies : string list;
      (** chosen aggregation rewrite strategy per rewritten aggregate *)
}

type outcome =
  | Rows of result_set
  | Affected of int  (** INSERT / DELETE / UPDATE row count *)
  | Message of string  (** DDL confirmations *)
  | Explained of explain

val execute : t -> string -> (outcome, string) result
(** Runs a single statement (optionally [;]-terminated). *)

val execute_script : t -> string -> (outcome list, string) result
(** Runs statements in order; stops at the first error (prior effects are
    kept, as with autocommit). *)

val query : t -> string -> (result_set, string) result
(** [execute] specialised to row-returning statements. *)

val query_params :
  t -> string -> Perm_value.Value.t list -> (result_set, string) result
(** Parameterized queries: positional [$1], [$2], ... are bound to the
    given values (1-based) before analysis, so parameters are safe against
    injection and participate in type checking as literals.
    [query_params e "SELECT PROVENANCE text FROM messages WHERE mid = $1"
    [Value.Int 4]] *)

val explain : t -> string -> (explain, string) result

(** {1 Rewrite-strategy and optimizer control (the demo's "activate or
    deactivate rewrite strategies", §3)} *)

type agg_strategy_setting = Use_join | Use_lateral | Use_heuristic | Use_cost_based

val set_agg_strategy : t -> agg_strategy_setting -> unit
(** Default [Use_heuristic]. [Use_cost_based] consults the planner's cost
    model on the session's current table statistics. *)

val set_optimizer_config : t -> Perm_planner.Planner.config -> unit

val last_report : t -> Perm_provenance.Rewriter.report option
(** Rewrite report of the most recent query execution. *)

(** {1 Introspection} *)

val catalog : t -> Perm_catalog.Catalog.t
val stats : t -> Perm_planner.Planner.stats
val provenance_columns : t -> string -> string list option
(** For a table created by [STORE PROVENANCE]: its provenance column names. *)

val dump_sql : t -> string
(** A re-executable SQL script recreating all tables (schema + rows) and
    views; feed it back through {!execute_script} to restore a session. *)

(** {1 Plan-level access (benchmarks and tests)} *)

val plan_query : t -> string -> (Perm_algebra.Plan.t * Perm_algebra.Plan.t, string) result
(** [(analyzed plan with markers, rewritten+optimized executable plan)]. *)

val run_plan : t -> Perm_algebra.Plan.t -> (Perm_storage.Tuple.t list, string) result
(** Executes a marker-free plan against the session's storage. *)
