(** Algebra-to-SQL deparser — renders rewritten plans as SQL statements,
    the Perm browser's "rewritten query as an SQL statement" pane (paper
    Fig. 4, marker 2).

    Every operator becomes a nested subquery; attributes are given unique
    column aliases (the attribute's display name, suffixed with its id when
    the name is ambiguous within the plan — provenance attributes, whose
    names are unique by construction, therefore print verbatim as
    [prov_<rel>_<col>]).

    Plans containing [Apply] operators (correlated subqueries and the
    lateral aggregation-rewrite strategy) use a [LATERAL] rendering that our
    own parser does not re-accept; the output is for display. Plans free of
    [Apply] re-parse and re-analyze to an equivalent query (pinned by
    round-trip tests). *)

val plan_to_sql : Perm_algebra.Plan.t -> string
