module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Value = Perm_value.Value
module Dtype = Perm_value.Dtype

(* ------------------------------------------------------------------ *)
(* Attribute aliases                                                   *)
(* ------------------------------------------------------------------ *)

(* Unique column aliases: an attribute keeps its display name unless the
   same name is used by another attribute somewhere in the plan, in which
   case its id is appended. *)
let build_alias_map plan =
  let attrs = Hashtbl.create 64 in
  let name_count = Hashtbl.create 64 in
  let add (a : Attr.t) =
    if not (Hashtbl.mem attrs a.Attr.id) then begin
      Hashtbl.replace attrs a.Attr.id a;
      let c =
        match Hashtbl.find_opt name_count a.Attr.name with
        | Some c -> c
        | None -> 0
      in
      Hashtbl.replace name_count a.Attr.name (c + 1)
    end
  in
  let rec collect plan =
    List.iter add (Plan.schema plan);
    (match (plan : Plan.t) with
    | Plan.Aggregate { group_by; _ } -> List.iter (fun (_, a) -> add a) group_by
    | _ -> ());
    List.iter collect (Plan.children plan)
  in
  collect plan;
  let aliases = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id (a : Attr.t) ->
      let alias =
        if Hashtbl.find name_count a.Attr.name = 1 then a.Attr.name
        else Printf.sprintf "%s_%d" a.Attr.name id
      in
      Hashtbl.replace aliases id alias)
    attrs;
  fun (a : Attr.t) ->
    match Hashtbl.find_opt aliases a.Attr.id with
    | Some alias -> alias
    | None -> Printf.sprintf "%s_%d" a.Attr.name a.Attr.id

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec expr_sql alias (e : Expr.t) =
  match e with
  | Expr.Const v -> Value.to_sql v
  | Expr.Attr a -> alias a
  | Expr.Binop (Expr.And, _, _) | Expr.Binop (Expr.Or, _, _) ->
    let rec flat op e acc =
      match e with
      | Expr.Binop (op', a, b) when op' = op -> flat op a (flat op b acc)
      | e -> e :: acc
    in
    let op, sep =
      match e with
      | Expr.Binop (Expr.And, _, _) -> (Expr.And, " AND ")
      | _ -> (Expr.Or, " OR ")
    in
    "(" ^ String.concat sep (List.map (expr_sql alias) (flat op e [])) ^ ")"
  | Expr.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_sql alias a) (Expr.binop_name op)
      (expr_sql alias b)
  | Expr.Unop (Expr.Not, a) -> Printf.sprintf "(NOT %s)" (expr_sql alias a)
  | Expr.Unop (Expr.Neg, a) -> Printf.sprintf "(- %s)" (expr_sql alias a)
  | Expr.Unop (Expr.Is_null, a) ->
    Printf.sprintf "(%s IS NULL)" (expr_sql alias a)
  | Expr.Case { branches; else_ } ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "CASE";
    List.iter
      (fun (c, r) ->
        Buffer.add_string buf
          (Printf.sprintf " WHEN %s THEN %s" (expr_sql alias c)
             (expr_sql alias r)))
      branches;
    (match else_ with
    | Some e -> Buffer.add_string buf (" ELSE " ^ expr_sql alias e)
    | None -> ());
    Buffer.add_string buf " END";
    Buffer.contents buf
  | Expr.Cast (a, ty) ->
    Printf.sprintf "CAST(%s AS %s)" (expr_sql alias a) (Dtype.to_string ty)
  | Expr.Func (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map (expr_sql alias) args))

let agg_sql alias (c : Plan.agg_call) =
  let arg =
    match c.arg with
    | Some e -> (if c.distinct then "DISTINCT " else "") ^ expr_sql alias e
    | None -> "*"
  in
  let name =
    match c.agg with
    | Plan.Count_star | Plan.Count -> "count"
    | Plan.Sum -> "sum"
    | Plan.Avg -> "avg"
    | Plan.Min -> "min"
    | Plan.Max -> "max"
    | Plan.Bool_and -> "bool_and"
    | Plan.Bool_or -> "bool_or"
  in
  Printf.sprintf "%s(%s)" name arg

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

let plan_to_sql plan =
  let alias = build_alias_map plan in
  let counter = ref 0 in
  let fresh_t () =
    incr counter;
    Printf.sprintf "t%d" !counter
  in
  let rec go (plan : Plan.t) =
    match plan with
    | Plan.Scan { table; attrs } ->
      let cols =
        List.map
          (fun (a : Attr.t) -> Printf.sprintf "%s AS %s" a.Attr.name (alias a))
          attrs
      in
      Printf.sprintf "SELECT %s FROM %s" (String.concat ", " cols) table
    | Plan.Index_scan { table; attrs; key_col; key } ->
      let cols =
        List.map
          (fun (a : Attr.t) -> Printf.sprintf "%s AS %s" a.Attr.name (alias a))
          attrs
      in
      let col =
        match List.nth_opt attrs key_col with
        | Some (a : Attr.t) -> a.Attr.name
        | None -> "?"
      in
      Printf.sprintf "SELECT %s FROM %s WHERE %s = %s" (String.concat ", " cols)
        table col (expr_sql alias key)
    | Plan.Values { attrs; rows } -> (
      let render_row row =
        match attrs, row with
        | [], _ | _, [] -> "SELECT 1 AS one"
        | attrs, row ->
          "SELECT "
          ^ String.concat ", "
              (List.map2
                 (fun e (a : Attr.t) ->
                   Printf.sprintf "%s AS %s" (expr_sql alias e) (alias a))
                 row attrs)
      in
      match rows with
      | [] -> "SELECT 1 AS one WHERE FALSE"
      | rows -> String.concat " UNION ALL " (List.map render_row rows))
    | Plan.Project { child; cols } ->
      let cols =
        List.map
          (fun (e, out) ->
            Printf.sprintf "%s AS %s" (expr_sql alias e) (alias out))
          cols
      in
      Printf.sprintf "SELECT %s FROM (%s) AS %s" (String.concat ", " cols)
        (go child) (fresh_t ())
    | Plan.Filter { child; pred } ->
      Printf.sprintf "SELECT * FROM (%s) AS %s WHERE %s" (go child) (fresh_t ())
        (expr_sql alias pred)
    | Plan.Join { kind = Plan.Semi | Plan.Anti; left; right; pred } ->
      let neg =
        match plan with
        | Plan.Join { kind = Plan.Anti; _ } -> "NOT "
        | _ -> ""
      in
      Printf.sprintf "SELECT * FROM (%s) AS %s WHERE %sEXISTS (SELECT 1 FROM (%s) AS %s%s)"
        (go left) (fresh_t ()) neg (go right) (fresh_t ())
        (match pred with
        | Some p -> " WHERE " ^ expr_sql alias p
        | None -> "")
    | Plan.Join { kind; left; right; pred } ->
      let kw =
        match kind with
        | Plan.Inner -> "JOIN"
        | Plan.Left -> "LEFT OUTER JOIN"
        | Plan.Right -> "RIGHT OUTER JOIN"
        | Plan.Full -> "FULL OUTER JOIN"
        | Plan.Cross -> "CROSS JOIN"
        | Plan.Semi | Plan.Anti -> assert false
      in
      Printf.sprintf "SELECT * FROM (%s) AS %s %s (%s) AS %s%s" (go left)
        (fresh_t ()) kw (go right) (fresh_t ())
        (match pred with
        | Some p -> " ON " ^ expr_sql alias p
        | None -> "")
    | Plan.Apply { kind; left; right } -> (
      match kind with
      | Plan.A_scalar out ->
        Printf.sprintf "SELECT %s.*, (%s) AS %s FROM (%s) AS %s"
          "t_outer" (go right) (alias out) (go left) "t_outer"
      | Plan.A_semi ->
        Printf.sprintf "SELECT * FROM (%s) AS %s WHERE EXISTS (%s)" (go left)
          (fresh_t ()) (go right)
      | Plan.A_anti ->
        Printf.sprintf "SELECT * FROM (%s) AS %s WHERE NOT EXISTS (%s)"
          (go left) (fresh_t ()) (go right)
      | Plan.A_cross ->
        Printf.sprintf "SELECT * FROM (%s) AS %s CROSS JOIN LATERAL (%s) AS %s"
          (go left) (fresh_t ()) (go right) (fresh_t ())
      | Plan.A_outer ->
        Printf.sprintf
          "SELECT * FROM (%s) AS %s LEFT OUTER JOIN LATERAL (%s) AS %s ON true"
          (go left) (fresh_t ()) (go right) (fresh_t ()))
    | Plan.Aggregate { child; group_by; aggs } ->
      let gcols =
        List.map
          (fun (e, out) ->
            Printf.sprintf "%s AS %s" (expr_sql alias e) (alias out))
          group_by
      in
      let acols =
        List.map
          (fun (c : Plan.agg_call) ->
            Printf.sprintf "%s AS %s" (agg_sql alias c) (alias c.agg_out))
          aggs
      in
      let group_clause =
        if group_by = [] then ""
        else
          " GROUP BY "
          ^ String.concat ", " (List.map (fun (e, _) -> expr_sql alias e) group_by)
      in
      Printf.sprintf "SELECT %s FROM (%s) AS %s%s"
        (String.concat ", " (gcols @ acols))
        (go child) (fresh_t ()) group_clause
    | Plan.Distinct child ->
      Printf.sprintf "SELECT DISTINCT * FROM (%s) AS %s" (go child) (fresh_t ())
    | Plan.Set_op { kind; all; left; right; attrs } ->
      let kw =
        match kind with
        | Plan.Union -> "UNION"
        | Plan.Intersect -> "INTERSECT"
        | Plan.Except -> "EXCEPT"
      in
      let inner =
        Printf.sprintf "(%s) %s%s (%s)" (go left) kw
          (if all then " ALL" else "")
          (go right)
      in
      (* rename the left branch's output names to the node's attributes *)
      let lcols = Plan.schema left in
      let cols =
        List.map2
          (fun (l : Attr.t) (out : Attr.t) ->
            Printf.sprintf "%s AS %s" (alias l) (alias out))
          lcols attrs
      in
      Printf.sprintf "SELECT %s FROM (%s) AS %s" (String.concat ", " cols) inner
        (fresh_t ())
    | Plan.Sort { child; keys } ->
      let key_sql =
        List.map
          (fun (e, dir) ->
            expr_sql alias e
            ^ match dir with Plan.Asc -> " ASC" | Plan.Desc -> " DESC")
          keys
      in
      Printf.sprintf "SELECT * FROM (%s) AS %s ORDER BY %s" (go child)
        (fresh_t ()) (String.concat ", " key_sql)
    | Plan.Limit { child; limit; offset } ->
      Printf.sprintf "SELECT * FROM (%s) AS %s%s%s" (go child) (fresh_t ())
        (match limit with
        | Some n -> Printf.sprintf " LIMIT %d" n
        | None -> "")
        (if offset > 0 then Printf.sprintf " OFFSET %d" offset else "")
    | Plan.Prov { child; _ } ->
      Printf.sprintf "SELECT PROVENANCE * FROM (%s) AS %s" (go child) (fresh_t ())
    | Plan.Baserel { child; _ } ->
      Printf.sprintf "SELECT * FROM (%s) AS %s BASERELATION" (go child) (fresh_t ())
    | Plan.External { child; ext_attrs } ->
      Printf.sprintf "SELECT * FROM (%s) AS %s PROVENANCE (%s)" (go child)
        (fresh_t ())
        (String.concat ", " (List.map alias ext_attrs))
  in
  go plan
