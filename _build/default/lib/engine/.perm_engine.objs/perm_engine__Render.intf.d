lib/engine/render.mli: Perm_storage
