lib/engine/sqlgen.ml: Buffer Hashtbl List Perm_algebra Perm_value Printf String
