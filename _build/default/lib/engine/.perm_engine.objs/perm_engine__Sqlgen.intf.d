lib/engine/sqlgen.mli: Perm_algebra
