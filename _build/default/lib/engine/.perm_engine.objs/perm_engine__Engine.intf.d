lib/engine/engine.mli: Perm_algebra Perm_catalog Perm_planner Perm_provenance Perm_storage Perm_value
