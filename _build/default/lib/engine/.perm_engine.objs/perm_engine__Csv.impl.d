lib/engine/csv.ml: Buffer List String
