lib/engine/csv.mli:
