lib/engine/render.ml: Array Buffer List Perm_value Printf String
