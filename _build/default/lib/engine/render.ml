module Value = Perm_value.Value

let table ~columns ~rows =
  let cells =
    List.map
      (fun row -> Array.to_list (Array.map Value.to_string row))
      rows
  in
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length columns)
      (List.filter (fun r -> List.length r = List.length columns) cells)
  in
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row row =
    Buffer.add_string buf " ";
    Buffer.add_string buf
      (String.concat " | " (List.map2 (fun cell w -> pad cell w) row widths));
    Buffer.add_char buf '\n'
  in
  render_row columns;
  Buffer.add_string buf
    (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  Buffer.add_char buf '\n';
  List.iter render_row cells;
  Buffer.add_string buf
    (Printf.sprintf "(%d row%s)\n" (List.length rows)
       (if List.length rows = 1 then "" else "s"));
  Buffer.contents buf
