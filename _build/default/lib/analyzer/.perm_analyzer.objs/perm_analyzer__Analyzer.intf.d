lib/analyzer/analyzer.mli: Perm_algebra Perm_catalog Perm_sql
