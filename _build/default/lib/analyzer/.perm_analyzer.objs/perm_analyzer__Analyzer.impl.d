lib/analyzer/analyzer.ml: Hashtbl List Option Perm_algebra Perm_catalog Perm_provenance Perm_sql Perm_value Printf String
