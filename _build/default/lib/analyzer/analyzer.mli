(** Semantic analysis: SQL-PLE ASTs to algebra plans (paper Fig. 3,
    "Parser & Analyzer" — syntactic and semantic analysis, view unfolding).

    Performs name resolution (case-insensitive, with correlation to
    enclosing query scopes), type checking, view unfolding (views are
    re-parsed from their catalog text and inlined), star expansion,
    GROUP-BY/aggregate validation, and de-correlation of IN / EXISTS /
    scalar subqueries into [Semi]/[Anti]/[Apply] operators.

    SQL-PLE markers are translated into [Plan.Prov] / [Plan.Baserel] /
    [Plan.External] nodes; the provenance schema of a [SELECT PROVENANCE]
    block is computed here (via {!Perm_provenance.Sources}) so enclosing
    queries can reference [prov_*] columns (paper §2.4's nested example).

    Documented restrictions (clear errors, not silent misbehaviour):
    IN/EXISTS subqueries must be top-level WHERE conjuncts; subqueries are
    not allowed in HAVING, ORDER BY, or the select list of grouped queries;
    NOT IN uses anti-join (two-valued) matching; ORDER BY of DISTINCT and
    set-operation queries must name output columns. *)

val analyze_query :
  Perm_catalog.Catalog.t -> Perm_sql.Ast.query -> (Perm_algebra.Plan.t, string) result

val const_expr : Perm_sql.Ast.expr -> (Perm_algebra.Expr.t, string) result
(** Translates an expression that may not reference columns, aggregates or
    subqueries — used for [INSERT ... VALUES] rows. *)

val output_names : Perm_algebra.Plan.t -> string list
(** Display names of a plan's result columns, in order. *)
