lib/algebra/expr.mli: Attr Format Perm_value
