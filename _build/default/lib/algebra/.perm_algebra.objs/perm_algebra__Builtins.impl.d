lib/algebra/builtins.ml: Buffer Float Hashtbl List Perm_value Printf String
