lib/algebra/plan.ml: Attr Expr List Perm_value Printf
