lib/algebra/pretty.mli: Plan
