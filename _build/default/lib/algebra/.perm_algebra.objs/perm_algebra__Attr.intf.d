lib/algebra/attr.mli: Format Map Perm_value Set
