lib/algebra/expr.ml: Attr Builtins Format List Option Perm_value String
