lib/algebra/builtins.mli: Perm_value
