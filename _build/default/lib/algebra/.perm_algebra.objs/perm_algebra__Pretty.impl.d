lib/algebra/pretty.ml: Attr Buffer Expr Format List Plan Printf String
