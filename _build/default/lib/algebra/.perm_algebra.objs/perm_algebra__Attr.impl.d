lib/algebra/attr.ml: Format Int Map Perm_value Set
