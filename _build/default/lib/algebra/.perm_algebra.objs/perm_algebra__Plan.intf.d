lib/algebra/plan.mli: Attr Expr
