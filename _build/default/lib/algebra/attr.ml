type t = { id : int; name : string; ty : Perm_value.Dtype.t }

let counter = ref 0

let fresh name ty =
  incr counter;
  { id = !counter; name; ty }

let renamed name t = fresh name t.ty
let retyped ty t = { t with ty }
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.id
let reset_counter () = counter := 0

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
