(** Attributes of algebra plans.

    Every operator output column is an attribute with a globally unique [id];
    expressions reference attributes by id, never by position or name. This
    is what makes the provenance rewrite rules compositional: appending
    provenance attributes to an operator's output can never capture or shift
    references in enclosing operators (the property behind paper §2.2's
    "rewrite rules are unaware of how the provenance attributes of their
    input were produced"). *)

type t = {
  id : int;
  name : string;  (** display / output name; not necessarily unique *)
  ty : Perm_value.Dtype.t;
}

val fresh : string -> Perm_value.Dtype.t -> t
(** Allocates a new unique id. *)

val renamed : string -> t -> t
(** Fresh attribute with the same type, new name. *)

val retyped : Perm_value.Dtype.t -> t -> t
val equal : t -> t -> bool
(** Identity ([id]) equality. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints [name#id]; plan trees use it so self-join copies are told apart. *)

val reset_counter : unit -> unit
(** For test determinism only. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
