module Value = Perm_value.Value
module Dtype = Perm_value.Dtype

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | And
  | Or
  | Concat
  | Like

type unop = Not | Neg | Is_null

type t =
  | Const of Value.t
  | Attr of Attr.t
  | Binop of binop * t * t
  | Unop of unop * t
  | Case of { branches : (t * t) list; else_ : t option }
  | Cast of t * Dtype.t
  | Func of string * t list

let rec attrs = function
  | Const _ -> Attr.Set.empty
  | Attr a -> Attr.Set.singleton a
  | Binop (_, a, b) -> Attr.Set.union (attrs a) (attrs b)
  | Unop (_, a) -> attrs a
  | Case { branches; else_ } ->
    let acc =
      List.fold_left
        (fun acc (c, r) -> Attr.Set.union acc (Attr.Set.union (attrs c) (attrs r)))
        Attr.Set.empty branches
    in
    (match else_ with Some e -> Attr.Set.union acc (attrs e) | None -> acc)
  | Cast (e, _) -> attrs e
  | Func (_, args) ->
    List.fold_left (fun acc e -> Attr.Set.union acc (attrs e)) Attr.Set.empty args

let rec substitute map e =
  match e with
  | Const _ -> e
  | Attr a -> ( match Attr.Map.find_opt a map with Some e' -> e' | None -> e)
  | Binop (op, a, b) -> Binop (op, substitute map a, substitute map b)
  | Unop (op, a) -> Unop (op, substitute map a)
  | Case { branches; else_ } ->
    Case
      {
        branches =
          List.map (fun (c, r) -> (substitute map c, substitute map r)) branches;
        else_ = Option.map (substitute map) else_;
      }
  | Cast (e, ty) -> Cast (substitute map e, ty)
  | Func (name, args) -> Func (name, List.map (substitute map) args)

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc c -> Binop (And, acc, c)) e rest

let rec type_of = function
  | Const v -> Value.type_of v
  | Attr a -> a.Attr.ty
  | Binop (op, a, b) -> (
    match op with
    | Eq | Neq | Lt | Leq | Gt | Geq | And | Or | Like -> Dtype.Bool
    | Concat -> Dtype.Text
    | Mod -> Dtype.Int
    | Add | Sub | Mul | Div -> (
      match type_of a, type_of b with
      | Dtype.Date, Dtype.Date -> Dtype.Int (* date - date = days *)
      | Dtype.Date, _ | _, Dtype.Date -> Dtype.Date (* date +/- days *)
      | ta, tb -> (
        match Dtype.unify ta tb with
        | Some t when Dtype.is_numeric t -> t
        | Some Dtype.Any -> Dtype.Int
        | _ -> Dtype.Float)))
  | Unop (Not, _) | Unop (Is_null, _) -> Dtype.Bool
  | Unop (Neg, a) -> type_of a
  | Case { branches; else_ } ->
    let tys =
      List.map (fun (_, r) -> type_of r) branches
      @ match else_ with Some e -> [ type_of e ] | None -> []
    in
    List.fold_left
      (fun acc ty -> match Dtype.unify acc ty with Some t -> t | None -> acc)
      Dtype.Any tys
  | Cast (_, ty) -> ty
  | Func (name, args) -> (
    match Builtins.find name with
    | Some s -> (
      match s.Builtins.check (List.map type_of args) with
      | Ok ty -> ty
      | Error _ -> Dtype.Any)
    | None -> Dtype.Any)

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y || (Value.is_null x && Value.is_null y)
  | Attr x, Attr y -> Attr.equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && equal a1 a2
  | Case c1, Case c2 ->
    List.length c1.branches = List.length c2.branches
    && List.for_all2
         (fun (x1, y1) (x2, y2) -> equal x1 x2 && equal y1 y2)
         c1.branches c2.branches
    && Option.equal equal c1.else_ c2.else_
  | Cast (e1, t1), Cast (e2, t2) -> Dtype.equal t1 t2 && equal e1 e2
  | Func (n1, a1), Func (n2, a2) ->
    String.equal n1 n2 && List.length a1 = List.length a2 && List.for_all2 equal a1 a2
  | (Const _ | Attr _ | Binop _ | Unop _ | Case _ | Cast _ | Func _), _ -> false

let is_const = function Const _ -> true | _ -> false

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Concat -> "||"
  | Like -> "LIKE"

let rec pp ppf = function
  | Const v -> Format.pp_print_string ppf (Value.to_sql v)
  | Attr a -> Attr.pp ppf a
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Unop (Not, a) -> Format.fprintf ppf "(NOT %a)" pp a
  | Unop (Neg, a) -> Format.fprintf ppf "(- %a)" pp a
  | Unop (Is_null, a) -> Format.fprintf ppf "(%a IS NULL)" pp a
  | Case { branches; else_ } ->
    Format.fprintf ppf "CASE";
    List.iter
      (fun (c, r) -> Format.fprintf ppf " WHEN %a THEN %a" pp c pp r)
      branches;
    (match else_ with
    | Some e -> Format.fprintf ppf " ELSE %a" pp e
    | None -> ());
    Format.fprintf ppf " END"
  | Cast (e, ty) -> Format.fprintf ppf "CAST(%a AS %s)" pp e (Dtype.to_string ty)
  | Func (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      args

let to_string e = Format.asprintf "%a" pp e
