(** Algebra tree rendering — the Perm browser's tree panes (paper Fig. 4,
    markers 3 and 4). *)

val plan_to_string :
  ?show_attrs:bool -> ?annotate:(Plan.t -> string) -> Plan.t -> string
(** Indented tree, one operator per line, with operator details (predicates,
    projection lists, group-by). With [show_attrs] (default true) each line
    ends with the operator's output attributes. [annotate] appends a
    per-node suffix — the engine passes cost/row estimates, giving
    PostgreSQL-EXPLAIN-style output. *)

val plan_summary : Plan.t -> string
(** One-line nested rendering, e.g.
    [Project(Select(Scan(messages)))] — used in logs and tests. *)
