(** Registry of scalar builtin functions (PostgreSQL-compatible subset).

    Shared by the analyzer (typing) and the executor (evaluation).
    Supported: [abs], [length], [lower], [upper], [substr], [coalesce],
    [nullif], [greatest], [least], [round], [floor], [ceil], [mod],
    [replace], [trim]. *)

type signature = {
  fn_name : string;
  check : Perm_value.Dtype.t list -> (Perm_value.Dtype.t, string) result;
      (** argument types to result type, or an error message *)
  eval : Perm_value.Value.t list -> (Perm_value.Value.t, string) result;
}

val find : string -> signature option
(** Case-insensitive. *)

val names : unit -> string list
