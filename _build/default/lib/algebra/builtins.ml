module Value = Perm_value.Value
module Dtype = Perm_value.Dtype

type signature = {
  fn_name : string;
  check : Dtype.t list -> (Dtype.t, string) result;
  eval : Value.t list -> (Value.t, string) result;
}

let arity_error name n = Error (Printf.sprintf "%s expects %d argument(s)" name n)

let numeric1 name f_int f_float =
  {
    fn_name = name;
    check =
      (function
      | [ (Dtype.Int | Dtype.Any) ] -> Ok Dtype.Int
      | [ Dtype.Float ] -> Ok Dtype.Float
      | [ t ] -> Error (Printf.sprintf "%s expects a numeric argument, got %s" name (Dtype.to_string t))
      | _ -> arity_error name 1);
    eval =
      (function
      | [ Value.Null ] -> Ok Value.Null
      | [ Value.Int i ] -> Ok (Value.Int (f_int i))
      | [ Value.Float f ] -> Ok (Value.Float (f_float f))
      | [ v ] -> Error (Printf.sprintf "%s: bad argument %s" name (Value.to_string v))
      | _ -> arity_error name 1);
  }

let text1 name f =
  {
    fn_name = name;
    check =
      (function
      | [ (Dtype.Text | Dtype.Any) ] -> Ok Dtype.Text
      | [ t ] -> Error (Printf.sprintf "%s expects text, got %s" name (Dtype.to_string t))
      | _ -> arity_error name 1);
    eval =
      (function
      | [ Value.Null ] -> Ok Value.Null
      | [ Value.Text s ] -> Ok (Value.Text (f s))
      | [ v ] -> Error (Printf.sprintf "%s: bad argument %s" name (Value.to_string v))
      | _ -> arity_error name 1);
  }

(* round to nearest, ties away from zero, as PostgreSQL does *)
let pg_round f = Float.of_int (int_of_float (Float.round f))

let variadic_common name pick =
  {
    fn_name = name;
    check =
      (fun tys ->
        if tys = [] then Error (name ^ " expects at least one argument")
        else
          let unified =
            List.fold_left
              (fun acc ty ->
                match acc with
                | Error _ as e -> e
                | Ok t -> (
                  match Dtype.unify t ty with
                  | Some u -> Ok u
                  | None ->
                    Error
                      (Printf.sprintf "%s: incompatible argument types" name)))
              (Ok Dtype.Any) tys
          in
          unified);
    eval = (fun vs -> Ok (pick vs));
  }

(* float -> float functions (sqrt, ln, ...): int arguments widen *)
let float1 name f =
  {
    fn_name = name;
    check =
      (function
      | [ (Dtype.Int | Dtype.Float | Dtype.Any) ] -> Ok Dtype.Float
      | [ t ] ->
        Error (Printf.sprintf "%s expects a numeric argument, got %s" name (Dtype.to_string t))
      | _ -> arity_error name 1);
    eval =
      (function
      | [ Value.Null ] -> Ok Value.Null
      | [ Value.Int i ] -> (
        match f (float_of_int i) with
        | x when Float.is_nan x -> Error (name ^ ": domain error")
        | x -> Ok (Value.Float x))
      | [ Value.Float v ] -> (
        match f v with
        | x when Float.is_nan x -> Error (name ^ ": domain error")
        | x -> Ok (Value.Float x))
      | [ v ] -> Error (Printf.sprintf "%s: bad argument %s" name (Value.to_string v))
      | _ -> arity_error name 1);
  }

let signatures =
  [
    numeric1 "abs" abs Float.abs;
    numeric1 "floor" (fun i -> i) Float.floor;
    numeric1 "ceil" (fun i -> i) Float.ceil;
    numeric1 "round" (fun i -> i) pg_round;
    {
      fn_name = "sign";
      check =
        (function
        | [ (Dtype.Int | Dtype.Float | Dtype.Any) ] -> Ok Dtype.Int
        | [ t ] -> Error ("sign expects a number, got " ^ Dtype.to_string t)
        | _ -> arity_error "sign" 1);
      eval =
        (function
        | [ Value.Null ] -> Ok Value.Null
        | [ Value.Int i ] -> Ok (Value.Int (compare i 0))
        | [ Value.Float f ] -> Ok (Value.Int (compare f 0.))
        | [ v ] -> Error ("sign: bad argument " ^ Value.to_string v)
        | _ -> arity_error "sign" 1);
    };
    float1 "sqrt" Float.sqrt;
    float1 "ln" Float.log;
    float1 "exp" Float.exp;
    {
      fn_name = "power";
      check =
        (function
        | [ (Dtype.Int | Dtype.Float | Dtype.Any); (Dtype.Int | Dtype.Float | Dtype.Any) ] ->
          Ok Dtype.Float
        | _ -> Error "power expects (numeric, numeric)");
      eval =
        (fun vs ->
          let to_f = function
            | Value.Int i -> Some (float_of_int i)
            | Value.Float f -> Some f
            | _ -> None
          in
          match vs with
          | [ Value.Null; _ ] | [ _; Value.Null ] -> Ok Value.Null
          | [ a; b ] -> (
            match to_f a, to_f b with
            | Some x, Some y -> Ok (Value.Float (Float.pow x y))
            | _ -> Error "power: bad arguments")
          | _ -> arity_error "power" 2);
    };
    {
      fn_name = "strpos";
      check =
        (function
        | [ (Dtype.Text | Dtype.Any); (Dtype.Text | Dtype.Any) ] -> Ok Dtype.Int
        | _ -> Error "strpos expects (text, text)");
      eval =
        (function
        | [ Value.Null; _ ] | [ _; Value.Null ] -> Ok Value.Null
        | [ Value.Text hay; Value.Text needle ] ->
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            if nn = 0 then 1
            else if i + nn > nh then 0
            else if String.sub hay i nn = needle then i + 1
            else go (i + 1)
          in
          Ok (Value.Int (go 0))
        | _ -> Error "strpos: bad arguments");
    };
    {
      fn_name = "starts_with";
      check =
        (function
        | [ (Dtype.Text | Dtype.Any); (Dtype.Text | Dtype.Any) ] -> Ok Dtype.Bool
        | _ -> Error "starts_with expects (text, text)");
      eval =
        (function
        | [ Value.Null; _ ] | [ _; Value.Null ] -> Ok Value.Null
        | [ Value.Text s; Value.Text prefix ] ->
          Ok
            (Value.Bool
               (String.length s >= String.length prefix
               && String.sub s 0 (String.length prefix) = prefix))
        | _ -> Error "starts_with: bad arguments");
    };
    {
      fn_name = "repeat";
      check =
        (function
        | [ (Dtype.Text | Dtype.Any); (Dtype.Int | Dtype.Any) ] -> Ok Dtype.Text
        | _ -> Error "repeat expects (text, int)");
      eval =
        (function
        | [ Value.Null; _ ] | [ _; Value.Null ] -> Ok Value.Null
        | [ Value.Text s; Value.Int n ] ->
          if n > 1_000_000 then Error "repeat: result too large"
          else begin
            let buf = Buffer.create (String.length s * max 0 n) in
            for _ = 1 to n do
              Buffer.add_string buf s
            done;
            Ok (Value.Text (Buffer.contents buf))
          end
        | _ -> Error "repeat: bad arguments");
    };
    text1 "lower" String.lowercase_ascii;
    text1 "upper" String.uppercase_ascii;
    text1 "trim" String.trim;
    text1 "reverse" (fun s ->
        String.init (String.length s) (fun i -> s.[String.length s - 1 - i]));
    {
      fn_name = "length";
      check =
        (function
        | [ (Dtype.Text | Dtype.Any) ] -> Ok Dtype.Int
        | [ t ] -> Error ("length expects text, got " ^ Dtype.to_string t)
        | _ -> arity_error "length" 1);
      eval =
        (function
        | [ Value.Null ] -> Ok Value.Null
        | [ Value.Text s ] -> Ok (Value.Int (String.length s))
        | [ v ] -> Error ("length: bad argument " ^ Value.to_string v)
        | _ -> arity_error "length" 1);
    };
    {
      fn_name = "substr";
      check =
        (function
        | [ (Dtype.Text | Dtype.Any); (Dtype.Int | Dtype.Any) ]
        | [ (Dtype.Text | Dtype.Any); (Dtype.Int | Dtype.Any); (Dtype.Int | Dtype.Any) ] ->
          Ok Dtype.Text
        | _ -> Error "substr expects (text, int[, int])");
      eval =
        (fun vs ->
          match vs with
          | [ Value.Null; _ ] | [ _; Value.Null ] | [ Value.Null; _; _ ]
          | [ _; Value.Null; _ ] | [ _; _; Value.Null ] ->
            Ok Value.Null
          | [ Value.Text s; Value.Int start ]
          | [ Value.Text s; Value.Int start; Value.Int _ ] -> (
            (* SQL substr is 1-based; clamp to the string bounds *)
            let len_arg =
              match vs with
              | [ _; _; Value.Int l ] -> l
              | _ -> String.length s
            in
            let n = String.length s in
            let from = max 0 (start - 1) in
            let len = max 0 (min len_arg (n - from)) in
            if from >= n then Ok (Value.Text "")
            else Ok (Value.Text (String.sub s from len)))
          | _ -> Error "substr: bad arguments");
    };
    {
      fn_name = "replace";
      check =
        (function
        | [ (Dtype.Text | Dtype.Any); (Dtype.Text | Dtype.Any); (Dtype.Text | Dtype.Any) ] ->
          Ok Dtype.Text
        | _ -> Error "replace expects (text, text, text)");
      eval =
        (function
        | [ Value.Null; _; _ ] | [ _; Value.Null; _ ] | [ _; _; Value.Null ] ->
          Ok Value.Null
        | [ Value.Text s; Value.Text find; Value.Text by ] ->
          if find = "" then Ok (Value.Text s)
          else begin
            let buf = Buffer.create (String.length s) in
            let fl = String.length find in
            let rec go i =
              if i > String.length s - fl then
                Buffer.add_string buf (String.sub s i (String.length s - i))
              else if String.sub s i fl = find then begin
                Buffer.add_string buf by;
                go (i + fl)
              end
              else begin
                Buffer.add_char buf s.[i];
                go (i + 1)
              end
            in
            go 0;
            Ok (Value.Text (Buffer.contents buf))
          end
        | _ -> Error "replace: bad arguments");
    };
    {
      fn_name = "nullif";
      check =
        (function
        | [ a; b ] -> (
          match Dtype.unify a b with
          | Some t -> Ok t
          | None -> Error "nullif: incompatible argument types")
        | _ -> arity_error "nullif" 2);
      eval =
        (function
        | [ a; b ] ->
          if (not (Value.is_null a)) && Value.equal a b then Ok Value.Null
          else Ok a
        | _ -> arity_error "nullif" 2);
    };
    variadic_common "coalesce" (fun vs ->
        match List.find_opt (fun v -> not (Value.is_null v)) vs with
        | Some v -> v
        | None -> Value.Null);
    variadic_common "greatest" (fun vs ->
        let vs = List.filter (fun v -> not (Value.is_null v)) vs in
        match vs with
        | [] -> Value.Null
        | v :: rest -> List.fold_left (fun a b -> if Value.compare a b >= 0 then a else b) v rest);
    variadic_common "least" (fun vs ->
        let vs = List.filter (fun v -> not (Value.is_null v)) vs in
        match vs with
        | [] -> Value.Null
        | v :: rest -> List.fold_left (fun a b -> if Value.compare a b <= 0 then a else b) v rest);
    {
      fn_name = "date_part";
      check =
        (function
        | [ (Dtype.Text | Dtype.Any); (Dtype.Date | Dtype.Any) ] -> Ok Dtype.Int
        | _ -> Error "date_part expects ('year'|'month'|'day', date)");
      eval =
        (function
        | [ Value.Null; _ ] | [ _; Value.Null ] -> Ok Value.Null
        | [ Value.Text part; Value.Date d ] -> (
          let y, m, day = Value.date_to_ymd d in
          match String.lowercase_ascii part with
          | "year" -> Ok (Value.Int y)
          | "month" -> Ok (Value.Int m)
          | "day" -> Ok (Value.Int day)
          | p -> Error (Printf.sprintf "date_part: unknown field %S" p))
        | _ -> Error "date_part: bad arguments");
    };
    {
      fn_name = "make_date";
      check =
        (function
        | [ (Dtype.Int | Dtype.Any); (Dtype.Int | Dtype.Any); (Dtype.Int | Dtype.Any) ] ->
          Ok Dtype.Date
        | _ -> Error "make_date expects (int, int, int)");
      eval =
        (function
        | [ Value.Null; _; _ ] | [ _; Value.Null; _ ] | [ _; _; Value.Null ] ->
          Ok Value.Null
        | [ Value.Int y; Value.Int m; Value.Int d ] -> Value.date_of_ymd y m d
        | _ -> Error "make_date: bad arguments");
    };
    {
      fn_name = "mod";
      check =
        (function
        | [ (Dtype.Int | Dtype.Any); (Dtype.Int | Dtype.Any) ] -> Ok Dtype.Int
        | _ -> Error "mod expects (int, int)");
      eval =
        (function
        | [ Value.Null; _ ] | [ _; Value.Null ] -> Ok Value.Null
        | [ Value.Int _; Value.Int 0 ] -> Error "division by zero"
        | [ Value.Int a; Value.Int b ] -> Ok (Value.Int (a mod b))
        | _ -> Error "mod: bad arguments");
    };
  ]

let table =
  let t = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace t s.fn_name s) signatures;
  t

let find name = Hashtbl.find_opt table (String.lowercase_ascii name)
let names () = List.map (fun s -> s.fn_name) signatures |> List.sort String.compare
