(** Scalar expressions over algebra attributes.

    The analyzer desugars the richer SQL surface (BETWEEN, IN-lists,
    CASE-with-operand, NOT variants) into this small core, so the planner,
    executor and provenance rewriter only handle these forms. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | And
  | Or
  | Concat
  | Like

type unop = Not | Neg | Is_null

type t =
  | Const of Perm_value.Value.t
  | Attr of Attr.t
  | Binop of binop * t * t
  | Unop of unop * t
  | Case of { branches : (t * t) list; else_ : t option }
  | Cast of t * Perm_value.Dtype.t
  | Func of string * t list  (** scalar builtin, resolved by the executor *)

val attrs : t -> Attr.Set.t
(** All attributes referenced by the expression. *)

val substitute : t Attr.Map.t -> t -> t
(** Replaces attribute references according to the map (used by projection
    inlining and rewrite rules). *)

val conjuncts : t -> t list
(** Splits a top-level AND chain. *)

val conjoin : t list -> t
(** Inverse of {!conjuncts}; the empty list is [Const (Bool true)]. *)

val type_of : t -> Perm_value.Dtype.t
(** Static result type (assumes the expression is well-typed; the analyzer
    checks that). *)

val equal : t -> t -> bool
val is_const : t -> bool
val binop_name : binop -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
