let details plan =
  match (plan : Plan.t) with
  | Plan.Scan _ | Plan.Values _ -> ""
  | Plan.Index_scan { attrs; key_col; key; _ } ->
    let col =
      match List.nth_opt attrs key_col with
      | Some (a : Attr.t) -> a.Attr.name
      | None -> string_of_int key_col
    in
    Printf.sprintf "[%s = %s]" col (Expr.to_string key)
  | Plan.Project { cols; _ } ->
    let show (e, (a : Attr.t)) =
      match e with
      | Expr.Attr src when String.equal src.Attr.name a.Attr.name ->
        Expr.to_string e
      | _ -> Printf.sprintf "%s -> %s" (Expr.to_string e) a.Attr.name
    in
    "[" ^ String.concat ", " (List.map show cols) ^ "]"
  | Plan.Filter { pred; _ } -> "[" ^ Expr.to_string pred ^ "]"
  | Plan.Join { pred = Some p; _ } -> "[" ^ Expr.to_string p ^ "]"
  | Plan.Join { pred = None; _ } -> ""
  | Plan.Apply { kind = Plan.A_scalar a; _ } ->
    Printf.sprintf "[-> %s]" a.Attr.name
  | Plan.Apply _ -> ""
  | Plan.Aggregate { group_by; aggs; _ } ->
    let gb =
      List.map (fun (e, (a : Attr.t)) ->
          Printf.sprintf "%s -> %s" (Expr.to_string e) a.Attr.name)
        group_by
    in
    let ags =
      List.map
        (fun (c : Plan.agg_call) ->
          let fn =
            match c.agg with
            | Plan.Count_star -> "count(*)"
            | Plan.Count ->
              Printf.sprintf "count(%s%s)"
                (if c.distinct then "distinct " else "")
                (match c.arg with Some e -> Expr.to_string e | None -> "?")
            | Plan.Sum | Plan.Avg | Plan.Min | Plan.Max | Plan.Bool_and
            | Plan.Bool_or ->
              let name =
                match c.agg with
                | Plan.Sum -> "sum"
                | Plan.Avg -> "avg"
                | Plan.Min -> "min"
                | Plan.Max -> "max"
                | Plan.Bool_and -> "bool_and"
                | Plan.Bool_or -> "bool_or"
                | Plan.Count | Plan.Count_star -> assert false
              in
              Printf.sprintf "%s(%s%s)" name
                (if c.distinct then "distinct " else "")
                (match c.arg with Some e -> Expr.to_string e | None -> "?")
          in
          Printf.sprintf "%s -> %s" fn c.agg_out.Attr.name)
        aggs
    in
    "[group: " ^ String.concat ", " gb ^ "; aggs: " ^ String.concat ", " ags
    ^ "]"
  | Plan.Distinct _ -> ""
  | Plan.Set_op _ -> ""
  | Plan.Sort { keys; _ } ->
    "["
    ^ String.concat ", "
        (List.map
           (fun (e, dir) ->
             Expr.to_string e
             ^ match dir with Plan.Asc -> " asc" | Plan.Desc -> " desc")
           keys)
    ^ "]"
  | Plan.Limit { limit; offset; _ } ->
    Printf.sprintf "[limit %s offset %d]"
      (match limit with Some n -> string_of_int n | None -> "all")
      offset
  | Plan.Prov { sources; _ } ->
    "["
    ^ String.concat ", "
        (List.map
           (fun (s : Plan.prov_source) -> s.prov_attr.Attr.name)
           sources)
    ^ "]"
  | Plan.Baserel _ -> ""
  | Plan.External { ext_attrs; _ } ->
    "[" ^ String.concat ", " (List.map (fun (a : Attr.t) -> a.Attr.name) ext_attrs) ^ "]"

let plan_to_string ?(show_attrs = true) ?(annotate = fun _ -> "") plan =
  let buf = Buffer.create 256 in
  let rec go indent plan =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf (Plan.operator_name plan);
    let d = details plan in
    if d <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf d
    end;
    let note = annotate plan in
    if note <> "" then begin
      Buffer.add_string buf "  ";
      Buffer.add_string buf note
    end;
    if show_attrs then begin
      Buffer.add_string buf "  => (";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (a : Attr.t) -> Format.asprintf "%a" Attr.pp a)
              (Plan.schema plan)));
      Buffer.add_string buf ")"
    end;
    Buffer.add_char buf '\n';
    List.iter (go (indent + 1)) (Plan.children plan)
  in
  go 0 plan;
  Buffer.contents buf

let rec plan_summary plan =
  let kids = Plan.children plan in
  let base =
    match plan with
    | Plan.Scan { table; _ } -> Printf.sprintf "Scan(%s)" table
    | p -> Plan.operator_name p
  in
  match kids with
  | [] -> base
  | kids ->
    Printf.sprintf "%s(%s)"
      (match plan with Plan.Scan _ -> base | p -> Plan.operator_name p)
      (String.concat ", " (List.map plan_summary kids))
