(** Tuples are immutable-by-convention arrays of values. *)

type t = Perm_value.Value.t array

val arity : t -> int
val equal : t -> t -> bool
(** Null-safe positional equality ({!Perm_value.Value.equal}), the notion
    used for grouping, DISTINCT, set operations and provenance rejoins. *)

val compare : t -> t -> int
val hash : t -> int
val concat : t -> t -> t
val project : int list -> t -> t
val to_string : t -> string
(** Comma-separated, parenthesised, e.g. [(1, lorem, null)]. *)

val pp : Format.formatter -> t -> unit

module Hash : Hashtbl.S with type key = t
(** Hash table keyed by tuples under null-safe equality. *)
