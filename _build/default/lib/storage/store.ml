type t = { heaps : (string, Heap.t) Hashtbl.t }

let create () = { heaps = Hashtbl.create 16 }

let copy t =
  let heaps = Hashtbl.create (Hashtbl.length t.heaps) in
  Hashtbl.iter (fun name heap -> Hashtbl.replace heaps name (Heap.copy heap)) t.heaps;
  { heaps }
let norm = String.lowercase_ascii

let create_table t name schema =
  let name = norm name in
  if Hashtbl.mem t.heaps name then
    Error (Printf.sprintf "table %S already exists in store" name)
  else begin
    let heap = Heap.create schema in
    Hashtbl.replace t.heaps name heap;
    Ok heap
  end

let drop_table t name =
  let name = norm name in
  if Hashtbl.mem t.heaps name then begin
    Hashtbl.remove t.heaps name;
    Ok ()
  end
  else Error (Printf.sprintf "table %S does not exist in store" name)

let find t name = Hashtbl.find_opt t.heaps (norm name)
let find_exn t name = Hashtbl.find t.heaps (norm name)

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.heaps [] |> List.sort String.compare
