lib/storage/heap.mli: Perm_catalog Perm_value Seq Tuple
