lib/storage/vec.mli: Seq
