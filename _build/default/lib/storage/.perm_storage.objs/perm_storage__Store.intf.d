lib/storage/store.mli: Heap Perm_catalog
