lib/storage/tuple.mli: Format Hashtbl Perm_value
