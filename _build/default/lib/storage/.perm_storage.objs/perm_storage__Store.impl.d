lib/storage/store.ml: Hashtbl Heap List Printf String
