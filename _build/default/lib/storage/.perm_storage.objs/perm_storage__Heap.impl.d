lib/storage/heap.ml: Array Hashtbl List Perm_catalog Perm_value Printf Seq Tuple Vec
