lib/storage/tuple.ml: Array Format Hashtbl List Perm_value String
