module Value = Perm_value.Value

type t = Value.t array

let arity = Array.length

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
let concat = Array.append
let project positions t = Array.of_list (List.map (fun i -> t.(i)) positions)

let to_string t =
  "("
  ^ String.concat ", " (Array.to_list (Array.map Value.to_string t))
  ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Hash = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
