(** The physical database: one heap per base table, keyed by the catalog
    name. The engine keeps catalog and store in sync. *)

type t

val create : unit -> t

val copy : t -> t
(** Snapshot for transactions: copies every heap (see {!Heap.copy}). *)

val create_table : t -> string -> Perm_catalog.Schema.t -> (Heap.t, string) result
val drop_table : t -> string -> (unit, string) result
val find : t -> string -> Heap.t option
val find_exn : t -> string -> Heap.t
(** @raise Not_found on a missing table — only used after catalog lookup
    succeeded, so a miss is an engine invariant violation. *)

val table_names : t -> string list
