type t =
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Ident of string
  | Param of int
  | Quoted_ident of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | Concat
  | Semicolon
  | Eof

type located = { token : t; pos : int }

let to_string = function
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> "'" ^ s ^ "'"
  | Ident s -> s
  | Param n -> "$" ^ string_of_int n
  | Quoted_ident s -> "\"" ^ s ^ "\""
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | Concat -> "||"
  | Semicolon -> ";"
  | Eof -> "<eof>"

let equal (a : t) (b : t) = a = b
