(** Lexical tokens of the SQL-PLE dialect.

    Keywords are lexed as [Ident] and classified by the parser, except the
    small closed set that can never be identifiers; this keeps the lexer
    stable as SQL-PLE adds keywords ([PROVENANCE], [BASERELATION], ...) that
    remain valid column names in plain SQL contexts. *)

type t =
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Ident of string  (** lower-cased bare identifier or keyword *)
  | Param of int  (** positional parameter [$1], [$2], ... *)
  | Quoted_ident of string  (** ["..."]-quoted, case preserved *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq  (** [<>] or [!=] *)
  | Lt
  | Leq
  | Gt
  | Geq
  | Concat  (** [||] *)
  | Semicolon
  | Eof

type located = { token : t; pos : int  (** byte offset in the input *) }

val to_string : t -> string
val equal : t -> t -> bool
