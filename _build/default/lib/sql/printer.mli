(** SQL pretty-printer (deparser).

    Renders ASTs back to parseable SQL-PLE text; [Parser.parse_query]
    composed with {!query_to_string} is the identity on ASTs up to redundant
    parentheses (pinned by a qcheck round-trip property). Used by the engine
    to display rewritten queries as SQL, the Perm browser's pane 2. *)

val expr_to_string : Ast.expr -> string
val query_to_string : Ast.query -> string
val statement_to_string : Ast.statement -> string
