(** Recursive-descent parser for the SQL-PLE dialect.

    Accepts standard SQL (SELECT with joins, subqueries, grouping, set
    operations, ORDER BY / LIMIT / OFFSET, DDL and DML) extended with the
    Perm provenance constructs of paper §2.4. *)

type error = { message : string; pos : int }

val parse_query : string -> (Ast.query, error) result
(** Parses a single query (no trailing semicolon required). *)

val parse_statement : string -> (Ast.statement, error) result
(** Parses a single statement, allowing one trailing semicolon. *)

val parse_script : string -> (Ast.statement list, error) result
(** Parses a semicolon-separated sequence of statements. *)

val error_to_string : input:string -> error -> string
