lib/sql/token.ml:
