lib/sql/parser.ml: Array Ast Lexer List Perm_value Printf String Token
