lib/sql/ast.ml: List Option Perm_value Printf
