lib/sql/token.mli:
