lib/sql/printer.ml: Ast Buffer List Perm_value Printf String
