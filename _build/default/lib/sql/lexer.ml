type error = { message : string; pos : int }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let describe_position input pos =
  let line = ref 1 and col = ref 1 in
  let limit = min pos (String.length input) in
  for i = 0 to limit - 1 do
    if input.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  Printf.sprintf "line %d, column %d" !line !col

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit token pos = tokens := { Token.token; pos } :: !tokens in
  let error message pos = Error { message; pos } in
  let rec skip_block_comment i =
    if i + 1 >= n then None
    else if input.[i] = '*' && input.[i + 1] = '/' then Some (i + 2)
    else skip_block_comment (i + 1)
  in
  let rec lex_string i start buf =
    if i >= n then error "unterminated string literal" start
    else if input.[i] = '\'' then
      if i + 1 < n && input.[i + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        lex_string (i + 2) start buf
      end
      else begin
        emit (Token.String_lit (Buffer.contents buf)) start;
        loop (i + 1)
      end
    else begin
      Buffer.add_char buf input.[i];
      lex_string (i + 1) start buf
    end
  and lex_quoted_ident i start buf =
    if i >= n then error "unterminated quoted identifier" start
    else if input.[i] = '"' then
      if i + 1 < n && input.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        lex_quoted_ident (i + 2) start buf
      end
      else begin
        emit (Token.Quoted_ident (Buffer.contents buf)) start;
        loop (i + 1)
      end
    else begin
      Buffer.add_char buf input.[i];
      lex_quoted_ident (i + 1) start buf
    end
  and lex_number i start =
    let j = ref i in
    while !j < n && is_digit input.[!j] do
      incr j
    done;
    let is_float =
      (!j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1])
      || (!j < n && (input.[!j] = 'e' || input.[!j] = 'E'))
    in
    if is_float then begin
      if !j < n && input.[!j] = '.' then begin
        incr j;
        while !j < n && is_digit input.[!j] do
          incr j
        done
      end;
      if !j < n && (input.[!j] = 'e' || input.[!j] = 'E') then begin
        incr j;
        if !j < n && (input.[!j] = '+' || input.[!j] = '-') then incr j;
        if !j >= n || not (is_digit input.[!j]) then incr j (* force error below *)
        else
          while !j < n && is_digit input.[!j] do
            incr j
          done
      end;
      let text = String.sub input start (!j - start) in
      match float_of_string_opt text with
      | Some f ->
        emit (Token.Float_lit f) start;
        loop !j
      | None -> error (Printf.sprintf "malformed number %S" text) start
    end
    else
      let text = String.sub input start (!j - start) in
      match int_of_string_opt text with
      | Some v ->
        emit (Token.Int_lit v) start;
        loop !j
      | None -> error (Printf.sprintf "malformed number %S" text) start
  and lex_ident i start =
    let j = ref i in
    while !j < n && is_ident_char input.[!j] do
      incr j
    done;
    let text = String.sub input start (!j - start) in
    emit (Token.Ident (String.lowercase_ascii text)) start;
    loop !j
  and loop i =
    if i >= n then begin
      emit Token.Eof n;
      Ok (List.rev !tokens)
    end
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
        let rec eol j = if j >= n || input.[j] = '\n' then j else eol (j + 1) in
        loop (eol (i + 2))
      | '/' when i + 1 < n && input.[i + 1] = '*' -> (
        match skip_block_comment (i + 2) with
        | Some j -> loop j
        | None -> error "unterminated block comment" i)
      | '\'' -> lex_string (i + 1) i (Buffer.create 16)
      | '"' -> lex_quoted_ident (i + 1) i (Buffer.create 16)
      | '(' ->
        emit Lparen i;
        loop (i + 1)
      | ')' ->
        emit Rparen i;
        loop (i + 1)
      | ',' ->
        emit Comma i;
        loop (i + 1)
      | '.' ->
        emit Dot i;
        loop (i + 1)
      | '*' ->
        emit Star i;
        loop (i + 1)
      | '+' ->
        emit Plus i;
        loop (i + 1)
      | '-' ->
        emit Minus i;
        loop (i + 1)
      | '/' ->
        emit Slash i;
        loop (i + 1)
      | '%' ->
        emit Percent i;
        loop (i + 1)
      | ';' ->
        emit Semicolon i;
        loop (i + 1)
      | '=' ->
        emit Eq i;
        loop (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' ->
        emit Neq i;
        loop (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '>' ->
        emit Neq i;
        loop (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' ->
        emit Leq i;
        loop (i + 2)
      | '<' ->
        emit Lt i;
        loop (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
        emit Geq i;
        loop (i + 2)
      | '>' ->
        emit Gt i;
        loop (i + 1)
      | '|' when i + 1 < n && input.[i + 1] = '|' ->
        emit Concat i;
        loop (i + 2)
      | '$' when i + 1 < n && is_digit input.[i + 1] ->
        let j = ref (i + 1) in
        while !j < n && is_digit input.[!j] do
          incr j
        done;
        (match int_of_string_opt (String.sub input (i + 1) (!j - i - 1)) with
        | Some k when k >= 1 ->
          emit (Token.Param k) i;
          loop !j
        | _ -> error "parameter numbers start at $1" i)
      | c when is_digit c -> lex_number i i
      | c when is_ident_start c -> lex_ident i i
      | c -> error (Printf.sprintf "unexpected character %C" c) i
  in
  loop 0
