(** SQL lexer: input text to located tokens.

    Handles ['...'] string literals with [''] escaping, ["..."] quoted
    identifiers, integer and float literals, [--] line comments and
    [/* ... */] block comments (non-nesting, as in SQL). *)

type error = { message : string; pos : int }

val tokenize : string -> (Token.located list, error) result
(** The result always ends with an [Eof] token. *)

val describe_position : string -> int -> string
(** [describe_position input pos] renders ["line L, column C"] for error
    messages. *)
