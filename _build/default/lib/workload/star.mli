(** A TPC-H-like star schema for the warehouse benchmarks.

    Perm's companion evaluation (ICDE'09) ran on TPC-H; this module
    generates a laptop-scale analogue with the same shape: a wide fact
    table ([lineitem]) joined to dimensions ([orders], [customer], [part]),
    plus a set of analytics queries with provenance variants. Deterministic
    given [seed]. *)

val load : Perm_engine.Engine.t -> scale:int -> ?seed:int -> unit -> unit
(** [scale] is roughly the number of orders; [lineitem] gets about
    [4 * scale] rows, [customer] [scale / 10], [part] [scale / 5]. *)

(** The query set: each is [(name, plain SQL, SELECT PROVENANCE SQL)]. *)
val queries : (string * string * string) list

val revenue_by_brand : string
(** Aggregate revenue per part brand (TPC-H Q1 flavour). *)

val top_customers : string
(** Three-way join + grouping + HAVING + ORDER + LIMIT (Q18 flavour). *)

val segment_revenue : string
(** Full star join with dimension and date-range filters (Q3 flavour). *)
