module Engine = Perm_engine.Engine

let run_or_fail engine sql =
  match Engine.execute engine sql with
  | Ok _ -> ()
  | Error msg -> failwith (Printf.sprintf "forum setup failed on %S: %s" sql msg)

let schema_sql =
  [
    "CREATE TABLE messages (mid int, text text, uid int)";
    "CREATE TABLE users (uid int, name text)";
    "CREATE TABLE imports (mid int, text text, origin text)";
    "CREATE TABLE approved (uid int, mid int)";
    "CREATE VIEW v1 AS SELECT mid, text FROM messages UNION SELECT mid, text \
     FROM imports";
  ]

let load engine =
  List.iter (run_or_fail engine) schema_sql;
  List.iter (run_or_fail engine)
    [
      "INSERT INTO messages VALUES (1, 'lorem ipsum ...', 3), (4, 'hi there ...', 2)";
      "INSERT INTO users VALUES (1, 'Bert'), (2, 'Gert'), (3, 'Gertrud')";
      "INSERT INTO imports VALUES (2, 'hello ...', 'superForum'), (3, 'I don''t ...', 'HiBoard')";
      "INSERT INTO approved VALUES (2, 2), (1, 4), (2, 4), (3, 4)";
    ]

let q1 = "SELECT mid, text FROM messages UNION SELECT mid, text FROM imports"

let q3 =
  "SELECT count(*), text FROM v1 JOIN approved a ON (v1.mid = a.mid) GROUP BY \
   v1.mid, text"

let q1_provenance =
  "SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM \
   imports"

(* Small deterministic PRNG (xorshift) so scaled datasets are reproducible
   without touching global Random state. *)
let make_rng seed =
  let state = ref (if seed = 0 then 0x2545F491 else seed) in
  fun bound ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land 0x3FFFFFFF;
    !state mod bound

let words =
  [|
    "lorem"; "ipsum"; "dolor"; "sit"; "amet"; "hello"; "world"; "forum";
    "post"; "reply"; "thread"; "topic"; "question"; "answer"; "idea";
  |]

let origins = [| "superForum"; "HiBoard"; "otherBoard"; "newsNet" |]

let batched_insert engine table rows =
  (* Chunked multi-row INSERTs keep parsing overhead out of benchmarks. *)
  let rec go = function
    | [] -> ()
    | rows ->
      let batch, rest =
        let rec split n acc = function
          | [] -> (List.rev acc, [])
          | rows when n = 0 -> (List.rev acc, rows)
          | r :: rows -> split (n - 1) (r :: acc) rows
        in
        split 500 [] rows
      in
      run_or_fail engine
        (Printf.sprintf "INSERT INTO %s VALUES %s" table (String.concat ", " batch));
      go rest
  in
  go rows

let load_scaled engine ~messages ~users ?imports ?(approvals_per_message = 3)
    ?(seed = 42) () =
  let imports = match imports with Some i -> i | None -> messages / 2 in
  let rng = make_rng seed in
  let text () =
    Printf.sprintf "'%s %s %s'"
      words.(rng (Array.length words))
      words.(rng (Array.length words))
      words.(rng (Array.length words))
  in
  List.iter (run_or_fail engine) schema_sql;
  batched_insert engine "users"
    (List.init users (fun i -> Printf.sprintf "(%d, 'user%d')" (i + 1) (i + 1)));
  batched_insert engine "messages"
    (List.init messages (fun i ->
         Printf.sprintf "(%d, %s, %d)" (i + 1) (text ()) (1 + rng (max 1 users))));
  batched_insert engine "imports"
    (List.init imports (fun i ->
         Printf.sprintf "(%d, %s, '%s')" (messages + i + 1) (text ())
           origins.(rng (Array.length origins))));
  let approvals =
    List.concat_map
      (fun m ->
        List.init (rng (approvals_per_message + 1)) (fun _ ->
            Printf.sprintf "(%d, %d)" (1 + rng (max 1 users)) (m + 1)))
      (List.init (messages + imports) (fun i -> i))
  in
  if approvals <> [] then batched_insert engine "approved" approvals
