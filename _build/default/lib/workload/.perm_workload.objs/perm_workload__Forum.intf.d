lib/workload/forum.mli: Perm_engine
