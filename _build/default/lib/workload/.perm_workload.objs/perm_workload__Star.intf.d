lib/workload/star.mli: Perm_engine
