lib/workload/forum.ml: Array List Perm_engine Printf String
