lib/workload/star.ml: Array List Perm_engine Printf String
