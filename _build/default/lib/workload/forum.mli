(** The paper's example database (Figure 1): an online forum with [users],
    [messages], [imports] and [approved], plus the view [v1] (query q2) —
    loaded verbatim, or scaled up synthetically for benchmarks. *)

val load : Perm_engine.Engine.t -> unit
(** Creates the four tables and view [v1] with exactly the Figure 1 rows.
    @raise Failure if any setup statement fails (engine bug). *)

val q1 : string
(** All messages, entered or imported (Figure 1). *)

val q3 : string
(** Message approval counts over [v1] (Figure 1). *)

val q1_provenance : string
(** [SELECT PROVENANCE] variant of q1 — its result is paper Figure 2. *)

val load_scaled :
  Perm_engine.Engine.t ->
  messages:int ->
  users:int ->
  ?imports:int ->
  ?approvals_per_message:int ->
  ?seed:int ->
  unit ->
  unit
(** Synthetic forum with the same schema and view: deterministic
    pseudo-random content ([seed] defaults to 42), [imports] defaults to
    [messages / 2], [approvals_per_message] to 3. Message ids are disjoint
    between [messages] and [imports], as in the paper's data. *)
