module Engine = Perm_engine.Engine

let run_or_fail engine sql =
  match Engine.execute engine sql with
  | Ok _ -> ()
  | Error msg -> failwith (Printf.sprintf "star setup failed on %S: %s" sql msg)

let make_rng seed =
  let state = ref (if seed = 0 then 0x9E3779B9 else seed) in
  fun bound ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land 0x3FFFFFFF;
    !state mod bound

let nations = [| "DE"; "CH"; "US"; "JP"; "BR"; "IN"; "FR"; "AU" |]
let segments = [| "BUILDING"; "AUTOMOBILE"; "MACHINERY"; "HOUSEHOLD" |]
let brands = [| "acme"; "globex"; "initech"; "umbrella"; "stark"; "wayne" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-LOW" |]

let batched_insert engine table rows =
  let rec go = function
    | [] -> ()
    | rows ->
      let rec split n acc = function
        | [] -> (List.rev acc, [])
        | rest when n = 0 -> (List.rev acc, rest)
        | r :: rest -> split (n - 1) (r :: acc) rest
      in
      let batch, rest = split 500 [] rows in
      run_or_fail engine
        (Printf.sprintf "INSERT INTO %s VALUES %s" table (String.concat ", " batch));
      go rest
  in
  go rows

let load engine ~scale ?(seed = 7) () =
  let rng = make_rng seed in
  let customers = max 4 (scale / 10) in
  let parts = max 4 (scale / 5) in
  List.iter (run_or_fail engine)
    [
      "CREATE TABLE customer (custkey int, name text, nation text, segment text)";
      "CREATE TABLE part (partkey int, name text, brand text, price float)";
      "CREATE TABLE orders (orderkey int, custkey int, odate date, priority text)";
      "CREATE TABLE lineitem (orderkey int, partkey int, qty int, extendedprice \
       float, discount float)";
    ];
  batched_insert engine "customer"
    (List.init customers (fun i ->
         Printf.sprintf "(%d, 'customer%d', '%s', '%s')" (i + 1) (i + 1)
           nations.(rng (Array.length nations))
           segments.(rng (Array.length segments))));
  batched_insert engine "part"
    (List.init parts (fun i ->
         Printf.sprintf "(%d, 'part%d', '%s', %d.%02d)" (i + 1) (i + 1)
           brands.(rng (Array.length brands))
           (1 + rng 500) (rng 100)));
  batched_insert engine "orders"
    (List.init scale (fun i ->
         (* order dates spread over 1992-1998, as in TPC-H *)
         let y = 1992 + rng 7 and m = 1 + rng 12 and d = 1 + rng 28 in
         Printf.sprintf "(%d, %d, DATE '%04d-%02d-%02d', '%s')" (i + 1)
           (1 + rng customers) y m d
           priorities.(rng (Array.length priorities))));
  let lineitems =
    List.concat_map
      (fun o ->
        List.init
          (1 + rng 6)
          (fun _ ->
            Printf.sprintf "(%d, %d, %d, %d.%02d, 0.0%d)" (o + 1)
              (1 + rng parts) (1 + rng 50) (1 + rng 10000) (rng 100) (rng 10)))
      (List.init scale (fun i -> i))
  in
  batched_insert engine "lineitem" lineitems

let revenue_by_brand =
  "SELECT p.brand, sum(l.extendedprice * (1.0 - l.discount)) AS revenue, \
   count(*) AS items FROM lineitem l JOIN part p ON l.partkey = p.partkey \
   GROUP BY p.brand ORDER BY revenue DESC"

let top_customers =
  "SELECT c.name, count(*) AS orders_cnt, sum(l.qty) AS total_qty FROM \
   customer c JOIN orders o ON c.custkey = o.custkey JOIN lineitem l ON \
   o.orderkey = l.orderkey GROUP BY c.custkey, c.name HAVING sum(l.qty) > 50 \
   ORDER BY total_qty DESC LIMIT 10"

let segment_revenue =
  "SELECT c.segment, sum(l.extendedprice) AS revenue FROM customer c JOIN \
   orders o ON c.custkey = o.custkey JOIN lineitem l ON o.orderkey = \
   l.orderkey WHERE c.segment = 'BUILDING' AND o.odate >= DATE '1995-01-01' \
   GROUP BY c.segment"

let provenance_of sql =
  (* all query texts above start with SELECT *)
  "SELECT PROVENANCE " ^ String.sub sql 7 (String.length sql - 7)

let queries =
  [
    ("Q1-revenue-by-brand", revenue_by_brand, provenance_of revenue_by_brand);
    ("Q18-top-customers", top_customers, provenance_of top_customers);
    ("Q3-segment-revenue", segment_revenue, provenance_of segment_revenue);
  ]
