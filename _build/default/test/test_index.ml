(* Hash index tests: DDL, planner index selection, executor correctness,
   maintenance under DML, interaction with provenance rewriting. *)

module Engine = Perm_engine.Engine
module Planner = Perm_planner.Planner
module Pretty = Perm_algebra.Pretty
module Heap = Perm_storage.Heap
module Schema = Perm_catalog.Schema
module Column = Perm_catalog.Column
module Dtype = Perm_value.Dtype
open Perm_testkit.Kit

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

let setup () =
  let e = engine () in
  exec_all e
    [
      "CREATE TABLE t (a int, b text)";
      "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (2, 'z'), (null, 'n')";
      "CREATE INDEX t_a ON t (a)";
    ];
  e

let heap_tests =
  let schema = Schema.make_exn [ Column.make "a" Dtype.Int ] in
  [
    case "probe finds all matches, newest data included" (fun () ->
        let h = Heap.create schema in
        Heap.create_index h 0;
        ignore (Result.get_ok (Heap.insert_all h [ row [ i 1 ]; row [ i 2 ]; row [ i 1 ] ]));
        Alcotest.(check int) "two ones" 2
          (List.length (List.of_seq (Heap.index_probe h 0 (i 1))));
        ignore (Result.get_ok (Heap.insert h (row [ i 1 ])));
        Alcotest.(check int) "three after insert" 3
          (List.length (List.of_seq (Heap.index_probe h 0 (i 1)))));
    case "null keys not indexed, null probe empty" (fun () ->
        let h = Heap.create schema in
        Heap.create_index h 0;
        ignore (Result.get_ok (Heap.insert h (row [ nl ])));
        Alcotest.(check int) "" 0 (List.length (List.of_seq (Heap.index_probe h 0 nl))));
    case "index built over existing rows" (fun () ->
        let h = Heap.create schema in
        ignore (Result.get_ok (Heap.insert_all h [ row [ i 7 ]; row [ i 7 ] ]));
        Heap.create_index h 0;
        Alcotest.(check int) "" 2 (List.length (List.of_seq (Heap.index_probe h 0 (i 7)))));
    case "truncate empties index contents" (fun () ->
        let h = Heap.create schema in
        Heap.create_index h 0;
        ignore (Result.get_ok (Heap.insert h (row [ i 1 ])));
        Heap.truncate h;
        Alcotest.(check int) "" 0 (List.length (List.of_seq (Heap.index_probe h 0 (i 1)))));
    case "probe on unindexed column raises" (fun () ->
        let h = Heap.create schema in
        Alcotest.check_raises "" (Invalid_argument "Heap.index_probe: column is not indexed")
          (fun () -> ignore (List.of_seq (Heap.index_probe h 0 (i 1)))));
  ]

let ddl_tests =
  [
    case "create and drop index" (fun () ->
        let e = setup () in
        (match exec_ok e "DROP INDEX t_a" with
        | Engine.Message _ -> ()
        | _ -> Alcotest.fail "expected message");
        match Engine.execute e "DROP INDEX t_a" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"does not exist" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "duplicate index name rejected" (fun () ->
        let e = setup () in
        match Engine.execute e "CREATE INDEX t_a ON t (b)" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"already exists" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "index on missing table/column rejected" (fun () ->
        let e = setup () in
        Alcotest.(check bool) "table" true
          (Result.is_error (Engine.execute e "CREATE INDEX i1 ON missing (a)"));
        Alcotest.(check bool) "column" true
          (Result.is_error (Engine.execute e "CREATE INDEX i2 ON t (zz)")));
    case "dropping the table drops its indexes" (fun () ->
        let e = setup () in
        ignore (exec_ok e "DROP TABLE t");
        exec_all e [ "CREATE TABLE t (a int)" ];
        (* the old index name is free again *)
        match Engine.execute e "CREATE INDEX t_a ON t (a)" with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "index name not freed: %s" msg);
    case "dump includes index definitions" (fun () ->
        let e = setup () in
        Alcotest.(check bool) "" true
          (contains ~needle:"CREATE INDEX t_a ON t (a);" (Engine.dump_sql e)));
  ]

let plan_tests =
  [
    case "equality filter over indexed column becomes an IndexScan" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT b FROM t WHERE a = 2" with
        | Ok (_, optimized) ->
          Alcotest.(check bool) "" true
            (contains ~needle:"IndexScan(t)"
               (Pretty.plan_to_string ~show_attrs:false optimized))
        | Error msg -> Alcotest.fail msg);
    case "residual conjuncts stay as a filter" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT b FROM t WHERE a = 2 AND b LIKE 'z%'" with
        | Ok (_, optimized) ->
          let txt = Pretty.plan_to_string ~show_attrs:false optimized in
          Alcotest.(check bool) "index" true (contains ~needle:"IndexScan(t)" txt);
          Alcotest.(check bool) "residual" true (contains ~needle:"LIKE" txt)
        | Error msg -> Alcotest.fail msg);
    case "no index, no IndexScan" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT a FROM t WHERE b = 'x'" with
        | Ok (_, optimized) ->
          Alcotest.(check bool) "" false
            (contains ~needle:"IndexScan"
               (Pretty.plan_to_string ~show_attrs:false optimized))
        | Error msg -> Alcotest.fail msg);
    case "use_indexes=false disables the rewrite" (fun () ->
        let e = setup () in
        Engine.set_optimizer_config e
          { Planner.default_config with Planner.use_indexes = false };
        match Engine.plan_query e "SELECT b FROM t WHERE a = 2" with
        | Ok (_, optimized) ->
          Alcotest.(check bool) "" false
            (contains ~needle:"IndexScan"
               (Pretty.plan_to_string ~show_attrs:false optimized))
        | Error msg -> Alcotest.fail msg);
  ]

let semantics_tests =
  [
    case "index scan returns the same rows as a full scan" (fun () ->
        let e = setup () in
        let with_index = strings_of_rows (query_ok e "SELECT b FROM t WHERE a = 2").Engine.rows in
        Engine.set_optimizer_config e
          { Planner.default_config with Planner.use_indexes = false };
        let without = strings_of_rows (query_ok e "SELECT b FROM t WHERE a = 2").Engine.rows in
        Alcotest.(check rows_testable) ""
          (List.sort compare without) (List.sort compare with_index));
    case "index maintained through UPDATE and DELETE" (fun () ->
        let e = setup () in
        exec_all e [ "UPDATE t SET a = 9 WHERE b = 'y'"; "DELETE FROM t WHERE b = 'z'" ];
        check_rows e "SELECT b FROM t WHERE a = 9" [ [ "y" ] ];
        check_count e "SELECT b FROM t WHERE a = 2" 0);
    case "null equality finds nothing through the index" (fun () ->
        let e = setup () in
        check_count e "SELECT b FROM t WHERE a = null" 0);
    case "provenance query over an indexed table" (fun () ->
        let e = setup () in
        check_rows e "SELECT PROVENANCE b FROM t WHERE a = 1" [ [ "x"; "1"; "x" ] ]);
    case "joins still work with indexes present" (fun () ->
        let e = setup () in
        exec_all e
          [ "CREATE TABLE s (a int)"; "INSERT INTO s VALUES (2)";
            "CREATE INDEX s_a ON s (a)" ];
        check_count e "SELECT 1 FROM t JOIN s ON t.a = s.a" 2);
  ]

let () =
  Alcotest.run "index"
    [
      ("heap", heap_tests);
      ("ddl", ddl_tests);
      ("plans", plan_tests);
      ("semantics", semantics_tests);
    ]
