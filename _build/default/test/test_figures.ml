(* Golden tests for the paper's figures.

   E1 (Figure 1): the example database and queries q1/q2/q3.
   E2 (Figure 2): the exact provenance table of q1, including NULL padding
   and column order.
   E3 (Figure 3): the pipeline stages are all exercised in order.
   E4 (Figure 4): the browser panes. *)

module Engine = Perm_engine.Engine
open Perm_testkit.Kit

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

let figure1_tests =
  [
    case "E1: base tables hold exactly the printed rows" (fun () ->
        let e = forum_engine () in
        check_rows e "SELECT * FROM messages"
          [ [ "1"; "lorem ipsum ..."; "3" ]; [ "4"; "hi there ..."; "2" ] ];
        check_rows e "SELECT * FROM users"
          [ [ "1"; "Bert" ]; [ "2"; "Gert" ]; [ "3"; "Gertrud" ] ];
        check_rows e "SELECT * FROM imports"
          [ [ "2"; "hello ..."; "superForum" ]; [ "3"; "I don't ..."; "HiBoard" ] ];
        check_rows e "SELECT * FROM approved"
          [ [ "2"; "2" ]; [ "1"; "4" ]; [ "2"; "4" ]; [ "3"; "4" ] ]);
    case "E1: q1 returns all four messages" (fun () ->
        check_rows (forum_engine ()) Perm_workload.Forum.q1
          [
            [ "1"; "lorem ipsum ..." ]; [ "2"; "hello ..." ];
            [ "3"; "I don't ..." ]; [ "4"; "hi there ..." ];
          ]);
    case "E1: q2 view equals q1" (fun () ->
        check_same (forum_engine ()) "SELECT * FROM v1" Perm_workload.Forum.q1);
    case "E1: q3 counts approvals, unapproved messages omitted" (fun () ->
        check_rows (forum_engine ()) Perm_workload.Forum.q3
          [ [ "3"; "hi there ..." ]; [ "1"; "hello ..." ] ]);
  ]

(* Figure 2, verbatim from the paper:
   original result attributes | provenance from messages | from imports *)
let figure2_expected =
  [
    [ "1"; "lorem ipsum ..."; "1"; "lorem ipsum ..."; "3"; "null"; "null"; "null" ];
    [ "2"; "hello ..."; "null"; "null"; "null"; "2"; "hello ..."; "superForum" ];
    [ "3"; "I don't ..."; "null"; "null"; "null"; "3"; "I don't ..."; "HiBoard" ];
    [ "4"; "hi there ..."; "4"; "hi there ..."; "2"; "null"; "null"; "null" ];
  ]

let figure2_tests =
  [
    case "E2: provenance of q1 matches Figure 2 exactly" (fun () ->
        let e = forum_engine () in
        check_columns e Perm_workload.Forum.q1_provenance
          [
            "mid"; "text"; "prov_messages_mid"; "prov_messages_text";
            "prov_messages_uid"; "prov_imports_mid"; "prov_imports_text";
            "prov_imports_origin";
          ];
        check_rows e Perm_workload.Forum.q1_provenance figure2_expected);
    case "E2: stable under all optimizer settings" (fun () ->
        let e = forum_engine () in
        Engine.set_optimizer_config e Perm_planner.Planner.disabled_config;
        check_rows e Perm_workload.Forum.q1_provenance figure2_expected);
    case "E2: stable under both aggregation strategies (no agg here, smoke)" (fun () ->
        let e = forum_engine () in
        Engine.set_agg_strategy e Engine.Use_lateral;
        check_rows e Perm_workload.Forum.q1_provenance figure2_expected);
    case "E2: schema text of 2.1 for q3-style query" (fun () ->
        (* the paper's 2.1 prints the provenance schema of the aggregation
           query: count, text, then the provenance columns of messages,
           imports and approved, in that order *)
        let e = forum_engine () in
        check_columns e
          "SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text"
          [
            "count"; "text"; "prov_messages_mid"; "prov_messages_text";
            "prov_messages_uid"; "prov_imports_mid"; "prov_imports_text";
            "prov_imports_origin"; "prov_approved_uid"; "prov_approved_mid";
          ]);
  ]

let figure3_tests =
  [
    case "E3: pipeline stages all run and report" (fun () ->
        let e = forum_engine () in
        match Engine.plan_query e Perm_workload.Forum.q1_provenance with
        | Ok (analyzed, optimized) ->
          (* analyzer output carries the marker; optimizer output does not *)
          (match analyzed with
          | Perm_algebra.Plan.Prov _ -> ()
          | _ -> Alcotest.fail "analyzer must emit the Prov marker");
          let rec no_markers p =
            (match p with
            | Perm_algebra.Plan.Prov _ | Perm_algebra.Plan.Baserel _
            | Perm_algebra.Plan.External _ ->
              Alcotest.fail "marker survived the rewriter"
            | _ -> ());
            List.iter no_markers (Perm_algebra.Plan.children p)
          in
          no_markers optimized
        | Error msg -> Alcotest.fail msg);
    case "E3: view unfolding happens in the analyzer" (fun () ->
        let e = forum_engine () in
        match Engine.plan_query e "SELECT text FROM v1" with
        | Ok (analyzed, _) ->
          let txt = Perm_algebra.Pretty.plan_to_string ~show_attrs:false analyzed in
          Alcotest.(check bool) "unfolded to base scans" true
            (contains ~needle:"Scan(messages)" txt && contains ~needle:"Scan(imports)" txt)
        | Error msg -> Alcotest.fail msg);
  ]

let figure4_tests =
  [
    case "E4: the four browser panes are produced" (fun () ->
        let e = forum_engine () in
        let sql =
          "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text FROM \
           v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text"
        in
        match Engine.explain e sql with
        | Ok panes ->
          Alcotest.(check string) "pane 1: input echoed" sql panes.Engine.input_sql;
          Alcotest.(check bool) "pane 3: original tree shows aggregation" true
            (contains ~needle:"Aggregate" panes.Engine.original_tree);
          Alcotest.(check bool) "pane 4: rewritten tree has the rejoin" true
            (contains ~needle:"LeftJoin" panes.Engine.rewritten_tree);
          Alcotest.(check bool) "pane 2: rewritten SQL is provenance-free SQL" false
            (contains ~needle:"PROVENANCE" panes.Engine.rewritten_sql);
          Alcotest.(check bool) "pane 2 mentions provenance columns" true
            (contains ~needle:"prov_approved_uid" panes.Engine.rewritten_sql)
        | Error msg -> Alcotest.fail msg);
  ]

let () =
  Alcotest.run "figures"
    [
      ("figure1", figure1_tests);
      ("figure2", figure2_tests);
      ("figure3", figure3_tests);
      ("figure4", figure4_tests);
    ]
