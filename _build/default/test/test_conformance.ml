(* SQL conformance suite: systematic, table-driven expression and feature
   coverage. Each entry is one scalar query (mostly FROM-less) with its
   expected rendering — quick to scan, easy to extend, and each case pins a
   distinct behaviour of the expression evaluator / type system. *)

open Perm_testkit.Kit

(* one engine for the whole suite; scalar cases don't touch tables *)
let shared = lazy (forum_engine ())

let scalar sql expected =
  case sql (fun () ->
      let e = Lazy.force shared in
      check_rows e ("SELECT " ^ sql) [ [ expected ] ])

let scalar_err sql =
  case (sql ^ " [errors]") (fun () ->
      let e = Lazy.force shared in
      ignore (query_err e ("SELECT " ^ sql)))

let arithmetic =
  [
    scalar "1 + 2 * 3" "7";
    scalar "(1 + 2) * 3" "9";
    scalar "7 / 2" "3";
    scalar "7.0 / 2" "3.5";
    scalar "7 % 3" "1";
    scalar "-7 % 3" "-1";
    scalar "- (1 + 2)" "-3";
    scalar "1 + 2.5" "3.5";
    scalar "2 * 3.0" "6.0";
    scalar_err "1 / 0";
    scalar_err "1 % 0";
    scalar "1 + null" "null";
    scalar "null * 3" "null";
    scalar "abs(-4)" "4";
    scalar "abs(-4.5)" "4.5";
    scalar "floor(2.7)" "2.0";
    scalar "ceil(2.2)" "3.0";
    scalar "round(2.5)" "3.0";
    scalar "round(-2.5)" "-3.0";
    scalar "sign(-9)" "-1";
    scalar "sign(0)" "0";
    scalar "sqrt(9)" "3.0";
    scalar_err "sqrt(-1)";
    scalar "power(2, 10)" "1024.0";
    scalar "exp(0)" "1.0";
    scalar "ln(1)" "0.0";
    scalar "mod(10, 3)" "1";
    scalar "greatest(1, 9, 3)" "9";
    scalar "least(1.5, 2, 0.5)" "0.5";
  ]

let comparison_and_logic =
  [
    scalar "1 = 1" "true";
    scalar "1 = 1.0" "true";
    scalar "1 <> 2" "true";
    scalar "1 < 2" "true";
    scalar "2 <= 2" "true";
    scalar "3 > 2" "true";
    scalar "3 >= 4" "false";
    scalar "'abc' < 'abd'" "true";
    scalar "null = null" "null";
    scalar "null <> null" "null";
    scalar "1 = null" "null";
    scalar "true AND false" "false";
    scalar "true OR false" "true";
    scalar "NOT true" "false";
    scalar "NOT null" "null";
    scalar "true AND null" "null";
    scalar "false AND null" "false";
    scalar "true OR null" "true";
    scalar "false OR null" "null";
    scalar "null IS NULL" "true";
    scalar "1 IS NULL" "false";
    scalar "1 IS NOT NULL" "true";
    scalar "2 BETWEEN 1 AND 3" "true";
    scalar "0 BETWEEN 1 AND 3" "false";
    scalar "2 NOT BETWEEN 1 AND 3" "false";
    scalar "2 IN (1, 2, 3)" "true";
    scalar "5 IN (1, 2, 3)" "false";
    scalar "5 NOT IN (1, 2, 3)" "true";
    scalar "null IN (1, 2)" "null";
    scalar "5 IN (1, null)" "null";
    scalar_err "1 AND true";
    scalar_err "1 = 'x'";
  ]

let text_ops =
  [
    scalar "'a' || 'b'" "ab";
    scalar "'a' || null" "null";
    scalar "length('hello')" "5";
    scalar "length('')" "0";
    scalar "lower('MiXeD')" "mixed";
    scalar "upper('MiXeD')" "MIXED";
    scalar "trim('  x  ')" "x";
    scalar "reverse('abc')" "cba";
    scalar "substr('hello', 2)" "ello";
    scalar "substr('hello', 2, 3)" "ell";
    scalar "substr('hello', 99)" "";
    scalar "replace('banana', 'an', 'AN')" "bANANa";
    scalar "strpos('hello', 'll')" "3";
    scalar "strpos('hello', 'zz')" "0";
    scalar "starts_with('hello', 'he')" "true";
    scalar "starts_with('hello', 'lo')" "false";
    scalar "repeat('ab', 3)" "ababab";
    scalar "'hello' LIKE 'h%'" "true";
    scalar "'hello' LIKE '_ello'" "true";
    scalar "'hello' LIKE 'h_llo'" "true";
    scalar "'hello' NOT LIKE 'x%'" "true";
    scalar "'100%' LIKE '100%'" "true";
    scalar "coalesce(null, null, 'x')" "x";
    scalar "coalesce(null, null)" "null";
    scalar "nullif('a', 'a')" "null";
    scalar "nullif('a', 'b')" "a";
  ]

let casts_and_case =
  [
    scalar "cast('42' AS int)" "42";
    scalar "cast(' 42 ' AS int)" "42";
    scalar "cast(42 AS text)" "42";
    scalar "cast(42 AS float)" "42.0";
    scalar "cast(2.9 AS int)" "2";
    scalar "cast('t' AS bool)" "true";
    scalar "cast('off' AS bool)" "false";
    scalar "cast(null AS int)" "null";
    scalar "cast(true AS int)" "1";
    scalar_err "cast('zap' AS int)";
    scalar "CASE WHEN true THEN 1 ELSE 2 END" "1";
    scalar "CASE WHEN false THEN 1 ELSE 2 END" "2";
    scalar "CASE WHEN null THEN 1 ELSE 2 END" "2";
    scalar "CASE WHEN false THEN 1 END" "null";
    scalar "CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' ELSE 'c' END" "b";
    scalar "CASE 9 WHEN 1 THEN 'a' END" "null";
    scalar "CASE WHEN 1 = 1 THEN 'x' WHEN 1 / 0 = 1 THEN 'boom' END" "x";
  ]

let dates =
  [
    scalar "DATE '2009-06-29'" "2009-06-29";
    scalar "DATE '2009-06-29' + 3" "2009-07-02";
    scalar "DATE '2009-07-02' - 3" "2009-06-29";
    scalar "DATE '2009-07-02' - DATE '2009-06-29'" "3";
    scalar "DATE '2000-02-29' + 1" "2000-03-01";
    scalar "DATE '1999-12-31' + 1" "2000-01-01";
    scalar "DATE '1969-12-31' + 1" "1970-01-01";
    scalar "DATE '2009-06-29' < DATE '2009-07-02'" "true";
    scalar "DATE '2009-06-29' = DATE '2009-06-29'" "true";
    scalar "DATE '2009-06-29' BETWEEN DATE '2009-01-01' AND DATE '2009-12-31'" "true";
    scalar "date_part('year', DATE '2009-06-29')" "2009";
    scalar "date_part('month', DATE '2009-06-29')" "6";
    scalar "date_part('day', DATE '2009-06-29')" "29";
    scalar "make_date(2009, 6, 29)" "2009-06-29";
    scalar_err "make_date(2009, 2, 30)";
    scalar "cast('2009-06-29' AS date)" "2009-06-29";
    scalar "cast(DATE '2009-06-29' AS text)" "2009-06-29";
    scalar_err "DATE '2009-13-01'";
    scalar "make_date(2400, 2, 29)" "2400-02-29" (* 400-year leap rule *);
    scalar_err "make_date(2100, 2, 29)" (* century non-leap *);
  ]

let aggregates =
  let agg sql expected =
    case sql (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE n (x int, b bool)";
            "INSERT INTO n VALUES (1, true), (2, true), (3, false), (null, null)";
          ];
        check_rows e ("SELECT " ^ sql ^ " FROM n") [ [ expected ] ])
  in
  [
    agg "count(*)" "4";
    agg "count(x)" "3";
    agg "count(DISTINCT b)" "2";
    agg "sum(x)" "6";
    agg "avg(x)" "2.0";
    agg "min(x)" "1";
    agg "max(x)" "3";
    agg "bool_and(b)" "false";
    agg "bool_or(b)" "true";
    agg "bool_and(x > 0)" "true";
    agg "bool_or(x > 5)" "false";
    case "bool_and over empty input is null" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE n (b bool)" ];
        check_rows e "SELECT bool_and(b), bool_or(b) FROM n" [ [ "null"; "null" ] ]);
    case "bool aggregates reject non-bool" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE n (x int)" ];
        ignore (query_err e "SELECT bool_and(x) FROM n"));
    case "bool aggregates group correctly" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE n (g int, b bool)";
            "INSERT INTO n VALUES (1, true), (1, true), (2, true), (2, false)";
          ];
        check_rows e "SELECT g, bool_and(b) FROM n GROUP BY g"
          [ [ "1"; "true" ]; [ "2"; "false" ] ]);
  ]

let date_tables =
  [
    case "date columns: storage, sort, group, join, provenance" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE ev (name text, day date)";
            "INSERT INTO ev VALUES ('b', DATE '2009-07-02'), ('a', DATE '2009-06-29'), ('c', null)";
          ];
        check_rows ~ordered:true e "SELECT name FROM ev ORDER BY day DESC"
          [ [ "b" ]; [ "a" ]; [ "c" ] ];
        check_rows e "SELECT day, count(*) FROM ev GROUP BY day"
          [ [ "2009-06-29"; "1" ]; [ "2009-07-02"; "1" ]; [ "null"; "1" ] ];
        check_rows e "SELECT PROVENANCE name FROM ev WHERE day = DATE '2009-06-29'"
          [ [ "a"; "a"; "2009-06-29" ] ]);
    case "date round-trips through CSV" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE ev (day date)";
            "INSERT INTO ev VALUES (DATE '2009-06-29'), (null)";
          ];
        let path = Filename.temp_file "perm_date" ".csv" in
        ignore (exec_ok e (Printf.sprintf "COPY ev TO '%s'" path));
        exec_all e [ "CREATE TABLE ev2 (day date)" ];
        ignore (exec_ok e (Printf.sprintf "COPY ev2 FROM '%s'" path));
        Sys.remove path;
        check_same e "SELECT * FROM ev" "SELECT * FROM ev2");
    case "date round-trips through dump/restore" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE ev (day date)";
            "INSERT INTO ev VALUES (DATE '2009-06-29')";
          ];
        let e2 = engine () in
        (match Perm_engine.Engine.execute_script e2 (Perm_engine.Engine.dump_sql e) with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "restore failed: %s" msg);
        check_rows e2 "SELECT * FROM ev" [ [ "2009-06-29" ] ]);
  ]

let params =
  let module Engine = Perm_engine.Engine in
  let q e sql values =
    match Engine.query_params e sql values with
    | Ok rs -> strings_of_rows rs.Engine.rows
    | Error msg -> Alcotest.failf "query_params failed: %s" msg
  in
  [
    case "$1 binds a value" (fun () ->
        let e = Lazy.force shared in
        Alcotest.(check rows_testable) ""
          [ [ "hi there ..." ] ]
          (q e "SELECT text FROM messages WHERE mid = $1" [ i 4 ]));
    case "parameters repeat and mix types" (fun () ->
        let e = Lazy.force shared in
        Alcotest.(check rows_testable) ""
          [ [ "8"; "x" ] ]
          (q e "SELECT $1 + $1, $2" [ i 4; s "x" ]));
    case "parameters work under provenance" (fun () ->
        let e = Lazy.force shared in
        Alcotest.(check rows_testable) ""
          [ [ "4"; "hi there ..."; "4"; "hi there ..."; "2" ] ]
          (q e "SELECT PROVENANCE mid, text FROM messages WHERE mid = $1" [ i 4 ]));
    case "text parameters are injection-safe" (fun () ->
        let e = Lazy.force shared in
        Alcotest.(check rows_testable) "" []
          (q e "SELECT mid FROM messages WHERE text = $1"
             [ s "' OR '1'='1" ]));
    case "unbound parameter errors" (fun () ->
        let e = Lazy.force shared in
        match Engine.query_params e "SELECT $2" [ i 1 ] with
        | Error msg ->
          Alcotest.(check bool) "" true (String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected error");
    case "unparameterized execute rejects $n" (fun () ->
        let e = Lazy.force shared in
        ignore (query_err e "SELECT $1"));
    case "null parameter" (fun () ->
        let e = Lazy.force shared in
        Alcotest.(check rows_testable) "" [ [ "true" ] ]
          (q e "SELECT $1 IS NULL" [ nl ]));
    case "date parameter" (fun () ->
        let e = Lazy.force shared in
        Alcotest.(check rows_testable) "" [ [ "2009-07-02" ] ]
          (q e "SELECT $1 + 3" [ Result.get_ok (Perm_value.Value.date_of_ymd 2009 6 29) ]));
  ]

let () =
  Alcotest.run "conformance"
    [
      ("params", params);
      ("arithmetic", arithmetic);
      ("comparison-logic", comparison_and_logic);
      ("text", text_ops);
      ("casts-case", casts_and_case);
      ("dates", dates);
      ("aggregates", aggregates);
      ("date-tables", date_tables);
    ]
