(* Engine integration tests: the full Fig. 3 pipeline, DDL/DML, scripts,
   eager provenance, explain panes, error surfaces. *)

module Engine = Perm_engine.Engine
module Planner = Perm_planner.Planner
open Perm_testkit.Kit

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

let ddl_tests =
  [
    case "create, insert, select, drop" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (1), (2)" ];
        check_count e "SELECT * FROM t" 2;
        ignore (exec_ok e "DROP TABLE t");
        let msg = query_err e "SELECT * FROM t" in
        Alcotest.(check bool) "" true (contains ~needle:"does not exist" msg));
    case "duplicate create rejected" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)" ];
        match Engine.execute e "CREATE TABLE t (b int)" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"already exists" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "create table as select" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE t (a int, b text)";
            "INSERT INTO t VALUES (1, 'x'), (5, 'y')";
            "CREATE TABLE big AS SELECT a * 10 AS a10, b FROM t WHERE a > 2";
          ];
        check_rows e "SELECT * FROM big" [ [ "50"; "y" ] ]);
    case "ctas derives types and dedups names" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE t (a int)";
            "INSERT INTO t VALUES (1)";
            "CREATE TABLE two AS SELECT a, a FROM t";
          ];
        check_columns e "SELECT * FROM two" [ "a"; "a_1" ]);
    case "create view validates now" (fun () ->
        let e = engine () in
        match Engine.execute e "CREATE VIEW v AS SELECT a FROM missing" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"does not exist" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "drop view" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)"; "CREATE VIEW v AS SELECT a FROM t" ];
        ignore (exec_ok e "DROP VIEW v");
        match Engine.execute e "DROP VIEW v" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    case "dml on views rejected" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)"; "CREATE VIEW v AS SELECT a FROM t" ];
        match Engine.execute e "INSERT INTO v VALUES (1)" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"view" msg)
        | Ok _ -> Alcotest.fail "expected error");
  ]

let dml_tests =
  [
    case "insert reports count and coerces" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a float, b text)" ];
        (match exec_ok e "INSERT INTO t VALUES (1, 'x'), (2.5, null)" with
        | Engine.Affected 2 -> ()
        | _ -> Alcotest.fail "expected 2 rows");
        check_rows e "SELECT a FROM t" [ [ "1.0" ]; [ "2.5" ] ]);
    case "insert type mismatch" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)" ];
        match Engine.execute e "INSERT INTO t VALUES ('oops')" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"expects int" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "insert arity mismatch" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int, b int)" ];
        match Engine.execute e "INSERT INTO t VALUES (1)" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"expected 2" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "insert select" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (1), (2)";
            "CREATE TABLE t2 (a int)"; "INSERT INTO t2 SELECT a * 10 FROM t";
          ];
        check_rows e "SELECT * FROM t2" [ [ "10" ]; [ "20" ] ]);
    case "insert computed expressions" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (1 + 2 * 3)" ];
        check_rows e "SELECT * FROM t" [ [ "7" ] ]);
    case "delete with predicate (3VL: unknown rows stay)" (fun () ->
        let e = engine () in
        exec_all e
          [ "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (1), (2), (null)" ];
        (match exec_ok e "DELETE FROM t WHERE a > 1" with
        | Engine.Affected 1 -> ()
        | _ -> Alcotest.fail "expected 1 deleted");
        check_rows e "SELECT * FROM t" [ [ "1" ]; [ "null" ] ]);
    case "delete all" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (1), (2)" ];
        (match exec_ok e "DELETE FROM t" with
        | Engine.Affected 2 -> ()
        | _ -> Alcotest.fail "expected 2");
        check_count e "SELECT * FROM t" 0);
    case "delete duplicates together" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (2), (2), (3)" ];
        ignore (exec_ok e "DELETE FROM t WHERE a = 2");
        check_rows e "SELECT * FROM t" [ [ "3" ] ]);
    case "update with expressions" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int, b text)"; "INSERT INTO t VALUES (1, 'x'), (5, 'y')" ];
        (match exec_ok e "UPDATE t SET a = a + 100, b = b || '!' WHERE a > 2" with
        | Engine.Affected 1 -> ()
        | _ -> Alcotest.fail "expected 1");
        check_rows e "SELECT * FROM t" [ [ "1"; "x" ]; [ "105"; "y!" ] ]);
    case "update unknown column" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)" ];
        match Engine.execute e "UPDATE t SET z = 1" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"does not exist" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "update with subquery predicate" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (1), (2)";
            "CREATE TABLE keys (k int)"; "INSERT INTO keys VALUES (2)";
          ];
        ignore (exec_ok e "UPDATE t SET a = 0 WHERE a IN (SELECT k FROM keys)");
        check_rows e "SELECT * FROM t" [ [ "0" ]; [ "1" ] ]);
  ]

let script_tests =
  [
    case "script runs in order" (fun () ->
        let e = engine () in
        match
          Engine.execute_script e
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT a FROM t;"
        with
        | Ok [ Engine.Message _; Engine.Affected 1; Engine.Rows rs ] ->
          Alcotest.(check int) "" 1 (List.length rs.Engine.rows)
        | Ok _ -> Alcotest.fail "unexpected outcomes"
        | Error msg -> Alcotest.fail msg);
    case "script stops at first failure, prior effects kept" (fun () ->
        let e = engine () in
        (match
           Engine.execute_script e "CREATE TABLE t (a int); SELECT nope FROM t; CREATE TABLE u (a int)"
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
        check_count e "SELECT * FROM t" 0;
        let msg = query_err e "SELECT * FROM u" in
        Alcotest.(check bool) "u not created" true (contains ~needle:"does not exist" msg));
  ]

let eager_tests =
  [
    case "store provenance materializes and registers" (fun () ->
        let e = forum_engine () in
        ignore (exec_ok e "STORE PROVENANCE SELECT mid, text FROM messages INTO mp");
        check_count e "SELECT * FROM mp" 2;
        match Engine.provenance_columns e "mp" with
        | Some cols ->
          Alcotest.(check (list string)) ""
            [ "prov_messages_mid"; "prov_messages_text"; "prov_messages_uid" ] cols
        | None -> Alcotest.fail "not registered");
    case "store provenance of an explicit provenance query" (fun () ->
        let e = forum_engine () in
        ignore (exec_ok e "STORE PROVENANCE SELECT PROVENANCE mid FROM messages INTO mp2");
        check_columns e "SELECT * FROM mp2"
          [ "mid"; "prov_messages_mid"; "prov_messages_text"; "prov_messages_uid" ]);
    case "eager equals lazy" (fun () ->
        let e = forum_engine () in
        ignore
          (exec_ok e
             "STORE PROVENANCE SELECT count(*) AS c, text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text INTO eager_t");
        check_same e "SELECT * FROM eager_t"
          "SELECT PROVENANCE count(*) AS c, text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text");
    case "dropping the stored table unregisters it" (fun () ->
        let e = forum_engine () in
        ignore (exec_ok e "STORE PROVENANCE SELECT mid FROM messages INTO mp3");
        ignore (exec_ok e "DROP TABLE mp3");
        Alcotest.(check bool) "" true (Engine.provenance_columns e "mp3" = None));
  ]

let explain_tests =
  [
    case "explain produces the four panes" (fun () ->
        let e = forum_engine () in
        match Engine.explain e Perm_workload.Forum.q1_provenance with
        | Ok panes ->
          Alcotest.(check bool) "original has Provenance node" true
            (contains ~needle:"Provenance(influence)" panes.Engine.original_tree);
          Alcotest.(check bool) "rewritten has no marker" false
            (contains ~needle:"Provenance(" panes.Engine.rewritten_tree);
          Alcotest.(check bool) "rewritten sql mentions prov col" true
            (contains ~needle:"prov_messages_mid" panes.Engine.rewritten_sql);
          Alcotest.(check bool) "optimized tree present" true
            (String.length panes.Engine.optimized_tree > 0)
        | Error msg -> Alcotest.fail msg);
    case "explain reports aggregation strategy" (fun () ->
        let e = forum_engine () in
        match Engine.explain e "SELECT PROVENANCE count(*) FROM approved" with
        | Ok panes -> Alcotest.(check (list string)) "" [ "join" ] panes.Engine.agg_strategies
        | Error msg -> Alcotest.fail msg);
    case "explain statement outcome" (fun () ->
        let e = forum_engine () in
        match exec_ok e "EXPLAIN SELECT mid FROM messages" with
        | Engine.Explained _ -> ()
        | _ -> Alcotest.fail "expected Explained");
    case "rewritten sql of apply-free plans re-parses and agrees" (fun () ->
        let e = forum_engine () in
        let sql = Perm_workload.Forum.q1_provenance in
        match Engine.explain e sql with
        | Ok panes ->
          let back = query_ok e panes.Engine.rewritten_sql in
          let orig = query_ok e sql in
          Alcotest.(check rows_testable) "same rows"
            (List.sort compare (strings_of_rows orig.Engine.rows))
            (List.sort compare (strings_of_rows back.Engine.rows))
        | Error msg -> Alcotest.fail msg);
  ]

let pipeline_tests =
  [
    case "rewriter runs unconditionally but is identity without markers" (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT mid FROM messages");
        match Engine.last_report e with
        | Some r -> Alcotest.(check int) "" 0 r.Perm_provenance.Rewriter.rewritten_markers
        | None -> Alcotest.fail "no report");
    case "optimizer config is honoured per session" (fun () ->
        let e = forum_engine () in
        Engine.set_optimizer_config e Planner.disabled_config;
        check_count e Perm_workload.Forum.q1_provenance 4);
    case "stats reflect storage" (fun () ->
        let e = forum_engine () in
        let stats = Engine.stats e in
        Alcotest.(check int) "rows" 3 (stats.Planner.table_rows "users");
        Alcotest.(check int) "distinct" 3 (stats.Planner.table_distinct "users" "uid");
        Alcotest.(check int) "missing table" 0 (stats.Planner.table_rows "missing"));
    case "query on non-row statement errors" (fun () ->
        let e = engine () in
        match Engine.query e "CREATE TABLE t (a int)" with
        | Error msg -> Alcotest.(check bool) "" true (contains ~needle:"did not return rows" msg)
        | Ok _ -> Alcotest.fail "expected error");
    case "runtime errors surface as Error, not exceptions" (fun () ->
        let e = forum_engine () in
        let msg = query_err e "SELECT 1 / (uid - uid) FROM users" in
        Alcotest.(check string) "" "division by zero" msg);
  ]

let () =
  Alcotest.run "engine"
    [
      ("ddl", ddl_tests);
      ("dml", dml_tests);
      ("scripts", script_tests);
      ("eager-provenance", eager_tests);
      ("explain", explain_tests);
      ("pipeline", pipeline_tests);
    ]
