(* Workload generator tests: determinism, schema shape, and that every
   generated query (plain + provenance variant) runs. *)

module Engine = Perm_engine.Engine
module Forum = Perm_workload.Forum
module Star = Perm_workload.Star
open Perm_testkit.Kit

let forum_tests =
  [
    case "figure 1 data loads verbatim" (fun () ->
        let e = forum_engine () in
        check_count e "SELECT * FROM messages" 2;
        check_count e "SELECT * FROM v1" 4);
    case "scaled forum respects sizes" (fun () ->
        let e = engine () in
        Forum.load_scaled e ~messages:200 ~users:20 ~imports:50 ();
        check_rows e "SELECT count(*) FROM messages" [ [ "200" ] ];
        check_rows e "SELECT count(*) FROM users" [ [ "20" ] ];
        check_rows e "SELECT count(*) FROM imports" [ [ "50" ] ]);
    case "message ids are disjoint between messages and imports" (fun () ->
        let e = engine () in
        Forum.load_scaled e ~messages:100 ~users:10 ();
        check_rows e
          "SELECT count(*) FROM messages m JOIN imports i ON m.mid = i.mid"
          [ [ "0" ] ]);
    case "deterministic for a fixed seed" (fun () ->
        let gen () =
          let e = engine () in
          Forum.load_scaled e ~messages:50 ~users:5 ~seed:99 ();
          strings_of_rows (query_ok e "SELECT * FROM messages").Engine.rows
        in
        Alcotest.(check rows_testable) "" (gen ()) (gen ()));
    case "different seeds differ" (fun () ->
        let gen seed =
          let e = engine () in
          Forum.load_scaled e ~messages:50 ~users:5 ~seed ();
          strings_of_rows (query_ok e "SELECT * FROM messages").Engine.rows
        in
        Alcotest.(check bool) "" false (gen 1 = gen 2));
    case "approvals reference existing users and messages" (fun () ->
        let e = engine () in
        Forum.load_scaled e ~messages:100 ~users:10 ();
        check_rows e
          "SELECT count(*) FROM approved a WHERE a.uid NOT IN (SELECT uid FROM users)"
          [ [ "0" ] ]);
    case "forum queries run with provenance" (fun () ->
        let e = engine () in
        Forum.load_scaled e ~messages:100 ~users:10 ();
        ignore (query_ok e Forum.q1);
        ignore (query_ok e Forum.q3);
        ignore (query_ok e Forum.q1_provenance));
  ]

let star_tests =
  [
    case "star loads all four tables" (fun () ->
        let e = engine () in
        Star.load e ~scale:50 ();
        check_rows e "SELECT count(*) FROM orders" [ [ "50" ] ];
        List.iter
          (fun table ->
            let rs = query_ok e (Printf.sprintf "SELECT count(*) FROM %s" table) in
            match strings_of_rows rs.Engine.rows with
            | [ [ n ] ] -> Alcotest.(check bool) (table ^ " nonempty") true (int_of_string n > 0)
            | _ -> Alcotest.fail "bad count")
          [ "customer"; "part"; "lineitem" ]);
    case "lineitems reference existing orders and parts" (fun () ->
        let e = engine () in
        Star.load e ~scale:50 ();
        check_rows e
          "SELECT count(*) FROM lineitem l WHERE l.orderkey NOT IN (SELECT orderkey FROM orders)"
          [ [ "0" ] ];
        check_rows e
          "SELECT count(*) FROM lineitem l WHERE l.partkey NOT IN (SELECT partkey FROM part)"
          [ [ "0" ] ]);
    case "star deterministic for a fixed seed" (fun () ->
        let gen () =
          let e = engine () in
          Star.load e ~scale:30 ~seed:5 ();
          strings_of_rows (query_ok e "SELECT * FROM orders").Engine.rows
        in
        Alcotest.(check rows_testable) "" (gen ()) (gen ()));
    case "every star query runs, plain and with provenance" (fun () ->
        let e = engine () in
        Star.load e ~scale:60 ();
        List.iter
          (fun (_, q, qp) ->
            ignore (query_ok e q);
            ignore (query_ok e qp))
          Star.queries);
    case "provenance variants expose star provenance columns" (fun () ->
        let e = engine () in
        Star.load e ~scale:30 ();
        let _, _, qp = List.nth Star.queries 0 in
        let rs = query_ok e qp in
        Alcotest.(check bool) "" true
          (List.mem "prov_lineitem_extendedprice" rs.Engine.columns
          && List.mem "prov_part_brand" rs.Engine.columns));
  ]

let () =
  Alcotest.run "workload" [ ("forum", forum_tests); ("star", star_tests) ]
