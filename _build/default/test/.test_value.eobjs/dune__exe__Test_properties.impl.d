test/test_properties.ml: Alcotest Array List Perm_engine Perm_planner Perm_provenance Perm_testkit Perm_value Printf QCheck String
