test/test_transactions.mli:
