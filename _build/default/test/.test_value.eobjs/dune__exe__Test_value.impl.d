test/test_value.ml: Alcotest Gen List Perm_testkit Perm_value QCheck Result
