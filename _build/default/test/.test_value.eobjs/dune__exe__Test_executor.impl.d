test/test_executor.ml: Alcotest Perm_testkit
