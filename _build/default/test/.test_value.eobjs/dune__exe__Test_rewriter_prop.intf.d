test/test_rewriter_prop.mli:
