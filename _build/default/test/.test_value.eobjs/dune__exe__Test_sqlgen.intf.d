test/test_sqlgen.mli:
