test/test_engine.ml: Alcotest List Perm_engine Perm_planner Perm_provenance Perm_testkit Perm_workload String
