test/test_workload.ml: Alcotest List Perm_engine Perm_testkit Perm_workload Printf
