test/test_witness.mli:
