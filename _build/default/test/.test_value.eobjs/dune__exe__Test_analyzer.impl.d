test/test_analyzer.ml: Alcotest List Perm_algebra Perm_engine Perm_testkit String
