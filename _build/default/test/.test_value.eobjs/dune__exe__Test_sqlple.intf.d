test/test_sqlple.mli:
