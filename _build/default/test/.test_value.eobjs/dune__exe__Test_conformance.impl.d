test/test_conformance.ml: Alcotest Filename Lazy Perm_engine Perm_testkit Perm_value Printf Result String Sys
