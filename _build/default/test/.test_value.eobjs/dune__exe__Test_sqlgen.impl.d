test/test_sqlgen.ml: Alcotest List Perm_engine Perm_provenance Perm_testkit Perm_workload String
