test/test_rewriter.ml: Alcotest List Perm_algebra Perm_engine Perm_provenance Perm_testkit Perm_workload
