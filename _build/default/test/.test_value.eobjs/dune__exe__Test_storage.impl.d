test/test_storage.ml: Alcotest Array List Perm_catalog Perm_storage Perm_testkit Perm_value QCheck Result
