test/test_algebra.ml: Alcotest List Option Perm_algebra Perm_testkit Perm_value Result String
