test/test_transactions.ml: Alcotest Perm_engine Perm_testkit Result
