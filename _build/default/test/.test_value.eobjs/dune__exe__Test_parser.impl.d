test/test_parser.ml: Alcotest List Perm_sql Perm_testkit Perm_value QCheck String
