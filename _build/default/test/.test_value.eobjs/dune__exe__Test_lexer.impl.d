test/test_lexer.ml: Alcotest List Perm_sql Perm_testkit String
