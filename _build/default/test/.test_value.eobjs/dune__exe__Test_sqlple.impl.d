test/test_sqlple.ml: Alcotest List Perm_engine Perm_testkit Perm_workload String
