test/test_index.ml: Alcotest List Perm_algebra Perm_catalog Perm_engine Perm_planner Perm_storage Perm_testkit Perm_value Result String
