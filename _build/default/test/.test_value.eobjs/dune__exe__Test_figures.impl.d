test/test_figures.ml: Alcotest List Perm_algebra Perm_engine Perm_planner Perm_testkit Perm_workload String
