test/test_catalog.ml: Alcotest List Perm_catalog Perm_testkit Perm_value Result
