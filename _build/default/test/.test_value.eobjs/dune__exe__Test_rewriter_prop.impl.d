test/test_rewriter_prop.ml: Alcotest Array List Perm_algebra Perm_executor Perm_planner Perm_provenance Perm_storage Perm_testkit Perm_value QCheck Seq String
