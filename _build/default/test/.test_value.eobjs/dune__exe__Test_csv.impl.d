test/test_csv.ml: Alcotest Filename Gen List Out_channel Perm_engine Perm_testkit Perm_workload Printf QCheck Result String Sys
