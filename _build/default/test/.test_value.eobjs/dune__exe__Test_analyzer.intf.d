test/test_analyzer.mli:
