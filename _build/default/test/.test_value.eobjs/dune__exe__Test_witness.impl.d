test/test_witness.ml: Alcotest Array List Perm_engine Perm_provenance Perm_testkit Perm_value Perm_workload
