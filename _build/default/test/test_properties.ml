(* Property-based system tests: provenance invariants on random databases
   and random queries (DESIGN.md §7).

   (i)   projecting q+ onto the original attributes yields q (as a set;
         provenance replication can only duplicate);
   (ii)  every non-NULL witness embedded in q+ is a row of its base table;
   (iii) replay: re-running a monotone q on just the witnesses of one
         result row reproduces that row (sufficiency);
   (iv)  the optimizer preserves semantics;
   (v)   both aggregation rewrite strategies agree;
   (vi)  eager (STORE PROVENANCE) equals lazy (SELECT PROVENANCE). *)

module Engine = Perm_engine.Engine
module Planner = Perm_planner.Planner
open Perm_testkit.Kit

(* ------------------------------------------------------------------ *)
(* Random databases                                                    *)
(* ------------------------------------------------------------------ *)

type db = { pt_rows : (int option * string * int option) list;
            qt_rows : (int option * string) list }

let gen_db =
  QCheck.Gen.(
    let cell = oneof [ return None; map (fun n -> Some n) (int_range 0 4) ] in
    let word = oneofl [ "a"; "b"; "c" ] in
    let pt_row = triple cell word cell in
    let qt_row = pair cell word in
    map2
      (fun pt qt -> { pt_rows = pt; qt_rows = qt })
      (list_size (int_range 0 8) pt_row)
      (list_size (int_range 0 6) qt_row))

let lit = function None -> "null" | Some n -> string_of_int n

let load_db db =
  let e = engine () in
  exec_all e [ "CREATE TABLE pt (k int, v text, w int)"; "CREATE TABLE qt (x int, y text)" ];
  List.iter
    (fun (k, v, w) ->
      ignore
        (exec_ok e
           (Printf.sprintf "INSERT INTO pt VALUES (%s, '%s', %s)" (lit k) v (lit w))))
    db.pt_rows;
  List.iter
    (fun (x, y) ->
      ignore
        (exec_ok e (Printf.sprintf "INSERT INTO qt VALUES (%s, '%s')" (lit x) y)))
    db.qt_rows;
  e

(* ------------------------------------------------------------------ *)
(* Random queries                                                      *)
(* ------------------------------------------------------------------ *)

(* [monotone] marks queries safe for the replay invariant (no aggregation,
   no difference, no duplicate elimination across witnesses). *)
type gq = { sql : string; arity : int; has_agg : bool; monotone : bool }

let gen_query =
  QCheck.Gen.(
    let pred =
      oneofl
        [
          "k > 1"; "k = w"; "w IS NULL"; "v = 'a'"; "v LIKE 'b%'";
          "k + coalesce(w, 0) < 5"; "k IS NOT NULL AND v <> 'c'";
        ]
    in
    let where = oneof [ return ""; map (fun p -> " WHERE " ^ p) pred ] in
    let spj =
      map
        (fun w -> { sql = "SELECT k, v FROM pt" ^ w; arity = 2; has_agg = false; monotone = true })
        where
    in
    let proj_expr =
      map
        (fun w ->
          { sql = "SELECT k + coalesce(w, 0) AS s, v FROM pt" ^ w; arity = 2; has_agg = false; monotone = true })
        where
    in
    let join =
      map
        (fun w ->
          {
            sql = "SELECT pt.v, qt.y FROM pt JOIN qt ON pt.k = qt.x" ^ w;
            arity = 2;
            has_agg = false;
            monotone = true;
          })
        where
    in
    let left_join =
      return
        {
          sql = "SELECT pt.k, qt.y FROM pt LEFT JOIN qt ON pt.k = qt.x";
          arity = 2;
          has_agg = false;
          monotone = false (* NULL-padding is not monotone under replay *);
        }
    in
    let agg =
      oneofl
        [
          { sql = "SELECT v, count(*) FROM pt GROUP BY v"; arity = 2; has_agg = true; monotone = false };
          { sql = "SELECT k % 2, sum(w) FROM pt WHERE k IS NOT NULL GROUP BY k % 2"; arity = 2; has_agg = true; monotone = false };
          { sql = "SELECT count(*), max(v) FROM pt"; arity = 2; has_agg = true; monotone = false };
        ]
    in
    let union_all =
      map
        (fun w ->
          {
            sql = "SELECT k, v FROM pt" ^ w ^ " UNION ALL SELECT x, y FROM qt";
            arity = 2;
            has_agg = false;
            monotone = true;
          })
        where
    in
    let union_distinct =
      return
        {
          sql = "SELECT v FROM pt UNION SELECT y FROM qt";
          arity = 1;
          has_agg = false;
          monotone = false (* dedup: replay may merge witnesses, still sound but skip *);
        }
    in
    let distinct =
      return { sql = "SELECT DISTINCT v FROM pt"; arity = 1; has_agg = false; monotone = false }
    in
    let semi =
      return
        {
          sql = "SELECT v FROM pt WHERE k IN (SELECT x FROM qt)";
          arity = 1;
          has_agg = false;
          monotone = true;
        }
    in
    (* composed shapes: joins under unions, grouped subqueries, nested
       provenance-relevant operator stacks *)
    let composed =
      oneofl
        [
          {
            sql =
              "SELECT pt.v FROM pt JOIN qt ON pt.k = qt.x UNION ALL SELECT v \
               FROM pt WHERE w IS NULL";
            arity = 1;
            has_agg = false;
            monotone = true;
          };
          {
            sql =
              "SELECT g.v, g.c FROM (SELECT v, count(*) AS c FROM pt GROUP \
               BY v) g WHERE g.c > 1";
            arity = 2;
            has_agg = true;
            monotone = false;
          };
          {
            sql =
              "SELECT DISTINCT pt.v FROM pt LEFT JOIN qt ON pt.k = qt.x \
               WHERE pt.k IS NOT NULL";
            arity = 1;
            has_agg = false;
            monotone = false;
          };
          {
            sql =
              "SELECT v, k FROM pt WHERE EXISTS (SELECT 1 FROM qt WHERE \
               qt.x = pt.k AND qt.y = pt.v)";
            arity = 2;
            has_agg = false;
            monotone = true;
          };
          {
            sql =
              "SELECT sum(c) FROM (SELECT k, count(*) AS c FROM pt WHERE k \
               IS NOT NULL GROUP BY k) s";
            arity = 1;
            has_agg = true;
            monotone = false;
          };
          {
            sql = "SELECT k, v FROM pt EXCEPT SELECT x, y FROM qt";
            arity = 2;
            has_agg = false;
            monotone = false;
          };
          {
            sql = "SELECT v FROM pt INTERSECT SELECT y FROM qt";
            arity = 1;
            has_agg = false;
            monotone = false;
          };
          {
            sql =
              "SELECT v FROM pt WHERE k IN (SELECT x FROM qt WHERE y <> 'c') \
               AND w IS NOT NULL";
            arity = 1;
            has_agg = false;
            monotone = true;
          };
          {
            sql =
              "SELECT coalesce(cast(k AS text), v) || '!' FROM pt ORDER BY 1 \
               LIMIT 5";
            arity = 1;
            has_agg = false;
            monotone = false (* LIMIT: replay may pick different survivors *);
          };
          {
            sql =
              "SELECT pt.k, (SELECT count(*) FROM qt WHERE qt.x = pt.k) FROM \
               pt WHERE pt.k IS NOT NULL";
            arity = 2;
            has_agg = false;
            monotone = false (* correlated counts are not monotone *);
          };
        ]
    in
    frequency
      [
        (2, spj); (1, proj_expr); (2, join); (1, left_join); (2, agg);
        (1, union_all); (1, union_distinct); (1, distinct); (1, semi);
        (3, composed);
      ])

let arb_case =
  QCheck.make
    ~print:(fun (db, q) ->
      Printf.sprintf "pt=%d rows, qt=%d rows, q=%s" (List.length db.pt_rows)
        (List.length db.qt_rows) q.sql)
    QCheck.Gen.(pair gen_db gen_query)

let provenance_sql q = "SELECT PROVENANCE " ^ String.sub q.sql 7 (String.length q.sql - 7)

let rows_of e sql = strings_of_rows (query_ok e sql).Engine.rows

let take n l = List.filteri (fun idx _ -> idx < n) l
let drop n l = List.filteri (fun idx _ -> idx >= n) l

(* derive the witness-block layout (relation, start position, width) from
   the result columns, handling repeated relation instances *)
let witness_blocks e sql =
  let rs = query_ok e sql in
  let blocks =
    Perm_provenance.Witness.blocks ~columns:rs.Engine.columns
      ~known_rels:[ "pt"; "qt" ]
  in
  let triples =
    List.map
      (fun (b : Perm_provenance.Witness.block) ->
        match b.Perm_provenance.Witness.positions with
        | start :: _ -> (b.Perm_provenance.Witness.rel, start, List.length b.Perm_provenance.Witness.positions)
        | [] -> ("?", 0, 0))
      blocks
  in
  (rs, triples)

let prop_original_projection (db, q) =
  let e = load_db db in
  let orig = List.sort_uniq compare (rows_of e q.sql) in
  let prov = rows_of e (provenance_sql q) in
  let projected = List.sort_uniq compare (List.map (take q.arity) prov) in
  orig = projected

let prop_witnesses_exist (db, q) =
  let e = load_db db in
  let pt = rows_of e "SELECT * FROM pt" in
  let qt = rows_of e "SELECT * FROM qt" in
  let rs, blocks = witness_blocks e (provenance_sql q) in
  List.for_all
    (fun row ->
      let row = Array.to_list (Array.map Perm_value.Value.to_string row) in
      List.for_all
        (fun (table, start, width) ->
          let cells = take width (drop start row) in
          List.for_all (fun c -> c = "null") cells
          || List.mem cells (if table = "pt" then pt else qt))
        blocks)
    rs.Engine.rows

let prop_replay (db, q) =
  QCheck.assume q.monotone;
  let e = load_db db in
  let rs, blocks = witness_blocks e (provenance_sql q) in
  match rs.Engine.rows with
  | [] -> true
  | rows ->
    (* replay every provenance row's witnesses *)
    List.for_all
      (fun row ->
        let row = Array.to_list (Array.map Perm_value.Value.to_string row) in
        let replay = engine () in
        exec_all replay
          [ "CREATE TABLE pt (k int, v text, w int)"; "CREATE TABLE qt (x int, y text)" ];
        List.iter
          (fun (table, start, width) ->
            let cells = take width (drop start row) in
            if not (List.for_all (fun c -> c = "null") cells) then
              let quote c =
                (* witness text columns: v and y are always non-null words *)
                if c = "null" then "null"
                else match int_of_string_opt c with
                  | Some _ -> c
                  | None -> "'" ^ c ^ "'"
              in
              ignore
                (exec_ok replay
                   (Printf.sprintf "INSERT INTO %s VALUES (%s)" table
                      (String.concat ", " (List.map quote cells)))))
          blocks;
        let replayed = rows_of replay q.sql in
        List.mem (take q.arity row) replayed)
      rows

let prop_optimizer_equivalence (db, q) =
  let run config =
    let e = load_db db in
    Engine.set_optimizer_config e config;
    List.sort compare (rows_of e (provenance_sql q))
  in
  run Planner.default_config = run Planner.disabled_config

let prop_strategies_agree (db, q) =
  QCheck.assume q.has_agg;
  let run strategy =
    let e = load_db db in
    Engine.set_agg_strategy e strategy;
    List.sort compare (rows_of e (provenance_sql q))
  in
  run Engine.Use_join = run Engine.Use_lateral

let prop_eager_equals_lazy (db, q) =
  let e = load_db db in
  ignore (exec_ok e (Printf.sprintf "STORE PROVENANCE %s INTO stored" q.sql));
  let eager = List.sort compare (rows_of e "SELECT * FROM stored") in
  let lazy_ = List.sort compare (rows_of e (provenance_sql q)) in
  eager = lazy_

let t name count prop = qcheck (QCheck.Test.make ~name ~count arb_case prop)

let () =
  Alcotest.run "properties"
    [
      ( "provenance-invariants",
        [
          t "(i) original projection" 150 prop_original_projection;
          t "(ii) witnesses exist in base relations" 150 prop_witnesses_exist;
          t "(iii) replay reproduces result rows" 80 prop_replay;
          t "(iv) optimizer preserves provenance semantics" 100 prop_optimizer_equivalence;
          t "(v) aggregation strategies agree" 100 prop_strategies_agree;
          t "(vi) eager equals lazy" 80 prop_eager_equals_lazy;
        ] );
    ]
