(* Plan-to-SQL deparser tests: for Apply-free plans the rewritten SQL must
   re-parse, re-analyze, and produce the same rows — the Perm browser's
   pane 2 is executable. *)

module Engine = Perm_engine.Engine
module Sqlgen = Perm_engine.Sqlgen
open Perm_testkit.Kit

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

(* deparse the rewritten plan of [sql] and check the SQL text evaluates to
   the same result *)
let check_roundtrip e sql =
  match Engine.explain e sql with
  | Error msg -> Alcotest.failf "explain failed for %S: %s" sql msg
  | Ok panes ->
    let back =
      match Engine.query e panes.Engine.rewritten_sql with
      | Ok rs -> strings_of_rows rs.Engine.rows
      | Error msg ->
        Alcotest.failf "deparsed SQL failed for %S: %s\nSQL was: %s" sql msg
          panes.Engine.rewritten_sql
    in
    let orig = strings_of_rows (query_ok e sql).Engine.rows in
    Alcotest.(check rows_testable) sql (List.sort compare orig) (List.sort compare back)

let corpus =
  [
    "SELECT mid, text FROM messages";
    "SELECT PROVENANCE mid, text FROM messages";
    Perm_workload.Forum.q1;
    Perm_workload.Forum.q1_provenance;
    "SELECT PROVENANCE text FROM v1 BASERELATION";
    "SELECT PROVENANCE DISTINCT uid FROM approved";
    "SELECT PROVENANCE mid FROM messages INTERSECT SELECT mid FROM approved";
    "SELECT PROVENANCE mid FROM messages EXCEPT SELECT mid FROM imports";
    "SELECT PROVENANCE mid, text FROM messages ORDER BY mid DESC LIMIT 1";
    "SELECT m.text FROM messages m LEFT JOIN approved a ON m.mid = a.mid WHERE a.uid IS NULL";
    "SELECT CASE WHEN mid > 2 THEN upper(text) ELSE text END FROM messages";
    "SELECT coalesce(cast(mid AS text), '?') || '!' FROM messages";
  ]

let roundtrip_tests =
  [
    case "rewritten SQL of the corpus re-executes identically" (fun () ->
        let e = forum_engine () in
        List.iter (check_roundtrip e) corpus);
  ]

let shape_tests =
  [
    case "provenance columns keep their public names" (fun () ->
        let e = forum_engine () in
        match Engine.explain e Perm_workload.Forum.q1_provenance with
        | Ok panes ->
          Alcotest.(check bool) "" true
            (contains ~needle:"AS prov_messages_mid" panes.Engine.rewritten_sql
            || contains ~needle:"AS prov_messages_mid_" panes.Engine.rewritten_sql)
        | Error msg -> Alcotest.fail msg);
    case "semi joins deparse as EXISTS" (fun () ->
        let e = forum_engine () in
        match Engine.plan_query e "SELECT text FROM messages WHERE mid IN (SELECT mid FROM approved)" with
        | Ok (_, optimized) ->
          let sql = Sqlgen.plan_to_sql optimized in
          Alcotest.(check bool) "" true (contains ~needle:"EXISTS" sql)
        | Error msg -> Alcotest.fail msg);
    case "aggregates deparse with GROUP BY" (fun () ->
        let e = forum_engine () in
        match Engine.plan_query e Perm_workload.Forum.q3 with
        | Ok (_, optimized) ->
          let sql = Sqlgen.plan_to_sql optimized in
          Alcotest.(check bool) "group" true (contains ~needle:"GROUP BY" sql);
          Alcotest.(check bool) "count" true (contains ~needle:"count(*)" sql)
        | Error msg -> Alcotest.fail msg);
    case "correlated apply uses LATERAL rendering (display only)" (fun () ->
        let e = forum_engine () in
        match
          Engine.plan_query e
            "SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text"
        with
        | Ok (analyzed, _) -> (
          (* force the lateral strategy so the deparser sees an Apply *)
          let rewritten, _ =
            Perm_provenance.Rewriter.rewrite
              ~config:
                { Perm_provenance.Rewriter.agg_mode =
                    Perm_provenance.Rewriter.Fixed Perm_provenance.Rewriter.Agg_lateral }
              analyzed
          in
          let sql = Sqlgen.plan_to_sql rewritten in
          Alcotest.(check bool) "" true (contains ~needle:"LATERAL" sql))
        | Error msg -> Alcotest.fail msg);
  ]

let () =
  Alcotest.run "sqlgen"
    [ ("roundtrip", roundtrip_tests); ("shape", shape_tests) ]
