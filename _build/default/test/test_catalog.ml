(* Unit tests for the catalog layer: columns, schemas, table/view registry. *)

module Catalog = Perm_catalog.Catalog
module Schema = Perm_catalog.Schema
module Column = Perm_catalog.Column
module Dtype = Perm_value.Dtype
open Perm_testkit.Kit

let col n ty = Column.make n ty

let schema_tests =
  [
    case "make lowercases names" (fun () ->
        let c = col "MiD" Dtype.Int in
        Alcotest.(check string) "" "mid" c.Column.name);
    case "make rejects duplicates" (fun () ->
        Alcotest.(check bool) "" true
          (Result.is_error (Schema.make [ col "a" Dtype.Int; col "A" Dtype.Text ])));
    case "make rejects empty" (fun () ->
        Alcotest.(check bool) "" true (Result.is_error (Schema.make [])));
    case "find is case-insensitive with position" (fun () ->
        let s = Schema.make_exn [ col "a" Dtype.Int; col "b" Dtype.Text ] in
        match Schema.find s "B" with
        | Some (1, c) -> Alcotest.(check string) "" "b" c.Column.name
        | _ -> Alcotest.fail "expected position 1");
    case "find missing" (fun () ->
        let s = Schema.make_exn [ col "a" Dtype.Int ] in
        Alcotest.(check bool) "" true (Schema.find s "z" = None));
    case "names and types in order" (fun () ->
        let s = Schema.make_exn [ col "a" Dtype.Int; col "b" Dtype.Text ] in
        Alcotest.(check (list string)) "" [ "a"; "b" ] (Schema.names s);
        Alcotest.(check int) "" 2 (Schema.arity s));
    case "equal" (fun () ->
        let s1 = Schema.make_exn [ col "a" Dtype.Int ] in
        let s2 = Schema.make_exn [ col "a" Dtype.Int ] in
        let s3 = Schema.make_exn [ col "a" Dtype.Text ] in
        Alcotest.(check bool) "same" true (Schema.equal s1 s2);
        Alcotest.(check bool) "different type" false (Schema.equal s1 s3));
  ]

let catalog_tests =
  let schema = Schema.make_exn [ col "a" Dtype.Int ] in
  [
    case "add and find table" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_table c "T1" schema));
        match Catalog.find_table c "t1" with
        | Some def -> Alcotest.(check string) "" "t1" def.Catalog.table_name
        | None -> Alcotest.fail "missing table");
    case "duplicate table rejected" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_table c "t" schema));
        Alcotest.(check bool) "" true (Result.is_error (Catalog.add_table c "T" schema)));
    case "view and table share a namespace" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_view c "v" ~sql:"SELECT 1" schema));
        Alcotest.(check bool) "" true (Result.is_error (Catalog.add_table c "v" schema)));
    case "drop table" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_table c "t" schema));
        Alcotest.(check bool) "drop ok" true (Result.is_ok (Catalog.drop_table c "t"));
        Alcotest.(check bool) "gone" true (Catalog.find_table c "t" = None);
        Alcotest.(check bool) "double drop" true (Result.is_error (Catalog.drop_table c "t")));
    case "drop view does not drop tables" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_table c "t" schema));
        Alcotest.(check bool) "" true (Result.is_error (Catalog.drop_view c "t")));
    case "tables listed sorted" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_table c "zeta" schema));
        ignore (Result.get_ok (Catalog.add_table c "alpha" schema));
        Alcotest.(check (list string)) "" [ "alpha"; "zeta" ]
          (List.map (fun d -> d.Catalog.table_name) (Catalog.tables c)));
    case "view stores sql text" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_view c "v" ~sql:"SELECT a FROM t" schema));
        match Catalog.find_view c "v" with
        | Some def -> Alcotest.(check string) "" "SELECT a FROM t" def.Catalog.view_sql
        | None -> Alcotest.fail "missing view");
    case "mem covers both" (fun () ->
        let c = Catalog.create () in
        ignore (Result.get_ok (Catalog.add_table c "t" schema));
        ignore (Result.get_ok (Catalog.add_view c "v" ~sql:"x" schema));
        Alcotest.(check bool) "t" true (Catalog.mem c "t");
        Alcotest.(check bool) "v" true (Catalog.mem c "V");
        Alcotest.(check bool) "w" false (Catalog.mem c "w"));
  ]

let () =
  Alcotest.run "catalog" [ ("schema", schema_tests); ("catalog", catalog_tests) ]
