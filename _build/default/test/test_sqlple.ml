(* SQL-PLE surface tests (paper §2.4): every language construct the demo
   shows, executed end to end on the paper's database. *)

module Engine = Perm_engine.Engine
open Perm_testkit.Kit

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

let keyword_tests =
  [
    case "SELECT PROVENANCE defaults to influence" (fun () ->
        let e = forum_engine () in
        check_columns e "SELECT PROVENANCE mid FROM messages"
          [ "mid"; "prov_messages_mid"; "prov_messages_text"; "prov_messages_uid" ]);
    case "ON CONTRIBUTION (INFLUENCE) is explicit default" (fun () ->
        let e = forum_engine () in
        check_same e "SELECT PROVENANCE mid FROM messages"
          "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) mid FROM messages");
    case "ON CONTRIBUTION (COPY) differs where values are not copied" (fun () ->
        let e = forum_engine () in
        (* uid is not copied: its relation (users) would not qualify *)
        check_rows e
          "SELECT PROVENANCE ON CONTRIBUTION (COPY) count(*) FROM users"
          [ [ "3"; "null"; "null" ]; [ "3"; "null"; "null" ]; [ "3"; "null"; "null" ] ]);
    case "provenance column naming matches the paper (2.1)" (fun () ->
        let e = forum_engine () in
        check_columns e Perm_workload.Forum.q1_provenance
          [
            "mid"; "text"; "prov_messages_mid"; "prov_messages_text";
            "prov_messages_uid"; "prov_imports_mid"; "prov_imports_text";
            "prov_imports_origin";
          ]);
    case "provenance marker in a subquery only affects that subquery" (fun () ->
        let e = forum_engine () in
        check_columns e
          "SELECT mid FROM (SELECT PROVENANCE mid, text FROM messages) m"
          [ "mid" ]);
    case "querying provenance attributes with plain SQL (paper 2.4)" (fun () ->
        let e = forum_engine () in
        check_rows e
          "SELECT text, prov_imports_origin FROM (SELECT PROVENANCE count(*) AS cnt, \
           text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text) AS \
           prov WHERE cnt > 0 AND prov_imports_origin = 'superForum'"
          [ [ "hello ..."; "superForum" ] ]);
    case "provenance result stored as a view" (fun () ->
        let e = forum_engine () in
        exec_all e
          [ "CREATE VIEW pv AS SELECT PROVENANCE mid, text FROM messages" ];
        check_count e "SELECT prov_messages_uid FROM pv" 2);
  ]

let baserelation_tests =
  [
    case "view treated as base relation (paper 2.4 example)" (fun () ->
        let e = forum_engine () in
        check_columns e "SELECT PROVENANCE text FROM v1 BASERELATION"
          [ "text"; "prov_v1_mid"; "prov_v1_text" ]);
    case "baserelation on subquery" (fun () ->
        let e = forum_engine () in
        check_rows e
          "SELECT PROVENANCE m FROM (SELECT mid * 2 AS m FROM messages) sq \
           BASERELATION WHERE m = 2"
          [ [ "2"; "2" ] ]);
    case "baserelation uses the alias as relation name" (fun () ->
        let e = forum_engine () in
        check_columns e "SELECT PROVENANCE text FROM v1 AS myview BASERELATION"
          [ "text"; "prov_myview_mid"; "prov_myview_text" ]);
    case "baserelation without provenance marker is transparent" (fun () ->
        let e = forum_engine () in
        check_same e "SELECT text FROM v1 BASERELATION" "SELECT text FROM v1");
    case "baserelation + provenance list rejected" (fun () ->
        let e = forum_engine () in
        let msg = query_err e "SELECT PROVENANCE mid FROM v1 BASERELATION PROVENANCE (mid)" in
        Alcotest.(check bool) "" true (contains ~needle:"cannot be combined" msg));
    case "baserelation on a subquery wrapping a join is fine" (fun () ->
        let e = forum_engine () in
        check_count e
          "SELECT PROVENANCE mid FROM (SELECT m.mid FROM messages m JOIN \
           approved a ON m.mid = a.mid) j BASERELATION"
          3);
    case "baserelation directly after a join chain is rejected" (fun () ->
        let e = forum_engine () in
        match
          Engine.query e
            "SELECT PROVENANCE m.mid FROM messages m JOIN approved a ON m.mid = a.mid BASERELATION"
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
  ]

let external_tests =
  [
    case "manual provenance attributes propagate unchanged" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE c (x int, prov_db text, prov_id int)";
            "INSERT INTO c VALUES (1, 'gdb', 10), (2, 'kegg', 20)";
          ];
        check_rows e
          "SELECT PROVENANCE x FROM c PROVENANCE (prov_db, prov_id) WHERE x = 2"
          [ [ "2"; "kegg"; "20" ] ]);
    case "unknown provenance attribute rejected" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE c (x int)" ];
        let msg = query_err e "SELECT PROVENANCE x FROM c PROVENANCE (nope)" in
        Alcotest.(check bool) "" true (contains ~needle:"does not exist" msg));
    case "external keeps declared column order" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE c (x int, p1 text, p2 text)";
            "INSERT INTO c VALUES (1, 'a', 'b')";
          ];
        check_rows e "SELECT PROVENANCE x FROM c PROVENANCE (p2, p1)"
          [ [ "1"; "b"; "a" ] ]);
    case "external provenance without marker is transparent" (fun () ->
        let e = engine () in
        exec_all e
          [ "CREATE TABLE c (x int, p text)"; "INSERT INTO c VALUES (1, 'p')" ];
        check_rows e "SELECT x FROM c PROVENANCE (p)" [ [ "1" ] ]);
    case "mix of external and computed provenance" (fun () ->
        let e = forum_engine () in
        exec_all e
          [
            "CREATE TABLE notes (mid int, note text, prov_author text)";
            "INSERT INTO notes VALUES (1, 'check this', 'alice')";
          ];
        check_rows e
          "SELECT PROVENANCE m.text, n.note FROM messages m JOIN notes n \
           PROVENANCE (prov_author) ON m.mid = n.mid"
          [ [ "lorem ipsum ..."; "check this"; "1"; "lorem ipsum ..."; "3"; "alice" ] ]);
  ]

let nested_tests =
  [
    case "leading provenance applies to a whole union" (fun () ->
        let e = forum_engine () in
        check_count e Perm_workload.Forum.q1_provenance 4);
    case "provenance of provenance propagates inner columns" (fun () ->
        let e = forum_engine () in
        let rs =
          query_ok e
            "SELECT PROVENANCE mid FROM (SELECT PROVENANCE mid, text FROM messages) m"
        in
        (* inner prov columns appear both as data and as outer provenance *)
        Alcotest.(check bool) "has inner prov as data" true
          (List.mem "prov_messages_mid" rs.Engine.columns);
        Alcotest.(check int) "rows" 2 (List.length rs.Engine.rows));
    case "incremental: stop at stored provenance and continue later" (fun () ->
        let e = forum_engine () in
        ignore (exec_ok e "STORE PROVENANCE SELECT mid, text FROM messages INTO stage1");
        check_rows e
          "SELECT PROVENANCE text FROM stage1 PROVENANCE (prov_messages_mid, \
           prov_messages_text, prov_messages_uid) WHERE mid = 4"
          [ [ "hi there ..."; "4"; "hi there ..."; "2" ] ]);
  ]

let () =
  Alcotest.run "sqlple"
    [
      ("keywords", keyword_tests);
      ("baserelation", baserelation_tests);
      ("external", external_tests);
      ("nested", nested_tests);
    ]
