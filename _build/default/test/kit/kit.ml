(* Shared helpers for the Perm test suites. *)

module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
module Tuple = Perm_storage.Tuple
module Engine = Perm_engine.Engine

(* Value shorthands *)
let i n = Value.Int n
let f x = Value.Float x
let s x = Value.Text x
let b x = Value.Bool x
let nl = Value.Null

let row vs = Array.of_list vs

(* A fresh engine; [forum] loads the paper's Figure 1 data. *)
let engine () = Engine.create ()

let forum_engine () =
  let e = Engine.create () in
  Perm_workload.Forum.load e;
  e

let exec_ok e sql =
  match Engine.execute e sql with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "unexpected error on %S: %s" sql msg

let exec_all e statements = List.iter (fun sql -> ignore (exec_ok e sql)) statements

let query_ok e sql =
  match Engine.query e sql with
  | Ok rs -> rs
  | Error msg -> Alcotest.failf "unexpected error on %S: %s" sql msg

let query_err e sql =
  match Engine.query e sql with
  | Ok _ -> Alcotest.failf "expected an error on %S" sql
  | Error msg -> msg

(* Render rows as string lists for readable assertions. *)
let strings_of_rows rows =
  List.map (fun r -> Array.to_list (Array.map Value.to_string r)) rows

let rows_testable = Alcotest.(list (list string))

let check_rows ?(ordered = false) e sql expected =
  let rs = query_ok e sql in
  let actual = strings_of_rows rs.Engine.rows in
  let norm l = if ordered then l else List.sort compare l in
  Alcotest.(check rows_testable) sql (norm expected) (norm actual)

let check_columns e sql expected =
  let rs = query_ok e sql in
  Alcotest.(check (list string)) (sql ^ " [columns]") expected rs.Engine.columns

let check_count e sql expected =
  let rs = query_ok e sql in
  Alcotest.(check int) (sql ^ " [row count]") expected (List.length rs.Engine.rows)

(* Two queries must return identical multisets of rows. *)
let check_same e sql_a sql_b =
  let a = strings_of_rows (query_ok e sql_a).Engine.rows in
  let b = strings_of_rows (query_ok e sql_b).Engine.rows in
  Alcotest.(check rows_testable)
    (Printf.sprintf "%s == %s" sql_a sql_b)
    (List.sort compare a) (List.sort compare b)

let case name fn = Alcotest.test_case name `Quick fn
let qcheck t = QCheck_alcotest.to_alcotest t
