test/kit/kit.ml: Alcotest Array List Perm_engine Perm_storage Perm_value Perm_workload Printf QCheck_alcotest
