(* Unit tests for the algebra IR: attributes, expressions, plan schemas,
   builtins, tree printing. *)

module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Builtins = Perm_algebra.Builtins
module Pretty = Perm_algebra.Pretty
module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
open Perm_testkit.Kit

let a_int name = Attr.fresh name Dtype.Int
let a_text name = Attr.fresh name Dtype.Text
let scan attrs = Plan.Scan { table = "r"; attrs }

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

let attr_tests =
  [
    case "fresh ids are unique" (fun () ->
        let a = a_int "x" and b = a_int "x" in
        Alcotest.(check bool) "" false (Attr.equal a b));
    case "renamed keeps type, new id" (fun () ->
        let a = a_int "x" in
        let b = Attr.renamed "y" a in
        Alcotest.(check string) "name" "y" b.Attr.name;
        Alcotest.(check bool) "type" true (Dtype.equal b.Attr.ty Dtype.Int);
        Alcotest.(check bool) "id" false (Attr.equal a b));
  ]

let expr_tests =
  [
    case "attrs collects references" (fun () ->
        let a = a_int "a" and b = a_int "b" in
        let e = Expr.Binop (Expr.Add, Expr.Attr a, Expr.Func ("abs", [ Expr.Attr b ])) in
        Alcotest.(check int) "" 2 (Attr.Set.cardinal (Expr.attrs e)));
    case "substitute replaces mapped attrs only" (fun () ->
        let a = a_int "a" and b = a_int "b" in
        let e = Expr.Binop (Expr.Add, Expr.Attr a, Expr.Attr b) in
        let map = Attr.Map.singleton a (Expr.Const (Value.Int 7)) in
        match Expr.substitute map e with
        | Expr.Binop (Expr.Add, Expr.Const (Value.Int 7), Expr.Attr b') ->
          Alcotest.(check bool) "" true (Attr.equal b b')
        | _ -> Alcotest.fail "unexpected substitution");
    case "conjuncts flattens and chains" (fun () ->
        let t = Expr.Const (Value.Bool true) in
        let e = Expr.Binop (Expr.And, Expr.Binop (Expr.And, t, t), t) in
        Alcotest.(check int) "" 3 (List.length (Expr.conjuncts e)));
    case "conjoin of empty list is true" (fun () ->
        match Expr.conjoin [] with
        | Expr.Const (Value.Bool true) -> ()
        | _ -> Alcotest.fail "expected TRUE");
    case "conjoin inverts conjuncts" (fun () ->
        let a = Expr.Attr (a_int "a") in
        let parts = [ a; a; a ] in
        Alcotest.(check int) "" 3 (List.length (Expr.conjuncts (Expr.conjoin parts))));
    case "type_of arithmetic promotes" (fun () ->
        let e = Expr.Binop (Expr.Add, Expr.Attr (a_int "a"), Expr.Const (Value.Float 1.)) in
        Alcotest.(check string) "" "float" (Dtype.to_string (Expr.type_of e)));
    case "type_of comparison is bool" (fun () ->
        let e = Expr.Binop (Expr.Lt, Expr.Const (Value.Int 1), Expr.Const (Value.Int 2)) in
        Alcotest.(check string) "" "bool" (Dtype.to_string (Expr.type_of e)));
    case "equal is structural" (fun () ->
        let a = a_int "a" in
        let e1 = Expr.Binop (Expr.Add, Expr.Attr a, Expr.Const (Value.Int 1)) in
        let e2 = Expr.Binop (Expr.Add, Expr.Attr a, Expr.Const (Value.Int 1)) in
        Alcotest.(check bool) "" true (Expr.equal e1 e2));
  ]

let schema_tests =
  [
    case "project schema" (fun () ->
        let a = a_int "a" and b = a_text "b" in
        let out = a_int "x" in
        let p = Plan.Project { child = scan [ a; b ]; cols = [ (Expr.Attr a, out) ] } in
        Alcotest.(check int) "" 1 (Plan.arity p));
    case "join schema concatenates" (fun () ->
        let a = a_int "a" and b = a_int "b" in
        let j =
          Plan.Join { kind = Plan.Inner; left = scan [ a ]; right = scan [ b ]; pred = None }
        in
        Alcotest.(check int) "" 2 (Plan.arity j));
    case "semi/anti keep left schema" (fun () ->
        let a = a_int "a" and b = a_int "b" in
        List.iter
          (fun kind ->
            let j = Plan.Join { kind; left = scan [ a ]; right = scan [ b ]; pred = None } in
            Alcotest.(check int) "" 1 (Plan.arity j))
          [ Plan.Semi; Plan.Anti ]);
    case "apply scalar appends one attr" (fun () ->
        let a = a_int "a" and b = a_int "b" and out = a_int "s" in
        let p = Plan.Apply { kind = Plan.A_scalar out; left = scan [ a ]; right = scan [ b ] } in
        Alcotest.(check int) "" 2 (Plan.arity p));
    case "aggregate schema: groups then aggs" (fun () ->
        let a = a_int "a" in
        let g = a_int "g" and c = a_int "count" in
        let p =
          Plan.Aggregate
            {
              child = scan [ a ];
              group_by = [ (Expr.Attr a, g) ];
              aggs = [ { Plan.agg = Plan.Count_star; distinct = false; arg = None; agg_out = c } ];
            }
        in
        Alcotest.(check (list string)) "" [ "g"; "count" ]
          (List.map (fun (x : Attr.t) -> x.Attr.name) (Plan.schema p)));
    case "prov marker appends sources" (fun () ->
        let a = a_int "a" in
        let pa = a_int "prov_r_a" in
        let p =
          Plan.Prov
            {
              child = scan [ a ];
              semantics = Plan.Influence;
              sources = [ { Plan.prov_attr = pa; prov_rel = "r"; prov_col = "a" } ];
            }
        in
        Alcotest.(check int) "" 2 (Plan.arity p));
    case "map_children rebuilds" (fun () ->
        let a = a_int "a" in
        let p = Plan.Distinct (scan [ a ]) in
        let seen = ref 0 in
        let p' =
          Plan.map_children
            (fun c ->
              incr seen;
              c)
            p
        in
        Alcotest.(check int) "visited" 1 !seen;
        Alcotest.(check int) "arity" (Plan.arity p) (Plan.arity p'));
    case "count_operators" (fun () ->
        let a = a_int "a" in
        let p =
          Plan.Distinct
            (Plan.Filter { child = scan [ a ]; pred = Expr.Const (Value.Bool true) })
        in
        Alcotest.(check int) "" 3 (Plan.count_operators p));
  ]

let builtins_tests =
  [
    case "find is case-insensitive" (fun () ->
        Alcotest.(check bool) "" true (Builtins.find "COALESCE" <> None));
    case "unknown function" (fun () ->
        Alcotest.(check bool) "" true (Builtins.find "frobnicate" = None));
    case "abs eval" (fun () ->
        let sg = Option.get (Builtins.find "abs") in
        Alcotest.(check string) "" "3"
          (Value.to_string (Result.get_ok (sg.Builtins.eval [ i (-3) ]))));
    case "coalesce picks first non-null" (fun () ->
        let sg = Option.get (Builtins.find "coalesce") in
        Alcotest.(check string) "" "7"
          (Value.to_string (Result.get_ok (sg.Builtins.eval [ nl; i 7; i 9 ]))));
    case "substr clamps" (fun () ->
        let sg = Option.get (Builtins.find "substr") in
        Alcotest.(check string) "middle" "bc"
          (Value.to_string (Result.get_ok (sg.Builtins.eval [ s "abcd"; i 2; i 2 ])));
        Alcotest.(check string) "past end" ""
          (Value.to_string (Result.get_ok (sg.Builtins.eval [ s "ab"; i 9 ]))));
    case "nullif" (fun () ->
        let sg = Option.get (Builtins.find "nullif") in
        Alcotest.(check string) "equal -> null" "null"
          (Value.to_string (Result.get_ok (sg.Builtins.eval [ i 1; i 1 ])));
        Alcotest.(check string) "diff -> first" "1"
          (Value.to_string (Result.get_ok (sg.Builtins.eval [ i 1; i 2 ]))));
    case "replace" (fun () ->
        let sg = Option.get (Builtins.find "replace") in
        Alcotest.(check string) "" "xbxb"
          (Value.to_string (Result.get_ok (sg.Builtins.eval [ s "abab"; s "a"; s "x" ]))));
    case "mod by zero errors" (fun () ->
        let sg = Option.get (Builtins.find "mod") in
        Alcotest.(check bool) "" true (Result.is_error (sg.Builtins.eval [ i 5; i 0 ])));
    case "greatest/least skip nulls" (fun () ->
        let g = Option.get (Builtins.find "greatest") in
        let l = Option.get (Builtins.find "least") in
        Alcotest.(check string) "greatest" "9"
          (Value.to_string (Result.get_ok (g.Builtins.eval [ nl; i 9; i 3 ])));
        Alcotest.(check string) "least" "3"
          (Value.to_string (Result.get_ok (l.Builtins.eval [ nl; i 9; i 3 ]))));
  ]

let pretty_tests =
  [
    case "tree rendering shows operators and details" (fun () ->
        let a = a_int "a" in
        let p =
          Plan.Filter
            {
              child = scan [ a ];
              pred = Expr.Binop (Expr.Gt, Expr.Attr a, Expr.Const (Value.Int 1));
            }
        in
        let txt = Pretty.plan_to_string ~show_attrs:false p in
        Alcotest.(check bool) "has Select" true (contains ~needle:"Select" txt);
        Alcotest.(check bool) "has Scan" true (contains ~needle:"Scan(r)" txt));
    case "plan_summary nests" (fun () ->
        let a = a_int "a" in
        let p = Plan.Distinct (scan [ a ]) in
        Alcotest.(check string) "" "Distinct(Scan(r))" (Pretty.plan_summary p));
    case "show_attrs prints unique names" (fun () ->
        let a = a_int "a" in
        let p = scan [ a ] in
        let txt = Pretty.plan_to_string ~show_attrs:true p in
        Alcotest.(check bool) "" true (contains ~needle:"a#" txt));
  ]

let () =
  Alcotest.run "algebra"
    [
      ("attr", attr_tests);
      ("expr", expr_tests);
      ("schema", schema_tests);
      ("builtins", builtins_tests);
      ("pretty", pretty_tests);
    ]
