(* CSV codec, COPY FROM/TO round trips, and SQL dump/restore. *)

module Csv = Perm_engine.Csv
module Engine = Perm_engine.Engine
open Perm_testkit.Kit

let parse_ok text =
  match Csv.parse text with
  | Ok rows -> rows
  | Error msg -> Alcotest.failf "csv parse failed: %s" msg

let field_t = Alcotest.(option string)
let rows_t = Alcotest.(list (list field_t))

let codec_tests =
  [
    case "simple rows" (fun () ->
        Alcotest.(check rows_t) ""
          [ [ Some "1"; Some "a" ]; [ Some "2"; Some "b" ] ]
          (parse_ok "1,a\n2,b\n"));
    case "no trailing newline" (fun () ->
        Alcotest.(check rows_t) "" [ [ Some "1"; Some "a" ] ] (parse_ok "1,a"));
    case "crlf" (fun () ->
        Alcotest.(check rows_t) ""
          [ [ Some "1" ]; [ Some "2" ] ]
          (parse_ok "1\r\n2\r\n"));
    case "empty unquoted field is null" (fun () ->
        Alcotest.(check rows_t) "" [ [ Some "1"; None; Some "3" ] ] (parse_ok "1,,3"));
    case "quoted empty field is empty string" (fun () ->
        Alcotest.(check rows_t) "" [ [ Some "" ] ] (parse_ok "\"\""));
    case "quoted comma and newline" (fun () ->
        Alcotest.(check rows_t) ""
          [ [ Some "a,b"; Some "c\nd" ] ]
          (parse_ok "\"a,b\",\"c\nd\""));
    case "doubled quotes" (fun () ->
        Alcotest.(check rows_t) "" [ [ Some "say \"hi\"" ] ]
          (parse_ok "\"say \"\"hi\"\"\""));
    case "unterminated quote errors" (fun () ->
        Alcotest.(check bool) "" true (Result.is_error (Csv.parse "\"abc")));
    case "render quotes when needed" (fun () ->
        Alcotest.(check string) "" "a,\"b,c\",,\"say \"\"hi\"\"\""
          (Csv.render_row [ Some "a"; Some "b,c"; None; Some "say \"hi\"" ]));
    qcheck
      (QCheck.Test.make ~name:"render/parse round-trips a row" ~count:300
         QCheck.(
           list_of_size (Gen.int_range 1 5)
             (option (string_gen_of_size (Gen.int_bound 8) Gen.printable)))
         (fun fields ->
           (* unquoted empty renders identically to None; normalize *)
           let norm = List.map (function Some "" -> Some "" | f -> f) fields in
           let no_cr =
             List.for_all
               (function Some s -> not (String.contains s '\r') | None -> true)
               norm
           in
           QCheck.assume no_cr;
           match Csv.parse (Csv.render_row norm ^ "\n") with
           | Ok [ parsed ] -> parsed = norm
           | _ -> false));
  ]

let copy_tests =
  [
    case "copy to and back" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE t (a int, b text, c float)";
            "INSERT INTO t VALUES (1, 'x,y', 1.5), (2, null, null), (3, 'say \"hi\"', 0.25)";
          ];
        let path = Filename.temp_file "perm_csv" ".csv" in
        (match exec_ok e (Printf.sprintf "COPY t TO '%s'" path) with
        | Engine.Affected 3 -> ()
        | _ -> Alcotest.fail "expected 3 rows exported");
        exec_all e [ "CREATE TABLE t2 (a int, b text, c float)" ];
        (match exec_ok e (Printf.sprintf "COPY t2 FROM '%s'" path) with
        | Engine.Affected 3 -> ()
        | _ -> Alcotest.fail "expected 3 rows imported");
        Sys.remove path;
        check_same e "SELECT * FROM t" "SELECT * FROM t2");
    case "copy from with wrong arity fails" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int, b int)" ];
        let path = Filename.temp_file "perm_csv" ".csv" in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc "1,2\n3\n");
        let r = Engine.execute e (Printf.sprintf "COPY t FROM '%s'" path) in
        Sys.remove path;
        match r with
        | Error msg ->
          Alcotest.(check bool) "mentions row" true
            (String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected error");
    case "copy from coerces by column type" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int, b bool)" ];
        let path = Filename.temp_file "perm_csv" ".csv" in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc "42,true\n,false\n");
        ignore (exec_ok e (Printf.sprintf "COPY t FROM '%s'" path));
        Sys.remove path;
        check_rows e "SELECT * FROM t" [ [ "42"; "true" ]; [ "null"; "false" ] ]);
    case "copy from bad value reports column" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)" ];
        let path = Filename.temp_file "perm_csv" ".csv" in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc "oops\n");
        let r = Engine.execute e (Printf.sprintf "COPY t FROM '%s'" path) in
        Sys.remove path;
        Alcotest.(check bool) "" true (Result.is_error r));
    case "copy missing file" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE t (a int)" ];
        Alcotest.(check bool) "" true
          (Result.is_error (Engine.execute e "COPY t FROM '/nonexistent/x.csv'")));
  ]

let dump_tests =
  [
    case "dump and restore reproduces data and views" (fun () ->
        let e = forum_engine () in
        let script = Engine.dump_sql e in
        let e2 = engine () in
        (match Engine.execute_script e2 script with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "restore failed: %s" msg);
        List.iter
          (fun sql ->
            let a = strings_of_rows (query_ok e sql).Engine.rows in
            let b = strings_of_rows (query_ok e2 sql).Engine.rows in
            Alcotest.(check rows_testable) sql (List.sort compare a) (List.sort compare b))
          [
            "SELECT * FROM messages"; "SELECT * FROM users";
            "SELECT * FROM imports"; "SELECT * FROM approved";
            "SELECT * FROM v1";
            Perm_workload.Forum.q1_provenance;
          ]);
    case "dump quotes text values" (fun () ->
        let e = engine () in
        exec_all e
          [ "CREATE TABLE t (a text)"; "INSERT INTO t VALUES ('it''s, \"quoted\"')" ];
        let script = Engine.dump_sql e in
        let e2 = engine () in
        (match Engine.execute_script e2 script with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "restore failed: %s" msg);
        check_same e "SELECT * FROM t" "SELECT * FROM t";
        check_rows e2 "SELECT * FROM t" [ [ "it's, \"quoted\"" ] ]);
    case "empty engine dumps to empty script" (fun () ->
        Alcotest.(check string) "" "" (Engine.dump_sql (engine ())));
  ]

let () =
  Alcotest.run "csv"
    [ ("codec", codec_tests); ("copy", copy_tests); ("dump", dump_tests) ]
