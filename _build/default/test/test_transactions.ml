(* Transaction tests: BEGIN/COMMIT/ROLLBACK snapshot semantics across DML,
   DDL, indexes and eager provenance. *)

module Engine = Perm_engine.Engine
open Perm_testkit.Kit

let setup () =
  let e = engine () in
  exec_all e [ "CREATE TABLE t (a int)"; "INSERT INTO t VALUES (1), (2)" ];
  e

let basic_tests =
  [
    case "rollback undoes dml" (fun () ->
        let e = setup () in
        exec_all e [ "BEGIN"; "INSERT INTO t VALUES (3)"; "DELETE FROM t WHERE a = 1" ];
        check_rows e "SELECT * FROM t" [ [ "2" ]; [ "3" ] ];
        ignore (exec_ok e "ROLLBACK");
        check_rows e "SELECT * FROM t" [ [ "1" ]; [ "2" ] ]);
    case "commit keeps dml" (fun () ->
        let e = setup () in
        exec_all e [ "BEGIN"; "UPDATE t SET a = a * 10"; "COMMIT" ];
        check_rows e "SELECT * FROM t" [ [ "10" ]; [ "20" ] ]);
    case "rollback undoes ddl" (fun () ->
        let e = setup () in
        exec_all e [ "BEGIN"; "CREATE TABLE u (x int)"; "DROP TABLE t"; "ROLLBACK" ];
        check_count e "SELECT * FROM t" 2;
        Alcotest.(check bool) "u gone" true (Result.is_error (Engine.query e "SELECT * FROM u")));
    case "rollback undoes views and indexes" (fun () ->
        let e = setup () in
        exec_all e
          [ "BEGIN"; "CREATE VIEW v AS SELECT a FROM t"; "CREATE INDEX t_a ON t (a)"; "ROLLBACK" ];
        Alcotest.(check bool) "view gone" true
          (Result.is_error (Engine.query e "SELECT * FROM v"));
        (* index name free again *)
        match Engine.execute e "CREATE INDEX t_a ON t (a)" with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "index not rolled back: %s" msg);
    case "rollback undoes stored provenance registry" (fun () ->
        let e = forum_engine () in
        exec_all e [ "BEGIN"; "STORE PROVENANCE SELECT mid FROM messages INTO mp"; "ROLLBACK" ];
        Alcotest.(check bool) "table gone" true
          (Result.is_error (Engine.query e "SELECT * FROM mp"));
        Alcotest.(check bool) "registry gone" true (Engine.provenance_columns e "mp" = None));
    case "begin transaction / start transaction synonyms" (fun () ->
        let e = setup () in
        ignore (exec_ok e "BEGIN TRANSACTION");
        ignore (exec_ok e "ROLLBACK");
        ignore (exec_ok e "START TRANSACTION");
        ignore (exec_ok e "COMMIT"));
  ]

let error_tests =
  [
    case "nested begin rejected" (fun () ->
        let e = setup () in
        ignore (exec_ok e "BEGIN");
        Alcotest.(check bool) "" true (Result.is_error (Engine.execute e "BEGIN")));
    case "commit without begin rejected" (fun () ->
        Alcotest.(check bool) "" true
          (Result.is_error (Engine.execute (setup ()) "COMMIT")));
    case "rollback without begin rejected" (fun () ->
        Alcotest.(check bool) "" true
          (Result.is_error (Engine.execute (setup ()) "ROLLBACK")));
    case "after rollback a new transaction can start" (fun () ->
        let e = setup () in
        exec_all e [ "BEGIN"; "ROLLBACK"; "BEGIN"; "INSERT INTO t VALUES (9)"; "COMMIT" ];
        check_count e "SELECT * FROM t" 3);
  ]

let isolation_tests =
  [
    case "snapshot is isolated from post-begin writes to rows" (fun () ->
        let e = setup () in
        exec_all e [ "CREATE INDEX t_a ON t (a)"; "BEGIN" ];
        exec_all e [ "INSERT INTO t VALUES (42)" ];
        check_rows e "SELECT a FROM t WHERE a = 42" [ [ "42" ] ];
        ignore (exec_ok e "ROLLBACK");
        (* the index must not contain 42 after rollback *)
        check_count e "SELECT a FROM t WHERE a = 42" 0);
    case "queries inside the transaction see its own changes" (fun () ->
        let e = setup () in
        exec_all e [ "BEGIN"; "UPDATE t SET a = 99 WHERE a = 1" ];
        check_rows e "SELECT * FROM t" [ [ "2" ]; [ "99" ] ];
        ignore (exec_ok e "COMMIT"));
    case "provenance queries work inside transactions" (fun () ->
        let e = setup () in
        exec_all e [ "BEGIN"; "INSERT INTO t VALUES (7)" ];
        check_rows e "SELECT PROVENANCE a FROM t WHERE a = 7" [ [ "7"; "7" ] ];
        ignore (exec_ok e "ROLLBACK");
        check_count e "SELECT PROVENANCE a FROM t WHERE a = 7" 0);
    case "copy-on-rollback does not corrupt shared tuples" (fun () ->
        (* rows are shared between snapshot and live store; DML must rebuild
           rather than mutate, so the snapshot stays intact *)
        let e = setup () in
        exec_all e [ "BEGIN"; "UPDATE t SET a = a + 1000"; "ROLLBACK" ];
        check_rows e "SELECT * FROM t" [ [ "1" ]; [ "2" ] ]);
  ]

let () =
  Alcotest.run "transactions"
    [
      ("basic", basic_tests);
      ("errors", error_tests);
      ("isolation", isolation_tests);
    ]
