(* Witness-decoding API tests: recovering structured per-relation witnesses
   from flat provenance result sets. *)

module Engine = Perm_engine.Engine
module Witness = Perm_provenance.Witness
open Perm_testkit.Kit

let known = [ "messages"; "users"; "imports"; "approved"; "v1"; "r" ]

let blocks_of e sql =
  let rs = query_ok e sql in
  (rs, Witness.blocks ~columns:rs.Engine.columns ~known_rels:known)

let block_tests =
  [
    case "figure 2 columns split into two blocks" (fun () ->
        let e = forum_engine () in
        let _, blocks = blocks_of e Perm_workload.Forum.q1_provenance in
        match blocks with
        | [ m; i ] ->
          Alcotest.(check string) "first rel" "messages" m.Witness.rel;
          Alcotest.(check (list string)) "messages cols" [ "mid"; "text"; "uid" ]
            m.Witness.columns;
          Alcotest.(check string) "second rel" "imports" i.Witness.rel;
          Alcotest.(check (list string)) "imports cols" [ "mid"; "text"; "origin" ]
            i.Witness.columns
        | bs -> Alcotest.failf "expected 2 blocks, got %d" (List.length bs));
    case "self-join occurrences are separated" (fun () ->
        let e = engine () in
        exec_all e [ "CREATE TABLE r (a int)"; "INSERT INTO r VALUES (1)" ];
        let _, blocks = blocks_of e "SELECT PROVENANCE x.a FROM r x, r y" in
        match blocks with
        | [ b0; b1 ] ->
          Alcotest.(check int) "occ 0" 0 b0.Witness.occurrence;
          Alcotest.(check int) "occ 1" 1 b1.Witness.occurrence;
          Alcotest.(check string) "same rel" b0.Witness.rel b1.Witness.rel
        | bs -> Alcotest.failf "expected 2 blocks, got %d" (List.length bs));
    case "plain queries have no blocks" (fun () ->
        let e = forum_engine () in
        let _, blocks = blocks_of e "SELECT mid FROM messages" in
        Alcotest.(check int) "" 0 (List.length blocks));
    case "relation names with underscores resolve via known_rels" (fun () ->
        let e = engine () in
        exec_all e
          [ "CREATE TABLE my_table (x int)"; "INSERT INTO my_table VALUES (1)" ];
        let rs = query_ok e "SELECT PROVENANCE x FROM my_table" in
        let blocks =
          Witness.blocks ~columns:rs.Engine.columns ~known_rels:[ "my_table" ]
        in
        match blocks with
        | [ b ] ->
          Alcotest.(check string) "rel" "my_table" b.Witness.rel;
          Alcotest.(check (list string)) "cols" [ "x" ] b.Witness.columns
        | bs -> Alcotest.failf "expected 1 block, got %d" (List.length bs));
  ]

let decode_tests =
  [
    case "figure 2 rows decode to single witnesses" (fun () ->
        let e = forum_engine () in
        let rs, blocks = blocks_of e Perm_workload.Forum.q1_provenance in
        List.iter
          (fun row ->
            match Witness.decode_row blocks row with
            | [ w ] ->
              Alcotest.(check bool) "from messages or imports" true
                (w.Witness.w_rel = "messages" || w.Witness.w_rel = "imports");
              Alcotest.(check int) "full tuple" 3 (Array.length w.Witness.w_tuple)
            | ws -> Alcotest.failf "expected 1 witness, got %d" (List.length ws))
          rs.Engine.rows);
    case "join provenance decodes to two witnesses" (fun () ->
        let e = forum_engine () in
        let rs, blocks =
          blocks_of e
            "SELECT PROVENANCE m.text FROM messages m JOIN approved a ON m.mid = a.mid"
        in
        List.iter
          (fun row ->
            let ws = Witness.decode_row blocks row in
            Alcotest.(check int) "two witnesses" 2 (List.length ws))
          rs.Engine.rows);
    case "decoded witnesses exist in their base relations" (fun () ->
        let e = forum_engine () in
        let rs, blocks = blocks_of e Perm_workload.Forum.q1_provenance in
        let messages = strings_of_rows (query_ok e "SELECT * FROM messages").Engine.rows in
        let imports = strings_of_rows (query_ok e "SELECT * FROM imports").Engine.rows in
        List.iter
          (fun row ->
            List.iter
              (fun w ->
                let tuple =
                  Array.to_list (Array.map Perm_value.Value.to_string w.Witness.w_tuple)
                in
                let base = if w.Witness.w_rel = "messages" then messages else imports in
                Alcotest.(check bool) "witness in base" true (List.mem tuple base))
              (Witness.decode_row blocks row))
          rs.Engine.rows);
    case "originals strips provenance columns" (fun () ->
        let e = forum_engine () in
        let rs, blocks = blocks_of e Perm_workload.Forum.q1_provenance in
        List.iter
          (fun row ->
            Alcotest.(check int) "" 2
              (Array.length (Witness.originals blocks row)))
          rs.Engine.rows);
  ]

let () =
  Alcotest.run "witness" [ ("blocks", block_tests); ("decode", decode_tests) ]
