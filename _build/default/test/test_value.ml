(* Unit tests for the value model: SQL values, 3-valued logic, casts. *)

module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
module Tristate = Perm_value.Tristate
open Perm_testkit.Kit

let check_v = Alcotest.(check string)
let vstr v = Value.to_string v

let dtype_tests =
  [
    case "unify equal types" (fun () ->
        Alcotest.(check bool) "int/int" true (Dtype.unify Dtype.Int Dtype.Int = Some Dtype.Int));
    case "unify numeric promotion" (fun () ->
        Alcotest.(check bool) "int/float" true
          (Dtype.unify Dtype.Int Dtype.Float = Some Dtype.Float));
    case "unify any" (fun () ->
        Alcotest.(check bool) "any/text" true (Dtype.unify Dtype.Any Dtype.Text = Some Dtype.Text));
    case "unify incompatible" (fun () ->
        Alcotest.(check bool) "int/text" true (Dtype.unify Dtype.Int Dtype.Text = None));
    case "of_string synonyms" (fun () ->
        List.iter
          (fun (txt, ty) ->
            Alcotest.(check bool) txt true (Dtype.of_string txt = Some ty))
          [
            ("integer", Dtype.Int); ("bigint", Dtype.Int); ("double", Dtype.Float);
            ("varchar", Dtype.Text); ("boolean", Dtype.Bool); ("TEXT", Dtype.Text);
          ]);
    case "of_string unknown" (fun () ->
        Alcotest.(check bool) "blob" true (Dtype.of_string "blob" = None));
  ]

let equality_tests =
  [
    case "null equals null (null-safe)" (fun () ->
        Alcotest.(check bool) "" true (Value.equal nl nl));
    case "cross-type numeric equality" (fun () ->
        Alcotest.(check bool) "" true (Value.equal (i 1) (f 1.0)));
    case "int/text never equal" (fun () ->
        Alcotest.(check bool) "" false (Value.equal (i 1) (s "1")));
    case "hash agrees with equal across numeric types" (fun () ->
        Alcotest.(check int) "" (Value.hash (i 3)) (Value.hash (f 3.0)));
    case "compare numeric cross-type" (fun () ->
        Alcotest.(check bool) "" true (Value.compare (i 1) (f 1.5) < 0));
    case "null sorts first" (fun () ->
        Alcotest.(check bool) "" true (Value.compare nl (i (-100)) < 0));
    case "text compare" (fun () ->
        Alcotest.(check bool) "" true (Value.compare (s "abc") (s "abd") < 0));
  ]

let sql_op_tests =
  [
    case "sql_eq null propagates" (fun () ->
        check_v "" "null" (vstr (Value.sql_eq nl (i 1))));
    case "sql_eq true" (fun () ->
        check_v "" "true" (vstr (Value.sql_eq (i 2) (i 2))));
    case "sql_neq" (fun () ->
        check_v "" "true" (vstr (Value.sql_neq (i 2) (i 3))));
    case "sql_lt mixed numerics" (fun () ->
        check_v "" "true" (vstr (Value.sql_lt (i 2) (f 2.5))));
    case "add ints" (fun () ->
        check_v "" "5" (vstr (Result.get_ok (Value.add (i 2) (i 3)))));
    case "add int float promotes" (fun () ->
        check_v "" "5.5" (vstr (Result.get_ok (Value.add (i 2) (f 3.5)))));
    case "add null" (fun () ->
        check_v "" "null" (vstr (Result.get_ok (Value.add nl (i 3)))));
    case "add text errors" (fun () ->
        Alcotest.(check bool) "" true (Result.is_error (Value.add (s "x") (i 3))));
    case "div by zero" (fun () ->
        Alcotest.(check bool) "" true (Result.is_error (Value.div (i 1) (i 0))));
    case "div null divisor" (fun () ->
        check_v "" "null" (vstr (Result.get_ok (Value.div (i 1) nl))));
    case "int division truncates" (fun () ->
        check_v "" "3" (vstr (Result.get_ok (Value.div (i 7) (i 2)))));
    case "neg" (fun () -> check_v "" "-4" (vstr (Result.get_ok (Value.neg (i 4)))));
    case "concat" (fun () ->
        check_v "" "ab" (vstr (Result.get_ok (Value.concat (s "a") (s "b")))));
    case "concat null" (fun () ->
        check_v "" "null" (vstr (Result.get_ok (Value.concat nl (s "b")))));
  ]

let like_tests =
  let like pat v = Value.like (s v) (s pat) in
  [
    case "like literal" (fun () -> check_v "" "true" (vstr (like "abc" "abc")));
    case "like percent middle" (fun () ->
        check_v "" "true" (vstr (like "a%c" "aXXc")));
    case "like percent empty" (fun () ->
        check_v "" "true" (vstr (like "a%c" "ac")));
    case "like underscore" (fun () ->
        check_v "" "true" (vstr (like "a_c" "abc")));
    case "like underscore strict" (fun () ->
        check_v "" "false" (vstr (like "a_c" "ac")));
    case "like both wildcards" (fun () ->
        check_v "" "true" (vstr (like "%lo_em%" "xxloremyy")));
    case "like trailing percent" (fun () ->
        check_v "" "true" (vstr (like "lorem%" "lorem ipsum")));
    case "like no match" (fun () ->
        check_v "" "false" (vstr (like "xyz%" "lorem")));
    case "like null" (fun () ->
        check_v "" "null" (vstr (Value.like nl (s "%"))));
    case "like backtracking" (fun () ->
        check_v "" "true" (vstr (like "%ab%ab" "abxabab")));
  ]

let cast_tests =
  [
    case "cast int to float" (fun () ->
        check_v "" "7.0" (vstr (Result.get_ok (Value.cast Dtype.Float (i 7)))));
    case "cast float to int truncates" (fun () ->
        check_v "" "7" (vstr (Result.get_ok (Value.cast Dtype.Int (f 7.9)))));
    case "cast text to int" (fun () ->
        check_v "" "42" (vstr (Result.get_ok (Value.cast Dtype.Int (s " 42 ")))));
    case "cast text to int failure" (fun () ->
        Alcotest.(check bool) "" true
          (Result.is_error (Value.cast Dtype.Int (s "forty-two"))));
    case "cast bool text forms" (fun () ->
        List.iter
          (fun (txt, expected) ->
            check_v txt expected
              (vstr (Result.get_ok (Value.cast Dtype.Bool (s txt)))))
          [ ("t", "true"); ("no", "false"); ("TRUE", "true"); ("0", "false") ]);
    case "cast null anywhere" (fun () ->
        check_v "" "null" (vstr (Result.get_ok (Value.cast Dtype.Int nl))));
    case "cast numeric to text" (fun () ->
        check_v "" "3" (vstr (Result.get_ok (Value.cast Dtype.Text (i 3)))));
  ]

let format_tests =
  [
    case "to_sql quotes text" (fun () ->
        check_v "" "'it''s'" (Value.to_sql (s "it's")));
    case "to_sql int bare" (fun () -> check_v "" "7" (Value.to_sql (i 7)));
    case "to_string float integral" (fun () -> check_v "" "2.0" (vstr (f 2.0)));
    case "to_string null" (fun () -> check_v "" "null" (vstr nl));
  ]

let tristate_tests =
  let open Tristate in
  [
    case "kleene and" (fun () ->
        Alcotest.(check bool) "F&&U" true (equal (False &&& Unknown) False);
        Alcotest.(check bool) "T&&U" true (equal (True &&& Unknown) Unknown);
        Alcotest.(check bool) "T&&T" true (equal (True &&& True) True));
    case "kleene or" (fun () ->
        Alcotest.(check bool) "T||U" true (equal (True ||| Unknown) True);
        Alcotest.(check bool) "F||U" true (equal (False ||| Unknown) Unknown));
    case "not unknown" (fun () ->
        Alcotest.(check bool) "" true (equal (not_ Unknown) Unknown));
    case "of_value" (fun () ->
        Alcotest.(check bool) "null" true (Result.get_ok (of_value nl) = Unknown);
        Alcotest.(check bool) "bool" true (Result.get_ok (of_value (b true)) = True);
        Alcotest.(check bool) "int is error" true (Result.is_error (of_value (i 1))));
    case "is_true only true" (fun () ->
        Alcotest.(check bool) "" false (is_true Unknown));
  ]

(* property tests *)
let arb_value =
  QCheck.(
    oneof
      [
        always Value.Null;
        map (fun n -> Value.Int n) small_signed_int;
        map (fun x -> Value.Float (float_of_int x /. 4.)) small_signed_int;
        map (fun b -> Value.Bool b) bool;
        map (fun s -> Value.Text s) (string_small_of (Gen.char_range 'a' 'e'));
      ])

let prop_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"compare is a total order (antisymmetry)" ~count:500
         (QCheck.pair arb_value arb_value)
         (fun (a, b) ->
           let c1 = Value.compare a b and c2 = Value.compare b a in
           (c1 = 0 && c2 = 0) || c1 * c2 < 0));
    qcheck
      (QCheck.Test.make ~name:"compare transitivity" ~count:500
         (QCheck.triple arb_value arb_value arb_value)
         (fun (a, b, c) ->
           let sorted = List.sort Value.compare [ a; b; c ] in
           match sorted with
           | [ x; y; z ] ->
             Value.compare x y <= 0 && Value.compare y z <= 0
             && Value.compare x z <= 0
           | _ -> false));
    qcheck
      (QCheck.Test.make ~name:"equal implies same hash" ~count:500
         (QCheck.pair arb_value arb_value)
         (fun (a, b) ->
           QCheck.assume (Value.equal a b);
           Value.hash a = Value.hash b));
    qcheck
      (QCheck.Test.make ~name:"sql_eq is null iff an operand is null" ~count:500
         (QCheck.pair arb_value arb_value)
         (fun (a, b) ->
           Value.is_null (Value.sql_eq a b)
           = (Value.is_null a || Value.is_null b)));
    qcheck
      (QCheck.Test.make ~name:"cast to own type is identity" ~count:500 arb_value
         (fun v ->
           match Value.cast (Value.type_of v) v with
           | Ok v' -> Value.equal v v' || (Value.is_null v && Value.is_null v')
           | Error _ -> false));
  ]

let () =
  Alcotest.run "value"
    [
      ("dtype", dtype_tests);
      ("equality-order", equality_tests);
      ("sql-ops", sql_op_tests);
      ("like", like_tests);
      ("cast", cast_tests);
      ("format", format_tests);
      ("tristate", tristate_tests);
      ("properties", prop_tests);
    ]
