(* Analyzer tests: name resolution, typing, GROUP BY validation, star
   expansion, view unfolding, subquery restrictions — mostly asserted
   through the engine's error surface and plan shapes. *)

module Plan = Perm_algebra.Plan
module Pretty = Perm_algebra.Pretty
module Engine = Perm_engine.Engine
open Perm_testkit.Kit

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

let setup () =
  let e = engine () in
  exec_all e
    [
      "CREATE TABLE r (a int, b text, c float)";
      "CREATE TABLE s (a int, d text)";
      "INSERT INTO r VALUES (1, 'x', 1.5), (2, 'y', 2.5)";
      "INSERT INTO s VALUES (1, 'dx'), (3, 'dz')";
    ];
  e

let check_err_contains e sql fragment =
  let msg = query_err e sql in
  if not (contains ~needle:fragment msg) then
    Alcotest.failf "error for %S was %S, expected it to mention %S" sql msg fragment

let resolution_tests =
  [
    case "unknown relation" (fun () ->
        check_err_contains (setup ()) "SELECT a FROM nope" "does not exist");
    case "unknown column" (fun () ->
        check_err_contains (setup ()) "SELECT zz FROM r" "does not exist");
    case "unknown qualified column" (fun () ->
        check_err_contains (setup ()) "SELECT r.zz FROM r" "r.zz");
    case "ambiguous column across tables" (fun () ->
        check_err_contains (setup ()) "SELECT a FROM r, s" "ambiguous");
    case "qualification disambiguates" (fun () ->
        check_count (setup ()) "SELECT r.a FROM r, s" 4);
    case "alias hides table name" (fun () ->
        check_err_contains (setup ()) "SELECT r.a FROM r AS x" "r.a");
    case "duplicate range variables rejected" (fun () ->
        check_err_contains (setup ()) "SELECT 1 FROM r, r" "more than once");
    case "self join with aliases works" (fun () ->
        check_count (setup ()) "SELECT x.a, y.a FROM r x, r y" 4);
    case "case-insensitive resolution" (fun () ->
        check_count (setup ()) "SELECT R.A FROM r" 2);
  ]

let typing_tests =
  [
    case "arithmetic on text rejected" (fun () ->
        check_err_contains (setup ()) "SELECT b + 1 FROM r" "numeric");
    case "and on int rejected" (fun () ->
        check_err_contains (setup ()) "SELECT 1 FROM r WHERE a AND a" "boolean");
    case "comparison of incompatible types" (fun () ->
        check_err_contains (setup ()) "SELECT 1 FROM r WHERE a = b" "incompatible");
    case "where must be boolean" (fun () ->
        check_err_contains (setup ()) "SELECT 1 FROM r WHERE a + 1" "boolean");
    case "like needs text" (fun () ->
        check_err_contains (setup ()) "SELECT 1 FROM r WHERE a LIKE 'x'" "text");
    case "sum needs numeric" (fun () ->
        check_err_contains (setup ()) "SELECT sum(b) FROM r" "numeric");
    case "unknown function" (fun () ->
        check_err_contains (setup ()) "SELECT frob(a) FROM r" "unknown function");
    case "function arity errors" (fun () ->
        check_err_contains (setup ()) "SELECT abs(a, a) FROM r" "abs");
    case "int/float comparison is fine" (fun () ->
        check_count (setup ()) "SELECT 1 FROM r WHERE a < c" 2);
    case "null literal unifies anywhere" (fun () ->
        check_count (setup ()) "SELECT 1 FROM r WHERE b = null OR a = 1" 1);
  ]

let grouping_tests =
  [
    case "non-grouped column rejected" (fun () ->
        check_err_contains (setup ()) "SELECT a, b FROM r GROUP BY a" "GROUP BY");
    case "grouped expression allowed" (fun () ->
        check_count (setup ()) "SELECT a % 2, count(*) FROM r GROUP BY a % 2" 2);
    case "having without group by makes a global aggregate" (fun () ->
        check_rows (setup ()) "SELECT count(*) FROM r HAVING count(*) > 1" [ [ "2" ] ]);
    case "having rejects non-grouped columns" (fun () ->
        check_err_contains (setup ())
          "SELECT count(*) FROM r GROUP BY a HAVING b = 'x'" "GROUP BY");
    case "aggregate in where rejected" (fun () ->
        check_err_contains (setup ()) "SELECT a FROM r WHERE count(*) > 1"
          "not allowed in the WHERE");
    case "nested aggregates rejected" (fun () ->
        check_err_contains (setup ()) "SELECT sum(count(*)) FROM r" "nested");
    case "same aggregate shared between select and having" (fun () ->
        let e = setup () in
        check_rows e "SELECT a, count(*) FROM r GROUP BY a HAVING count(*) = 1"
          [ [ "1"; "1" ]; [ "2"; "1" ] ]);
    case "order by aggregate in grouped query" (fun () ->
        check_rows ~ordered:true (setup ())
          "SELECT b, count(*) FROM r GROUP BY b ORDER BY count(*) DESC, b"
          [ [ "x"; "1" ]; [ "y"; "1" ] ]);
  ]

let star_tests =
  [
    case "star expands in order" (fun () ->
        check_columns (setup ()) "SELECT * FROM r" [ "a"; "b"; "c" ]);
    case "table star" (fun () ->
        check_columns (setup ()) "SELECT s.*, r.a FROM r, s" [ "a"; "d"; "a" ]);
    case "table star unknown table" (fun () ->
        check_err_contains (setup ()) "SELECT z.* FROM r" "missing FROM-clause");
    case "star in grouped query needs grouping" (fun () ->
        check_err_contains (setup ()) "SELECT * FROM r GROUP BY a" "GROUP BY");
  ]

let view_tests =
  [
    case "view unfolds" (fun () ->
        let e = setup () in
        exec_all e [ "CREATE VIEW v AS SELECT a, b FROM r WHERE a > 1" ];
        check_rows e "SELECT * FROM v" [ [ "2"; "y" ] ]);
    case "view over view" (fun () ->
        let e = setup () in
        exec_all e
          [
            "CREATE VIEW v AS SELECT a FROM r";
            "CREATE VIEW w AS SELECT a + 1 AS a1 FROM v";
          ];
        check_rows e "SELECT * FROM w" [ [ "2" ]; [ "3" ] ]);
    case "view columns are renamable via alias" (fun () ->
        let e = setup () in
        exec_all e [ "CREATE VIEW v AS SELECT a AS k FROM r" ];
        check_rows e "SELECT x.k FROM v AS x WHERE x.k = 1" [ [ "1" ] ]);
    case "view referencing dropped table fails at use" (fun () ->
        let e = setup () in
        exec_all e [ "CREATE VIEW v AS SELECT a FROM s"; "DROP TABLE s" ];
        check_err_contains e "SELECT * FROM v" "does not exist");
    case "order inside view body is preserved at creation" (fun () ->
        let e = setup () in
        exec_all e [ "CREATE VIEW v AS SELECT a FROM r ORDER BY a DESC" ];
        check_count e "SELECT * FROM v" 2);
  ]

let subquery_tests =
  [
    case "scalar subquery in select" (fun () ->
        check_rows (setup ()) "SELECT a, (SELECT max(a) FROM s) FROM r"
          [ [ "1"; "3" ]; [ "2"; "3" ] ]);
    case "correlated scalar subquery" (fun () ->
        check_rows (setup ())
          "SELECT a, (SELECT count(*) FROM s WHERE s.a = r.a) FROM r"
          [ [ "1"; "1" ]; [ "2"; "0" ] ]);
    case "scalar subquery must be single column" (fun () ->
        check_err_contains (setup ()) "SELECT (SELECT a, d FROM s) FROM r"
          "exactly one column");
    case "scalar subquery more than one row is runtime error" (fun () ->
        check_err_contains (setup ()) "SELECT (SELECT a FROM r) FROM s"
          "more than one row");
    case "in subquery" (fun () ->
        check_rows (setup ()) "SELECT a FROM r WHERE a IN (SELECT a FROM s)"
          [ [ "1" ] ]);
    case "not in subquery" (fun () ->
        check_rows (setup ()) "SELECT a FROM r WHERE a NOT IN (SELECT a FROM s)"
          [ [ "2" ] ]);
    case "exists correlated" (fun () ->
        check_rows (setup ())
          "SELECT a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a)"
          [ [ "1" ] ]);
    case "not exists correlated" (fun () ->
        check_rows (setup ())
          "SELECT a FROM r WHERE NOT EXISTS (SELECT 1 FROM s WHERE s.a = r.a)"
          [ [ "2" ] ]);
    case "in subquery must be single column" (fun () ->
        check_err_contains (setup ())
          "SELECT a FROM r WHERE a IN (SELECT a, d FROM s)" "exactly one column");
    case "exists under OR is rejected with a clear message" (fun () ->
        check_err_contains (setup ())
          "SELECT a FROM r WHERE a = 1 OR EXISTS (SELECT 1 FROM s)"
          "top-level conjuncts");
    case "subquery in having rejected" (fun () ->
        check_err_contains (setup ())
          "SELECT count(*) FROM r HAVING count(*) > (SELECT count(*) FROM s)"
          "not allowed");
  ]

let order_limit_tests =
  [
    case "order by alias" (fun () ->
        check_rows ~ordered:true (setup ())
          "SELECT a * -1 AS neg FROM r ORDER BY neg" [ [ "-2" ]; [ "-1" ] ]);
    case "order by position" (fun () ->
        check_rows ~ordered:true (setup ()) "SELECT a FROM r ORDER BY 1 DESC"
          [ [ "2" ]; [ "1" ] ]);
    case "order by position out of range" (fun () ->
        check_err_contains (setup ()) "SELECT a FROM r ORDER BY 5" "position");
    case "order by non-selected column works for plain selects" (fun () ->
        check_rows ~ordered:true (setup ()) "SELECT b FROM r ORDER BY a DESC"
          [ [ "y" ]; [ "x" ] ]);
    case "distinct restricts order keys" (fun () ->
        check_err_contains (setup ()) "SELECT DISTINCT b FROM r ORDER BY a"
          "select list");
    case "distinct ordered by selected column" (fun () ->
        check_rows ~ordered:true (setup ()) "SELECT DISTINCT b FROM r ORDER BY b"
          [ [ "x" ]; [ "y" ] ]);
    case "set op order by name" (fun () ->
        check_rows ~ordered:true (setup ())
          "SELECT a FROM r UNION SELECT a FROM s ORDER BY a DESC"
          [ [ "3" ]; [ "2" ]; [ "1" ] ]);
    case "set op order by expression rejected" (fun () ->
        check_err_contains (setup ())
          "SELECT a FROM r UNION SELECT a FROM s ORDER BY a + 1"
          "name an output column");
    case "set op arity mismatch" (fun () ->
        check_err_contains (setup ()) "SELECT a, b FROM r UNION SELECT a FROM s"
          "same number of columns");
    case "set op type mismatch" (fun () ->
        check_err_contains (setup ()) "SELECT a FROM r UNION SELECT d FROM s"
          "incompatible");
    case "empty select list impossible (parser catches)" (fun () ->
        let msg = query_err (setup ()) "SELECT FROM r" in
        Alcotest.(check bool) "" true (String.length msg > 0));
  ]

let plan_shape_tests =
  [
    case "where becomes a filter under the projection" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT a FROM r WHERE a = 1" with
        | Ok (analyzed, _) ->
          let txt = Pretty.plan_summary analyzed in
          Alcotest.(check string) "" "Project(Select(Scan(r)))" txt
        | Error msg -> Alcotest.fail msg);
    case "group by builds aggregate" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT b, count(*) FROM r GROUP BY b" with
        | Ok (analyzed, _) ->
          Alcotest.(check string) "" "Project(Aggregate(Scan(r)))"
            (Pretty.plan_summary analyzed)
        | Error msg -> Alcotest.fail msg);
    case "provenance marker wraps the block" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT PROVENANCE a FROM r" with
        | Ok (analyzed, _) -> (
          match analyzed with
          | Plan.Prov { sources; _ } ->
            Alcotest.(check (list string)) "source names"
              [ "prov_r_a"; "prov_r_b"; "prov_r_c" ]
              (List.map
                 (fun (s : Plan.prov_source) -> s.Plan.prov_attr.Perm_algebra.Attr.name)
                 sources)
          | _ -> Alcotest.fail "expected a Prov root")
        | Error msg -> Alcotest.fail msg);
    case "self-join provenance names disambiguated" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT PROVENANCE x.a FROM r x, r y" with
        | Ok (Plan.Prov { sources; _ }, _) ->
          let names =
            List.map
              (fun (s : Plan.prov_source) -> s.Plan.prov_attr.Perm_algebra.Attr.name)
              sources
          in
          Alcotest.(check (list string)) ""
            [ "prov_r_a"; "prov_r_b"; "prov_r_c"; "prov_r_1_a"; "prov_r_1_b"; "prov_r_1_c" ]
            names
        | Ok _ -> Alcotest.fail "expected a Prov root"
        | Error msg -> Alcotest.fail msg);
  ]

let () =
  Alcotest.run "analyzer"
    [
      ("resolution", resolution_tests);
      ("typing", typing_tests);
      ("grouping", grouping_tests);
      ("stars", star_tests);
      ("views", view_tests);
      ("subqueries", subquery_tests);
      ("order-limit", order_limit_tests);
      ("plan-shape", plan_shape_tests);
    ]
