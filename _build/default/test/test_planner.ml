(* Planner tests: constant folding, predicate pushdown, projection pruning
   must preserve semantics; the cost model must rank plans sensibly. *)

module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Pretty = Perm_algebra.Pretty
module Planner = Perm_planner.Planner
module Engine = Perm_engine.Engine
module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
open Perm_testkit.Kit

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go idx = idx + n <= h && (String.sub hay idx n = needle || go (idx + 1)) in
  n = 0 || go 0

let setup () =
  let e = engine () in
  exec_all e
    [
      "CREATE TABLE r (a int, b text)";
      "INSERT INTO r VALUES (1, 'x'), (2, 'y'), (3, 'z'), (3, 'w')";
      "CREATE TABLE s (a int, c int)";
      "INSERT INTO s VALUES (1, 10), (2, 20), (9, 90)";
    ];
  e

(* run the same query with the optimizer on and off; results must agree *)
let check_equivalent sql =
  let run config =
    let e = setup () in
    Engine.set_optimizer_config e config;
    strings_of_rows (query_ok e sql).Engine.rows |> List.sort compare
  in
  Alcotest.(check rows_testable)
    sql
    (run Planner.disabled_config)
    (run Planner.default_config)

let equivalence_corpus =
  [
    "SELECT a + 0 FROM r WHERE 1 = 1 AND a > 1";
    "SELECT r.a, s.c FROM r, s WHERE r.a = s.a AND r.b <> 'zzz'";
    "SELECT x.b FROM (SELECT a * 2 AS d, b FROM r) x WHERE x.d > 2";
    "SELECT b, count(*) FROM r WHERE a >= 1 GROUP BY b HAVING count(*) >= 1";
    "SELECT a FROM r WHERE a IN (SELECT a FROM s) ORDER BY a";
    "SELECT DISTINCT b FROM r WHERE a = 3";
    "SELECT a FROM r UNION ALL SELECT a FROM s ORDER BY a LIMIT 4";
    "SELECT r.a FROM r LEFT JOIN s ON r.a = s.a WHERE r.a > 1";
    "SELECT PROVENANCE a, b FROM r WHERE a = 3";
    "SELECT PROVENANCE count(*), b FROM r GROUP BY b";
    "SELECT a, (SELECT max(c) FROM s) FROM r LIMIT 2";
    "SELECT CASE WHEN 1 = 1 THEN a ELSE 0 END FROM r";
  ]

let equivalence_tests =
  [
    case "optimizer preserves semantics on corpus" (fun () ->
        List.iter check_equivalent equivalence_corpus);
  ]

let folding_tests =
  [
    case "constants fold" (fun () ->
        let e = Planner.optimize Planner.no_stats
            (Plan.Filter
               {
                 child = Plan.Values { attrs = []; rows = [ [] ] };
                 pred =
                   Expr.Binop
                     ( Expr.Eq,
                       Expr.Binop (Expr.Add, Expr.Const (Value.Int 1), Expr.Const (Value.Int 2)),
                       Expr.Const (Value.Int 3) );
               })
        in
        (* 1+2=3 folds to TRUE and the filter disappears *)
        match e with
        | Plan.Values _ -> ()
        | p -> Alcotest.failf "expected filter elimination, got %s" (Pretty.plan_summary p));
    case "division by zero is not folded away" (fun () ->
        let pred =
          Expr.Binop
            (Expr.Eq, Expr.Binop (Expr.Div, Expr.Const (Value.Int 1), Expr.Const (Value.Int 0)),
             Expr.Const (Value.Int 1))
        in
        let p =
          Planner.optimize Planner.no_stats
            (Plan.Filter { child = Plan.Values { attrs = []; rows = [ [] ] }; pred })
        in
        match p with
        | Plan.Filter _ -> ()
        | p -> Alcotest.failf "fold must keep the error: %s" (Pretty.plan_summary p));
    case "kleene shortcuts respect three-valued logic" (fun () ->
        (* false AND unknown folds to false; true AND x folds to x *)
        let a = Attr.fresh "a" Dtype.Bool in
        let x = Expr.Attr a in
        let fold e =
          let p =
            Planner.optimize Planner.no_stats
              (Plan.Filter { child = Plan.Scan { table = "t"; attrs = [ a ] }; pred = e })
          in
          match p with
          | Plan.Filter { pred; _ } -> Some pred
          | Plan.Scan _ -> None
          | _ -> Alcotest.fail "unexpected plan"
        in
        (match fold (Expr.Binop (Expr.And, Expr.Const (Value.Bool true), x)) with
        | Some (Expr.Attr _) -> ()
        | _ -> Alcotest.fail "true AND x should fold to x");
        match fold (Expr.Binop (Expr.Or, x, Expr.Const (Value.Bool false))) with
        | Some (Expr.Attr _) -> ()
        | _ -> Alcotest.fail "x OR false should fold to x");
  ]

let structure_tests =
  [
    case "predicate pushes below projection into the join side" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT r.b FROM r, s WHERE r.a = 1 AND s.c > 5" with
        | Ok (_, optimized) ->
          let txt = Pretty.plan_to_string ~show_attrs:false optimized in
          (* both single-side conjuncts must sit below the join *)
          let join_line =
            String.split_on_char '\n' txt
            |> List.find_opt (fun l -> contains ~needle:"Join" l)
          in
          Alcotest.(check bool) "join exists" true (join_line <> None);
          Alcotest.(check bool) "filters below join" true
            (let lines = String.split_on_char '\n' txt in
             let join_idx = ref (-1) and filter_idx = ref (-1) in
             List.iteri
               (fun idx l ->
                 if contains ~needle:"CrossJoin" l && !join_idx < 0 then join_idx := idx;
                 if contains ~needle:"Select" l && !filter_idx < 0 then filter_idx := idx)
               lines;
             !join_idx >= 0 && !filter_idx > !join_idx)
        | Error msg -> Alcotest.fail msg);
    case "pruning removes unused aggregate calls" (fun () ->
        let e = setup () in
        match
          Engine.plan_query e
            "SELECT x.b FROM (SELECT b, count(*) AS c, sum(a) AS s1 FROM r GROUP BY b) x"
        with
        | Ok (_, optimized) ->
          let txt = Pretty.plan_to_string ~show_attrs:false optimized in
          Alcotest.(check bool) "sum pruned" false (contains ~needle:"sum" txt)
        | Error msg -> Alcotest.fail msg);
    case "top projection kept (it renames), nothing else added" (fun () ->
        (* identity-project elimination only fires on rewriter-generated
           self-maps; the analyzer's top projection introduces fresh output
           attributes and must stay *)
        let e = setup () in
        match Engine.plan_query e "SELECT a, b FROM r" with
        | Ok (_, optimized) ->
          Alcotest.(check string) "" "Project(Scan(r))" (Pretty.plan_summary optimized)
        | Error msg -> Alcotest.fail msg);
    case "rewriter-generated identity projections are dropped" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT PROVENANCE a, b FROM r" with
        | Ok (_, optimized) ->
          (* the unoptimized rewrite stacks three projections over the scan;
             pruning must collapse the pure-identity ones *)
          Alcotest.(check bool) "few operators" true (Plan.count_operators optimized <= 3)
        | Error msg -> Alcotest.fail msg);
    case "no pushdown past outer joins" (fun () ->
        let e = setup () in
        match
          Engine.plan_query e "SELECT r.a FROM r LEFT JOIN s ON r.a = s.a WHERE s.c IS NULL"
        with
        | Ok (_, optimized) ->
          let txt = Pretty.plan_to_string ~show_attrs:false optimized in
          let lines = String.split_on_char '\n' txt in
          let filter_idx = ref (-1) and join_idx = ref (-1) in
          List.iteri
            (fun idx l ->
              if contains ~needle:"Select" l && !filter_idx < 0 then filter_idx := idx;
              if contains ~needle:"LeftJoin" l && !join_idx < 0 then join_idx := idx)
            lines;
          Alcotest.(check bool) "filter above left join" true
            (!filter_idx >= 0 && !join_idx > !filter_idx)
        | Error msg -> Alcotest.fail msg);
  ]

let cost_tests =
  let stats =
    {
      Planner.table_rows = (function "big" -> 100000 | _ -> 10);
      Planner.table_distinct = (fun _ _ -> 10);
      Planner.has_index = (fun _ _ -> false);
    }
  in
  let scan_big =
    Plan.Scan { table = "big"; attrs = [ Attr.fresh "x" Dtype.Int ] }
  in
  let scan_small =
    Plan.Scan { table = "small"; attrs = [ Attr.fresh "y" Dtype.Int ] }
  in
  [
    case "bigger tables cost more" (fun () ->
        Alcotest.(check bool) "" true
          (Planner.cost stats scan_big > Planner.cost stats scan_small));
    case "filters reduce estimated rows" (fun () ->
        let x = match Plan.schema scan_big with [ x ] -> x | _ -> assert false in
        let filtered =
          Plan.Filter
            {
              child = scan_big;
              pred = Expr.Binop (Expr.Eq, Expr.Attr x, Expr.Const (Value.Int 1));
            }
        in
        Alcotest.(check bool) "" true
          (Planner.estimate_rows stats filtered < Planner.estimate_rows stats scan_big));
    case "hash join cheaper than nested loop apply" (fun () ->
        let join =
          Plan.Join
            {
              kind = Plan.Inner;
              left = scan_big;
              right = scan_small;
              pred =
                Some
                  (Expr.Binop
                     ( Expr.Eq,
                       Expr.Attr (List.hd (Plan.schema scan_big)),
                       Expr.Attr (List.hd (Plan.schema scan_small)) ));
            }
        in
        let apply = Plan.Apply { kind = Plan.A_cross; left = scan_big; right = scan_small } in
        Alcotest.(check bool) "" true (Planner.cost stats join < Planner.cost stats apply));
    case "estimate: distinct group count bounded by input" (fun () ->
        let x = List.hd (Plan.schema scan_small) in
        let agg =
          Plan.Aggregate
            { child = scan_small; group_by = [ (Expr.Attr x, Attr.fresh "g" Dtype.Int) ]; aggs = [] }
        in
        Alcotest.(check bool) "" true (Planner.estimate_rows stats agg <= 10.));
    case "limit caps the estimate" (fun () ->
        let lim = Plan.Limit { child = scan_big; limit = Some 5; offset = 0 } in
        Alcotest.(check bool) "" true (Planner.estimate_rows stats lim <= 5.));
  ]

let () =
  Alcotest.run "planner"
    [
      ("equivalence", equivalence_tests);
      ("folding", folding_tests);
      ("structure", structure_tests);
      ("cost", cost_tests);
    ]
