(* Unit tests for storage: growable vectors, tuples, heaps, the store. *)

module Vec = Perm_storage.Vec
module Tuple = Perm_storage.Tuple
module Heap = Perm_storage.Heap
module Store = Perm_storage.Store
module Schema = Perm_catalog.Schema
module Column = Perm_catalog.Column
module Dtype = Perm_value.Dtype
open Perm_testkit.Kit

let vec_tests =
  [
    case "push/get/length" (fun () ->
        let v = Vec.create () in
        for k = 0 to 99 do
          Vec.push v k
        done;
        Alcotest.(check int) "length" 100 (Vec.length v);
        Alcotest.(check int) "get 57" 57 (Vec.get v 57));
    case "get out of bounds" (fun () ->
        let v = Vec.create () in
        Vec.push v 1;
        Alcotest.check_raises "negative" (Invalid_argument "Vec.get: index out of bounds")
          (fun () -> ignore (Vec.get v (-1)));
        Alcotest.check_raises "past end" (Invalid_argument "Vec.get: index out of bounds")
          (fun () -> ignore (Vec.get v 1)));
    case "to_list round trip" (fun () ->
        let l = [ 3; 1; 4; 1; 5 ] in
        Alcotest.(check (list int)) "" l (Vec.to_list (Vec.of_list l)));
    case "clear" (fun () ->
        let v = Vec.of_list [ 1; 2 ] in
        Vec.clear v;
        Alcotest.(check int) "" 0 (Vec.length v));
    case "fold and iteri" (fun () ->
        let v = Vec.of_list [ 1; 2; 3 ] in
        Alcotest.(check int) "fold" 6 (Vec.fold ( + ) 0 v);
        let acc = ref [] in
        Vec.iteri (fun idx x -> acc := (idx, x) :: !acc) v;
        Alcotest.(check int) "iteri count" 3 (List.length !acc));
    case "to_seq is lazy over current contents" (fun () ->
        let v = Vec.of_list [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "" [ 1; 2; 3 ] (List.of_seq (Vec.to_seq v)));
    qcheck
      (QCheck.Test.make ~name:"vec behaves like a list" ~count:200
         QCheck.(small_list small_int)
         (fun l -> Vec.to_list (Vec.of_list l) = l));
  ]

let tuple_tests =
  [
    case "equal is null-safe" (fun () ->
        Alcotest.(check bool) "" true (Tuple.equal (row [ nl; i 1 ]) (row [ nl; i 1 ])));
    case "equal numeric cross-type" (fun () ->
        Alcotest.(check bool) "" true (Tuple.equal (row [ i 1 ]) (row [ f 1.0 ])));
    case "unequal arity" (fun () ->
        Alcotest.(check bool) "" false (Tuple.equal (row [ i 1 ]) (row [ i 1; i 2 ])));
    case "hash consistent with equal" (fun () ->
        Alcotest.(check int) ""
          (Tuple.hash (row [ nl; i 2 ]))
          (Tuple.hash (row [ nl; f 2.0 ])));
    case "compare lexicographic" (fun () ->
        Alcotest.(check bool) "" true
          (Tuple.compare (row [ i 1; i 9 ]) (row [ i 2; i 0 ]) < 0));
    case "project" (fun () ->
        Alcotest.(check string) "" "(3, 1)"
          (Tuple.to_string (Tuple.project [ 2; 0 ] (row [ i 1; i 2; i 3 ]))));
    case "concat" (fun () ->
        Alcotest.(check string) "" "(1, a)"
          (Tuple.to_string (Tuple.concat (row [ i 1 ]) (row [ s "a" ]))));
  ]

let forum_schema =
  Schema.make_exn
    [ Column.make "mid" Dtype.Int; Column.make "text" Dtype.Text; Column.make "uid" Dtype.Int ]

let heap_tests =
  [
    case "insert validates arity" (fun () ->
        let h = Heap.create forum_schema in
        Alcotest.(check bool) "" true (Result.is_error (Heap.insert h (row [ i 1 ]))));
    case "insert validates types" (fun () ->
        let h = Heap.create forum_schema in
        Alcotest.(check bool) "" true
          (Result.is_error (Heap.insert h (row [ s "x"; s "t"; i 1 ]))));
    case "insert accepts nulls" (fun () ->
        let h = Heap.create forum_schema in
        Alcotest.(check bool) "" true (Result.is_ok (Heap.insert h (row [ nl; nl; nl ]))));
    case "int widens to float column" (fun () ->
        let schema = Schema.make_exn [ Column.make "x" Dtype.Float ] in
        let h = Heap.create schema in
        Alcotest.(check bool) "insert" true (Result.is_ok (Heap.insert h (row [ i 3 ])));
        match Heap.to_list h with
        | [ r ] -> Alcotest.(check string) "widened" "3.0" (Perm_value.Value.to_string r.(0))
        | _ -> Alcotest.fail "expected one row");
    case "scan in insertion order" (fun () ->
        let h = Heap.create forum_schema in
        ignore (Result.get_ok (Heap.insert h (row [ i 1; s "a"; i 1 ])));
        ignore (Result.get_ok (Heap.insert h (row [ i 2; s "b"; i 2 ])));
        Alcotest.(check int) "count" 2 (Heap.row_count h);
        Alcotest.(check string) "first" "(1, a, 1)"
          (Tuple.to_string (List.hd (List.of_seq (Heap.scan h)))));
    case "truncate" (fun () ->
        let h = Heap.create forum_schema in
        ignore (Result.get_ok (Heap.insert h (row [ i 1; s "a"; i 1 ])));
        Heap.truncate h;
        Alcotest.(check int) "" 0 (Heap.row_count h));
    case "distinct estimate exact and cached" (fun () ->
        let h = Heap.create forum_schema in
        ignore
          (Result.get_ok
             (Heap.insert_all h
                [ row [ i 1; s "a"; i 1 ]; row [ i 2; s "a"; i 1 ]; row [ i 3; s "b"; nl ] ]));
        Alcotest.(check int) "mid" 3 (Heap.distinct_estimate h 0);
        Alcotest.(check int) "text" 2 (Heap.distinct_estimate h 1);
        Alcotest.(check int) "uid incl null" 2 (Heap.distinct_estimate h 2);
        ignore (Result.get_ok (Heap.insert h (row [ i 4; s "c"; i 9 ])));
        Alcotest.(check int) "invalidated" 3 (Heap.distinct_estimate h 1));
  ]

let store_tests =
  [
    case "create and find" (fun () ->
        let st = Store.create () in
        ignore (Result.get_ok (Store.create_table st "T" forum_schema));
        Alcotest.(check bool) "" true (Store.find st "t" <> None));
    case "duplicate rejected" (fun () ->
        let st = Store.create () in
        ignore (Result.get_ok (Store.create_table st "t" forum_schema));
        Alcotest.(check bool) "" true (Result.is_error (Store.create_table st "t" forum_schema)));
    case "drop" (fun () ->
        let st = Store.create () in
        ignore (Result.get_ok (Store.create_table st "t" forum_schema));
        Alcotest.(check bool) "drop" true (Result.is_ok (Store.drop_table st "t"));
        Alcotest.(check bool) "missing drop" true (Result.is_error (Store.drop_table st "t")));
    case "table_names sorted" (fun () ->
        let st = Store.create () in
        ignore (Result.get_ok (Store.create_table st "b" forum_schema));
        ignore (Result.get_ok (Store.create_table st "a" forum_schema));
        Alcotest.(check (list string)) "" [ "a"; "b" ] (Store.table_names st));
  ]

let () =
  Alcotest.run "storage"
    [
      ("vec", vec_tests);
      ("tuple", tuple_tests);
      ("heap", heap_tests);
      ("store", store_tests);
    ]
