(* Unit tests for the SQL lexer. *)

module Lexer = Perm_sql.Lexer
module Token = Perm_sql.Token
open Perm_testkit.Kit

let tokens_of input =
  match Lexer.tokenize input with
  | Ok toks -> List.map (fun t -> t.Token.token) toks
  | Error e -> Alcotest.failf "lex error at %d: %s" e.Lexer.pos e.Lexer.message

let lex_error input =
  match Lexer.tokenize input with
  | Ok _ -> Alcotest.failf "expected lex error on %S" input
  | Error e -> e.Lexer.message

let token_strings input = List.map Token.to_string (tokens_of input)

let basic_tests =
  [
    case "keywords become lowercase idents" (fun () ->
        Alcotest.(check (list string)) ""
          [ "select"; "foo"; "from"; "bar"; "<eof>" ]
          (token_strings "SELECT Foo FROM bAr"));
    case "numbers" (fun () ->
        match tokens_of "12 3.5 1e3 2.5e-1" with
        | [ Token.Int_lit 12; Token.Float_lit a; Token.Float_lit b; Token.Float_lit c; Token.Eof ] ->
          Alcotest.(check (float 0.001)) "3.5" 3.5 a;
          Alcotest.(check (float 0.001)) "1e3" 1000. b;
          Alcotest.(check (float 0.001)) "2.5e-1" 0.25 c
        | _ -> Alcotest.fail "unexpected tokens");
    case "string literal with escaped quote" (fun () ->
        match tokens_of "'it''s'" with
        | [ Token.String_lit s; Token.Eof ] -> Alcotest.(check string) "" "it's" s
        | _ -> Alcotest.fail "unexpected tokens");
    case "empty string literal" (fun () ->
        match tokens_of "''" with
        | [ Token.String_lit ""; Token.Eof ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    case "quoted identifier preserves case until parser" (fun () ->
        match tokens_of "\"MyCol\"" with
        | [ Token.Quoted_ident s; Token.Eof ] -> Alcotest.(check string) "" "MyCol" s
        | _ -> Alcotest.fail "unexpected tokens");
    case "operators" (fun () ->
        Alcotest.(check (list string)) ""
          [ "<="; ">="; "<>"; "<>"; "="; "<"; ">"; "||"; "<eof>" ]
          (token_strings "<= >= <> != = < > ||"));
    case "punctuation" (fun () ->
        Alcotest.(check (list string)) ""
          [ "("; ")"; ","; "."; "*"; ";"; "<eof>" ]
          (token_strings "( ) , . * ;"));
    case "line comment" (fun () ->
        Alcotest.(check (list string)) "" [ "a"; "b"; "<eof>" ]
          (token_strings "a -- comment here\nb"));
    case "block comment" (fun () ->
        Alcotest.(check (list string)) "" [ "a"; "b"; "<eof>" ]
          (token_strings "a /* multi\nline */ b"));
    case "minus vs line comment" (fun () ->
        Alcotest.(check (list string)) "" [ "a"; "-"; "b"; "<eof>" ]
          (token_strings "a - b"));
    case "underscore identifiers" (fun () ->
        Alcotest.(check (list string)) "" [ "prov_messages_mid"; "<eof>" ]
          (token_strings "prov_messages_mid"));
    case "identifier with digits" (fun () ->
        Alcotest.(check (list string)) "" [ "t1"; "<eof>" ] (token_strings "t1"));
    case "empty input is just eof" (fun () ->
        Alcotest.(check (list string)) "" [ "<eof>" ] (token_strings "  \n\t "));
  ]

let error_tests =
  [
    case "unterminated string" (fun () ->
        Alcotest.(check string) "" "unterminated string literal" (lex_error "'abc"));
    case "unterminated block comment" (fun () ->
        Alcotest.(check string) "" "unterminated block comment" (lex_error "/* abc"));
    case "unexpected character" (fun () ->
        Alcotest.(check bool) "" true (String.length (lex_error "select @") > 0));
    case "position reporting" (fun () ->
        match Lexer.tokenize "a\nb 'x" with
        | Error e ->
          Alcotest.(check string) "" "line 2, column 3"
            (Lexer.describe_position "a\nb 'x" e.Lexer.pos)
        | Ok _ -> Alcotest.fail "expected error");
  ]

let () = Alcotest.run "lexer" [ ("basic", basic_tests); ("errors", error_tests) ]
