(* Parser tests: structure of parsed ASTs, SQL-PLE constructs, error
   reporting, and the print/parse round-trip (fixed corpus + random ASTs). *)

module Ast = Perm_sql.Ast
module Parser = Perm_sql.Parser
module Printer = Perm_sql.Printer
module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
open Perm_testkit.Kit

let parse_q sql =
  match Parser.parse_query sql with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse error: %s" (Parser.error_to_string ~input:sql e)

let parse_st sql =
  match Parser.parse_statement sql with
  | Ok st -> st
  | Error e -> Alcotest.failf "parse error: %s" (Parser.error_to_string ~input:sql e)

let parse_err sql =
  match Parser.parse_statement sql with
  | Ok _ -> Alcotest.failf "expected parse error on %S" sql
  | Error e -> e.Parser.message

let select_of q =
  match (q : Ast.query).body with
  | Ast.Select s -> s
  | Ast.Set_op _ -> Alcotest.fail "expected a plain select"

let structure_tests =
  [
    case "select list with aliases" (fun () ->
        let s = select_of (parse_q "SELECT a, b AS x, t.c y FROM t") in
        match s.Ast.items with
        | [ Ast.Sel_expr (Ast.Ref (None, "a"), None);
            Ast.Sel_expr (Ast.Ref (None, "b"), Some "x");
            Ast.Sel_expr (Ast.Ref (Some "t", "c"), Some "y") ] ->
          ()
        | _ -> Alcotest.fail "unexpected select items");
    case "star and table star" (fun () ->
        let s = select_of (parse_q "SELECT *, t.* FROM t") in
        Alcotest.(check int) "" 2 (List.length s.Ast.items);
        match s.Ast.items with
        | [ Ast.Star; Ast.Table_star "t" ] -> ()
        | _ -> Alcotest.fail "unexpected items");
    case "operator precedence: or over and" (fun () ->
        let s = select_of (parse_q "SELECT 1 FROM t WHERE a OR b AND c") in
        match s.Ast.where with
        | Some (Ast.Binop (Ast.Or, Ast.Ref (None, "a"), Ast.Binop (Ast.And, _, _))) -> ()
        | _ -> Alcotest.fail "OR should be outermost");
    case "arithmetic precedence" (fun () ->
        let s = select_of (parse_q "SELECT 1 + 2 * 3") in
        match s.Ast.items with
        | [ Ast.Sel_expr (Ast.Binop (Ast.Add, Ast.Lit (Value.Int 1), Ast.Binop (Ast.Mul, _, _)), None) ] -> ()
        | _ -> Alcotest.fail "* should bind tighter than +");
    case "comparison chains with not" (fun () ->
        let s = select_of (parse_q "SELECT 1 FROM t WHERE NOT a = b") in
        match s.Ast.where with
        | Some (Ast.Unop (Ast.Not, Ast.Binop (Ast.Eq, _, _))) -> ()
        | _ -> Alcotest.fail "expected NOT over =");
    case "between / in / like / is null" (fun () ->
        let s =
          select_of
            (parse_q
               "SELECT 1 FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1, 2) AND c \
                LIKE 'x%' AND d IS NOT NULL")
        in
        Alcotest.(check bool) "parsed" true (s.Ast.where <> None));
    case "count star vs count expr" (fun () ->
        let s = select_of (parse_q "SELECT count(*), count(DISTINCT a), sum(b)") in
        match s.Ast.items with
        | [ Ast.Sel_expr (Ast.Agg { func = Ast.Count; arg = None; _ }, None);
            Ast.Sel_expr (Ast.Agg { func = Ast.Count; distinct = true; arg = Some _ }, None);
            Ast.Sel_expr (Ast.Agg { func = Ast.Sum; _ }, None) ] ->
          ()
        | _ -> Alcotest.fail "unexpected aggregates");
    case "join tree left-associative" (fun () ->
        let s = select_of (parse_q "SELECT 1 FROM a JOIN b ON x = y LEFT JOIN c ON u = v") in
        match s.Ast.from with
        | [ { Ast.source = Ast.From_join { kind = Ast.Left; left = { Ast.source = Ast.From_join { kind = Ast.Inner; _ }; _ }; _ }; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected join shape");
    case "set op precedence: intersect over union" (fun () ->
        let q = parse_q "SELECT a FROM r UNION SELECT b FROM s INTERSECT SELECT c FROM t" in
        match q.Ast.body with
        | Ast.Set_op { kind = Ast.Union; right = { Ast.body = Ast.Set_op { kind = Ast.Intersect; _ }; _ }; _ } -> ()
        | _ -> Alcotest.fail "INTERSECT should bind tighter");
    case "order by limit offset" (fun () ->
        let q = parse_q "SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2" in
        Alcotest.(check int) "keys" 2 (List.length q.Ast.order_by);
        Alcotest.(check bool) "dirs" true
          (match q.Ast.order_by with
          | [ (_, Ast.Desc); (_, Ast.Asc) ] -> true
          | _ -> false);
        Alcotest.(check bool) "limit" true (q.Ast.limit = Some 5);
        Alcotest.(check bool) "offset" true (q.Ast.offset = Some 2));
    case "offset before limit also accepted" (fun () ->
        let q = parse_q "SELECT a FROM t OFFSET 2 LIMIT 5" in
        Alcotest.(check bool) "" true (q.Ast.limit = Some 5 && q.Ast.offset = Some 2));
    case "case with operand desugars later" (fun () ->
        let s = select_of (parse_q "SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END") in
        match s.Ast.items with
        | [ Ast.Sel_expr (Ast.Case { operand = Some _; branches = [ _ ]; else_ = Some _ }, None) ] -> ()
        | _ -> Alcotest.fail "unexpected case");
    case "scalar subquery vs parenthesised expr" (fun () ->
        let s = select_of (parse_q "SELECT (SELECT 1), (1 + 2)") in
        match s.Ast.items with
        | [ Ast.Sel_expr (Ast.Scalar_subquery _, None); Ast.Sel_expr (Ast.Binop _, None) ] -> ()
        | _ -> Alcotest.fail "unexpected items");
    case "exists and in subqueries" (fun () ->
        let s =
          select_of
            (parse_q "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM s) AND a IN (SELECT b FROM s)")
        in
        Alcotest.(check bool) "" true (s.Ast.where <> None));
    case "insert multiple rows" (fun () ->
        match parse_st "INSERT INTO t VALUES (1, 'a'), (2, 'b')" with
        | Ast.St_insert_values ("t", [ _; _ ]) -> ()
        | _ -> Alcotest.fail "unexpected statement");
    case "create table types" (fun () ->
        match parse_st "CREATE TABLE t (a int, b varchar, c double, d boolean)" with
        | Ast.St_create_table ("t", [ ("a", Dtype.Int); ("b", Dtype.Text); ("c", Dtype.Float); ("d", Dtype.Bool) ]) -> ()
        | _ -> Alcotest.fail "unexpected statement");
    case "script splitting" (fun () ->
        match Parser.parse_script "SELECT 1; ; SELECT 2;" with
        | Ok [ Ast.St_query _; Ast.St_query _ ] -> ()
        | Ok l -> Alcotest.failf "expected 2 statements, got %d" (List.length l)
        | Error e -> Alcotest.failf "error: %s" e.Parser.message);
  ]

let sqlple_tests =
  [
    case "select provenance marker" (fun () ->
        let s = select_of (parse_q "SELECT PROVENANCE a FROM t") in
        Alcotest.(check bool) "" true (s.Ast.provenance = Some Ast.Influence));
    case "on contribution influence" (fun () ->
        let s = select_of (parse_q "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) a FROM t") in
        Alcotest.(check bool) "" true (s.Ast.provenance = Some Ast.Influence));
    case "on contribution copy variants" (fun () ->
        let p sql = (select_of (parse_q sql)).Ast.provenance in
        Alcotest.(check bool) "copy" true
          (p "SELECT PROVENANCE ON CONTRIBUTION (COPY) a FROM t" = Some Ast.Copy_partial);
        Alcotest.(check bool) "copy partial" true
          (p "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM t" = Some Ast.Copy_partial);
        Alcotest.(check bool) "copy complete" true
          (p "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) a FROM t" = Some Ast.Copy_complete));
    case "a column named provenance still works" (fun () ->
        let s = select_of (parse_q "SELECT provenance, b FROM t") in
        match s.Ast.items with
        | [ Ast.Sel_expr (Ast.Ref (None, "provenance"), None); _ ] -> ()
        | _ -> Alcotest.fail "PROVENANCE marker misfired");
    case "provenance as only column before FROM" (fun () ->
        let s = select_of (parse_q "SELECT provenance FROM t") in
        match s.Ast.items with
        | [ Ast.Sel_expr (Ast.Ref (None, "provenance"), None) ] -> ()
        | _ -> Alcotest.fail "PROVENANCE marker misfired");
    case "baserelation modifier" (fun () ->
        let s = select_of (parse_q "SELECT a FROM v BASERELATION") in
        match s.Ast.from with
        | [ { Ast.baserelation = true; _ } ] -> ()
        | _ -> Alcotest.fail "expected baserelation");
    case "provenance attribute list" (fun () ->
        let s = select_of (parse_q "SELECT a FROM t PROVENANCE (p_a, p_b)") in
        match s.Ast.from with
        | [ { Ast.prov_attrs = Some [ "p_a"; "p_b" ]; _ } ] -> ()
        | _ -> Alcotest.fail "expected provenance attrs");
    case "modifiers with alias" (fun () ->
        let s = select_of (parse_q "SELECT a FROM t AS x BASERELATION") in
        match s.Ast.from with
        | [ { Ast.alias = Some "x"; baserelation = true; _ } ] -> ()
        | _ -> Alcotest.fail "expected alias + baserelation");
    case "store provenance statement" (fun () ->
        match parse_st "STORE PROVENANCE SELECT a FROM t INTO p" with
        | Ast.St_store_provenance (_, "p") -> ()
        | _ -> Alcotest.fail "unexpected statement");
    case "explain statement" (fun () ->
        match parse_st "EXPLAIN SELECT PROVENANCE a FROM t" with
        | Ast.St_explain _ -> ()
        | _ -> Alcotest.fail "unexpected statement");
    case "query_uses_provenance" (fun () ->
        Alcotest.(check bool) "plain" false
          (Ast.query_uses_provenance (parse_q "SELECT a FROM t"));
        Alcotest.(check bool) "marked" true
          (Ast.query_uses_provenance (parse_q "SELECT PROVENANCE a FROM t"));
        Alcotest.(check bool) "nested" true
          (Ast.query_uses_provenance
             (parse_q "SELECT x FROM (SELECT PROVENANCE a AS x FROM t) s")));
  ]

let error_tests =
  [
    case "missing from item" (fun () ->
        Alcotest.(check bool) "" true (String.length (parse_err "SELECT a FROM") > 0));
    case "trailing garbage" (fun () ->
        Alcotest.(check bool) "" true
          (String.length (parse_err "SELECT a FROM t extra stuff ,") > 0));
    case "reserved word as table name" (fun () ->
        Alcotest.(check bool) "" true
          (String.length (parse_err "SELECT a FROM select") > 0));
    case "star in non-count aggregate" (fun () ->
        Alcotest.(check string) "" "only COUNT may take * as its argument"
          (parse_err "SELECT sum(*) FROM t"));
    case "case without when" (fun () ->
        Alcotest.(check string) "" "CASE requires at least one WHEN branch"
          (parse_err "SELECT CASE ELSE 1 END"));
    case "unknown cast type" (fun () ->
        Alcotest.(check bool) "" true
          (String.length (parse_err "SELECT CAST(a AS blob) FROM t") > 0));
    case "negative limit" (fun () ->
        Alcotest.(check bool) "" true
          (String.length (parse_err "SELECT a FROM t LIMIT -1") > 0));
    case "error position is useful" (fun () ->
        match Parser.parse_statement "SELECT a FROM t WHERE" with
        | Error e ->
          let msg = Parser.error_to_string ~input:"SELECT a FROM t WHERE" e in
          Alcotest.(check bool) "mentions line" true
            (String.length msg > 0 && String.sub msg 0 12 = "syntax error")
        | Ok _ -> Alcotest.fail "expected error");
  ]

(* ------------------------------------------------------------------ *)
(* Round-trip: parse (print (parse sql)) = parse sql                   *)
(* ------------------------------------------------------------------ *)

let corpus =
  [
    "SELECT mid, text FROM messages UNION SELECT mid, text FROM imports";
    "SELECT PROVENANCE ON CONTRIBUTION (COPY) count(*), text FROM v1 JOIN \
     approved AS a ON v1.mid = a.mid GROUP BY v1.mid, text HAVING count(*) > 1";
    "SELECT DISTINCT a, b + 1 AS c FROM r, s WHERE r.x = s.y OR r.x IS NULL \
     ORDER BY c DESC LIMIT 3 OFFSET 1";
    "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t";
    "SELECT CASE a WHEN 1 THEN 'one' END FROM t";
    "(SELECT a FROM r) EXCEPT ALL ((SELECT b FROM s) INTERSECT (SELECT c FROM t))";
    "SELECT a FROM r LEFT OUTER JOIN s ON r.x = s.y FULL OUTER JOIN t ON t.z = s.y";
    "SELECT * FROM r PROVENANCE (p_a) WHERE a IN (SELECT b FROM s WHERE \
     EXISTS (SELECT 1 FROM u))";
    "SELECT a FROM v BASERELATION WHERE b BETWEEN 1 AND 10";
    "SELECT coalesce(a, 0), abs(- b), cast(c AS float) FROM t";
    "SELECT 'it''s' || text FROM m WHERE text LIKE '%x%'";
    "SELECT sum(DISTINCT a) FROM t GROUP BY b % 2";
    "INSERT INTO t VALUES (1, 'x', null, true)";
    "UPDATE t SET a = a + 1 WHERE b IS NOT NULL";
    "DELETE FROM t WHERE a NOT IN (1, 2)";
    "CREATE VIEW v AS SELECT a FROM t WHERE a > 0";
    "CREATE TABLE t2 AS SELECT a, b FROM t";
    "STORE PROVENANCE SELECT a FROM t WHERE a = 1 INTO t_prov";
    "SELECT a, (SELECT max(b) FROM s) AS mx FROM t ORDER BY 1";
  ]

let roundtrip_tests =
  [
    case "corpus round-trips" (fun () ->
        List.iter
          (fun sql ->
            let ast = parse_st sql in
            let printed = Printer.statement_to_string ast in
            let ast2 =
              match Parser.parse_statement printed with
              | Ok a -> a
              | Error e ->
                Alcotest.failf "re-parse of %S failed: %s" printed e.Parser.message
            in
            if ast <> ast2 then
              Alcotest.failf "round-trip mismatch for %S -> %S" sql printed)
          corpus);
  ]

(* Random expression/select generator for the print/parse property. *)
let gen_expr =
  QCheck.Gen.(
    sized_size (int_bound 4) (fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> Ast.Lit (Value.Int i)) (int_bound 100);
              map (fun s -> Ast.Lit (Value.Text s)) (string_size ~gen:(char_range 'a' 'c') (int_bound 3));
              return (Ast.Lit Value.Null);
              map (fun b -> Ast.Lit (Value.Bool b)) bool;
              oneofl [ Ast.Ref (None, "a"); Ast.Ref (None, "b"); Ast.Ref (Some "t", "c") ];
            ]
        in
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Ast.Binop (Ast.Eq, a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Ast.Binop (Ast.And, Ast.Binop (Ast.Lt, a, b), Ast.Binop (Ast.Geq, a, b)))
                (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.Unop (Ast.Not, Ast.Is_null { negated = false; arg = a })) (self (n - 1));
              map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1));
              map2 (fun a low -> Ast.Between { negated = false; arg = a; low; high = Ast.Lit (Value.Int 9) })
                (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.In_list { negated = true; arg = a; candidates = [ Ast.Lit (Value.Int 1); Ast.Lit (Value.Int 2) ] })
                (self (n - 1));
              map (fun a -> Ast.Cast (a, Dtype.Int)) (self (n - 1));
              map (fun a -> Ast.Func ("coalesce", [ a; Ast.Lit (Value.Int 0) ])) (self (n - 1));
              map (fun (c, r) -> Ast.Case { operand = None; branches = [ (Ast.Binop (Ast.Eq, c, r), r) ]; else_ = Some c })
                (pair (self (n / 2)) (self (n / 2)));
            ])))

let gen_query =
  QCheck.Gen.(
    let gen_select =
      map2
        (fun items where ->
          {
            Ast.empty_select with
            Ast.items = List.map (fun e -> Ast.Sel_expr (e, None)) items;
            from = [ Ast.plain_from ~alias:(Some "t") (Ast.From_table "r") ];
            where;
          })
        (list_size (int_range 1 3) gen_expr)
        (opt gen_expr)
    in
    map
      (fun s -> Ast.select_query s)
      gen_select)

let arb_query = QCheck.make ~print:Perm_sql.Printer.query_to_string gen_query

let property_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"print/parse round-trip on random queries" ~count:300
         arb_query
         (fun q ->
           let printed = Printer.query_to_string q in
           match Parser.parse_query printed with
           | Ok q2 -> q = q2
           | Error _ -> false));
  ]

let () =
  Alcotest.run "parser"
    [
      ("structure", structure_tests);
      ("sql-ple", sqlple_tests);
      ("errors", error_tests);
      ("roundtrip", roundtrip_tests);
      ("properties", property_tests);
    ]
