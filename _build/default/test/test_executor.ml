(* Executor tests: operator semantics through end-to-end SQL, with special
   attention to NULL handling, join kinds, aggregates, and bag-semantics
   set operations. *)

open Perm_testkit.Kit

let setup () =
  let e = engine () in
  exec_all e
    [
      "CREATE TABLE t (a int, b text)";
      "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (2, 'y'), (3, null), (null, 'z')";
      "CREATE TABLE u (a int, c text)";
      "INSERT INTO u VALUES (2, 'cx'), (3, 'cy'), (4, 'cz'), (null, 'cn')";
    ];
  e

let filter_tests =
  [
    case "filter keeps only TRUE (3VL)" (fun () ->
        (* a > 1 is unknown for the NULL row: excluded *)
        check_rows (setup ()) "SELECT a FROM t WHERE a > 1"
          [ [ "2" ]; [ "2" ]; [ "3" ] ]);
    case "not of unknown stays unknown" (fun () ->
        check_rows (setup ()) "SELECT a FROM t WHERE NOT (a > 1)" [ [ "1" ] ]);
    case "is null / is not null" (fun () ->
        check_rows (setup ()) "SELECT b FROM t WHERE a IS NULL" [ [ "z" ] ];
        check_count (setup ()) "SELECT 1 FROM t WHERE a IS NOT NULL" 4);
    case "null = null is unknown in where" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t WHERE null = null" 0);
    case "or short-circuits around unknown" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t WHERE a IS NULL OR a > 0" 5);
    case "division by zero is a runtime error" (fun () ->
        let msg = query_err (setup ()) "SELECT 1 / 0 FROM t" in
        Alcotest.(check string) "" "division by zero" msg);
    case "division by zero behind a filter can be avoided" (fun () ->
        check_count (setup ()) "SELECT 10 / a FROM t WHERE a > 1" 3);
    case "case expression" (fun () ->
        check_rows (setup ())
          "SELECT CASE WHEN a IS NULL THEN 'none' WHEN a >= 2 THEN 'big' ELSE 'small' END FROM t"
          [ [ "small" ]; [ "big" ]; [ "big" ]; [ "big" ]; [ "none" ] ]);
    case "between desugars inclusively" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t WHERE a BETWEEN 2 AND 3" 3);
    case "in list with null member" (fun () ->
        (* a IN (2, null): true for 2, unknown for others *)
        check_count (setup ()) "SELECT 1 FROM t WHERE a IN (2, null)" 2);
  ]

let join_tests =
  [
    case "inner join equi" (fun () ->
        check_rows (setup ()) "SELECT t.a, u.c FROM t JOIN u ON t.a = u.a"
          [ [ "2"; "cx" ]; [ "2"; "cx" ]; [ "3"; "cy" ] ]);
    case "null keys never match in joins" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t JOIN u ON t.a = u.a" 3);
    case "left join pads" (fun () ->
        check_rows (setup ())
          "SELECT t.a, u.c FROM t LEFT JOIN u ON t.a = u.a"
          [ [ "1"; "null" ]; [ "2"; "cx" ]; [ "2"; "cx" ]; [ "3"; "cy" ]; [ "null"; "null" ] ]);
    case "right join pads the left side" (fun () ->
        check_rows (setup ())
          "SELECT t.a, u.c FROM t RIGHT JOIN u ON t.a = u.a"
          [ [ "2"; "cx" ]; [ "2"; "cx" ]; [ "3"; "cy" ]; [ "null"; "cz" ]; [ "null"; "cn" ] ]);
    case "full join pads both" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t FULL JOIN u ON t.a = u.a" 7);
    case "cross join multiplies" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t CROSS JOIN u" 20);
    case "theta join falls back to nested loop" (fun () ->
        (* 1<{2,3,4}, 2<{3,4} twice, 3<{4} *)
        check_count (setup ()) "SELECT 1 FROM t JOIN u ON t.a < u.a" 8);
    case "residual predicate on equi join" (fun () ->
        check_rows (setup ())
          "SELECT t.a, u.c FROM t JOIN u ON t.a = u.a AND u.c LIKE 'cy%'"
          [ [ "3"; "cy" ] ]);
    case "join with constant-true condition behaves as cross" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t JOIN u ON 1 = 1" 20);
    case "duplicate left rows keep multiplicity" (fun () ->
        check_count (setup ()) "SELECT 1 FROM t JOIN u ON t.a = u.a WHERE t.a = 2" 2);
  ]

let aggregate_tests =
  [
    case "count star counts rows, count(col) skips nulls" (fun () ->
        check_rows (setup ()) "SELECT count(*), count(a), count(b) FROM t"
          [ [ "5"; "4"; "4" ] ]);
    case "sum avg min max" (fun () ->
        check_rows (setup ()) "SELECT sum(a), avg(a), min(a), max(a) FROM t"
          [ [ "8"; "2.0"; "1"; "3" ] ]);
    case "aggregates over empty input" (fun () ->
        check_rows (setup ())
          "SELECT count(*), sum(a), min(a) FROM t WHERE a > 100"
          [ [ "0"; "null"; "null" ] ]);
    case "group by with empty input yields no rows" (fun () ->
        check_count (setup ()) "SELECT a, count(*) FROM t WHERE a > 100 GROUP BY a" 0);
    case "group by groups nulls together" (fun () ->
        check_rows (setup ()) "SELECT b, count(*) FROM t GROUP BY b"
          [ [ "x"; "1" ]; [ "y"; "2" ]; [ "null"; "1" ]; [ "z"; "1" ] ]);
    case "count distinct" (fun () ->
        check_rows (setup ()) "SELECT count(DISTINCT a) FROM t" [ [ "3" ] ]);
    case "sum distinct" (fun () ->
        check_rows (setup ()) "SELECT sum(DISTINCT a) FROM t" [ [ "6" ] ]);
    case "avg of ints is float" (fun () ->
        check_rows (setup ()) "SELECT avg(a) FROM t WHERE a = 1" [ [ "1.0" ] ]);
    case "min/max on text" (fun () ->
        check_rows (setup ()) "SELECT min(b), max(b) FROM t" [ [ "x"; "z" ] ]);
    case "group by expression" (fun () ->
        check_rows (setup ()) "SELECT a % 2, count(*) FROM t WHERE a IS NOT NULL GROUP BY a % 2"
          [ [ "0"; "2" ]; [ "1"; "2" ] ]);
    case "having filters groups" (fun () ->
        check_rows (setup ())
          "SELECT b, count(*) FROM t GROUP BY b HAVING count(*) > 1" [ [ "y"; "2" ] ]);
  ]

let setop_tests =
  [
    case "union distinct dedups" (fun () ->
        check_rows (setup ()) "SELECT a FROM t UNION SELECT a FROM u"
          [ [ "1" ]; [ "2" ]; [ "3" ]; [ "4" ]; [ "null" ] ]);
    case "union all keeps duplicates" (fun () ->
        check_count (setup ()) "SELECT a FROM t UNION ALL SELECT a FROM u" 9);
    case "intersect distinct" (fun () ->
        (* NULL = NULL for set operations, per SQL *)
        check_rows (setup ()) "SELECT a FROM t INTERSECT SELECT a FROM u"
          [ [ "2" ]; [ "3" ]; [ "null" ] ]);
    case "intersect all respects multiplicity" (fun () ->
        let e = setup () in
        exec_all e [ "INSERT INTO u VALUES (2, 'again')" ];
        check_rows e "SELECT a FROM t INTERSECT ALL SELECT a FROM u"
          [ [ "2" ]; [ "2" ]; [ "3" ]; [ "null" ] ]);
    case "except distinct" (fun () ->
        check_rows (setup ()) "SELECT a FROM t EXCEPT SELECT a FROM u" [ [ "1" ] ]);
    case "except all subtracts occurrences" (fun () ->
        let e = setup () in
        exec_all e [ "INSERT INTO t VALUES (2, 'y3')" ];
        (* t has a=2 three times, u once: 2 copies remain *)
        check_rows e "SELECT a FROM t EXCEPT ALL SELECT a FROM u"
          [ [ "1" ]; [ "2" ]; [ "2" ] ]);
    case "int/float columns unify across a union" (fun () ->
        let e = setup () in
        exec_all e
          [ "CREATE TABLE ft (x float)"; "INSERT INTO ft VALUES (1.5)" ];
        check_rows e "SELECT a FROM t WHERE a = 1 UNION SELECT x FROM ft"
          [ [ "1" ]; [ "1.5" ] ]);
  ]

let sort_limit_tests =
  [
    case "order asc puts nulls first" (fun () ->
        check_rows ~ordered:true (setup ()) "SELECT a FROM t ORDER BY a"
          [ [ "null" ]; [ "1" ]; [ "2" ]; [ "2" ]; [ "3" ] ]);
    case "order desc" (fun () ->
        check_rows ~ordered:true (setup ()) "SELECT a FROM t ORDER BY a DESC"
          [ [ "3" ]; [ "2" ]; [ "2" ]; [ "1" ]; [ "null" ] ]);
    case "multi-key sort is stable" (fun () ->
        check_rows ~ordered:true (setup ())
          "SELECT a, b FROM t WHERE a IS NOT NULL ORDER BY a DESC, b"
          [ [ "3"; "null" ]; [ "2"; "y" ]; [ "2"; "y" ]; [ "1"; "x" ] ]);
    case "limit" (fun () ->
        check_rows ~ordered:true (setup ()) "SELECT a FROM t ORDER BY a LIMIT 2"
          [ [ "null" ]; [ "1" ] ]);
    case "offset" (fun () ->
        check_rows ~ordered:true (setup ())
          "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 3"
          [ [ "2" ]; [ "3" ] ]);
    case "offset past the end" (fun () ->
        check_count (setup ()) "SELECT a FROM t LIMIT 10 OFFSET 99" 0);
    case "limit zero" (fun () ->
        check_count (setup ()) "SELECT a FROM t LIMIT 0" 0);
  ]

let misc_tests =
  [
    case "select without from" (fun () ->
        check_rows (setup ()) "SELECT 1 + 2, 'x' || 'y'" [ [ "3"; "xy" ] ]);
    case "distinct treats nulls as equal" (fun () ->
        let e = setup () in
        exec_all e [ "INSERT INTO t VALUES (null, 'z')" ];
        check_rows e "SELECT DISTINCT a, b FROM t WHERE b = 'z'" [ [ "null"; "z" ] ]);
    case "projection expressions" (fun () ->
        check_rows (setup ()) "SELECT a * 10 + 1 FROM t WHERE a = 2 LIMIT 1" [ [ "21" ] ]);
    case "cast in projection" (fun () ->
        check_rows (setup ()) "SELECT cast(a AS text) || '!' FROM t WHERE a = 1"
          [ [ "1!" ] ]);
    case "coalesce over nullable column" (fun () ->
        check_rows (setup ()) "SELECT coalesce(b, '?') FROM t WHERE a = 3" [ [ "?" ] ]);
    case "concat with null yields null" (fun () ->
        check_rows (setup ()) "SELECT 'v' || b FROM t WHERE a = 3" [ [ "null" ] ]);
  ]

let () =
  Alcotest.run "executor"
    [
      ("filter-null", filter_tests);
      ("joins", join_tests);
      ("aggregates", aggregate_tests);
      ("set-ops", setop_tests);
      ("sort-limit", sort_limit_tests);
      ("misc", misc_tests);
    ]
