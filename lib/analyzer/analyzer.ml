module Ast = Perm_sql.Ast
module Parser = Perm_sql.Parser
module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Builtins = Perm_algebra.Builtins
module Catalog = Perm_catalog.Catalog
module Schema = Perm_catalog.Schema
module Column = Perm_catalog.Column
module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
module Sources = Perm_provenance.Sources

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

(* A range variable: one FROM item visible under an alias. *)
type rv = { rv_name : string; rv_cols : (string * Attr.t) list }

type scope = { rvs : rv list; parent : scope option }

let rec resolve_in_scope scope qualifier name =
  let matches =
    match qualifier with
    | Some q ->
      List.concat_map
        (fun rv ->
          if String.equal rv.rv_name q then
            List.filter (fun (n, _) -> String.equal n name) rv.rv_cols
          else [])
        scope.rvs
    | None ->
      List.concat_map
        (fun rv -> List.filter (fun (n, _) -> String.equal n name) rv.rv_cols)
        scope.rvs
  in
  match matches with
  | [ (_, attr) ] -> attr
  | [] -> (
    match scope.parent with
    | Some parent -> resolve_in_scope parent qualifier name
    | None -> (
      match qualifier with
      | Some q -> errf "column %s.%s does not exist" q name
      | None -> errf "column %S does not exist" name))
  | _ :: _ ->
    errf "column reference %S is ambiguous"
      (match qualifier with Some q -> q ^ "." ^ name | None -> name)

let rv_exists scope name = List.exists (fun rv -> String.equal rv.rv_name name) scope.rvs

(* ------------------------------------------------------------------ *)
(* Typing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let expect_unifiable what a b =
  match Dtype.unify a b with
  | Some t -> t
  | None ->
    errf "%s: incompatible types %s and %s" what (Dtype.to_string a)
      (Dtype.to_string b)

let expect_numeric what ty =
  if Dtype.is_numeric ty || Dtype.equal ty Dtype.Any then ()
  else errf "%s requires a numeric operand, got %s" what (Dtype.to_string ty)

let expect_bool what ty =
  if Dtype.equal ty Dtype.Bool || Dtype.equal ty Dtype.Any then ()
  else errf "%s requires a boolean operand, got %s" what (Dtype.to_string ty)

let expect_text what ty =
  if Dtype.equal ty Dtype.Text || Dtype.equal ty Dtype.Any then ()
  else errf "%s requires a text operand, got %s" what (Dtype.to_string ty)

let check_binop op a b =
  let ta = Expr.type_of a and tb = Expr.type_of b in
  (match (op : Expr.binop) with
  | Expr.Add
    when (Dtype.equal ta Dtype.Date && (Dtype.equal tb Dtype.Int || Dtype.equal tb Dtype.Any))
         || (Dtype.equal tb Dtype.Date && (Dtype.equal ta Dtype.Int || Dtype.equal ta Dtype.Any)) ->
    () (* date + days *)
  | Expr.Sub
    when Dtype.equal ta Dtype.Date
         && (Dtype.equal tb Dtype.Date || Dtype.equal tb Dtype.Int || Dtype.equal tb Dtype.Any) ->
    () (* date - days, date - date *)
  | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div ->
    expect_numeric (Expr.binop_name op) ta;
    expect_numeric (Expr.binop_name op) tb
  | Expr.Mod ->
    expect_numeric "%" ta;
    expect_numeric "%" tb
  | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq ->
    ignore (expect_unifiable ("comparison " ^ Expr.binop_name op) ta tb)
  | Expr.And | Expr.Or ->
    expect_bool (Expr.binop_name op) ta;
    expect_bool (Expr.binop_name op) tb
  | Expr.Concat ->
    expect_text "||" ta;
    expect_text "||" tb
  | Expr.Like ->
    expect_text "LIKE" ta;
    expect_text "LIKE" tb);
  Expr.Binop (op, a, b)

let binop_of_ast = function
  | Ast.Add -> Expr.Add
  | Ast.Sub -> Expr.Sub
  | Ast.Mul -> Expr.Mul
  | Ast.Div -> Expr.Div
  | Ast.Mod -> Expr.Mod
  | Ast.Eq -> Expr.Eq
  | Ast.Neq -> Expr.Neq
  | Ast.Lt -> Expr.Lt
  | Ast.Leq -> Expr.Leq
  | Ast.Gt -> Expr.Gt
  | Ast.Geq -> Expr.Geq
  | Ast.And -> Expr.And
  | Ast.Or -> Expr.Or
  | Ast.Concat -> Expr.Concat
  | Ast.Like -> Expr.Like

(* ------------------------------------------------------------------ *)
(* Aggregate collection                                                *)
(* ------------------------------------------------------------------ *)

type collector = { mutable calls : Plan.agg_call list (* reverse order *) }

let agg_func_of_ast distinct arg = function
  | Ast.Count -> ( match arg with None -> Plan.Count_star | Some _ -> Plan.Count)
  | Ast.Sum ->
    ignore distinct;
    Plan.Sum
  | Ast.Avg -> Plan.Avg
  | Ast.Min -> Plan.Min
  | Ast.Max -> Plan.Max
  | Ast.Bool_and -> Plan.Bool_and
  | Ast.Bool_or -> Plan.Bool_or

let agg_result_type func (arg : Expr.t option) =
  match func with
  | Plan.Count_star | Plan.Count -> Dtype.Int
  | Plan.Avg -> Dtype.Float
  | Plan.Bool_and | Plan.Bool_or -> Dtype.Bool
  | Plan.Sum | Plan.Min | Plan.Max -> (
    match arg with
    | Some e -> Expr.type_of e
    | None -> Dtype.Any)

let agg_display_name = function
  | Plan.Count_star | Plan.Count -> "count"
  | Plan.Sum -> "sum"
  | Plan.Avg -> "avg"
  | Plan.Min -> "min"
  | Plan.Max -> "max"
  | Plan.Bool_and -> "bool_and"
  | Plan.Bool_or -> "bool_or"

(* Reuse an existing structurally-equal call so e.g. a count-star in the
   select list and in HAVING share one aggregate column. *)
let collect_agg collector func distinct arg =
  let existing =
    List.find_opt
      (fun (c : Plan.agg_call) ->
        c.agg = func && c.distinct = distinct
        && Option.equal Expr.equal c.arg arg)
      collector.calls
  in
  match existing with
  | Some c -> c.agg_out
  | None ->
    let out = Attr.fresh (agg_display_name func) (agg_result_type func arg) in
    collector.calls <- { agg = func; distinct; arg; agg_out = out } :: collector.calls;
    out

(* ------------------------------------------------------------------ *)
(* Translation context                                                 *)
(* ------------------------------------------------------------------ *)

type ctx = {
  catalog : Catalog.t;
  view_stack : string list;  (* views being unfolded; cycle guard *)
}

(* A block being translated: the current relational plan and its scope.
   Subquery expressions (scalar, EXISTS, IN) graft Apply nodes onto [plan],
   which is why it is mutable. *)
type block = { mutable plan : Plan.t; scope : scope }

type expr_env = {
  block : block;
  collector : collector option;  (* Some = aggregates allowed here *)
  subqueries_allowed : bool;  (* scalar subqueries may wrap block.plan *)
  in_agg : bool;  (* inside an aggregate argument: no nesting *)
  where : string;  (* clause name for error messages *)
}

let rec translate_expr ctx env (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Lit v -> Expr.Const v
  | Ast.Param n ->
    errf "parameter $%d was not bound (use Engine.query_params)" n
  | Ast.Ref (q, name) -> Expr.Attr (resolve_in_scope env.block.scope q name)
  | Ast.Binop (op, a, b) ->
    let a = translate_expr ctx env a and b = translate_expr ctx env b in
    check_binop (binop_of_ast op) a b
  | Ast.Unop (Ast.Not, a) ->
    let a = translate_expr ctx env a in
    expect_bool "NOT" (Expr.type_of a);
    Expr.Unop (Expr.Not, a)
  | Ast.Unop (Ast.Neg, a) ->
    let a = translate_expr ctx env a in
    expect_numeric "unary -" (Expr.type_of a);
    Expr.Unop (Expr.Neg, a)
  | Ast.Is_null { negated; arg } ->
    let a = translate_expr ctx env arg in
    let e = Expr.Unop (Expr.Is_null, a) in
    if negated then Expr.Unop (Expr.Not, e) else e
  | Ast.Between { negated; arg; low; high } ->
    let a = translate_expr ctx env arg in
    let lo = translate_expr ctx env low in
    let hi = translate_expr ctx env high in
    let e =
      Expr.Binop
        ( Expr.And,
          check_binop Expr.Geq a lo,
          check_binop Expr.Leq a hi )
    in
    if negated then Expr.Unop (Expr.Not, e) else e
  | Ast.In_list { negated; arg; candidates } ->
    let a = translate_expr ctx env arg in
    let disjuncts =
      List.map (fun c -> check_binop Expr.Eq a (translate_expr ctx env c)) candidates
    in
    let e =
      match disjuncts with
      | [] -> Expr.Const (Value.Bool false)
      | d :: rest -> List.fold_left (fun acc d -> Expr.Binop (Expr.Or, acc, d)) d rest
    in
    if negated then Expr.Unop (Expr.Not, e) else e
  | Ast.Case { operand; branches; else_ } ->
    let operand = Option.map (translate_expr ctx env) operand in
    let branches =
      List.map
        (fun (cond, result) ->
          let cond_e = translate_expr ctx env cond in
          let cond_e =
            match operand with
            | Some op -> check_binop Expr.Eq op cond_e
            | None ->
              expect_bool "CASE WHEN" (Expr.type_of cond_e);
              cond_e
          in
          (cond_e, translate_expr ctx env result))
        branches
    in
    let else_ = Option.map (translate_expr ctx env) else_ in
    (* result types must unify *)
    let _ =
      List.fold_left
        (fun acc (_, r) -> expect_unifiable "CASE branches" acc (Expr.type_of r))
        (match else_ with Some e -> Expr.type_of e | None -> Dtype.Any)
        branches
    in
    Expr.Case { branches; else_ }
  | Ast.Cast (e, ty) -> Expr.Cast (translate_expr ctx env e, ty)
  | Ast.Func (name, args) -> (
    match Builtins.find name with
    | None -> errf "unknown function %S" name
    | Some s ->
      let args = List.map (translate_expr ctx env) args in
      (match s.Builtins.check (List.map Expr.type_of args) with
      | Ok _ -> ()
      | Error msg -> raise (Error msg));
      Expr.Func (name, args))
  | Ast.Agg { func; distinct; arg } -> (
    if env.in_agg then errf "aggregate calls cannot be nested";
    match env.collector with
    | None -> errf "aggregate functions are not allowed in %s" env.where
    | Some collector ->
      let arg =
        Option.map
          (fun a -> translate_expr ctx { env with in_agg = true } a)
          arg
      in
      (match func, arg with
      | (Ast.Sum | Ast.Avg), Some a ->
        expect_numeric (Ast.agg_name func) (Expr.type_of a)
      | (Ast.Bool_and | Ast.Bool_or), Some a ->
        expect_bool (Ast.agg_name func) (Expr.type_of a)
      | _ -> ());
      Expr.Attr (collect_agg collector (agg_func_of_ast distinct arg func) distinct arg))
  | Ast.Scalar_subquery q ->
    if not env.subqueries_allowed then
      errf "subqueries are not allowed in %s" env.where;
    let subplan = translate_query ctx (Some env.block.scope) q in
    (match Plan.schema subplan with
    | [ col ] ->
      let out = Attr.fresh col.Attr.name col.Attr.ty in
      env.block.plan <-
        Plan.Apply
          { kind = Plan.A_scalar out; left = env.block.plan; right = subplan };
      Expr.Attr out
    | cols ->
      errf "scalar subquery must return exactly one column, returns %d"
        (List.length cols))
  | Ast.In_query _ | Ast.Exists _ ->
    errf
      "IN/EXISTS subqueries are only supported as top-level conjuncts of a \
       WHERE clause"

(* ------------------------------------------------------------------ *)
(* FROM items                                                          *)
(* ------------------------------------------------------------------ *)

and scan_of_table table_name (schema : Schema.t) =
  let attrs =
    List.map (fun (c : Column.t) -> Attr.fresh c.name c.ty) (Schema.columns schema)
  in
  (Plan.Scan { table = table_name; attrs }, attrs)

and translate_from_item ctx outer (item : Ast.from_item) : Plan.t * rv list =
  let plan, rvs =
    match item.source with
    | Ast.From_table name -> (
      match Catalog.find_table ctx.catalog name with
      | Some def ->
        let plan, attrs = scan_of_table def.Catalog.table_name def.Catalog.table_schema in
        let rv_name = Option.value item.alias ~default:name in
        ( plan,
          [
            {
              rv_name = String.lowercase_ascii rv_name;
              rv_cols = List.map (fun (a : Attr.t) -> (a.Attr.name, a)) attrs;
            };
          ] )
      | None -> (
        match Catalog.find_view ctx.catalog name with
        | Some vdef ->
          if List.mem vdef.Catalog.view_name ctx.view_stack then
            errf "infinite recursion detected in view %S" vdef.Catalog.view_name;
          let view_ast =
            match Parser.parse_query vdef.Catalog.view_sql with
            | Ok q -> q
            | Error e ->
              errf "stored definition of view %S no longer parses: %s"
                vdef.Catalog.view_name e.Parser.message
          in
          let ctx' = { ctx with view_stack = vdef.Catalog.view_name :: ctx.view_stack } in
          (* Views cannot be correlated: translated in a fresh scope. *)
          let plan = translate_query ctx' None view_ast in
          let rv_name = Option.value item.alias ~default:name in
          let cols =
            List.map2
              (fun (c : Column.t) (a : Attr.t) -> (c.name, a))
              (Schema.columns vdef.Catalog.view_schema)
              (first_n (Plan.schema plan) (Schema.arity vdef.Catalog.view_schema))
          in
          ( plan,
            [ { rv_name = String.lowercase_ascii rv_name; rv_cols = cols } ] )
        | None -> (
          (* Virtual system relations (perm_stat_statements, perm_metrics,
             ...) analyze exactly like base tables: a Scan whose rows the
             engine's provider materializes at execution time. *)
          match Catalog.find_virtual ctx.catalog name with
          | Some vdef ->
            let plan, attrs =
              scan_of_table vdef.Catalog.virtual_name vdef.Catalog.virtual_schema
            in
            let rv_name = Option.value item.alias ~default:name in
            ( plan,
              [
                {
                  rv_name = String.lowercase_ascii rv_name;
                  rv_cols =
                    List.map (fun (a : Attr.t) -> (a.Attr.name, a)) attrs;
                };
              ] )
          | None -> errf "relation %S does not exist" name)))
    | Ast.From_subquery q ->
      let plan = translate_query ctx None q in
      let rv_name = Option.value item.alias ~default:"subquery" in
      ( plan,
        [
          {
            rv_name = String.lowercase_ascii rv_name;
            rv_cols =
              List.map (fun (a : Attr.t) -> (a.Attr.name, a)) (Plan.schema plan);
          };
        ] )
    | Ast.From_join { kind; left; right; cond } ->
      let lplan, lrvs = translate_from_item ctx outer left in
      let rplan, rrvs = translate_from_item ctx outer right in
      check_duplicate_rvs (lrvs @ rrvs);
      let pred =
        match cond with
        | None -> None
        | Some c ->
          let scope = { rvs = lrvs @ rrvs; parent = outer } in
          let block = { plan = Plan.Values { attrs = []; rows = [] }; scope } in
          let env =
            {
              block;
              collector = None;
              subqueries_allowed = false;
              in_agg = false;
              where = "a JOIN condition";
            }
          in
          let p = translate_expr ctx env c in
          expect_bool "JOIN ... ON" (Expr.type_of p);
          Some p
      in
      let kind' =
        match kind with
        | Ast.Inner -> Plan.Inner
        | Ast.Left -> Plan.Left
        | Ast.Right -> Plan.Right
        | Ast.Full -> Plan.Full
        | Ast.Cross -> Plan.Cross
      in
      (Plan.Join { kind = kind'; left = lplan; right = rplan; pred }, lrvs @ rrvs)
  in
  (* SQL-PLE FROM-item modifiers *)
  let plan =
    if item.baserelation && item.prov_attrs <> None then
      errf "BASERELATION and PROVENANCE (...) cannot be combined on one FROM item"
    else if item.baserelation then begin
      match item.source with
      | Ast.From_join _ -> errf "BASERELATION cannot be applied to a join"
      | _ ->
        let rel_name =
          match rvs with { rv_name; _ } :: _ -> rv_name | [] -> "subquery"
        in
        Plan.Baserel { child = plan; rel_name }
    end
    else plan
  in
  let plan =
    match item.prov_attrs with
    | None -> plan
    | Some names ->
      let cols = List.concat_map (fun rv -> rv.rv_cols) rvs in
      let ext_attrs =
        List.map
          (fun n ->
            let n = String.lowercase_ascii n in
            match List.assoc_opt n cols with
            | Some a -> a
            | None -> errf "PROVENANCE attribute %S does not exist in this FROM item" n)
          names
      in
      Plan.External { child = plan; ext_attrs }
  in
  (plan, rvs)

and first_n lst n =
  if List.length lst < n then errf "internal: view schema wider than its plan"
  else List.filteri (fun i _ -> i < n) lst

and check_duplicate_rvs rvs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun rv ->
      if Hashtbl.mem seen rv.rv_name then
        errf "table name %S specified more than once" rv.rv_name
      else Hashtbl.add seen rv.rv_name ())
    rvs

(* ------------------------------------------------------------------ *)
(* WHERE clause: IN/EXISTS de-correlation                              *)
(* ------------------------------------------------------------------ *)

and split_where_conjuncts (e : Ast.expr) =
  match e with
  | Ast.Binop (Ast.And, a, b) -> split_where_conjuncts a @ split_where_conjuncts b
  | e -> [ e ]

and apply_where ctx block (e : Ast.expr) =
  let conjuncts = split_where_conjuncts e in
  let plain = ref [] in
  let translate_plain c =
    let env =
      {
        block;
        collector = None;
        subqueries_allowed = true;
        in_agg = false;
        where = "the WHERE clause";
      }
    in
    let p = translate_expr ctx env c in
    expect_bool "WHERE" (Expr.type_of p);
    plain := p :: !plain
  in
  let handle_semi_anti negated build =
    (* translate the subquery against the current scope, graft an Apply *)
    let kind = if negated then Plan.A_anti else Plan.A_semi in
    let right = build () in
    block.plan <- Plan.Apply { kind; left = block.plan; right }
  in
  let handle_in negated arg subquery =
    handle_semi_anti negated (fun () ->
        let subplan = translate_query ctx (Some block.scope) subquery in
        match Plan.schema subplan with
        | [ col ] ->
          let env =
            {
              block;
              collector = None;
              subqueries_allowed = false;
              in_agg = false;
              where = "the WHERE clause";
            }
          in
          let arg_e = translate_expr ctx env arg in
          let pred = check_binop Expr.Eq arg_e (Expr.Attr col) in
          Plan.Filter { child = subplan; pred }
        | cols ->
          errf "IN subquery must return exactly one column, returns %d"
            (List.length cols))
  in
  List.iter
    (fun c ->
      match c with
      | Ast.Exists { negated; subquery } ->
        handle_semi_anti negated (fun () ->
            translate_query ctx (Some block.scope) subquery)
      | Ast.Unop (Ast.Not, Ast.Exists { negated; subquery }) ->
        handle_semi_anti (not negated) (fun () ->
            translate_query ctx (Some block.scope) subquery)
      | Ast.In_query { negated; arg; subquery } -> handle_in negated arg subquery
      | Ast.Unop (Ast.Not, Ast.In_query { negated; arg; subquery }) ->
        handle_in (not negated) arg subquery
      | c -> translate_plain c)
    conjuncts;
  List.rev !plain

(* ------------------------------------------------------------------ *)
(* SELECT blocks                                                       *)
(* ------------------------------------------------------------------ *)

and name_of_item (item : Ast.select_item) (e : Expr.t) =
  match item with
  | Ast.Sel_expr (_, Some alias) -> alias
  | Ast.Sel_expr (ast, None) -> (
    match ast with
    | Ast.Ref (_, name) -> name
    | Ast.Agg { func; _ } -> Ast.agg_name func
    | Ast.Func (name, _) -> name
    | Ast.Cast _ -> ( match e with Expr.Cast _ -> "cast" | _ -> "column")
    | Ast.Case _ -> "case"
    | _ -> "column")
  | Ast.Star | Ast.Table_star _ -> "column"

and expand_stars scope (items : Ast.select_item list) =
  List.concat_map
    (fun item ->
      match item with
      | Ast.Star ->
        List.concat_map
          (fun rv ->
            List.map
              (fun (name, _) -> Ast.Sel_expr (Ast.Ref (Some rv.rv_name, name), Some name))
              rv.rv_cols)
          scope.rvs
      | Ast.Table_star t ->
        let t = String.lowercase_ascii t in
        if not (rv_exists scope t) then
          errf "missing FROM-clause entry for table %S" t;
        List.concat_map
          (fun rv ->
            if String.equal rv.rv_name t then
              List.map
                (fun (name, _) ->
                  Ast.Sel_expr (Ast.Ref (Some rv.rv_name, name), Some name))
                rv.rv_cols
            else [])
          scope.rvs
      | Ast.Sel_expr _ -> [ item ])
    items

and translate_select ctx outer (s : Ast.select)
    ~(order_by : (Ast.expr * Ast.order_dir) list) ~limit ~offset : Plan.t =
  if s.items = [] then errf "SELECT list cannot be empty";
  (* 1. FROM *)
  let from_plan, rvs =
    match s.from with
    | [] -> (Plan.Values { attrs = []; rows = [ [] ] }, [])
    | first :: rest ->
      let p0, rv0 = translate_from_item ctx outer first in
      List.fold_left
        (fun (plan, rvs) item ->
          let p, rv = translate_from_item ctx outer item in
          ( Plan.Join { kind = Plan.Cross; left = plan; right = p; pred = None },
            rvs @ rv ))
        (p0, rv0) rest
  in
  check_duplicate_rvs rvs;
  let scope = { rvs; parent = outer } in
  let block = { plan = from_plan; scope } in
  (* 2. WHERE *)
  (match s.where with
  | Some w ->
    let preds = apply_where ctx block w in
    if preds <> [] then
      block.plan <- Plan.Filter { child = block.plan; pred = Expr.conjoin preds }
  | None -> ());
  (* 3. grouping decision: translate group-by keys and select items *)
  let items = expand_stars scope s.items in
  let group_exprs =
    List.map
      (fun g ->
        let env =
          {
            block;
            collector = None;
            subqueries_allowed = false;
            in_agg = false;
            where = "the GROUP BY clause";
          }
        in
        translate_expr ctx env g)
      s.group_by
  in
  let collector = { calls = [] } in
  let grouped_hint = group_exprs <> [] || s.having <> None in
  let env_items =
    {
      block;
      collector = Some collector;
      subqueries_allowed = not grouped_hint;
      in_agg = false;
      where = "the select list";
    }
  in
  let raw_items =
    List.map (fun item ->
        match item with
        | Ast.Sel_expr (e, _) ->
          let e' = translate_expr ctx env_items e in
          (item, e')
        | Ast.Star | Ast.Table_star _ -> assert false (* expanded above *))
      items
  in
  let having_pred =
    match s.having with
    | None -> None
    | Some h ->
      let env =
        {
          block;
          collector = Some collector;
          subqueries_allowed = false;
          in_agg = false;
          where = "the HAVING clause";
        }
      in
      let p = translate_expr ctx env h in
      expect_bool "HAVING" (Expr.type_of p);
      Some p
  in
  (* ORDER BY keys: aliases first, then positions, then full expressions. *)
  let alias_table =
    List.filter_map
      (fun (item, e) ->
        match item with
        | Ast.Sel_expr (_, Some a) -> Some (String.lowercase_ascii a, e)
        | _ -> None)
      raw_items
  in
  let order_keys =
    List.map
      (fun (e, dir) ->
        let dir' = match dir with Ast.Asc -> Plan.Asc | Ast.Desc -> Plan.Desc in
        let key =
          match e with
          | Ast.Ref (None, name)
            when List.mem_assoc (String.lowercase_ascii name) alias_table ->
            List.assoc (String.lowercase_ascii name) alias_table
          | Ast.Lit (Value.Int i) ->
            if i < 1 || i > List.length raw_items then
              errf "ORDER BY position %d is not in the select list" i
            else snd (List.nth raw_items (i - 1))
          | e ->
            let env =
              {
                block;
                collector = Some collector;
                subqueries_allowed = false;
                in_agg = false;
                where = "the ORDER BY clause";
              }
            in
            translate_expr ctx env e
        in
        (key, dir'))
      order_by
  in
  let aggs = List.rev collector.calls in
  let grouped = grouped_hint || aggs <> [] in
  (* 4. build Aggregate and substitute grouped expressions *)
  let final_items, having_pred, order_keys =
    if not grouped then (raw_items, having_pred, order_keys)
    else begin
      let group_cols =
        List.map
          (fun e ->
            let name = match e with Expr.Attr a -> a.Attr.name | _ -> "group" in
            (e, Attr.fresh name (Expr.type_of e)))
          group_exprs
      in
      block.plan <- Plan.Aggregate { child = block.plan; group_by = group_cols; aggs };
      (* replace group expressions by their output attributes *)
      let substitute e =
        let rec go e =
          match
            List.find_opt (fun (g, _) -> Expr.equal g e) group_cols
          with
          | Some (_, out) -> Expr.Attr out
          | None -> (
            match e with
            | Expr.Const _ | Expr.Attr _ -> e
            | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
            | Expr.Unop (op, a) -> Expr.Unop (op, go a)
            | Expr.Case { branches; else_ } ->
              Expr.Case
                {
                  branches = List.map (fun (c, r) -> (go c, go r)) branches;
                  else_ = Option.map go else_;
                }
            | Expr.Cast (a, ty) -> Expr.Cast (go a, ty)
            | Expr.Func (name, args) -> Expr.Func (name, List.map go args))
        in
        go e
      in
      let allowed =
        Attr.Set.of_list
          (List.map snd group_cols @ List.map (fun c -> c.Plan.agg_out) aggs)
      in
      let rec outer_attrs scope acc =
        match scope with
        | None -> acc
        | Some s ->
          outer_attrs s.parent
            (List.fold_left
               (fun acc rv ->
                 List.fold_left (fun acc (_, a) -> Attr.Set.add a acc) acc rv.rv_cols)
               acc s.rvs)
      in
      let allowed = outer_attrs outer allowed in
      let check what e =
        let bad = Attr.Set.diff (Expr.attrs e) allowed in
        match Attr.Set.choose_opt bad with
        | Some a ->
          errf "column %S must appear in the GROUP BY clause or be used in an aggregate function (%s)"
            a.Attr.name what
        | None -> e
      in
      ( List.map
          (fun (item, e) -> (item, check "select list" (substitute e)))
          raw_items,
        Option.map (fun p -> check "HAVING" (substitute p)) having_pred,
        List.map (fun (k, d) -> (check "ORDER BY" (substitute k), d)) order_keys )
    end
  in
  (* 5. HAVING *)
  (match having_pred with
  | Some p -> block.plan <- Plan.Filter { child = block.plan; pred = p }
  | None -> ());
  (* 6. Sort below the projection (so keys may reference any scope attr) —
     except for DISTINCT, where SQL requires sort keys to be output columns,
     handled by sorting above the Distinct instead. *)
  let sort_below = order_keys <> [] && not s.distinct in
  if sort_below then block.plan <- Plan.Sort { child = block.plan; keys = order_keys };
  (* 7. projection *)
  let cols =
    List.map
      (fun (item, e) ->
        let name = String.lowercase_ascii (name_of_item item e) in
        (e, Attr.fresh name (Expr.type_of e)))
      final_items
  in
  block.plan <- Plan.Project { child = block.plan; cols };
  (* 8. DISTINCT *)
  if s.distinct then begin
    block.plan <- Plan.Distinct block.plan;
    if order_keys <> [] then begin
      (* keys must be output columns: replace a key that matches a select
         item's expression by that item's output attribute *)
      let out_attrs = Attr.Set.of_list (List.map snd cols) in
      let order_keys =
        List.map
          (fun (k, d) ->
            match List.find_opt (fun (e, _) -> Expr.equal e k) cols with
            | Some (_, out) -> (Expr.Attr out, d)
            | None ->
              if Attr.Set.subset (Expr.attrs k) out_attrs then (k, d)
              else
                errf
                  "for SELECT DISTINCT, ORDER BY expressions must appear in \
                   the select list")
          order_keys
      in
      block.plan <- Plan.Sort { child = block.plan; keys = order_keys }
    end
  end;
  (* 9. SQL-PLE provenance marker *)
  (match s.provenance with
  | Some contribution ->
    let semantics =
      match contribution with
      | Ast.Influence -> Plan.Influence
      | Ast.Copy_partial -> Plan.Copy_partial
      | Ast.Copy_complete -> Plan.Copy_complete
    in
    let sources = Sources.prov_sources block.plan in
    block.plan <- Plan.Prov { child = block.plan; semantics; sources }
  | None -> ());
  (* 10. LIMIT / OFFSET *)
  (match limit, offset with
  | None, None -> ()
  | limit, offset ->
    block.plan <-
      Plan.Limit
        { child = block.plan; limit; offset = Option.value offset ~default:0 });
  block.plan

(* ------------------------------------------------------------------ *)
(* Queries (set operations, ORDER BY / LIMIT at the top)               *)
(* ------------------------------------------------------------------ *)

(* A PROVENANCE marker on the leftmost SELECT of a set operation applies to
   the whole set operation — that is how the paper's q1 is phrased
   ([SELECT PROVENANCE ... UNION SELECT ...], Figure 2 computes the union's
   provenance). Strip it here; the caller wraps the combined plan. *)
and strip_leading_provenance (q : Ast.query) =
  match q.body with
  | Ast.Select s when s.provenance <> None ->
    ({ q with body = Ast.Select { s with provenance = None } }, s.provenance)
  | Ast.Select _ -> (q, None)
  | Ast.Set_op r ->
    let left', c = strip_leading_provenance r.left in
    ({ q with body = Ast.Set_op { r with left = left' } }, c)

and translate_query ctx outer (q : Ast.query) : Plan.t =
  match q.body with
  | Ast.Select s ->
    translate_select ctx outer s ~order_by:q.order_by ~limit:q.limit
      ~offset:q.offset
  | Ast.Set_op _ ->
    let q, leading_prov = strip_leading_provenance q in
    translate_set_query ctx outer q leading_prov

and translate_set_query ctx outer (q : Ast.query) leading_prov : Plan.t =
  match q.body with
  | Ast.Select _ -> assert false
  | Ast.Set_op { kind; all; left; right } ->
    let lplan = translate_query ctx outer left in
    let rplan = translate_query ctx outer right in
    let ls = Plan.schema lplan and rs = Plan.schema rplan in
    if List.length ls <> List.length rs then
      errf "each %s query must have the same number of columns"
        (match kind with
        | Ast.Union -> "UNION"
        | Ast.Intersect -> "INTERSECT"
        | Ast.Except -> "EXCEPT");
    let attrs =
      List.map2
        (fun (l : Attr.t) (r : Attr.t) ->
          let ty =
            expect_unifiable
              (Printf.sprintf "set operation column %S" l.Attr.name)
              l.Attr.ty r.Attr.ty
          in
          Attr.fresh l.Attr.name ty)
        ls rs
    in
    let kind' =
      match kind with
      | Ast.Union -> Plan.Union
      | Ast.Intersect -> Plan.Intersect
      | Ast.Except -> Plan.Except
    in
    let plan =
      Plan.Set_op { kind = kind'; all; left = lplan; right = rplan; attrs }
    in
    let plan =
      match leading_prov with
      | None -> plan
      | Some contribution ->
        let semantics =
          match contribution with
          | Ast.Influence -> Plan.Influence
          | Ast.Copy_partial -> Plan.Copy_partial
          | Ast.Copy_complete -> Plan.Copy_complete
        in
        let sources = Sources.prov_sources plan in
        Plan.Prov { child = plan; semantics; sources }
    in
    (* ORDER BY on a set operation: output column names or positions only *)
    let plan =
      if q.order_by = [] then plan
      else begin
        let keys =
          List.map
            (fun (e, dir) ->
              let dir' =
                match dir with Ast.Asc -> Plan.Asc | Ast.Desc -> Plan.Desc
              in
              match e with
              | Ast.Ref (None, name) -> (
                let name = String.lowercase_ascii name in
                match
                  List.find_opt (fun (a : Attr.t) -> String.equal a.Attr.name name) attrs
                with
                | Some a -> (Expr.Attr a, dir')
                | None -> errf "ORDER BY column %S is not in the result" name)
              | Ast.Lit (Value.Int i) ->
                if i < 1 || i > List.length attrs then
                  errf "ORDER BY position %d is not in the result" i
                else (Expr.Attr (List.nth attrs (i - 1)), dir')
              | _ ->
                errf
                  "ORDER BY on a set operation must name an output column or position")
            q.order_by
        in
        Plan.Sort { child = plan; keys }
      end
    in
    (match q.limit, q.offset with
    | None, None -> plan
    | limit, offset ->
      Plan.Limit { child = plan; limit; offset = Option.value offset ~default:0 })

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let analyze_query catalog q =
  match translate_query { catalog; view_stack = [] } None q with
  | plan -> Ok plan
  | exception Error msg -> Error msg

let const_expr e =
  let catalog = Catalog.create () in
  let ctx = { catalog; view_stack = [] } in
  let scope = { rvs = []; parent = None } in
  let block = { plan = Plan.Values { attrs = []; rows = [] }; scope } in
  let env =
    {
      block;
      collector = None;
      subqueries_allowed = false;
      in_agg = false;
      where = "a VALUES row";
    }
  in
  match translate_expr ctx env e with
  | e' -> Ok e'
  | exception Error msg -> Error msg

let output_names plan =
  List.map (fun (a : Attr.t) -> a.Attr.name) (Plan.schema plan)
