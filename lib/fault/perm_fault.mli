(** Deterministic seeded fault injection.

    Code under test registers named {e injection points} at module-init
    time ([let p = Perm_fault.point "heap.scan"]) and calls
    [Perm_fault.trip p] on its hot path. When the harness is disarmed (the
    default) a trip is a single atomic load of a [bool]; when armed, each
    trip hashes [(seed, point, hit-ordinal)] into a uniform draw and raises
    {!Injected} with probability [prob] — so a given seed produces the
    exact same fault schedule on every run, independent of timing or
    domain interleaving within a point. *)

exception Injected of string
(** Carries the point name. Must only escape as far as the engine
    boundary, where it becomes [Error {kind = Faulted; _}]. *)

type point

val point : string -> point
(** Register (or look up) a named injection point. Idempotent: the same
    name always yields the same point. *)

val name : point -> string

val trip : point -> unit
(** Maybe raise {!Injected}. Near-free when the harness is disarmed. *)

val set : string -> float -> unit
(** [set name prob] arms [name] at probability [prob] (clamped to [0,1]).
    [0.] disarms the point. Unknown names are registered on the spot so a
    CLI user can arm a point before the code path first runs. *)

val set_all : float -> unit
(** Arm every registered point at the given probability. *)

val reset : unit -> unit
(** Disarm all points and zero hit/injection counters. Seed unchanged. *)

val set_seed : int -> unit
val seed : unit -> int

val points : unit -> (string * float * int * int) list
(** [(name, prob, hits, injected)] for every registered point, sorted by
    name. *)

val injections : unit -> int
(** Total faults injected since the last {!reset}. *)

val init_from_env : unit -> unit
(** If [PERM_FAULT] is set to an integer, use it as the seed (points still
    need arming via {!set}/{!set_all}). *)
