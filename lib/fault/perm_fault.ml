exception Injected of string

type point = {
  pname : string;
  prob : float Atomic.t;
  hits : int Atomic.t;
  injected : int Atomic.t;
}

let registry : (string, point) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

(* Fast-path flag: a trip with the harness disarmed is one atomic load. *)
let armed = Atomic.make false
let the_seed = Atomic.make 0x9e3779b9

let point name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some p -> p
      | None ->
          let p =
            {
              pname = name;
              prob = Atomic.make 0.;
              hits = Atomic.make 0;
              injected = Atomic.make 0;
            }
          in
          Hashtbl.add registry name p;
          p)

let name p = p.pname

(* splitmix64 finalizer: mixes (seed, point name hash, hit ordinal) into a
   uniform 64-bit value, so a given seed yields the same fault schedule on
   every run regardless of timing or domain interleaving. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw p ordinal =
  let z =
    Int64.add
      (Int64.of_int (Atomic.get the_seed))
      (Int64.add
         (Int64.mul (Int64.of_int (Hashtbl.hash p.pname)) 0x9e3779b97f4a7c15L)
         (Int64.mul (Int64.of_int ordinal) 0xd1b54a32d192ed03L))
  in
  let bits = Int64.shift_right_logical (mix64 z) 11 in
  Int64.to_float bits /. 9007199254740992. (* 2^53 *)

let trip p =
  if Atomic.get armed then begin
    let prob = Atomic.get p.prob in
    if prob > 0. then begin
      let ordinal = Atomic.fetch_and_add p.hits 1 in
      if draw p ordinal < prob then begin
        Atomic.incr p.injected;
        raise (Injected p.pname)
      end
    end
  end

let rearm () =
  let any =
    Mutex.protect registry_mu (fun () ->
        Hashtbl.fold
          (fun _ p any -> any || Atomic.get p.prob > 0.)
          registry false)
  in
  Atomic.set armed any

let set pname prob =
  let p = point pname in
  Atomic.set p.prob (Float.max 0. (Float.min 1. prob));
  rearm ()

let set_all prob =
  let names =
    Mutex.protect registry_mu (fun () ->
        Hashtbl.fold (fun n _ acc -> n :: acc) registry [])
  in
  List.iter (fun n -> set n prob) names

let reset () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter
        (fun _ p ->
          Atomic.set p.prob 0.;
          Atomic.set p.hits 0;
          Atomic.set p.injected 0)
        registry);
  Atomic.set armed false

let set_seed s = Atomic.set the_seed s
let seed () = Atomic.get the_seed

let points () =
  let all =
    Mutex.protect registry_mu (fun () ->
        Hashtbl.fold
          (fun n p acc ->
            (n, Atomic.get p.prob, Atomic.get p.hits, Atomic.get p.injected)
            :: acc)
          registry [])
  in
  List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) all

let injections () =
  List.fold_left (fun acc (_, _, _, i) -> acc + i) 0 (points ())

let init_from_env () =
  match Sys.getenv_opt "PERM_FAULT" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> set_seed n
      | None -> ())
  | None -> ()
