(** Logical relational algebra plans.

    This is the representation the analyzer produces, the provenance
    rewriter transforms (paper Fig. 3: the Perm module operates "on the
    internal query tree representation"), and the planner optimizes.

    Multiset (bag) semantics throughout, as in SQL. Every operator lists its
    output attributes explicitly or derives them from its children; see
    {!schema}. *)

type join_kind =
  | Inner
  | Left
  | Right
  | Full
  | Cross
  | Semi  (** IN / EXISTS de-correlation: left tuples with a match *)
  | Anti  (** NOT IN / NOT EXISTS: left tuples with no match *)

type apply_kind =
  | A_cross  (** lateral cross join: right side re-evaluated per left row *)
  | A_outer
      (** lateral left outer join: left row NULL-padded when right is empty *)
  | A_scalar of Attr.t
      (** scalar subquery: right must yield one column; the single value is
          bound to the attribute, NULL when empty; >1 row is a runtime
          error. Output schema is [left @ [attr]]. *)
  | A_semi
  | A_anti

type agg_func = Count_star | Count | Sum | Avg | Min | Max | Bool_and | Bool_or

type agg_call = {
  agg : agg_func;
  distinct : bool;
  arg : Expr.t option;  (** [None] iff [Count_star] *)
  agg_out : Attr.t;
}

type sort_dir = Asc | Desc

type set_kind = Union | Intersect | Except

(** Contribution semantics of a provenance computation (paper §2.4):
    [Influence] is Perm's Why-provenance flavour (default); the [Copy]
    variants are Where-provenance flavours — [Copy_partial] keeps the
    provenance of a base relation if at least one of its attributes is
    copied to the result, [Copy_complete] only if all of them are. *)
type prov_semantics = Influence | Copy_partial | Copy_complete

(** One provenance output column of a [Prov] marker: the rewrite will bind
    [prov_attr] (named [prov_<rel>_<col>]) to the values of base column
    [prov_col] of base relation [prov_rel]. *)
type prov_source = { prov_attr : Attr.t; prov_rel : string; prov_col : string }

type t =
  | Scan of { table : string; attrs : Attr.t list }
      (** [attrs] are positionally the stored table's columns *)
  | Index_scan of {
      table : string;
      attrs : Attr.t list;
      key_col : int;  (** indexed column position *)
      key : Expr.t;  (** constant probe value; introduced by the planner *)
    }
      (** equality probe of a hash index; produced by the planner from
          [Filter(col = const)(Scan)] when an index exists — never appears
          before planning *)
  | Values of { attrs : Attr.t list; rows : Expr.t list list }
      (** constant relation; also models FROM-less SELECT via one empty row *)
  | Project of { child : t; cols : (Expr.t * Attr.t) list }
  | Filter of { child : t; pred : Expr.t }
  | Join of { kind : join_kind; left : t; right : t; pred : Expr.t option }
      (** [pred = None] iff [Cross]. For [Semi]/[Anti] the output schema is
          the left schema. The right side of any [Join] must not reference
          outer attributes — correlation uses {!Apply}. *)
  | Apply of { kind : apply_kind; left : t; right : t }
      (** correlated evaluation: [right] may reference attributes of
          [left]'s schema (and enclosing Apply lefts) *)
  | Aggregate of {
      child : t;
      group_by : (Expr.t * Attr.t) list;
      aggs : agg_call list;
    }  (** output schema: group-by outs then aggregate outs *)
  | Distinct of t
  | Set_op of { kind : set_kind; all : bool; left : t; right : t; attrs : Attr.t list }
      (** children must agree in arity and (unified) types; [attrs] are the
          fresh output attributes, positionally matching both children *)
  | Sort of { child : t; keys : (Expr.t * sort_dir) list }
  | Limit of { child : t; limit : int option; offset : int }
  | Prov of { child : t; semantics : prov_semantics; sources : prov_source list }
      (** SQL-PLE [SELECT PROVENANCE]: compute the provenance of [child].
          Schema is [schema child @ provenance attrs]; [sources] is fixed at
          analysis time so enclosing queries can reference [prov_*] columns
          (paper §2.4's nested example). Eliminated by the rewriter; the
          executor never sees it. *)
  | Baserel of { child : t; rel_name : string }
      (** SQL-PLE [BASERELATION]: stop provenance rewriting here — [child]'s
          own output tuples become their provenance. Transparent when not
          under a [Prov]. *)
  | External of { child : t; ext_attrs : Attr.t list }
      (** SQL-PLE [PROVENANCE (a, ...)] on a FROM item: [ext_attrs] (a subset
          of [child]'s schema, already named [prov_*]-style by the user) are
          externally produced provenance to be propagated untouched. *)

val schema : t -> Attr.t list
val arity : t -> int

val attr_types_compatible : Attr.t list -> Attr.t list -> bool
(** Positional type compatibility for set operations. *)

val identity_project : t -> (Expr.t * Attr.t) list
(** [attr -> attr] projection columns for a plan's schema. *)

val children : t -> t list
val map_children : (t -> t) -> t -> t

val join_kind_name : join_kind -> string
val apply_kind_name : apply_kind -> string

val operator_name : t -> string
(** Short name for tree displays: ["Scan(messages)"], ["Project"], ... *)

val operator_kind : t -> string
(** Coarse parameter-free operator class for metric names: ["scan"],
    ["join"], ["aggregate"], ... — every join kind maps to ["join"], every
    apply kind to ["apply"], both scan forms to ["scan"]. *)

val count_operators : t -> int
