module Dtype = Perm_value.Dtype

type join_kind = Inner | Left | Right | Full | Cross | Semi | Anti

type apply_kind =
  | A_cross
  | A_outer
  | A_scalar of Attr.t
  | A_semi
  | A_anti

type agg_func = Count_star | Count | Sum | Avg | Min | Max | Bool_and | Bool_or

type agg_call = {
  agg : agg_func;
  distinct : bool;
  arg : Expr.t option;
  agg_out : Attr.t;
}

type sort_dir = Asc | Desc
type set_kind = Union | Intersect | Except
type prov_semantics = Influence | Copy_partial | Copy_complete
type prov_source = { prov_attr : Attr.t; prov_rel : string; prov_col : string }

type t =
  | Scan of { table : string; attrs : Attr.t list }
  | Index_scan of {
      table : string;
      attrs : Attr.t list;
      key_col : int;
      key : Expr.t;
    }
  | Values of { attrs : Attr.t list; rows : Expr.t list list }
  | Project of { child : t; cols : (Expr.t * Attr.t) list }
  | Filter of { child : t; pred : Expr.t }
  | Join of { kind : join_kind; left : t; right : t; pred : Expr.t option }
  | Apply of { kind : apply_kind; left : t; right : t }
  | Aggregate of {
      child : t;
      group_by : (Expr.t * Attr.t) list;
      aggs : agg_call list;
    }
  | Distinct of t
  | Set_op of {
      kind : set_kind;
      all : bool;
      left : t;
      right : t;
      attrs : Attr.t list;
    }
  | Sort of { child : t; keys : (Expr.t * sort_dir) list }
  | Limit of { child : t; limit : int option; offset : int }
  | Prov of { child : t; semantics : prov_semantics; sources : prov_source list }
  | Baserel of { child : t; rel_name : string }
  | External of { child : t; ext_attrs : Attr.t list }

let rec schema = function
  | Scan { attrs; _ } | Index_scan { attrs; _ } | Values { attrs; _ }
  | Set_op { attrs; _ } ->
    attrs
  | Project { cols; _ } -> List.map snd cols
  | Filter { child; _ } | Distinct child | Sort { child; _ } | Limit { child; _ }
    ->
    schema child
  | Prov { child; sources; _ } ->
    schema child @ List.map (fun s -> s.prov_attr) sources
  | Baserel { child; _ } | External { child; _ } -> schema child
  | Join { kind = Semi | Anti; left; _ } -> schema left
  | Join { left; right; _ } -> schema left @ schema right
  | Apply { kind; left; right } -> (
    match kind with
    | A_cross | A_outer -> schema left @ schema right
    | A_scalar a -> schema left @ [ a ]
    | A_semi | A_anti -> schema left)
  | Aggregate { group_by; aggs; _ } ->
    List.map snd group_by @ List.map (fun c -> c.agg_out) aggs

let arity t = List.length (schema t)

let attr_types_compatible a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Attr.t) (y : Attr.t) -> Dtype.unify x.ty y.ty <> None)
       a b

let identity_project t = List.map (fun a -> (Expr.Attr a, a)) (schema t)

let children = function
  | Scan _ | Index_scan _ | Values _ -> []
  | Project { child; _ }
  | Filter { child; _ }
  | Distinct child
  | Sort { child; _ }
  | Limit { child; _ }
  | Aggregate { child; _ }
  | Prov { child; _ }
  | Baserel { child; _ }
  | External { child; _ } ->
    [ child ]
  | Join { left; right; _ } | Apply { left; right; _ } | Set_op { left; right; _ }
    ->
    [ left; right ]

let map_children f = function
  | (Scan _ | Index_scan _ | Values _) as t -> t
  | Project r -> Project { r with child = f r.child }
  | Filter r -> Filter { r with child = f r.child }
  | Distinct child -> Distinct (f child)
  | Sort r -> Sort { r with child = f r.child }
  | Limit r -> Limit { r with child = f r.child }
  | Aggregate r -> Aggregate { r with child = f r.child }
  | Join r -> Join { r with left = f r.left; right = f r.right }
  | Apply r -> Apply { r with left = f r.left; right = f r.right }
  | Set_op r -> Set_op { r with left = f r.left; right = f r.right }
  | Prov r -> Prov { r with child = f r.child }
  | Baserel r -> Baserel { r with child = f r.child }
  | External r -> External { r with child = f r.child }

let join_kind_name = function
  | Inner -> "Join"
  | Left -> "LeftJoin"
  | Right -> "RightJoin"
  | Full -> "FullJoin"
  | Cross -> "CrossJoin"
  | Semi -> "SemiJoin"
  | Anti -> "AntiJoin"

let apply_kind_name = function
  | A_cross -> "ApplyCross"
  | A_outer -> "ApplyOuter"
  | A_scalar _ -> "ApplyScalar"
  | A_semi -> "ApplySemi"
  | A_anti -> "ApplyAnti"

let operator_name = function
  | Scan { table; _ } -> Printf.sprintf "Scan(%s)" table
  | Index_scan { table; _ } -> Printf.sprintf "IndexScan(%s)" table
  | Values { rows; _ } -> Printf.sprintf "Values(%d rows)" (List.length rows)
  | Project _ -> "Project"
  | Filter _ -> "Select"  (* σ: displayed with the algebra's name, not SQL's *)
  | Join { kind; _ } -> join_kind_name kind
  | Apply { kind; _ } -> apply_kind_name kind
  | Aggregate _ -> "Aggregate"
  | Distinct _ -> "Distinct"
  | Set_op { kind; all; _ } ->
    let base =
      match kind with
      | Union -> "Union"
      | Intersect -> "Intersect"
      | Except -> "Except"
    in
    if all then base ^ "All" else base
  | Sort _ -> "Sort"
  | Limit _ -> "Limit"
  | Prov { semantics; _ } ->
    let sem =
      match semantics with
      | Influence -> "influence"
      | Copy_partial -> "copy"
      | Copy_complete -> "copy complete"
    in
    Printf.sprintf "Provenance(%s)" sem
  | Baserel { rel_name; _ } -> Printf.sprintf "BaseRelation(%s)" rel_name
  | External _ -> "ExternalProvenance"

let operator_kind = function
  | Scan _ | Index_scan _ -> "scan"
  | Values _ -> "values"
  | Project _ -> "project"
  | Filter _ -> "filter"
  | Join _ -> "join"
  | Apply _ -> "apply"
  | Aggregate _ -> "aggregate"
  | Distinct _ -> "distinct"
  | Set_op _ -> "set_op"
  | Sort _ -> "sort"
  | Limit _ -> "limit"
  | Prov _ -> "prov"
  | Baserel _ -> "baserel"
  | External _ -> "external"

let rec count_operators t =
  1 + List.fold_left (fun acc c -> acc + count_operators c) 0 (children t)
