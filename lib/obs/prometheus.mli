(** Prometheus text exposition (format 0.0.4) over a {!Metrics} registry,
    plus a round-trip parser/validator shared by the test suite and CI.

    The registry's flat dotted names are mapped to the Prometheus charset
    ([engine.exec.ms] becomes [perm_engine_exec_ms]); counters gain the
    conventional [_total] suffix; histograms render the cumulative
    [_bucket{le="..."}] series with a terminal [+Inf] bucket followed by
    [_sum] and [_count]. Output is deterministic (sorted family order) so
    scrapes diff cleanly. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;  (** in rendered order *)
  s_value : float;
}

type kind = Counter | Gauge | Histogram | Untyped

type family = {
  f_name : string;  (** base name, already sanitized; no suffixes *)
  f_help : string;
  f_kind : kind;
  f_samples : sample list;
      (** full sample names ([f_name], [f_name_total], [f_name_bucket],
          ...) as they appear on the wire *)
}

val sanitize_name : ?namespace:string -> string -> string
(** Map a registry name to the Prometheus name charset
    [[a-zA-Z0-9_:]]: dots and invalid characters become underscores and
    the namespace (default ["perm"]) is prefixed. *)

val escape_label_value : string -> string
(** Escape a label value for exposition: backslash, double quote and
    newline per the format spec. *)

val histogram_samples :
  name:string -> labels:(string * string) list -> Metrics.histogram ->
  sample list
(** Cumulative [_bucket] series (terminating with [le="+Inf"]) followed by
    [_sum] and [_count], all carrying [labels]. *)

val of_metrics : ?namespace:string -> Metrics.t -> family list
(** One family per registry metric, from a consistent
    {!Metrics.snapshot}. *)

val render : family list -> string
(** [# HELP] / [# TYPE] headers followed by samples, families separated by
    their headers only (no blank lines), trailing newline. *)

val render_metrics :
  ?namespace:string -> ?extra:family list -> Metrics.t -> string
(** [render (of_metrics t @ extra)] — the body served at [GET /metrics].
    [extra] carries labelled families built outside the registry (e.g.
    per-statement series keyed by fingerprint). *)

type parsed = {
  p_types : (string * kind) list;  (** from [# TYPE] lines, in order *)
  p_samples : sample list;  (** in exposition order *)
}

val parse : string -> (parsed, string) result
(** Parse an exposition body back into samples; [Error] describes the
    first malformed line. Inverse of [render] up to [# HELP] text. *)

val validate : string -> (int, string) result
(** Parse and check structural invariants: metric/label name charsets, no
    duplicate samples (same name and label set), and for every histogram
    family a terminal [+Inf] bucket, monotonically non-decreasing
    cumulative buckets, and agreement between the [+Inf] bucket and
    [_count]. Returns the number of samples on success. *)
