(** Minimal JSON values and serialization — just enough for the metrics
    dump, trace export and the bench harness's [BENCH_*.json] sinks, so the
    observability layer needs no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_pretty_string : t -> string
(** Indented rendering (one entry per line), newline-terminated. *)
