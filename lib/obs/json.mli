(** Minimal JSON values and serialization — just enough for the metrics
    dump, trace export and the bench harness's [BENCH_*.json] sinks, so the
    observability layer needs no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_pretty_string : t -> string
(** Indented rendering (one entry per line), newline-terminated. *)

val parse : string -> (t, string) result
(** Strict single-document JSON parser (objects, lists, strings with
    escapes, numbers, booleans, null) — enough to read back the documents
    this module writes, e.g. a committed [BENCH_phases.json] baseline for
    [bench --compare]. Numbers without a fractional part parse as [Int]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on missing key or non-object. *)

val to_float_opt : t -> float option
(** [Float] or [Int] (widened); [None] otherwise. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
