type payload =
  | Stmt_start of { sql : string; fingerprint : string }
  | Stmt_finish of {
      fingerprint : string;
      ms : float;
      rows : int;
      error : string option;
    }
  | Plan_node of {
      fingerprint : string;
      node : int;
      operator : string;
      est_rows : float;
      act_rows : int;
    }
  | Wal_append of { frame : string }
  | Wal_fsync of { fsyncs : int }
  | Wal_checkpoint of { epoch : int; ok : bool }
  | Wal_replay of {
      records : int;
      committed : int;
      discarded : int;
      skipped : int;
      truncated_bytes : int;
    }
  | Spill of { kind : string; detail : string }
  | Gc_major of { heap_words : int; major_collections : int }
  | Fault of { point : string }
  | Governor of { verdict : string; detail : string }
  | Watchdog of { fingerprint : string; factor : float; cause : string }
  | Degraded of { reason : string }
  | Note of { tag : string; detail : string }

type event = { ev_seq : int; ev_ts : float; ev_payload : payload }

(* The slot array and its capacity swap together (set_capacity publishes a
   whole new ring), so they live in one atomically-replaced record. A
   writer that raced the swap lands its event in the retiring array and
   the event is lost — equivalent to an immediate wrap-around drop. *)
type ring = { r_slots : event option array; r_cap : int }

type t = {
  ring : ring Atomic.t;
  seq : int Atomic.t;  (* total events ever recorded *)
  lost : int Atomic.t;  (* shed by capacity changes, on top of wrap-around *)
}

let default_capacity = 512

let make_ring cap = { r_slots = Array.make (max cap 1) None; r_cap = cap }

let create ?(capacity = default_capacity) () =
  {
    ring = Atomic.make (make_ring (max capacity 0));
    seq = Atomic.make 0;
    lost = Atomic.make 0;
  }

let enabled t = (Atomic.get t.ring).r_cap > 0
let capacity t = (Atomic.get t.ring).r_cap
let recorded t = Atomic.get t.seq

let record t payload =
  let ring = Atomic.get t.ring in
  if ring.r_cap > 0 then begin
    let seq = Atomic.fetch_and_add t.seq 1 in
    ring.r_slots.(seq mod ring.r_cap) <-
      Some { ev_seq = seq; ev_ts = Unix.gettimeofday (); ev_payload = payload }
  end

(* Retained events in sequence order. Slot index is [seq mod cap], so the
   physical order is scrambled once the ring has wrapped; events carry
   their own sequence number, and the ring is small, so sorting is fine at
   read frequency (anomaly capture, \debug, /debug/bundles). *)
let snapshot ring =
  Array.to_seq ring.r_slots
  |> Seq.filter_map Fun.id
  |> List.of_seq
  |> List.sort (fun a b -> compare a.ev_seq b.ev_seq)

let recent ?limit t =
  let events = snapshot (Atomic.get t.ring) in
  match limit with
  | None -> events
  | Some n ->
    let drop = List.length events - n in
    if drop <= 0 then events else List.filteri (fun i _ -> i >= drop) events

let dropped t =
  let retained = List.length (snapshot (Atomic.get t.ring)) in
  Atomic.get t.lost + max 0 (Atomic.get t.seq - Atomic.get t.lost - retained)

let set_capacity t cap =
  let cap = max cap 0 in
  let old = Atomic.get t.ring in
  let kept = snapshot old in
  let keep =
    let drop = List.length kept - cap in
    if drop <= 0 then kept else List.filteri (fun i _ -> i >= drop) kept
  in
  let ring = make_ring cap in
  (* each event keeps its canonical slot [ev_seq mod cap], so the next
     write (at the live sequence counter) naturally lands after the
     preserved tail and wrap-around overwrites oldest-first *)
  if cap > 0 then
    List.iter (fun ev -> ring.r_slots.(ev.ev_seq mod cap) <- Some ev) keep;
  Atomic.set t.lost
    (Atomic.get t.lost + (List.length kept - List.length keep));
  Atomic.set t.ring ring

let payload_kind = function
  | Stmt_start _ -> "stmt_start"
  | Stmt_finish _ -> "stmt_finish"
  | Plan_node _ -> "plan_node"
  | Wal_append _ -> "wal_append"
  | Wal_fsync _ -> "wal_fsync"
  | Wal_checkpoint _ -> "wal_checkpoint"
  | Wal_replay _ -> "wal_replay"
  | Spill _ -> "spill"
  | Gc_major _ -> "gc_major"
  | Fault _ -> "fault"
  | Governor _ -> "governor"
  | Watchdog _ -> "watchdog"
  | Degraded _ -> "degraded"
  | Note _ -> "note"

let payload_fields = function
  | Stmt_start { sql; fingerprint } ->
    [ ("sql", Json.String sql); ("fingerprint", Json.String fingerprint) ]
  | Stmt_finish { fingerprint; ms; rows; error } ->
    [
      ("fingerprint", Json.String fingerprint);
      ("ms", Json.Float ms);
      ("rows", Json.Int rows);
      ("error", match error with Some e -> Json.String e | None -> Json.Null);
    ]
  | Plan_node { fingerprint; node; operator; est_rows; act_rows } ->
    [
      ("fingerprint", Json.String fingerprint);
      ("node", Json.Int node);
      ("operator", Json.String operator);
      ("est_rows", Json.Float est_rows);
      ("act_rows", Json.Int act_rows);
    ]
  | Wal_append { frame } -> [ ("frame", Json.String frame) ]
  | Wal_fsync { fsyncs } -> [ ("fsyncs", Json.Int fsyncs) ]
  | Wal_checkpoint { epoch; ok } ->
    [ ("epoch", Json.Int epoch); ("ok", Json.Bool ok) ]
  | Wal_replay { records; committed; discarded; skipped; truncated_bytes } ->
    [
      ("records", Json.Int records);
      ("committed", Json.Int committed);
      ("discarded", Json.Int discarded);
      ("skipped", Json.Int skipped);
      ("truncated_bytes", Json.Int truncated_bytes);
    ]
  | Spill { kind; detail } ->
    [ ("spill", Json.String kind); ("detail", Json.String detail) ]
  | Gc_major { heap_words; major_collections } ->
    [
      ("heap_words", Json.Int heap_words);
      ("major_collections", Json.Int major_collections);
    ]
  | Fault { point } -> [ ("point", Json.String point) ]
  | Governor { verdict; detail } ->
    [ ("verdict", Json.String verdict); ("detail", Json.String detail) ]
  | Watchdog { fingerprint; factor; cause } ->
    [
      ("fingerprint", Json.String fingerprint);
      ("factor", Json.Float factor);
      ("cause", Json.String cause);
    ]
  | Degraded { reason } -> [ ("reason", Json.String reason) ]
  | Note { tag; detail } ->
    [ ("tag", Json.String tag); ("detail", Json.String detail) ]

let event_to_json ev =
  Json.Obj
    ([
       ("seq", Json.Int ev.ev_seq);
       ("ts", Json.Float ev.ev_ts);
       ("kind", Json.String (payload_kind ev.ev_payload));
     ]
    @ payload_fields ev.ev_payload)
