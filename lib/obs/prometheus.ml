type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

type kind = Counter | Gauge | Histogram | Untyped

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_samples : sample list;
}

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Untyped -> "untyped"

let kind_of_string = function
  | "counter" -> Counter
  | "gauge" -> Gauge
  | "histogram" -> Histogram
  | _ -> Untyped

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_name ?(namespace = "perm") name =
  let b = Buffer.create (String.length name + String.length namespace + 1) in
  Buffer.add_string b namespace;
  Buffer.add_char b '_';
  String.iter
    (fun c -> Buffer.add_char b (if is_name_char c then c else '_'))
    name;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal that round-trips to the same double: bucket bounds
   like 0.005 must render as written, not as 0.0050000000000000001. *)
let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" v
      else
        let s = Printf.sprintf "%.*g" p v in
        if float_of_string s = v then s else try_prec (p + 1)
    in
    try_prec 6

let render_sample buf s =
  Buffer.add_string buf s.s_name;
  (match s.s_labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fmt_float s.s_value);
  Buffer.add_char buf '\n'

let render families =
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" f.f_name f.f_help);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" f.f_name (kind_to_string f.f_kind));
      List.iter (render_sample buf) f.f_samples)
    families;
  Buffer.contents buf

let histogram_samples ~name ~labels (h : Metrics.histogram) =
  let acc = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i bound ->
           acc := !acc + h.Metrics.buckets.(i);
           {
             s_name = name ^ "_bucket";
             s_labels = labels @ [ ("le", fmt_float bound) ];
             s_value = float_of_int !acc;
           })
         h.Metrics.bounds)
  in
  buckets
  @ [
      {
        s_name = name ^ "_bucket";
        s_labels = labels @ [ ("le", "+Inf") ];
        s_value = float_of_int h.Metrics.h_count;
      };
      { s_name = name ^ "_sum"; s_labels = labels; s_value = h.Metrics.h_sum };
      {
        s_name = name ^ "_count";
        s_labels = labels;
        s_value = float_of_int h.Metrics.h_count;
      };
    ]

let of_metrics ?namespace t =
  List.map
    (fun (reg_name, m) ->
      let name = sanitize_name ?namespace reg_name in
      let help = "Perm registry metric " ^ reg_name in
      match m with
      | Metrics.Counter r ->
        {
          f_name = name;
          f_help = help;
          f_kind = Counter;
          f_samples =
            [
              {
                s_name = name ^ "_total";
                s_labels = [];
                s_value = float_of_int r.c;
              };
            ];
        }
      | Metrics.Gauge r ->
        {
          f_name = name;
          f_help = help;
          f_kind = Gauge;
          f_samples = [ { s_name = name; s_labels = []; s_value = r.g } ];
        }
      | Metrics.Histogram h ->
        {
          f_name = name;
          f_help = help ^ " (milliseconds)";
          f_kind = Histogram;
          f_samples = histogram_samples ~name ~labels:[] h;
        })
    (Metrics.snapshot t)

let render_metrics ?namespace ?(extra = []) t =
  render (of_metrics ?namespace t @ extra)

(* ------------------------------------------------------------------ *)
(* Round-trip parser                                                   *)
(* ------------------------------------------------------------------ *)

type parsed = {
  p_types : (string * kind) list;
  p_samples : sample list;
}

exception Bad of string

let parse_value s =
  match s with
  | "+Inf" | "Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | s -> (
    match float_of_string_opt s with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "bad sample value %S" s)))

(* [name{l1="v1",l2="v2"} value [timestamp]] *)
let parse_sample_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let take_while p =
    let start = !pos in
    while !pos < n && p line.[!pos] do incr pos done;
    String.sub line start (!pos - start)
  in
  let skip_ws () = ignore (take_while (fun c -> c = ' ' || c = '\t')) in
  let name = take_while is_name_char in
  if name = "" then raise (Bad (Printf.sprintf "bad metric name in %S" line));
  let labels = ref [] in
  (if peek () = Some '{' then begin
     incr pos;
     let rec loop () =
       skip_ws ();
       if peek () = Some '}' then incr pos
       else begin
         let lname = take_while (fun c -> is_name_char c && c <> ':') in
         if lname = "" then raise (Bad ("bad label name in " ^ line));
         if peek () <> Some '=' then raise (Bad ("expected = in " ^ line));
         incr pos;
         if peek () <> Some '"' then raise (Bad ("expected \" in " ^ line));
         incr pos;
         let b = Buffer.create 16 in
         let rec str () =
           if !pos >= n then raise (Bad ("unterminated label value in " ^ line))
           else
             match line.[!pos] with
             | '"' -> incr pos
             | '\\' ->
               if !pos + 1 >= n then raise (Bad ("dangling escape in " ^ line));
               (match line.[!pos + 1] with
               | '\\' -> Buffer.add_char b '\\'
               | '"' -> Buffer.add_char b '"'
               | 'n' -> Buffer.add_char b '\n'
               | c ->
                 raise
                   (Bad (Printf.sprintf "bad escape \\%c in %S" c line)));
               pos := !pos + 2;
               str ()
             | c ->
               Buffer.add_char b c;
               incr pos;
               str ()
         in
         str ();
         labels := (lname, Buffer.contents b) :: !labels;
         skip_ws ();
         match peek () with
         | Some ',' ->
           incr pos;
           loop ()
         | Some '}' -> incr pos
         | _ -> raise (Bad ("expected , or } in " ^ line))
       end
     in
     loop ()
   end);
  skip_ws ();
  let value_str = take_while (fun c -> c <> ' ' && c <> '\t') in
  if value_str = "" then raise (Bad ("missing value in " ^ line));
  (* anything after the value is an optional timestamp; ignore it *)
  { s_name = name; s_labels = List.rev !labels; s_value = parse_value value_str }

let parse text =
  try
    let types = ref [] and samples = ref [] in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line = "" then ()
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match
            String.split_on_char ' '
              (String.trim (String.sub line 7 (String.length line - 7)))
          with
          | [ name; kind ] -> types := (name, kind_of_string kind) :: !types
          | _ -> raise (Bad ("malformed TYPE line: " ^ line))
        end
        else if line.[0] = '#' then () (* HELP or free comment *)
        else samples := parse_sample_line line :: !samples)
      (String.split_on_char '\n' text);
    Ok { p_types = List.rev !types; p_samples = List.rev !samples }
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let valid_metric_name s =
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':')
  && String.for_all is_name_char s

let valid_label_name s =
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all (fun c -> is_name_char c && c <> ':') s

let canonical_labels labels =
  String.concat ","
    (List.map
       (fun (k, v) -> k ^ "=" ^ escape_label_value v)
       (List.sort compare labels))

let ends_with ~suffix s =
  let ls = String.length s and lf = String.length suffix in
  ls >= lf && String.sub s (ls - lf) lf = suffix

let validate text =
  match parse text with
  | Error e -> Error e
  | Ok { p_types; p_samples } -> (
    try
      (* name charsets *)
      List.iter
        (fun s ->
          if not (valid_metric_name s.s_name) then
            raise (Bad (Printf.sprintf "invalid metric name %S" s.s_name));
          List.iter
            (fun (k, _) ->
              if not (valid_label_name k) then
                raise
                  (Bad
                     (Printf.sprintf "invalid label name %S on %s" k s.s_name)))
            s.s_labels)
        p_samples;
      (* no duplicate samples *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun s ->
          let key = s.s_name ^ "{" ^ canonical_labels s.s_labels ^ "}" in
          if Hashtbl.mem seen key then
            raise (Bad ("duplicate sample " ^ key));
          Hashtbl.replace seen key ())
        p_samples;
      (* duplicate TYPE declarations *)
      let tseen = Hashtbl.create 16 in
      List.iter
        (fun (name, _) ->
          if Hashtbl.mem tseen name then
            raise (Bad ("duplicate TYPE for " ^ name));
          Hashtbl.replace tseen name ())
        p_types;
      (* histogram invariants, per family and per non-le label set *)
      List.iter
        (fun (base, kind) ->
          if kind = Histogram then begin
            let bucket_name = base ^ "_bucket" in
            let groups = Hashtbl.create 4 in
            List.iter
              (fun s ->
                if s.s_name = bucket_name then begin
                  let le =
                    match List.assoc_opt "le" s.s_labels with
                    | Some le -> le
                    | None ->
                      raise (Bad (bucket_name ^ " sample without le label"))
                  in
                  let rest =
                    List.filter (fun (k, _) -> k <> "le") s.s_labels
                  in
                  let key = canonical_labels rest in
                  let prev =
                    Option.value (Hashtbl.find_opt groups key) ~default:[]
                  in
                  Hashtbl.replace groups key
                    ((parse_value le, s.s_value) :: prev)
                end)
              p_samples;
            if Hashtbl.length groups = 0 then
              raise (Bad ("histogram " ^ base ^ " has no _bucket samples"));
            Hashtbl.iter
              (fun key buckets ->
                let buckets =
                  List.sort (fun (a, _) (b, _) -> compare a b) buckets
                in
                (* monotone cumulative counts *)
                ignore
                  (List.fold_left
                     (fun prev (_, count) ->
                       if count < prev then
                         raise
                           (Bad
                              (Printf.sprintf
                                 "histogram %s{%s} has non-monotone buckets"
                                 base key));
                       count)
                     0. buckets);
                (* terminal +Inf bucket present and equal to _count *)
                let inf_count =
                  match List.rev buckets with
                  | (le, count) :: _ when le = Float.infinity -> count
                  | _ ->
                    raise
                      (Bad
                         (Printf.sprintf
                            "histogram %s{%s} is missing the +Inf bucket" base
                            key))
                in
                let find_suffix suffix =
                  List.find_opt
                    (fun s ->
                      s.s_name = base ^ suffix
                      && canonical_labels s.s_labels = key)
                    p_samples
                in
                (match find_suffix "_count" with
                | Some s when s.s_value = inf_count -> ()
                | Some _ ->
                  raise
                    (Bad
                       (Printf.sprintf
                          "histogram %s{%s}: +Inf bucket disagrees with _count"
                          base key))
                | None ->
                  raise
                    (Bad
                       (Printf.sprintf "histogram %s{%s} has no _count" base key)));
                if find_suffix "_sum" = None then
                  raise
                    (Bad
                       (Printf.sprintf "histogram %s{%s} has no _sum" base key)))
              groups
          end)
        p_types;
      (* counter families must expose the conventional _total sample *)
      List.iter
        (fun (base, kind) ->
          if kind = Counter then
            if
              not
                (List.exists
                   (fun s -> ends_with ~suffix:"_total" s.s_name
                             && s.s_name = base ^ "_total")
                   p_samples)
            then raise (Bad ("counter " ^ base ^ " has no _total sample")))
        p_types;
      Ok (List.length p_samples)
    with Bad msg -> Error msg)
