(** JSON-lines structured event log with a slow-query threshold — the
    [log_min_duration_statement] analog.

    The log is disabled until a sink file is opened; each event is one
    compact JSON object per line, flushed immediately so the file can be
    tailed while a session runs. The threshold check ([min_ms]) is the
    caller's responsibility — the engine compares a statement's duration
    against it before calling {!log}. *)

type t

val create : unit -> t
(** A disabled log: no sink, threshold 0 ms. *)

val open_file : t -> string -> unit
(** Open (truncate) [path] as the sink, closing any previous sink. *)

val close : t -> unit
(** Close the sink and disable the log. Idempotent. *)

val set_min_ms : t -> float -> unit
(** Set the slow-query threshold (clamped at 0). *)

val min_ms : t -> float
val enabled : t -> bool
val path : t -> string option

val log : t -> Json.t -> unit
(** Write one event as a single line; no-op while disabled. *)
