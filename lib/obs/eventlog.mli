(** JSON-lines structured event log with a slow-query threshold — the
    [log_min_duration_statement] analog.

    Every logged event is retained in a bounded in-memory ring (default
    capacity 256), so the recent slow-query log is queryable without a
    sink; when the ring is full the oldest event is dropped and counted.
    Opening a sink file additionally writes each event as one compact
    JSON object per line, flushed immediately so the file can be tailed
    while a session runs. The threshold check ([min_ms]) is the caller's
    responsibility — the engine compares a statement's duration against
    it before calling {!log}. *)

type t

val create : unit -> t
(** No sink, threshold 0 ms, ring capacity 256. *)

val open_file : t -> string -> unit
(** Open (truncate) [path] as the sink, closing any previous sink. *)

val close : t -> unit
(** Close the sink. The in-memory ring keeps recording. Idempotent. *)

val set_min_ms : t -> float -> unit
(** Set the slow-query threshold (clamped at 0). *)

val min_ms : t -> float

val enabled : t -> bool
(** Whether a sink file is open. *)

val path : t -> string option

val set_capacity : t -> int -> unit
(** Resize the in-memory ring (clamped at 1), keeping the newest events;
    anything shed by shrinking counts as dropped. *)

val capacity : t -> int

val recent : t -> Json.t list
(** Retained events, oldest first. *)

val dropped : t -> int
(** Events evicted from the ring since creation. *)

val logged : t -> int
(** Events ever logged (monotone, regardless of ring evictions) — the
    cursor space used by {!since}. *)

val since : t -> int -> int * Json.t list
(** [since t cursor] returns [(logged t, events)] where [events] are the
    retained events with sequence number >= [cursor], oldest first.
    Events evicted before being read are absent; feed the returned cursor
    back in to tail the log incrementally (the SSE endpoint does). *)

val log : t -> Json.t -> unit
(** Record one event: always into the ring, and as a single line to the
    sink when one is open. *)
