(** A dependency-free HTTP/1.1 server for the observability plane.

    One accept domain plus one short-lived domain per connection, all
    separate from the domain executing statements; handlers are expected
    to read only snapshot/atomic state so serving a scrape can never block
    the query path. Responses are either fully materialized ([Fixed]) or
    incremental ([Stream], used for server-sent events): a stream handler
    receives a write function that returns [false] once the client is gone
    or the server is stopping, and is expected to return promptly after
    that.

    Each [start] gets a fresh generation number (like the executor pool),
    so a socket lingering in TIME_WAIT or a slow in-flight response from a
    previous incarnation can never be confused with the current server.

    Every connection is [Connection: close]: the observability endpoints
    are scrape-style, and single-shot connections keep the lifecycle (and
    the drain logic) trivial. Concurrent connections are capped; beyond
    the cap clients receive 503 rather than queueing behind the accept
    loop. *)

type request = {
  rq_method : string;  (** uppercased, e.g. ["GET"] *)
  rq_path : string;  (** decoded path without the query string *)
  rq_query : (string * string) list;  (** decoded query parameters *)
}

type response =
  | Fixed of { status : int; content_type : string; body : string }
  | Stream of { content_type : string; write : (string -> bool) -> unit }
      (** [write chunk] returns [false] when the client disconnected or
          the server is stopping; the handler must then return. *)

type handler = request -> response
(** Handlers run on a connection domain. Exceptions are caught and mapped
    to a 500 response. *)

type t

val start :
  ?max_connections:int -> port:int -> handler -> (t, string) result
(** Bind the loopback interface on [port] (0 picks an ephemeral port — see
    [port t] for the actual one) and serve until [stop].
    [max_connections] (default 8) caps concurrently-served requests. *)

val port : t -> int
val generation : t -> int

val rejected : t -> int
(** Connections turned away with 503 because the concurrency cap was
    reached. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, nudge in-flight streams via their
    write function, and join every connection domain. Idempotent. *)

val get :
  ?timeout_s:float -> port:int -> string -> (int * string, string) result
(** Minimal loopback HTTP client for tests, benchmarks and CI: one
    [GET path] request, returns (status, body). [timeout_s] (default 10)
    bounds the socket reads. *)
