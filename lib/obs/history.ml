(* Bounded telemetry history and the regression watchdog.

   Point-in-time accumulators (Stats, Profile, Metrics) answer "what has
   this session done so far"; this module answers "how has it changed".
   It keeps, per statement fingerprint, a ring buffer of execution
   records — wall and phase milliseconds, rows out, the planner's total
   row estimate, worker skew, and a structural plan hash — plus
   cadence-sampled rings for selected Metrics series. Everything is a
   fixed-capacity ring with an eviction counter: a long session can never
   OOM on its own telemetry, it just forgets the oldest records.

   The watchdog folds every successful execution into an EWMA baseline
   (and consults the retained ring for a p95) and flags executions that
   exceed the baseline by a configurable factor, attributing the likely
   cause in precedence order: the plan hash changed, the input
   cardinality grew, the parallel workers were skewed — or unknown. A
   plan-hash change is always reported, independent of timing, so plan
   flips are visible even when the new plan happens to be fast. *)

(* ------------------------------------------------------------------ *)
(* Rings                                                               *)
(* ------------------------------------------------------------------ *)

type 'a ring = {
  mutable rbuf : 'a option array;
  mutable rstart : int;  (* index of the oldest element *)
  mutable rlen : int;
  mutable rdropped : int;  (* elements evicted to make room *)
}

let ring_make cap =
  { rbuf = Array.make (max 1 cap) None; rstart = 0; rlen = 0; rdropped = 0 }

let ring_capacity r = Array.length r.rbuf

(* Push, returning the element evicted to make room (if any) so callers
   can maintain incremental summaries over the window. *)
let ring_push_evict r x =
  let cap = ring_capacity r in
  if r.rlen = cap then begin
    (* overwrite the oldest slot *)
    let old = r.rbuf.(r.rstart) in
    r.rbuf.(r.rstart) <- Some x;
    r.rstart <- (r.rstart + 1) mod cap;
    r.rdropped <- r.rdropped + 1;
    old
  end
  else begin
    r.rbuf.((r.rstart + r.rlen) mod cap) <- Some x;
    r.rlen <- r.rlen + 1;
    None
  end

let ring_push r x = ignore (ring_push_evict r x)

let ring_get r i =
  match r.rbuf.((r.rstart + i) mod ring_capacity r) with
  | Some x -> x
  | None -> invalid_arg "History.ring_get: empty slot"

let ring_to_list r = List.init r.rlen (ring_get r)

let ring_fold r f init =
  let acc = ref init in
  for i = 0 to r.rlen - 1 do
    acc := f !acc (ring_get r i)
  done;
  !acc

(* Shrink or grow in place, keeping the newest [cap] elements. *)
let ring_set_capacity r cap =
  let cap = max 1 cap in
  if cap <> ring_capacity r then begin
    let kept = min r.rlen cap in
    let dropped_now = r.rlen - kept in
    let buf = Array.make cap None in
    for i = 0 to kept - 1 do
      buf.(i) <- Some (ring_get r (dropped_now + i))
    done;
    r.rbuf <- buf;
    r.rstart <- 0;
    r.rlen <- kept;
    r.rdropped <- r.rdropped + dropped_now
  end

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

type exec_record = {
  ex_fingerprint : string;
  ex_seq : int;  (* global, monotone across the whole history *)
  ex_ts : float;  (* unix seconds at statement start *)
  ex_plan_hash : string;  (* "" when the statement had no query plan *)
  ex_ms : float;
  ex_rows : int;
  ex_est_rows : float;  (* planner total estimate; 0 when unplanned *)
  ex_skew : float;  (* max worker skew of the execution; 1.0 = balanced *)
  ex_error : bool;
  ex_phase_ms : (string * float) list;
}

type cause = Plan_change | Cardinality | Skew | Unknown

let cause_label = function
  | Plan_change -> "plan-change"
  | Cardinality -> "cardinality"
  | Skew -> "skew"
  | Unknown -> "unknown"

type regression = {
  rg_fingerprint : string;
  rg_seq : int;
  rg_ts : float;
  rg_ms : float;
  rg_baseline_ms : float;
  rg_factor : float;  (* rg_ms / baseline (1.0 when baseline unknown) *)
  rg_cause : cause;
  rg_detail : string;
  rg_plan_hash : string;
}

type metric_sample = {
  sm_name : string;
  sm_seq : int;
  sm_ts : float;
  sm_value : float;
}

type entry = {
  en_fingerprint : string;
  en_ring : exec_record ring;
  en_hist : int array;  (* windowed wall-time histogram over the ring *)
  mutable en_hist_n : int;  (* non-error records counted in en_hist *)
  mutable en_ewma_ms : float;
  mutable en_ewma_rows : float;
  mutable en_ewma_est : float;
  mutable en_samples : int;  (* executions folded into the baseline *)
  mutable en_last_hash : string;
  mutable en_last_seq : int;  (* recency, for LRU eviction *)
}

type t = {
  mutable capacity : int;  (* per-fingerprint ring size; 0 disables *)
  mutable max_fingerprints : int;
  mutable max_bytes : int;  (* approximate budget over all rings *)
  mutable factor : float;  (* watchdog slowdown threshold *)
  mutable min_samples : int;  (* baseline warm-up before flagging *)
  mutable card_factor : float;  (* "cardinality grew" threshold *)
  mutable skew_threshold : float;
  mutable cadence_s : float;  (* metric sampling cadence; 0 = every call *)
  mutable tracked : string list;
  mutable last_sample_s : float;
  mutable seq : int;
  mutable evicted : int;  (* records lost to fingerprint/byte eviction *)
  mutable budget_tick : int;  (* stride counter for the byte-budget scan *)
  entries : (string, entry) Hashtbl.t;
  regressions : regression ring;
  series : (string, metric_sample ring) Hashtbl.t;
}

let default_tracked =
  [ "engine.statements"; "engine.errors"; "engine.statement.ms"; "gc.heap_words" ]

let create () =
  {
    capacity = 128;
    max_fingerprints = 256;
    max_bytes = 8 * 1024 * 1024;
    factor = 3.0;
    min_samples = 3;
    card_factor = 2.0;
    skew_threshold = 1.5;
    cadence_s = 1.0;
    tracked = default_tracked;
    last_sample_s = Float.neg_infinity;
    seq = 0;
    evicted = 0;
    budget_tick = 0;
    entries = Hashtbl.create 64;
    regressions = ring_make 256;
    series = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* Windowed wall-time histogram                                        *)
(* ------------------------------------------------------------------ *)

(* Windowed p95 over an entry's ring, maintained incrementally so
   recording a statement costs O(1) instead of a sort of the whole ring.
   Wall times land in log-scale buckets (ratio 1.3, 1 µs .. ~45 min);
   the bucket of an evicted record is decremented when the ring wraps,
   so the counts always describe exactly the retained window. The p95
   estimate is the upper bound of the bucket holding the target rank —
   an overestimate by at most one bucket (30%), the same contract as the
   Metrics histograms. *)
let hist_buckets = 64
let hist_ratio = 1.3
let hist_log_ratio = log hist_ratio
let hist_floor_ms = 0.001

let bucket_of_ms ms =
  if ms <= hist_floor_ms then 0
  else
    let i = int_of_float (Float.ceil (log (ms /. hist_floor_ms) /. hist_log_ratio)) in
    min (hist_buckets - 1) (max 0 i)

let bucket_upper_ms i = hist_floor_ms *. (hist_ratio ** float_of_int i)

let hist_add en ms =
  let b = bucket_of_ms ms in
  en.en_hist.(b) <- en.en_hist.(b) + 1;
  en.en_hist_n <- en.en_hist_n + 1

let hist_remove en ms =
  let b = bucket_of_ms ms in
  if en.en_hist.(b) > 0 then begin
    en.en_hist.(b) <- en.en_hist.(b) - 1;
    en.en_hist_n <- en.en_hist_n - 1
  end

let hist_rebuild en =
  Array.fill en.en_hist 0 hist_buckets 0;
  en.en_hist_n <- 0;
  ring_fold en.en_ring
    (fun () r -> if not r.ex_error then hist_add en r.ex_ms)
    ()

let hist_p95 en =
  if en.en_hist_n = 0 then 0.
  else begin
    let rank =
      max 1 (int_of_float (Float.ceil (0.95 *. float_of_int en.en_hist_n)))
    in
    let cum = ref 0 and res = ref 0. and found = ref false in
    for i = 0 to hist_buckets - 1 do
      if not !found then begin
        cum := !cum + en.en_hist.(i);
        if !cum >= rank then begin
          res := bucket_upper_ms i;
          found := true
        end
      end
    done;
    !res
  end

let reset t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.series;
  t.regressions.rlen <- 0;
  t.regressions.rstart <- 0;
  t.regressions.rdropped <- 0;
  t.seq <- 0;
  t.evicted <- 0;
  t.last_sample_s <- Float.neg_infinity

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let enabled t = t.capacity > 0
let capacity t = t.capacity

let set_capacity t cap =
  let cap = max 0 cap in
  t.capacity <- cap;
  if cap = 0 then Hashtbl.reset t.entries
  else
    Hashtbl.iter
      (fun _ en ->
        ring_set_capacity en.en_ring cap;
        hist_rebuild en)
      t.entries

let set_max_fingerprints t n = t.max_fingerprints <- max 1 n
let factor t = t.factor
let set_factor t f = t.factor <- Float.max 0. f
let set_min_samples t n = t.min_samples <- max 1 n
let set_card_factor t f = t.card_factor <- Float.max 1. f
let set_skew_threshold t f = t.skew_threshold <- Float.max 1. f
let cadence t = t.cadence_s
let set_cadence t s = t.cadence_s <- Float.max 0. s
let tracked t = t.tracked
let set_tracked t names = t.tracked <- names

(* ------------------------------------------------------------------ *)
(* Memory accounting                                                   *)
(* ------------------------------------------------------------------ *)

(* Coarse per-record cost model, in bytes: a boxed record, its strings,
   and a handful of list cells for the phase breakdown. The goal is a
   stable order-of-magnitude figure the governor can bound, not an exact
   heap measurement. *)
let exec_record_bytes fp_len = 160 + fp_len + 16 + (5 * 48)
let regression_bytes = 240
let metric_sample_bytes = 64

let approx_bytes t =
  let b = ref (t.regressions.rlen * regression_bytes) in
  Hashtbl.iter
    (fun fp en ->
      b := !b + (en.en_ring.rlen * exec_record_bytes (String.length fp)) + 96)
    t.entries;
  Hashtbl.iter
    (fun _ r -> b := !b + (r.rlen * metric_sample_bytes) + 48)
    t.series;
  !b

let dropped t =
  let b = ref t.evicted in
  Hashtbl.iter (fun _ en -> b := !b + en.en_ring.rdropped) t.entries;
  Hashtbl.iter (fun _ r -> b := !b + r.rdropped) t.series;
  !b + t.regressions.rdropped

(* Evict the least-recently-touched fingerprint entry. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun fp en acc ->
        match acc with
        | Some (_, seq) when seq <= en.en_last_seq -> acc
        | _ -> Some (fp, en.en_last_seq))
      t.entries None
  in
  match victim with
  | None -> ()
  | Some (fp, _) ->
    (match Hashtbl.find_opt t.entries fp with
    | Some en -> t.evicted <- t.evicted + en.en_ring.rlen
    | None -> ());
    Hashtbl.remove t.entries fp

(* The byte budget needs a full scan to evaluate, so it is only
   re-checked every [budget_stride] recordings (and whenever the
   configuration changes, via the setters below). The overshoot between
   checks is bounded: at most stride × record size, a few KiB against a
   megabyte-scale budget. *)
let budget_stride = 32

let enforce_bytes t =
  if t.max_bytes > 0 then begin
    let guard = ref (Hashtbl.length t.entries) in
    while approx_bytes t > t.max_bytes && !guard > 0 && Hashtbl.length t.entries > 1 do
      evict_lru t;
      decr guard
    done
  end

let enforce_budget t =
  if Hashtbl.length t.entries > t.max_fingerprints then evict_lru t;
  t.budget_tick <- t.budget_tick + 1;
  if t.budget_tick >= budget_stride then begin
    t.budget_tick <- 0;
    enforce_bytes t
  end

(* Shrinking the budget takes effect immediately, not at the next stride. *)
let set_max_bytes t n =
  t.max_bytes <- max 0 n;
  enforce_bytes t

(* ------------------------------------------------------------------ *)
(* Recording and the watchdog                                          *)
(* ------------------------------------------------------------------ *)

let find_or_create t fingerprint =
  match Hashtbl.find_opt t.entries fingerprint with
  | Some en -> en
  | None ->
    let en =
      {
        en_fingerprint = fingerprint;
        en_ring = ring_make t.capacity;
        en_hist = Array.make hist_buckets 0;
        en_hist_n = 0;
        en_ewma_ms = 0.;
        en_ewma_rows = 0.;
        en_ewma_est = 0.;
        en_samples = 0;
        en_last_hash = "";
        en_last_seq = 0;
      }
    in
    Hashtbl.replace t.entries fingerprint en;
    en

let ewma_alpha = 0.3

let ring_p95 = hist_p95

(* Floor under the baseline so a sub-clock-tick baseline (0 ms) does not
   make every measurable execution look infinitely slower. *)
let baseline_floor = 0.01

let baseline_ms en =
  if en.en_samples = 0 then 0. else Float.max en.en_ewma_ms (ring_p95 en)

let record t ~fingerprint ~ts ~plan_hash ~ms ~rows ~est_rows ~skew ~error
    ~phases =
  if t.capacity <= 0 then None
  else begin
    t.seq <- t.seq + 1;
    let seq = t.seq in
    let en = find_or_create t fingerprint in
    let plan_changed =
      (not error) && en.en_last_hash <> "" && plan_hash <> ""
      && plan_hash <> en.en_last_hash
    in
    let baseline = baseline_ms en in
    let regression =
      if error then None
      else if plan_changed then
        Some
          {
            rg_fingerprint = fingerprint;
            rg_seq = seq;
            rg_ts = ts;
            rg_ms = ms;
            rg_baseline_ms = baseline;
            rg_factor = (if baseline > 0. then ms /. baseline else 1.);
            rg_cause = Plan_change;
            rg_detail =
              Printf.sprintf "plan hash %s -> %s" en.en_last_hash plan_hash;
            rg_plan_hash = plan_hash;
          }
      else if
        en.en_samples >= t.min_samples
        && ms >= t.factor *. Float.max baseline baseline_floor
      then begin
        let cause, detail =
          if
            est_rows > t.card_factor *. Float.max 1. en.en_ewma_est
            || float_of_int rows > t.card_factor *. Float.max 1. en.en_ewma_rows
          then
            ( Cardinality,
              Printf.sprintf
                "est rows %.0f vs baseline %.0f; rows out %d vs %.0f" est_rows
                en.en_ewma_est rows en.en_ewma_rows )
          else if skew >= t.skew_threshold then
            (Skew, Printf.sprintf "worker skew %.2f" skew)
          else (Unknown, "no plan, cardinality or skew change")
        in
        Some
          {
            rg_fingerprint = fingerprint;
            rg_seq = seq;
            rg_ts = ts;
            rg_ms = ms;
            rg_baseline_ms = baseline;
            rg_factor =
              (if baseline > 0. then ms /. baseline else 1.);
            rg_cause = cause;
            rg_detail = detail;
            rg_plan_hash = plan_hash;
          }
      end
      else None
    in
    Option.iter (fun r -> ring_push t.regressions r) regression;
    let evicted =
      ring_push_evict en.en_ring
        {
          ex_fingerprint = fingerprint;
          ex_seq = seq;
          ex_ts = ts;
          ex_plan_hash = plan_hash;
          ex_ms = ms;
          ex_rows = rows;
          ex_est_rows = est_rows;
          ex_skew = skew;
          ex_error = error;
          ex_phase_ms = phases;
        }
    in
    (match evicted with
    | Some old when not old.ex_error -> hist_remove en old.ex_ms
    | _ -> ());
    if not error then hist_add en ms;
    en.en_last_seq <- seq;
    if not error then begin
      if plan_changed || en.en_samples = 0 then begin
        (* first sample, or a new plan: the old timing baseline no longer
           describes what this statement does — restart from here *)
        en.en_ewma_ms <- ms;
        en.en_ewma_rows <- float_of_int rows;
        en.en_ewma_est <- est_rows;
        en.en_samples <- 1
      end
      else begin
        en.en_ewma_ms <- (ewma_alpha *. ms) +. ((1. -. ewma_alpha) *. en.en_ewma_ms);
        en.en_ewma_rows <-
          (ewma_alpha *. float_of_int rows)
          +. ((1. -. ewma_alpha) *. en.en_ewma_rows);
        en.en_ewma_est <-
          (ewma_alpha *. est_rows) +. ((1. -. ewma_alpha) *. en.en_ewma_est);
        en.en_samples <- en.en_samples + 1
      end
    end;
    if plan_hash <> "" then en.en_last_hash <- plan_hash;
    enforce_budget t;
    regression
  end

(* ------------------------------------------------------------------ *)
(* Metric sampling                                                     *)
(* ------------------------------------------------------------------ *)

let sample_due t ~now =
  enabled t && t.tracked <> [] && now -. t.last_sample_s >= t.cadence_s

let metric_value = function
  | Metrics.Counter r -> Some (float_of_int r.c)
  | Metrics.Gauge r -> Some r.g
  | Metrics.Histogram h ->
    if h.Metrics.h_count = 0 then None else Some (Metrics.quantile h 0.95)

let sample t metrics ~now =
  if sample_due t ~now then begin
    t.last_sample_s <- now;
    t.seq <- t.seq + 1;
    let seq = t.seq in
    let values =
      Metrics.fold metrics
        (fun acc name m ->
          if List.mem name t.tracked then
            match metric_value m with
            | Some v -> (name, v) :: acc
            | None -> acc
          else acc)
        []
    in
    List.iter
      (fun (name, v) ->
        let r =
          match Hashtbl.find_opt t.series name with
          | Some r -> r
          | None ->
            let r = ring_make (max 1 (t.capacity * 4)) in
            Hashtbl.replace t.series name r;
            r
        in
        ring_push r { sm_name = name; sm_seq = seq; sm_ts = now; sm_value = v })
      values
  end

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let executions t =
  Hashtbl.fold (fun _ en acc -> ring_to_list en.en_ring @ acc) t.entries []
  |> List.sort (fun a b -> compare a.ex_seq b.ex_seq)

let executions_for t fingerprint =
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> []
  | Some en -> ring_to_list en.en_ring

let fingerprints t =
  Hashtbl.fold (fun fp _ acc -> fp :: acc) t.entries []
  |> List.sort compare

let regressions t = ring_to_list t.regressions

let metric_samples t =
  Hashtbl.fold (fun _ r acc -> ring_to_list r @ acc) t.series []
  |> List.sort (fun a b ->
         match compare a.sm_name b.sm_name with
         | 0 -> compare a.sm_seq b.sm_seq
         | c -> c)

let baseline t fingerprint =
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> None
  | Some en ->
    if en.en_samples = 0 then None
    else Some (baseline_ms en, en.en_samples)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let exec_to_json r =
  Json.Obj
    [
      ("kind", Json.String "execution");
      ("fingerprint", Json.String r.ex_fingerprint);
      ("seq", Json.Int r.ex_seq);
      ("ts", Json.Float r.ex_ts);
      ("plan_hash", Json.String r.ex_plan_hash);
      ("ms", Json.Float r.ex_ms);
      ("rows", Json.Int r.ex_rows);
      ("est_rows", Json.Float r.ex_est_rows);
      ("skew", Json.Float r.ex_skew);
      ("error", Json.Bool r.ex_error);
      ( "phases",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.ex_phase_ms) );
    ]

let regression_to_json r =
  Json.Obj
    [
      ("kind", Json.String "regression");
      ("fingerprint", Json.String r.rg_fingerprint);
      ("seq", Json.Int r.rg_seq);
      ("ts", Json.Float r.rg_ts);
      ("ms", Json.Float r.rg_ms);
      ("baseline_ms", Json.Float r.rg_baseline_ms);
      ("factor", Json.Float r.rg_factor);
      ("cause", Json.String (cause_label r.rg_cause));
      ("detail", Json.String r.rg_detail);
      ("plan_hash", Json.String r.rg_plan_hash);
    ]

let metric_sample_to_json s =
  Json.Obj
    [
      ("kind", Json.String "metric");
      ("name", Json.String s.sm_name);
      ("seq", Json.Int s.sm_seq);
      ("ts", Json.Float s.sm_ts);
      ("value", Json.Float s.sm_value);
    ]

let export_jsonl t =
  List.map exec_to_json (executions t)
  @ List.map regression_to_json (regressions t)
  @ List.map metric_sample_to_json (metric_samples t)

(* Streaming variant of [export_jsonl]: records are emitted one at a time
   so a large telemetry dump never materializes as a single list/string in
   memory (the CLI writes each straight to the file). Same record order. *)
let iter_export t f =
  List.iter (fun ex -> f (exec_to_json ex)) (executions t);
  List.iter (fun r -> f (regression_to_json r)) (regressions t);
  List.iter (fun s -> f (metric_sample_to_json s)) (metric_samples t)

(* Records lost specifically to fingerprint-LRU / byte-budget eviction, as
   opposed to ordinary ring wrap-around — exported as its own gauge so an
   alert can tell "history is just full" from "the budget is shedding
   whole fingerprints". *)
let evicted t = t.evicted
