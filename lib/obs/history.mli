(** Bounded telemetry history and the regression watchdog.

    Per-fingerprint ring buffers of execution records (wall/phase
    milliseconds, rows out, planner estimate, worker skew, structural plan
    hash), a global ring of watchdog regression reports, and
    cadence-sampled rings for selected {!Metrics} series. Every store is a
    fixed-capacity ring with an eviction counter, and the whole subsystem
    is bounded by an approximate byte budget: a long session cannot OOM on
    its own telemetry.

    The watchdog keeps an EWMA baseline per fingerprint (combined with the
    p95 of the retained ring) and flags executions that exceed it by a
    configurable factor, attributing a likely cause in precedence order:
    plan-change, cardinality, skew, unknown. A plan-hash change is always
    reported, independent of timing. *)

type t

type exec_record = {
  ex_fingerprint : string;
  ex_seq : int;  (** global, monotone across the whole history *)
  ex_ts : float;  (** unix seconds at statement start *)
  ex_plan_hash : string;  (** [""] when the statement had no query plan *)
  ex_ms : float;
  ex_rows : int;
  ex_est_rows : float;  (** planner total estimate; [0.] when unplanned *)
  ex_skew : float;  (** max worker skew of the execution; [1.0] = balanced *)
  ex_error : bool;
  ex_phase_ms : (string * float) list;
}

type cause = Plan_change | Cardinality | Skew | Unknown

val cause_label : cause -> string
(** ["plan-change"], ["cardinality"], ["skew"], ["unknown"] — the strings
    surfaced in the [perm_stat_regressions] view. *)

type regression = {
  rg_fingerprint : string;
  rg_seq : int;
  rg_ts : float;
  rg_ms : float;
  rg_baseline_ms : float;
  rg_factor : float;  (** [rg_ms / baseline] ([1.0] when baseline unknown) *)
  rg_cause : cause;
  rg_detail : string;
  rg_plan_hash : string;
}

type metric_sample = {
  sm_name : string;
  sm_seq : int;
  sm_ts : float;
  sm_value : float;
}

val create : unit -> t
(** Defaults: 128 records per fingerprint, at most 256 fingerprints, an
    8 MiB byte budget, watchdog factor 3.0 after 3 baseline samples,
    cardinality factor 2.0, skew threshold 1.5, 1 s metric cadence over
    [engine.statements], [engine.errors], [engine.statement.ms] and
    [gc.heap_words]. *)

val reset : t -> unit

(** {1 Configuration} *)

val enabled : t -> bool
val capacity : t -> int

val set_capacity : t -> int -> unit
(** Per-fingerprint ring capacity. [0] disables recording entirely and
    discards retained history; shrinking drops the oldest records (counted
    in {!dropped}). *)

val set_max_fingerprints : t -> int -> unit
(** Bound on distinct fingerprints; the least-recently-executed entry is
    evicted beyond it (clamped at 1). *)

val set_max_bytes : t -> int -> unit
(** Approximate byte budget over all rings; LRU fingerprints are evicted
    until the estimate fits. [0] disables the budget. *)

val factor : t -> float

val set_factor : t -> float -> unit
(** Watchdog slowdown threshold: flag when
    [ms >= factor * max baseline 0.01]. *)

val set_min_samples : t -> int -> unit
(** Baseline executions required before the watchdog may flag (>= 1). *)

val set_card_factor : t -> float -> unit
(** Growth factor of est/actual rows over the baseline EWMA that
    attributes a flagged execution to cardinality. *)

val set_skew_threshold : t -> float -> unit
(** Worker skew at or above which a flagged execution is attributed to
    parallel imbalance. *)

val cadence : t -> float

val set_cadence : t -> float -> unit
(** Seconds between metric samples; [0.] samples on every opportunity. *)

val tracked : t -> string list
val set_tracked : t -> string list -> unit

(** {1 Recording} *)

val record :
  t ->
  fingerprint:string ->
  ts:float ->
  plan_hash:string ->
  ms:float ->
  rows:int ->
  est_rows:float ->
  skew:float ->
  error:bool ->
  phases:(string * float) list ->
  regression option
(** Append one execution record, run the watchdog against the baseline as
    it stood {e before} this execution, then fold the execution into the
    baseline. Returns the regression report if one was raised (it is also
    retained in the regressions ring). No-op returning [None] while
    disabled. Errors are retained in the ring but never flagged and never
    fold into the baseline. A plan-hash change resets the timing baseline
    to the new execution. *)

val sample_due : t -> now:float -> bool
(** Whether {!sample} called [~now] would take a sample — lets the caller
    skip refreshing gauges when no sample is due. *)

val sample : t -> Metrics.t -> now:float -> unit
(** Cadence-gated: record one sample of every tracked series (counters and
    gauges by value, histograms by p95; absent series skipped). *)

(** {1 Accessors} *)

val executions : t -> exec_record list
(** All retained executions, oldest first (global sequence order). *)

val executions_for : t -> string -> exec_record list
val fingerprints : t -> string list
val regressions : t -> regression list
val metric_samples : t -> metric_sample list

val baseline : t -> string -> (float * int) option
(** [(baseline_ms, samples)] for a fingerprint, once it has a baseline. *)

val approx_bytes : t -> int
(** Estimated heap footprint of all retained telemetry. *)

val dropped : t -> int
(** Total records lost to ring wrap-around, capacity changes and LRU /
    byte-budget eviction. *)

val evicted : t -> int
(** The subset of {!dropped} lost to fingerprint-LRU / byte-budget
    eviction specifically (whole fingerprints shed under memory
    pressure). *)

(** {1 Export} *)

val exec_to_json : exec_record -> Json.t
val regression_to_json : regression -> Json.t
val metric_sample_to_json : metric_sample -> Json.t

val export_jsonl : t -> Json.t list
(** One JSON object per retained record (executions, then regressions,
    then metric samples), each tagged with a ["kind"] field — the payload
    of [\telemetry export]. *)

val iter_export : t -> (Json.t -> unit) -> unit
(** Streaming [export_jsonl]: applies [f] to each record in the same
    order without building the full list, so exports stay O(1) in
    additional memory. *)
