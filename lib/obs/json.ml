type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string * int

let parse input =
  let n = String.length input in
  let fail msg pos = raise (Parse_error (msg, pos)) in
  let rec skip_ws i =
    if i < n && (match input.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then skip_ws (i + 1)
    else i
  in
  let expect c i =
    if i < n && input.[i] = c then i + 1
    else fail (Printf.sprintf "expected %C" c) i
  in
  let parse_literal word value i =
    let len = String.length word in
    if i + len <= n && String.sub input i len = word then (value, i + len)
    else fail (Printf.sprintf "invalid token (expected %s)" word) i
  in
  (* UTF-8 encode one code point, including the astral planes (4 bytes)
     reached by recombined surrogate pairs. *)
  let add_codepoint buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string i =
    let i = expect '"' i in
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then fail "unterminated string" i
      else
        match input.[i] with
        | '"' -> (Buffer.contents buf, i + 1)
        | '\\' ->
          if i + 1 >= n then fail "dangling escape" i
          else (
            match input.[i + 1] with
            | '"' -> Buffer.add_char buf '"'; go (i + 2)
            | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
            | '/' -> Buffer.add_char buf '/'; go (i + 2)
            | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
            | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
            | 't' -> Buffer.add_char buf '\t'; go (i + 2)
            | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
            | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
            | 'u' ->
              if i + 5 >= n then fail "truncated \\u escape" i
              else begin
                match int_of_string_opt ("0x" ^ String.sub input (i + 2) 4) with
                | None -> fail "invalid \\u escape" i
                | Some cp
                  when cp >= 0xD800 && cp <= 0xDBFF
                       && i + 11 < n
                       && input.[i + 6] = '\\'
                       && input.[i + 7] = 'u' -> (
                  (* a high surrogate followed by \u of a low surrogate:
                     recombine the pair into one astral code point *)
                  match
                    int_of_string_opt ("0x" ^ String.sub input (i + 8) 4)
                  with
                  | Some lo when lo >= 0xDC00 && lo <= 0xDFFF ->
                    add_codepoint buf
                      (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00));
                    go (i + 12)
                  | _ ->
                    (* not a low surrogate: encode the lone half as before *)
                    add_codepoint buf cp;
                    go (i + 6))
                | Some cp ->
                  add_codepoint buf cp;
                  go (i + 6)
              end
            | c -> fail (Printf.sprintf "unknown escape \\%c" c) i)
        | c -> Buffer.add_char buf c; go (i + 1)
    in
    go i
  in
  let parse_number i =
    let j = ref i in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !j < n && num_char input.[!j] do incr j done;
    if !j = i then fail "invalid number" i
    else
      let text = String.sub input i (!j - i) in
      match int_of_string_opt text with
      | Some v -> (Int v, !j)
      | None -> (
        match float_of_string_opt text with
        | Some v -> (Float v, !j)
        | None -> fail (Printf.sprintf "invalid number %S" text) i)
  in
  let rec parse_value i =
    let i = skip_ws i in
    if i >= n then fail "unexpected end of input" i
    else
      match input.[i] with
      | 'n' -> parse_literal "null" Null i
      | 't' -> parse_literal "true" (Bool true) i
      | 'f' -> parse_literal "false" (Bool false) i
      | '"' ->
        let s, i = parse_string i in
        (String s, i)
      | '[' -> parse_list (i + 1) []
      | '{' -> parse_obj (i + 1) []
      | _ -> parse_number i
  and parse_list i acc =
    let i = skip_ws i in
    if i < n && input.[i] = ']' then (List (List.rev acc), i + 1)
    else
      let v, i = parse_value i in
      let i = skip_ws i in
      if i < n && input.[i] = ',' then parse_list (i + 1) (v :: acc)
      else (List (List.rev (v :: acc)), expect ']' i)
  and parse_obj i acc =
    let i = skip_ws i in
    if i < n && input.[i] = '}' then (Obj (List.rev acc), i + 1)
    else
      let k, i = parse_string i in
      let i = expect ':' (skip_ws i) in
      let v, i = parse_value i in
      let i = skip_ws i in
      if i < n && input.[i] = ',' then parse_obj (i + 1) ((k, v) :: acc)
      else (Obj (List.rev ((k, v) :: acc)), expect '}' i)
  in
  match parse_value 0 with
  | v, i ->
    let i = skip_ws i in
    if i < n then Error (Printf.sprintf "trailing content at offset %d" i)
    else Ok v
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)

(* Accessors for picking results apart without pattern-matching noise at
   every call site (the bench comparison walks baseline documents). *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

(* A human-diffable rendering: objects and lists one entry per line. Used
   for the bench harness's BENCH_*.json sinks. *)
let to_pretty_string t =
  let buf = Buffer.create 512 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf
