type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* A human-diffable rendering: objects and lists one entry per line. Used
   for the bench harness's BENCH_*.json sinks. *)
let to_pretty_string t =
  let buf = Buffer.create 512 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf
