(** Span-based tracing for the statement pipeline.

    A span is a named wall-clock interval with attributes and child spans;
    the engine opens one root span per statement and a child per phase
    (parse → analyze → rewrite → optimize → execute), giving every
    statement a duration breakdown as a tree.

    Spans are plain mutable records with no global state: whoever starts
    the root owns the trace. Creating a span costs two small allocations
    and one clock read, so per-statement tracing is cheap enough to stay
    always-on; per-{e row} instrumentation lives in the executor and is
    opt-in. *)

type span

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]). *)

val start : string -> span
(** A fresh root span, started now. *)

val finish : span -> unit
(** Freeze the duration. Idempotent: the first call wins. *)

val child : span -> string -> span
(** Start a new span attached under the parent. *)

val attach : span -> span -> unit
val annotate : span -> string -> string -> unit

(** {2 Lanes}

    Every span carries a {e lane} — the Chrome-trace [tid] it renders on.
    Lane {!engine_lane} (the default) is the engine's statement pipeline;
    {!worker_lane}[ i] is worker domain [i]'s track, so parallel morsel
    slices appear as per-worker swimlanes in the exported trace. *)

val engine_lane : int
(** Lane 1: the serial statement pipeline. *)

val worker_lane : int -> int
(** [worker_lane i] is the lane of worker domain [i] (0-based; worker 0 is
    the calling domain). *)

val set_lane : span -> int -> unit
val lane : span -> int

val add_slice :
  span ->
  string ->
  start_s:float ->
  dur_s:float ->
  lane:int ->
  (string * string) list ->
  span
(** Attach a pre-measured, already-finished interval under [parent] on the
    given lane — how per-morsel worker timings recorded off-thread enter
    the span tree after the batch completes. *)

val timed : span -> string -> (unit -> 'a) -> 'a
(** [timed parent name f] runs [f] inside a fresh child span, finishing it
    even when [f] raises. *)

val duration_ms : span -> float
(** Duration in milliseconds; for an open span, time since start. *)

val name : span -> string
val children : span -> span list
(** Children in start order. *)

val attrs : span -> (string * string) list
val find : span -> string -> span option
(** First direct child with the given name. *)

val iter : (span -> unit) -> span -> unit
(** Pre-order traversal of the span tree. *)

val to_string : span -> string
(** Indented tree with per-span milliseconds and percent of the root. *)

val to_json : span -> Json.t

val start_s : span -> float
(** Absolute start time in seconds ([Unix.gettimeofday] domain). *)

val to_chrome_json : span list -> Json.t
(** Render finished root spans in Chrome trace-event format (an object
    with a ["traceEvents"] array of "X" complete events, timestamps in
    microseconds relative to the earliest root) — loadable in
    about://tracing or Perfetto. Each span renders on its lane's [tid];
    one [thread_name] metadata event labels every lane present ("engine",
    "worker 0", "worker 1", ...). *)
