(** The always-on flight recorder: a bounded ring of typed events.

    Every subsystem milestone worth a post-mortem — statement lifecycle,
    plan-node cardinalities, WAL appends/fsyncs/checkpoints/replays, spill
    runs and fallbacks, GC major slices, fault firings, governor verdicts,
    watchdog flags, parallel degradations — lands here as a structured
    payload, not a formatted string. When the engine detects an anomaly it
    snapshots the tail of this ring into the forensics bundle, so the
    bundle shows what the whole system was doing in the run-up, not just
    the failing statement.

    Recording is wait-free for writers: one atomic fetch-and-add plus an
    array store, no mutex. That makes it safe to call from any domain and
    from reentrant contexts (a [Gc.alarm] firing mid-record takes the next
    slot instead of deadlocking), and cheap enough to leave on by default
    — the B14 bench gates the on-vs-off overhead. Readers ([recent],
    [snapshot]) may race a concurrent writer and see a ring that is one
    event ahead or behind; every event they see is complete and typed.

    Capacity [0] disables the recorder entirely (and, in the engine,
    forensics-bundle capture with it) — the bench's off-arm knob, mirror
    of [History.set_capacity h 0]. *)

type payload =
  | Stmt_start of { sql : string; fingerprint : string }
  | Stmt_finish of {
      fingerprint : string;
      ms : float;
      rows : int;
      error : string option;  (** the error kind label, [None] on success *)
    }
  | Plan_node of {
      fingerprint : string;
      node : int;
      operator : string;
      est_rows : float;
      act_rows : int;
    }  (** recorded on the profiled paths (instrumented serial, parallel) *)
  | Wal_append of { frame : string }  (** frame label: ["begin"], ["insert"], … *)
  | Wal_fsync of { fsyncs : int }  (** total fsyncs after this one *)
  | Wal_checkpoint of { epoch : int; ok : bool }
  | Wal_replay of {
      records : int;
      committed : int;
      discarded : int;
      skipped : int;
      truncated_bytes : int;
    }  (** what crash recovery found when the log was opened *)
  | Spill of { kind : string; detail : string }
      (** [kind] one of ["spill"], ["run"], ["chunk"], ["fallback"];
          [detail] carries the batch-path fallback reason when known *)
  | Gc_major of { heap_words : int; major_collections : int }
  | Fault of { point : string }
  | Governor of { verdict : string; detail : string }
      (** [verdict] is the kill kind label: ["timeout"], ["cancelled"],
          ["resource_exhausted"] *)
  | Watchdog of { fingerprint : string; factor : float; cause : string }
  | Degraded of { reason : string }  (** parallel plan re-run serially *)
  | Note of { tag : string; detail : string }  (** escape hatch *)

type event = {
  ev_seq : int;  (** global, monotone; total order over the session *)
  ev_ts : float;  (** unix seconds *)
  ev_payload : payload;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 events. *)

val enabled : t -> bool
val capacity : t -> int

val set_capacity : t -> int -> unit
(** Replace the ring, keeping the newest events that fit. [0] disables
    recording and discards everything retained (the off-arm knob);
    negative values are clamped to [0]. *)

val record : t -> payload -> unit
(** Stamp and append one event; a no-op while disabled. Wait-free, safe
    from any domain. *)

val recorded : t -> int
(** Total events ever recorded (including those the ring has forgotten). *)

val dropped : t -> int
(** Events lost to ring wrap-around or capacity changes (approximate
    under concurrent writers, exact otherwise). *)

val recent : ?limit:int -> t -> event list
(** The retained tail in sequence order, oldest first; [limit] keeps only
    the newest that many. *)

val payload_kind : payload -> string
(** Stable slug: ["stmt_start"], ["wal_append"], ["gc_major"], … — the
    ["kind"] field of the JSON rendering. *)

val event_to_json : event -> Json.t
(** One flat object: [seq], [ts], [kind], then the payload's fields. *)
