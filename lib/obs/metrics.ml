(* Default latency-histogram bucket upper bounds, in milliseconds: a
   log-ish scale from 5µs to 5s. The last implicit bucket is +inf. *)
let default_bounds =
  [|
    0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.;
    100.; 250.; 500.; 1000.; 2500.; 5000.;
  |]

type histogram = {
  bounds : float array;
  buckets : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | Counter of { mutable c : int }
  | Gauge of { mutable g : float }
  | Histogram of histogram

(* The registry is read by the HTTP observability plane from a different
   domain than the one executing statements, so every operation that
   touches [tbl] structurally — or reads a multi-word histogram — takes
   the registry mutex. Counter/gauge single-field writes would be benign
   races under the OCaml 5 memory model, but Hashtbl resizes are not, and
   a torn histogram (count bumped, bucket not yet) would render a
   non-monotone exposition; locking everything keeps the invariants
   simple. The critical sections are a few dozen instructions, far below
   contention concern at statement granularity. *)
type t = { tbl : (string, metric) Hashtbl.t; mu : Mutex.t }

(* OCaml's [Mutex] is not reentrant and 5.1 has no [Mutex.protect]. *)
let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let create () = { tbl = Hashtbl.create 64; mu = Mutex.create () }
let reset t = with_lock t (fun () -> Hashtbl.reset t.tbl)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_add t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace t.tbl name m;
    m

let mismatch name m expected =
  invalid_arg
    (Printf.sprintf "metric %S is a %s, not a %s" name (kind_name m) expected)

let incr ?(by = 1) t name =
  with_lock t (fun () ->
      match find_or_add t name (fun () -> Counter { c = 0 }) with
      | Counter r -> r.c <- r.c + by
      | m -> mismatch name m "counter")

let set_gauge t name v =
  with_lock t (fun () ->
      match find_or_add t name (fun () -> Gauge { g = 0. }) with
      | Gauge r -> r.g <- v
      | m -> mismatch name m "gauge")

let new_histogram bounds =
  {
    bounds;
    buckets = Array.make (Array.length bounds + 1) 0;
    h_count = 0;
    h_sum = 0.;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
  }

let bucket_index bounds v =
  (* first bound >= v; the trailing overflow bucket catches the rest *)
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let declare_histogram ?(bounds = default_bounds) t name =
  with_lock t (fun () ->
      match find_or_add t name (fun () -> Histogram (new_histogram bounds)) with
      | Histogram _ -> ()
      | m -> mismatch name m "histogram")

let observe ?(bounds = default_bounds) t name v =
  with_lock t (fun () ->
      match find_or_add t name (fun () -> Histogram (new_histogram bounds)) with
      | Histogram h ->
        let i = bucket_index h.bounds v in
        h.buckets.(i) <- h.buckets.(i) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v
      | m -> mismatch name m "histogram")

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter r) -> r.c
      | Some m -> mismatch name m "counter"
      | None -> 0)

let gauge t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Gauge r) -> Some r.g
      | Some m -> mismatch name m "gauge"
      | None -> None)

(* Deep copy, so callers can inspect a histogram outside the lock without
   seeing torn updates from a concurrently-observing domain. *)
let copy_histogram h =
  {
    bounds = h.bounds;
    buckets = Array.copy h.buckets;
    h_count = h.h_count;
    h_sum = h.h_sum;
    h_min = h.h_min;
    h_max = h.h_max;
  }

let histogram t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Histogram h) -> Some (copy_histogram h)
      | Some m -> mismatch name m "histogram"
      | None -> None)

(* Upper bound of the bucket where the cumulative count first reaches
   [q * count] — a coarse but monotone quantile estimate. *)
let quantile h q =
  if h.h_count = 0 then Float.nan
  else begin
    let target =
      Float.max 1. (Float.round (q *. float_of_int h.h_count))
    in
    let acc = ref 0 and result = ref h.h_max in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if float_of_int !acc >= target then begin
             result :=
               (if i < Array.length h.bounds then h.bounds.(i) else h.h_max);
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    (* never report a quantile above the observed maximum *)
    Float.min !result h.h_max
  end

(* OCaml runtime health, refreshed on demand (metrics dumps, the
   [perm_metrics] system view, bench JSON) rather than per statement: the
   [Gc.quick_stat] call is cheap but not free, and gauges only need to be
   current when somebody looks. *)
let set_gc_gauges t =
  let s = Gc.quick_stat () in
  set_gauge t "gc.minor_collections" (float_of_int s.Gc.minor_collections);
  set_gauge t "gc.major_collections" (float_of_int s.Gc.major_collections);
  set_gauge t "gc.compactions" (float_of_int s.Gc.compactions);
  set_gauge t "gc.heap_words" (float_of_int s.Gc.heap_words);
  set_gauge t "gc.top_heap_words" (float_of_int s.Gc.top_heap_words);
  set_gauge t "gc.minor_words" s.Gc.minor_words

let names_unlocked t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])

let names t = with_lock t (fun () -> names_unlocked t)

(* Consistent point-in-time copy of the whole registry, in sorted name
   order. Histograms are deep-copied; this is what cross-domain readers
   (the Prometheus renderer, JSON dumps) iterate. *)
let snapshot t =
  with_lock t (fun () ->
      List.map
        (fun name ->
          let m =
            match Hashtbl.find t.tbl name with
            | Counter r -> Counter { c = r.c }
            | Gauge r -> Gauge { g = r.g }
            | Histogram h -> Histogram (copy_histogram h)
          in
          (name, m))
        (names_unlocked t))

let fold t f init =
  List.fold_left (fun acc (name, m) -> f acc name m) init (snapshot t)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let dump_text ?prefix t =
  let keep name =
    match prefix with
    | None -> true
    | Some p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, m) ->
      if keep name then
        match m with
        | Counter r ->
          Buffer.add_string buf (Printf.sprintf "counter    %-44s %d\n" name r.c)
        | Gauge r ->
          Buffer.add_string buf (Printf.sprintf "gauge      %-44s %g\n" name r.g)
        | Histogram h ->
          if h.h_count = 0 then
            Buffer.add_string buf
              (Printf.sprintf "histogram  %-44s count=0\n" name)
          else
            Buffer.add_string buf
              (Printf.sprintf
                 "histogram  %-44s count=%d sum=%.3f min=%.3f max=%.3f \
                  p50<=%.3f p95<=%.3f p99<=%.3f\n"
                 name h.h_count h.h_sum h.h_min h.h_max (quantile h 0.50)
                 (quantile h 0.95) (quantile h 0.99)))
    (snapshot t);
  Buffer.contents buf

let histogram_to_json h =
  let buckets =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i n ->
              if n = 0 then []
              else
                let le =
                  if i < Array.length h.bounds then
                    Json.Float h.bounds.(i)
                  else Json.String "+inf"
                in
                [ Json.Obj [ ("le", le); ("count", Json.Int n) ] ])
            h.buckets))
  in
  let q p = Json.Float (if h.h_count = 0 then 0. else quantile h p) in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", Json.Float (if h.h_count = 0 then 0. else h.h_min));
      ("max", Json.Float (if h.h_count = 0 then 0. else h.h_max));
      ("p50", q 0.50);
      ("p95", q 0.95);
      ("p99", q 0.99);
      ("buckets", Json.List buckets);
    ]

let to_json t =
  Json.Obj
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | Counter r -> Json.Int r.c
           | Gauge r -> Json.Float r.g
           | Histogram h -> histogram_to_json h ))
       (snapshot t))
