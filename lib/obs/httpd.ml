type request = {
  rq_method : string;
  rq_path : string;
  rq_query : (string * string) list;
}

type response =
  | Fixed of { status : int; content_type : string; body : string }
  | Stream of { content_type : string; write : (string -> bool) -> unit }

type handler = request -> response

(* Generation counter shared by all servers in the process, like the
   executor pool's: a response straggling out of a stopped incarnation can
   always be told apart from the current one. *)
let generations = Atomic.make 0

(* Connections are served by a small pool of persistent worker domains
   rather than a domain per connection: on OCaml 5, spawning a domain is
   a cross-domain synchronisation (milliseconds on a loaded single-core
   box), so per-connection spawn would tax every in-flight query once a
   scraper starts polling. Workers park in [Condition.wait] between
   connections, which costs the running engine nothing. *)
type t = {
  sock : Unix.file_descr;
  t_port : int;
  t_gen : int;
  max_conn : int;  (* cap on in-flight connections: queued + being served *)
  stopping : bool Atomic.t;
  busy : int Atomic.t;  (* workers currently serving a connection *)
  rejected : int Atomic.t;
  qmu : Mutex.t;
  qcond : Condition.t;
  queue : Unix.file_descr Queue.t;  (* accepted, waiting for a worker *)
  mutable workers : unit Domain.t list;
  mutable acceptor : unit Domain.t option;
  mutable stopped : bool;  (* guarded by qmu *)
}

let port t = t.t_port
let generation t = t.t_gen
let rejected t = Atomic.get t.rejected

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                        *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    if n <= 0 then raise End_of_file;
    off := !off + n
  done

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let fixed_response fd status content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n"
       status (status_text status) content_type (String.length body));
  write_all fd body

let stream_header fd content_type =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 200 OK\r\nContent-Type: %s\r\nCache-Control: no-cache\r\n\
        Connection: close\r\n\r\n"
       content_type)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise Exit

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      try
        Buffer.add_char b
          (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
        i := !i + 2
      with Exit -> Buffer.add_char b '%')
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  List.filter_map
    (fun kv ->
      if kv = "" then None
      else
        match String.index_opt kv '=' with
        | None -> Some (percent_decode kv, "")
        | Some i ->
          Some
            ( percent_decode (String.sub kv 0 i),
              percent_decode
                (String.sub kv (i + 1) (String.length kv - i - 1)) ))
    (String.split_on_char '&' q)

let parse_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
    ( percent_decode (String.sub target 0 i),
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

(* Request head only (GET endpoints have no body), capped at 8 KiB. *)
let head_limit = 8192

let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let find_end () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec scan i =
      if i + 3 >= n then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
              && s.[i + 3] = '\n'
      then Some ()
      else scan (i + 1)
    in
    scan 0
  in
  let rec loop () =
    if Buffer.length buf > head_limit then None
    else
      match find_end () with
      | Some () -> Some (Buffer.contents buf)
      | None ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n <= 0 then None
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        end
  in
  try loop () with End_of_file | Unix.Unix_error _ -> None

let parse_request head =
  match String.split_on_char '\r' head with
  | first :: _ -> (
    match String.split_on_char ' ' (String.trim first) with
    | [ meth; target; _protocol ] ->
      let path, query = parse_target target in
      Some
        {
          rq_method = String.uppercase_ascii meth;
          rq_path = path;
          rq_query = query;
        }
    | _ -> None)
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let serve_connection t handler fd =
  (* a stuck or slow-writing client may hold a connection slot for at most
     the socket timeout, never the whole server *)
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
   with Unix.Unix_error _ -> ());
  match read_head fd with
  | None -> (try fixed_response fd 400 "text/plain" "bad request\n" with _ -> ())
  | Some head -> (
    match parse_request head with
    | None ->
      (try fixed_response fd 400 "text/plain" "bad request\n" with _ -> ())
    | Some req when req.rq_method <> "GET" ->
      (try fixed_response fd 405 "text/plain" "method not allowed\n"
       with _ -> ())
    | Some req -> (
      let response =
        try handler req
        with e ->
          Fixed
            {
              status = 500;
              content_type = "text/plain";
              body = Printf.sprintf "internal error: %s\n" (Printexc.to_string e);
            }
      in
      try
        match response with
        | Fixed { status; content_type; body } ->
          fixed_response fd status content_type body
        | Stream { content_type; write } ->
          stream_header fd content_type;
          let alive = ref true in
          let push chunk =
            if Atomic.get t.stopping || not !alive then false
            else
              try
                write_all fd chunk;
                true
              with _ ->
                alive := false;
                false
          in
          write push
      with _ -> () (* client went away mid-response *)))

(* Take the next queued connection, marking the worker busy before the
   queue lock drops so the acceptor's in-flight count (queued + busy)
   never undercounts. Returns [None] when the server is stopping. *)
let next_connection t =
  Mutex.lock t.qmu;
  let rec wait () =
    if Atomic.get t.stopping then begin
      Mutex.unlock t.qmu;
      None
    end
    else
      match Queue.take_opt t.queue with
      | Some fd ->
        Atomic.incr t.busy;
        Mutex.unlock t.qmu;
        Some fd
      | None ->
        Condition.wait t.qcond t.qmu;
        wait ()
  in
  wait ()

let rec worker_loop t handler =
  match next_connection t with
  | None -> ()
  | Some fd ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close fd with _ -> ());
        Atomic.decr t.busy)
      (fun () -> try serve_connection t handler fd with _ -> ());
    worker_loop t handler

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.sock with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        if Atomic.get t.stopping then (try Unix.close fd with _ -> ())
        else
          let enqueued =
            with_lock t.qmu (fun () ->
                if Queue.length t.queue + Atomic.get t.busy >= t.max_conn then
                  false
                else begin
                  Queue.push fd t.queue;
                  Condition.signal t.qcond;
                  true
                end)
          in
          if not enqueued then begin
            Atomic.incr t.rejected;
            (try fixed_response fd 503 "text/plain" "too many connections\n"
             with _ -> ());
            try Unix.close fd with _ -> ()
          end)
    | exception Unix.Unix_error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(max_connections = 8) ~port handler =
  (* a client dropping mid-stream must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("socket: " ^ Unix.error_message e)
  | sock -> (
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen sock 16;
      let actual_port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let t =
        {
          sock;
          t_port = actual_port;
          t_gen = Atomic.fetch_and_add generations 1 + 1;
          max_conn = max_connections;
          stopping = Atomic.make false;
          busy = Atomic.make 0;
          rejected = Atomic.make 0;
          qmu = Mutex.create ();
          qcond = Condition.create ();
          queue = Queue.create ();
          workers = [];
          acceptor = None;
          stopped = false;
        }
      in
      (* enough workers to keep a long-lived stream from starving the
         scrape endpoints, without parking one domain per connection slot
         on small machines (every live domain adds to the cost of each
         stop-the-world barrier) *)
      let worker_count =
        max 1 (min max_connections (max 2 (Domain.recommended_domain_count ())))
      in
      t.workers <-
        List.init worker_count (fun _ ->
            Domain.spawn (fun () -> worker_loop t handler));
      t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t));
      Ok t
    with Unix.Unix_error (e, _, ctx) ->
      (try Unix.close sock with _ -> ());
      Error (Printf.sprintf "%s: %s" ctx (Unix.error_message e)))

let stop t =
  let first =
    with_lock t.qmu (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if first then begin
    Atomic.set t.stopping true;
    (* the accept loop notices the flag within its select timeout *)
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    (try Unix.close t.sock with _ -> ());
    (* wake parked workers; in-flight streams see [stopping] on their next
       write and return *)
    with_lock t.qmu (fun () -> Condition.broadcast t.qcond);
    List.iter Domain.join t.workers;
    t.workers <- [];
    (* connections accepted but never picked up get closed unanswered *)
    with_lock t.qmu (fun () ->
        Queue.iter (fun fd -> try Unix.close fd with _ -> ()) t.queue;
        Queue.clear t.queue)
  end

(* ------------------------------------------------------------------ *)
(* Minimal loopback client                                             *)
(* ------------------------------------------------------------------ *)

let get ?(timeout_s = 10.) ~port path =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("socket: " ^ Unix.error_message e)
  | fd -> (
    let finally () = try Unix.close fd with _ -> () in
    try
      Fun.protect ~finally (fun () ->
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
           with Unix.Unix_error _ -> ());
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          write_all fd
            (Printf.sprintf
               "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
               path);
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            let n = Unix.read fd chunk 0 (Bytes.length chunk) in
            if n > 0 then begin
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
            end
          in
          (try drain () with End_of_file -> ());
          let raw = Buffer.contents buf in
          let sep =
            let n = String.length raw in
            let rec scan i =
              if i + 3 >= n then None
              else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
                      && raw.[i + 3] = '\n'
              then Some i
              else scan (i + 1)
            in
            scan 0
          in
          match sep with
          | None -> Error "malformed response (no header terminator)"
          | Some i -> (
            let head = String.sub raw 0 i in
            let body =
              String.sub raw (i + 4) (String.length raw - i - 4)
            in
            match String.split_on_char ' ' head with
            | _protocol :: code :: _ -> (
              match int_of_string_opt code with
              | Some status -> Ok (status, body)
              | None -> Error ("bad status line: " ^ head))
            | _ -> Error ("bad status line: " ^ head)))
    with
    | Unix.Unix_error (e, _, ctx) ->
      Error (Printf.sprintf "%s: %s" ctx (Unix.error_message e))
    | e -> Error (Printexc.to_string e))
