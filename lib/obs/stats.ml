(* Statement-statistics accumulator — the pg_stat_statements analog.

   Statements are grouped by fingerprint (normalized SQL text, computed by
   the caller so this module stays independent of the SQL frontend); base
   relations are grouped by name. The engine records into an accumulator
   it owns and exposes the contents back out as the perm_stat_statements /
   perm_stat_relations system views. *)

type statement_stat = {
  st_fingerprint : string;
  st_query : string;  (* first raw SQL text seen for this fingerprint *)
  mutable st_calls : int;
  mutable st_errors : int;
  mutable st_rows : int;
  mutable st_total_ms : float;
  mutable st_max_ms : float;
  mutable st_phase_ms : (string * float) list;  (* unordered accumulation *)
  mutable st_rule_counts : (string * int) list;
  st_provenance : bool;
}

type relation_stat = {
  rel_name : string;
  mutable rel_scans : int;
  mutable rel_rows : int;
}

type t = {
  stmts : (string, statement_stat) Hashtbl.t;
  rels : (string, relation_stat) Hashtbl.t;
}

let create () = { stmts = Hashtbl.create 32; rels = Hashtbl.create 16 }

let reset t =
  Hashtbl.reset t.stmts;
  Hashtbl.reset t.rels

let bump assoc key by =
  let rec go = function
    | [] -> [ (key, by) ]
    | (k, v) :: rest when String.equal k key -> (k, v +. by) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let bump_int assoc key by =
  let rec go = function
    | [] -> [ (key, by) ]
    | (k, v) :: rest when String.equal k key -> (k, v + by) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let record_statement t ~fingerprint ~sql ~ms ~phases ~rules ~provenance ~rows
    ~error =
  let st =
    match Hashtbl.find_opt t.stmts fingerprint with
    | Some st -> st
    | None ->
      let st =
        {
          st_fingerprint = fingerprint;
          st_query = sql;
          st_calls = 0;
          st_errors = 0;
          st_rows = 0;
          st_total_ms = 0.;
          st_max_ms = 0.;
          st_phase_ms = [];
          st_rule_counts = [];
          st_provenance = provenance;
        }
      in
      Hashtbl.replace t.stmts fingerprint st;
      st
  in
  st.st_calls <- st.st_calls + 1;
  if error then st.st_errors <- st.st_errors + 1;
  st.st_rows <- st.st_rows + rows;
  st.st_total_ms <- st.st_total_ms +. ms;
  if ms > st.st_max_ms then st.st_max_ms <- ms;
  List.iter
    (fun (phase, pms) -> st.st_phase_ms <- bump st.st_phase_ms phase pms)
    phases;
  List.iter
    (fun (rule, count) ->
      st.st_rule_counts <- bump_int st.st_rule_counts rule count)
    rules

let record_scan t ~relation ~rows =
  let rel =
    match Hashtbl.find_opt t.rels relation with
    | Some rel -> rel
    | None ->
      let rel = { rel_name = relation; rel_scans = 0; rel_rows = 0 } in
      Hashtbl.replace t.rels relation rel;
      rel
  in
  rel.rel_scans <- rel.rel_scans + 1;
  rel.rel_rows <- rel.rel_rows + rows

let phase_ms st name =
  match List.assoc_opt name st.st_phase_ms with Some v -> v | None -> 0.

let rule_firings st =
  List.fold_left (fun acc (_, n) -> acc + n) 0 st.st_rule_counts

let mean_ms st =
  if st.st_calls = 0 then 0. else st.st_total_ms /. float_of_int st.st_calls

(* Costliest first; ties broken by fingerprint for deterministic output. *)
let statements t =
  Hashtbl.fold (fun _ st acc -> st :: acc) t.stmts []
  |> List.sort (fun a b ->
         match compare b.st_total_ms a.st_total_ms with
         | 0 -> compare a.st_fingerprint b.st_fingerprint
         | c -> c)

let relations t =
  Hashtbl.fold (fun _ rel acc -> rel :: acc) t.rels []
  |> List.sort (fun a b -> compare a.rel_name b.rel_name)
