let schema_tag = "perm.forensics/1"

let classes =
  [
    "error"; "timeout"; "cancelled"; "resource_exhausted"; "fault";
    "regression"; "degraded"; "wal_replay";
  ]

let ( let* ) = Result.bind

(* Accessor helpers that produce positioned error messages: every failure
   names the JSON path that violated the contract. *)

let field path key json =
  match Json.member key json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" path key)

let str path json =
  match json with
  | Json.String s -> Ok s
  | _ -> Error (path ^ ": expected a string")

let int_ path json =
  match json with
  | Json.Int n -> Ok n
  | _ -> Error (path ^ ": expected an integer")

let num path json =
  match Json.to_float_opt json with
  | Some f -> Ok f
  | None -> Error (path ^ ": expected a number")

let bool_ path json =
  match json with
  | Json.Bool b -> Ok b
  | _ -> Error (path ^ ": expected a boolean")

let obj path json =
  match json with
  | Json.Obj kvs -> Ok kvs
  | _ -> Error (path ^ ": expected an object")

let list_ path json =
  match Json.to_list_opt json with
  | Some l -> Ok l
  | None -> Error (path ^ ": expected a list")

let str_field path key json = Result.bind (field path key json) (str (path ^ "." ^ key))
let int_field path key json = Result.bind (field path key json) (int_ (path ^ "." ^ key))
let num_field path key json = Result.bind (field path key json) (num (path ^ "." ^ key))
let bool_field path key json = Result.bind (field path key json) (bool_ (path ^ "." ^ key))

(* A map of name -> number (the phases and metrics_delta sections). *)
let num_map path json =
  let* kvs = obj path json in
  let rec go = function
    | [] -> Ok ()
    | (k, v) :: rest ->
      let* _ = num (Printf.sprintf "%s.%s" path k) v in
      go rest
  in
  go kvs

let check_each path items f =
  let rec go i = function
    | [] -> Ok ()
    | item :: rest ->
      let* () = f (Printf.sprintf "%s[%d]" path i) item in
      go (i + 1) rest
  in
  go 0 items

let check_plan json =
  let path = "plan" in
  let* _ = str_field path "plan_hash" json in
  let* _ = num_field path "est_rows" json in
  let* nodes = Result.bind (field path "nodes" json) (list_ (path ^ ".nodes")) in
  check_each (path ^ ".nodes") nodes (fun p node ->
      let* _ = int_field p "node" node in
      let* _ = str_field p "operator" node in
      let* _ = num_field p "est_rows" node in
      let* _ = int_field p "act_rows" node in
      let* _ = num_field p "self_ms" node in
      let* _ = int_field p "loops" node in
      Ok ())

let check_events json =
  let* events = list_ "events" json in
  check_each "events" events (fun p ev ->
      let* _ = int_field p "seq" ev in
      let* _ = num_field p "ts" ev in
      let* _ = str_field p "kind" ev in
      Ok ())

let check_replay path json =
  let* _ = bool_field path "snapshot" json in
  let* _ = int_field path "records" json in
  let* _ = int_field path "committed" json in
  let* _ = int_field path "discarded" json in
  let* _ = int_field path "skipped" json in
  let* _ = int_field path "truncated_bytes" json in
  Ok ()

(* In-memory sessions have no WAL: null is a legal section value. *)
let check_wal json =
  match json with
  | Json.Null -> Ok ()
  | _ ->
    let path = "wal" in
    let* _ = str_field path "dir" json in
    let* _ = int_field path "bytes" json in
    let* _ = int_field path "records" json in
    let* _ = int_field path "last_lsn" json in
    let* _ = int_field path "fsyncs" json in
    let* _ = bool_field path "fsync_on" json in
    let* _ = bool_field path "dirty" json in
    let* _ = int_field path "epoch" json in
    let* replay = field path "replay" json in
    check_replay "wal.replay" replay

let check_spill json =
  let path = "spill" in
  let rec go = function
    | [] -> Ok ()
    | key :: rest ->
      let* _ = int_field path key json in
      go rest
  in
  go [ "spills"; "runs"; "chunks"; "rows"; "bytes"; "fallbacks" ]

let check_settings json =
  let path = "settings" in
  let* _ = int_field path "parallel" json in
  let* _ = int_field path "parallel_threshold" json in
  let* _ = int_field path "morsel_rows" json in
  let* _ = int_field path "batch_rows" json in
  let* _ = bool_field path "vectorized" json in
  let* _ = num_field path "timeout_ms" json in
  let* _ = int_field path "row_limit" json in
  let* _ = int_field path "tuple_budget" json in
  let* _ = bool_field path "spill" json in
  let* _ = bool_field path "wal_fsync" json in
  Ok ()

let validate json =
  let path = "bundle" in
  let* tag = str_field path "schema" json in
  let* () =
    if tag = schema_tag then Ok ()
    else Error (Printf.sprintf "bundle.schema: expected %S, got %S" schema_tag tag)
  in
  let* _ = int_field path "id" json in
  let* _ = num_field path "ts" json in
  let* cls = str_field path "class" json in
  let* () =
    if List.mem cls classes then Ok ()
    else Error (Printf.sprintf "bundle.class: unknown class %S" cls)
  in
  let* _ = str_field path "detail" json in
  let* _ = str_field path "sql" json in
  let* _ = str_field path "fingerprint" json in
  let* () = Result.bind (field path "plan" json) check_plan in
  let* () = Result.bind (field path "phases" json) (num_map "phases") in
  let* () =
    Result.bind (field path "metrics_delta" json) (num_map "metrics_delta")
  in
  let* () = Result.bind (field path "events" json) check_events in
  let* () = Result.bind (field path "wal" json) check_wal in
  let* () = Result.bind (field path "spill" json) check_spill in
  let* () = Result.bind (field path "settings" json) check_settings in
  Ok cls

let validate_string text = Result.bind (Json.parse text) validate
