(** A metrics registry: named counters, gauges and latency histograms.

    Names are flat dotted strings ([engine.statements],
    [engine.phase.execute.ms], [executor.rows.join]). Metrics are created
    on first use with the kind implied by the operation; using a name with
    the wrong kind raises [Invalid_argument] (a programming error, not a
    runtime condition).

    All dumps iterate names in sorted order, so output is deterministic for
    a given sequence of observations.

    The registry is thread-safe: every operation takes an internal mutex,
    so the HTTP observability plane can read ([snapshot], [fold],
    [dump_text], [to_json]) from a different domain than the one recording
    observations. [histogram] and [snapshot] return deep copies, never
    live internal state. *)

type t

type histogram = private {
  bounds : float array;  (** bucket upper bounds (ms), ascending *)
  buckets : int array;  (** per-bucket counts; last entry is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | Counter of { mutable c : int }
  | Gauge of { mutable g : float }
  | Histogram of histogram

val create : unit -> t
val reset : t -> unit

val incr : ?by:int -> t -> string -> unit
val set_gauge : t -> string -> float -> unit

val observe : ?bounds:float array -> t -> string -> float -> unit
(** Record one histogram observation (milliseconds by convention).
    [bounds] is only consulted when the histogram is first created. *)

val declare_histogram : ?bounds:float array -> t -> string -> unit
(** Pre-register an empty histogram, so dumps (and quantile queries) can
    see a metric before its first observation. No-op if it already
    exists; raises [Invalid_argument] if the name is bound to another
    kind. *)

val counter : t -> string -> int
(** Current counter value; [0] when the counter was never incremented. *)

val gauge : t -> string -> float option

val histogram : t -> string -> histogram option
(** A deep copy of the named histogram, safe to inspect outside the
    registry lock. *)

val quantile : histogram -> float -> float
(** Bucket-resolution quantile estimate (an upper bound, clamped to the
    observed maximum); [nan] on an empty histogram. *)

val names : t -> string list
(** All registered metric names, sorted. *)

val snapshot : t -> (string * metric) list
(** Consistent point-in-time copy of the registry in sorted name order.
    Histograms are deep copies; mutating the result does not touch the
    registry. *)

val fold : t -> ('a -> string -> metric -> 'a) -> 'a -> 'a
(** Fold over a [snapshot] in sorted name order. *)

val default_bounds : float array

val set_gc_gauges : t -> unit
(** Refresh the OCaml runtime gauges ([gc.minor_collections],
    [gc.major_collections], [gc.compactions], [gc.heap_words],
    [gc.top_heap_words], [gc.minor_words]) from [Gc.quick_stat]. Called at
    dump time (metrics dumps, the [perm_metrics] system view, bench JSON)
    rather than per statement. *)

val dump_text : ?prefix:string -> t -> string
(** One line per metric, sorted by name. With [prefix], only metrics whose
    name starts with that prefix (e.g. ["executor.par."]). *)

val to_json : t -> Json.t
