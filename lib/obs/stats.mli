(** Statement-statistics accumulator — the [pg_stat_statements] analog.

    Statements are aggregated by fingerprint (normalized SQL text supplied
    by the caller, so this module has no dependency on the SQL frontend);
    base relations by name. The engine records into an accumulator it owns
    and serves the contents back as the [perm_stat_statements] and
    [perm_stat_relations] system views. *)

type statement_stat = private {
  st_fingerprint : string;
  st_query : string;  (** first raw SQL text seen for this fingerprint *)
  mutable st_calls : int;
  mutable st_errors : int;
  mutable st_rows : int;
  mutable st_total_ms : float;
  mutable st_max_ms : float;
  mutable st_phase_ms : (string * float) list;
  mutable st_rule_counts : (string * int) list;
  st_provenance : bool;
}

type relation_stat = private {
  rel_name : string;
  mutable rel_scans : int;
  mutable rel_rows : int;
}

type t

val create : unit -> t
val reset : t -> unit

val record_statement :
  t ->
  fingerprint:string ->
  sql:string ->
  ms:float ->
  phases:(string * float) list ->
  rules:(string * int) list ->
  provenance:bool ->
  rows:int ->
  error:bool ->
  unit
(** Fold one completed statement into the accumulator. [phases] are
    per-phase durations (analyze/rewrite/optimize/execute), [rules] the
    rewrite-rule firing counts for this statement. *)

val record_scan : t -> relation:string -> rows:int -> unit
(** Fold one base-relation scan (from executor instrumentation). *)

val phase_ms : statement_stat -> string -> float
(** Accumulated milliseconds for a named phase; [0.] when never seen. *)

val rule_firings : statement_stat -> int
(** Total rewrite-rule firings across all rules. *)

val mean_ms : statement_stat -> float

val statements : t -> statement_stat list
(** Sorted by total time descending, then fingerprint. *)

val relations : t -> relation_stat list
(** Sorted by relation name. *)
