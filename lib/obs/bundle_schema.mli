(** Schema validation for forensics bundles.

    A bundle is one self-contained JSON document the engine snapshots when
    it detects an anomaly. This module is the single source of truth for
    the document's required shape — [bin/bundle_lint.exe] (the CI gate,
    prom_lint-style) and the test suite both validate through it, so the
    emitting code in [Engine] cannot drift from the checked contract
    unnoticed.

    Checked: the ["perm.forensics/1"] schema tag; identity fields (id, ts,
    class, detail); the anomaly class being one of the known eight; the
    statement section (sql, fingerprint); the plan section (plan hash,
    estimate, per-node est/act rows); phase and metrics-delta maps; the
    recorder-event tail (each event typed with seq/ts/kind); the WAL
    section (status + replay counters, or null for in-memory sessions);
    the spill gauges; and the session-settings section. *)

val classes : string list
(** The eight anomaly classes a bundle may carry: ["error"], ["timeout"],
    ["cancelled"], ["resource_exhausted"], ["fault"], ["regression"],
    ["degraded"], ["wal_replay"]. *)

val schema_tag : string
(** ["perm.forensics/1"] — the required value of the ["schema"] field. *)

val validate : Json.t -> (string, string) result
(** [Ok class] when the document is a well-formed bundle; [Error msg]
    pinpointing the first violation otherwise. *)

val validate_string : string -> (string, string) result
(** Parse then {!validate}; parse failures surface as [Error]. *)
