(** Retained plan-node and worker-domain profiles.

    The accumulator behind the [perm_stat_plans] and [perm_stat_workers]
    system views: per-(fingerprint, node id) operator cardinality/time
    profiles fed by the executor's plan-node profiler, and per-domain
    morsel/busy/idle/skew counters fed by the worker pool. Keys are plain
    strings and ints so the module has no dependency on the algebra. *)

type plan_node = {
  pn_fingerprint : string;  (** statement fingerprint the plan belongs to *)
  pn_node : int;  (** stable pre-order node id within the optimized plan *)
  pn_operator : string;  (** [Plan.operator_name] of the node *)
  mutable pn_est_rows : float;  (** planner estimate (latest execution) *)
  mutable pn_act_rows : int;  (** actual rows out, summed over executions *)
  mutable pn_self_ms : float;
      (** self wall-time, exclusive of children (serial profiler only;
          0 for rows profiled on the parallel path) *)
  mutable pn_loops : int;  (** operator (re)invocations *)
  mutable pn_peak_bytes : int;
      (** peak batch memory estimate: max rows streamed through one
          invocation times an estimated row width *)
}

type worker = {
  wk_domain : int;  (** 0 is the calling domain *)
  mutable wk_morsels : int;
  mutable wk_busy_ms : float;
  mutable wk_idle_ms : float;
  mutable wk_rows : int;
  mutable wk_max_skew : float;
      (** max over batches of this worker's busy time over the batch's
          mean busy time; 1.0 = perfectly balanced *)
}

type t

val create : unit -> t
val reset : t -> unit

val record_plan_node :
  t ->
  fingerprint:string ->
  node:int ->
  operator:string ->
  est_rows:float ->
  act_rows:int ->
  self_ms:float ->
  loops:int ->
  peak_bytes:int ->
  unit

val record_worker :
  t ->
  domain:int ->
  morsels:int ->
  busy_ms:float ->
  idle_ms:float ->
  rows:int ->
  skew:float ->
  unit

val plan_nodes : t -> plan_node list
(** Sorted by fingerprint, then node id (tree pre-order). *)

val workers : t -> worker list
(** Sorted by domain index. *)
