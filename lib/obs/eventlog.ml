(* JSON-lines structured event log with a slow-query threshold — the
   log_min_duration_statement analog. Disabled until a sink file is
   opened; each event is one compact JSON object per line, flushed
   immediately so the log is tail-able while a session runs. *)

type t = {
  mutable sink : (string * out_channel) option;  (* path, channel *)
  mutable min_ms : float;  (* only events at least this slow are logged *)
}

let create () = { sink = None; min_ms = 0. }

let close t =
  match t.sink with
  | None -> ()
  | Some (_, oc) ->
    close_out oc;
    t.sink <- None

let open_file t path =
  close t;
  let oc = open_out path in
  t.sink <- Some (path, oc)

let set_min_ms t ms = t.min_ms <- Float.max 0. ms
let min_ms t = t.min_ms
let enabled t = Option.is_some t.sink
let path t = Option.map fst t.sink

let log t json =
  match t.sink with
  | None -> ()
  | Some (_, oc) ->
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
