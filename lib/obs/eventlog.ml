(* JSON-lines structured event log with a slow-query threshold — the
   log_min_duration_statement analog.

   Events are always retained in a bounded in-memory ring (so the recent
   slow-query log is queryable without configuring a sink), and also
   written to a sink file when one is open; each sink event is one
   compact JSON object per line, flushed immediately so the log is
   tail-able while a session runs. When the ring is full the oldest
   event is overwritten and a drop counter advances — the log can never
   grow without bound. *)

type t = {
  mutable sink : (string * out_channel) option;  (* path, channel *)
  mutable min_ms : float;  (* only events at least this slow are logged *)
  mutable ring : Json.t option array;
  mutable rstart : int;  (* index of the oldest retained event *)
  mutable rlen : int;
  mutable dropped : int;  (* events evicted from the ring *)
  mutable total : int;  (* events ever logged (monotone, for tailing) *)
}

let default_capacity = 256

let create () =
  {
    sink = None;
    min_ms = 0.;
    ring = Array.make default_capacity None;
    rstart = 0;
    rlen = 0;
    dropped = 0;
    total = 0;
  }

let close t =
  match t.sink with
  | None -> ()
  | Some (_, oc) ->
    close_out oc;
    t.sink <- None

let open_file t path =
  close t;
  let oc = open_out path in
  t.sink <- Some (path, oc)

let set_min_ms t ms = t.min_ms <- Float.max 0. ms
let min_ms t = t.min_ms
let enabled t = Option.is_some t.sink
let path t = Option.map fst t.sink
let capacity t = Array.length t.ring
let dropped t = t.dropped
let logged t = t.total

let recent t =
  List.init t.rlen (fun i ->
      match t.ring.((t.rstart + i) mod Array.length t.ring) with
      | Some e -> e
      | None -> Json.Null)

let set_capacity t cap =
  let cap = max 1 cap in
  if cap <> Array.length t.ring then begin
    let kept = min t.rlen cap in
    let old = recent t in
    let dropped_now = t.rlen - kept in
    let ring = Array.make cap None in
    List.iteri
      (fun i e -> if i >= dropped_now then ring.(i - dropped_now) <- Some e)
      old;
    t.ring <- ring;
    t.rstart <- 0;
    t.rlen <- kept;
    t.dropped <- t.dropped + dropped_now
  end

(* Tail of the ring newer than global sequence number [seq] (events are
   numbered from 0 in logging order). Returns the new cursor — i.e.
   [logged t] — and the events, oldest first; events that fell out of the
   ring before being read are simply absent (the caller can detect the gap
   by comparing cursors against the list length). *)
let since t seq =
  let oldest = t.total - t.rlen in
  let from = max seq oldest in
  let events =
    List.init (t.total - from) (fun i ->
        let ring_idx = from - oldest + i in
        match t.ring.((t.rstart + ring_idx) mod Array.length t.ring) with
        | Some e -> e
        | None -> Json.Null)
  in
  (t.total, events)

let log t json =
  t.total <- t.total + 1;
  let cap = Array.length t.ring in
  if t.rlen = cap then begin
    t.ring.(t.rstart) <- Some json;
    t.rstart <- (t.rstart + 1) mod cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.ring.((t.rstart + t.rlen) mod cap) <- Some json;
    t.rlen <- t.rlen + 1
  end;
  match t.sink with
  | None -> ()
  | Some (_, oc) ->
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
