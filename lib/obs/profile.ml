(* Retained plan-node and worker-domain profiles — the accumulator behind
   the perm_stat_plans and perm_stat_workers system views.

   Plan profiles are keyed by (statement fingerprint, node id): the engine
   assigns stable pre-order ids over the optimized plan, so repeated
   executions of the same statement shape fold into one row per operator.
   Worker profiles are keyed by domain index and accumulate across every
   parallel batch the session ran. Both stores are string/int keyed so
   this module stays independent of the algebra. *)

type plan_node = {
  pn_fingerprint : string;
  pn_node : int;  (* stable pre-order id within the optimized plan *)
  pn_operator : string;
  mutable pn_est_rows : float;  (* planner estimate, latest plan wins *)
  mutable pn_act_rows : int;  (* actual rows out, summed over executions *)
  mutable pn_self_ms : float;  (* self wall-time (exclusive of children) *)
  mutable pn_loops : int;  (* operator (re)invocations *)
  mutable pn_peak_bytes : int;  (* peak batch memory estimate, max *)
}

type worker = {
  wk_domain : int;  (* 0 = the calling domain *)
  mutable wk_morsels : int;
  mutable wk_busy_ms : float;
  mutable wk_idle_ms : float;
  mutable wk_rows : int;
  mutable wk_max_skew : float;
      (* max over batches of busy_ms / mean busy_ms of that batch *)
}

type t = {
  plans : (string * int, plan_node) Hashtbl.t;
  workers : (int, worker) Hashtbl.t;
}

let create () = { plans = Hashtbl.create 64; workers = Hashtbl.create 8 }

let reset t =
  Hashtbl.reset t.plans;
  Hashtbl.reset t.workers

let record_plan_node t ~fingerprint ~node ~operator ~est_rows ~act_rows
    ~self_ms ~loops ~peak_bytes =
  let key = (fingerprint, node) in
  let pn =
    match Hashtbl.find_opt t.plans key with
    | Some pn -> pn
    | None ->
      let pn =
        {
          pn_fingerprint = fingerprint;
          pn_node = node;
          pn_operator = operator;
          pn_est_rows = est_rows;
          pn_act_rows = 0;
          pn_self_ms = 0.;
          pn_loops = 0;
          pn_peak_bytes = 0;
        }
      in
      Hashtbl.replace t.plans key pn;
      pn
  in
  pn.pn_est_rows <- est_rows;
  pn.pn_act_rows <- pn.pn_act_rows + act_rows;
  pn.pn_self_ms <- pn.pn_self_ms +. self_ms;
  pn.pn_loops <- pn.pn_loops + loops;
  if peak_bytes > pn.pn_peak_bytes then pn.pn_peak_bytes <- peak_bytes

let record_worker t ~domain ~morsels ~busy_ms ~idle_ms ~rows ~skew =
  let wk =
    match Hashtbl.find_opt t.workers domain with
    | Some wk -> wk
    | None ->
      let wk =
        {
          wk_domain = domain;
          wk_morsels = 0;
          wk_busy_ms = 0.;
          wk_idle_ms = 0.;
          wk_rows = 0;
          wk_max_skew = 0.;
        }
      in
      Hashtbl.replace t.workers domain wk;
      wk
  in
  wk.wk_morsels <- wk.wk_morsels + morsels;
  wk.wk_busy_ms <- wk.wk_busy_ms +. busy_ms;
  wk.wk_idle_ms <- wk.wk_idle_ms +. idle_ms;
  wk.wk_rows <- wk.wk_rows + rows;
  if skew > wk.wk_max_skew then wk.wk_max_skew <- skew

(* Fingerprint order, then tree order — the natural reading order of the
   perm_stat_plans view. *)
let plan_nodes t =
  Hashtbl.fold (fun _ pn acc -> pn :: acc) t.plans []
  |> List.sort (fun a b ->
         match compare a.pn_fingerprint b.pn_fingerprint with
         | 0 -> compare a.pn_node b.pn_node
         | c -> c)

let workers t =
  Hashtbl.fold (fun _ wk acc -> wk :: acc) t.workers []
  |> List.sort (fun a b -> compare a.wk_domain b.wk_domain)
