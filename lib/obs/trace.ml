let now () = Unix.gettimeofday ()

type span = {
  sp_name : string;
  sp_start : float;  (* Unix.gettimeofday seconds *)
  mutable sp_dur : float;  (* seconds; negative while the span is open *)
  mutable sp_children : span list;  (* reverse completion order *)
  mutable sp_attrs : (string * string) list;  (* reverse order *)
  mutable sp_lane : int;  (* Chrome-trace tid; 1 = the engine lane *)
}

let engine_lane = 1
let worker_lane i = i + 2

let start name =
  {
    sp_name = name;
    sp_start = now ();
    sp_dur = -1.;
    sp_children = [];
    sp_attrs = [];
    sp_lane = engine_lane;
  }

let finish sp = if sp.sp_dur < 0. then sp.sp_dur <- now () -. sp.sp_start

let attach parent child = parent.sp_children <- child :: parent.sp_children

let child parent name =
  let sp = start name in
  attach parent sp;
  sp

let annotate sp key value = sp.sp_attrs <- (key, value) :: sp.sp_attrs

let set_lane sp lane = sp.sp_lane <- lane
let lane sp = sp.sp_lane

(* A pre-measured interval (e.g. a morsel slice recorded by a worker
   domain): attached finished, on the given lane. *)
let add_slice parent name ~start_s ~dur_s ~lane attrs =
  let sp =
    {
      sp_name = name;
      sp_start = start_s;
      sp_dur = Float.max 0. dur_s;
      sp_children = [];
      sp_attrs = List.rev attrs;
      sp_lane = lane;
    }
  in
  attach parent sp;
  sp

let timed parent name f =
  let sp = child parent name in
  Fun.protect ~finally:(fun () -> finish sp) f

let duration_ms sp = (if sp.sp_dur < 0. then now () -. sp.sp_start else sp.sp_dur) *. 1000.
let start_s sp = sp.sp_start

let children sp = List.rev sp.sp_children
let attrs sp = List.rev sp.sp_attrs
let name sp = sp.sp_name

let find sp n =
  List.find_opt (fun c -> String.equal c.sp_name n) (children sp)

let rec iter f sp =
  f sp;
  List.iter (iter f) (children sp)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_string sp =
  let buf = Buffer.create 256 in
  let total = duration_ms sp in
  let rec go indent s =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    let d = duration_ms s in
    Buffer.add_string buf
      (Printf.sprintf "%-*s %8.3f ms" (max 1 (28 - (indent * 2))) s.sp_name d);
    if total > 0. then
      Buffer.add_string buf (Printf.sprintf "  (%5.1f%%)" (100. *. d /. total));
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=%s" k v))
      (attrs s);
    Buffer.add_char buf '\n';
    List.iter (go (indent + 1)) (children s)
  in
  go 0 sp;
  Buffer.contents buf

let rec to_json sp =
  Json.Obj
    ([
       ("name", Json.String sp.sp_name);
       ("ms", Json.Float (duration_ms sp));
     ]
    @ (match attrs sp with
      | [] -> []
      | a ->
        [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) a)) ])
    @
    match children sp with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json cs)) ])

(* Chrome trace-event format (the about://tracing / Perfetto JSON array
   flavor): one "X" (complete) event per span, timestamps in microseconds
   relative to the earliest root so the viewer opens near t=0. Each span
   renders on its own lane (tid): lane 1 is the engine's statement
   pipeline, lanes 2+ are worker domains carrying morsel slices, so
   parallel fan-out shows up as stacked per-worker tracks. A thread_name
   metadata event labels every lane present. *)
let to_chrome_json roots =
  let epoch =
    List.fold_left
      (fun acc sp -> Float.min acc sp.sp_start)
      Float.infinity roots
  in
  let epoch = if Float.is_finite epoch then epoch else 0. in
  let events = ref [] in
  let lanes = ref [] in
  let emit sp =
    if not (List.mem sp.sp_lane !lanes) then lanes := sp.sp_lane :: !lanes;
    let args =
      match attrs sp with
      | [] -> []
      | a ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) a)) ]
    in
    events :=
      Json.Obj
        ([
           ("name", Json.String sp.sp_name);
           ("ph", Json.String "X");
           ("ts", Json.Float ((sp.sp_start -. epoch) *. 1e6));
           ("dur", Json.Float (duration_ms sp *. 1e3));
           ("pid", Json.Int 1);
           ("tid", Json.Int sp.sp_lane);
         ]
        @ args)
      :: !events
  in
  List.iter (iter emit) roots;
  let lane_meta =
    List.map
      (fun lane ->
        let label =
          if lane = engine_lane then "engine"
          else Printf.sprintf "worker %d" (lane - 2)
        in
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int lane);
            ("args", Json.Obj [ ("name", Json.String label) ]);
          ])
      (List.sort compare !lanes)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (lane_meta @ List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]
