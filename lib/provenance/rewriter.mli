(** The Perm provenance rewriter (paper §2.2, Fig. 3).

    Transforms a plan containing SQL-PLE markers into a plain plan: every
    [Plan.Prov] marker is replaced by a query computing the marked
    subquery's provenance — the original result attributes plus one column
    per base-relation attribute, NULL where a relation did not contribute
    (Figure 2). [Baserel] and [External] markers are consumed in the
    process; a marker-free plan is returned unchanged (modulo nested marker
    elimination), so the engine can run this pass unconditionally.

    Per-operator rules (P is the provenance attribute list of the rewritten
    input, [+] the rewrite):

    - base relation access: duplicate all attributes,
      [R+ = Project_{A, A->P}(R)];
    - projection: [Project_A(T)+ = Project_{A,P}(T+)];
    - selection: [Filter_c(T)+ = Filter_c(T+)];
    - join: [T1 x_c T2 -> T1+ x_c T2+] with [P = P1 @ P2]; outer joins keep
      their kind so the missing side's provenance NULL-pads; semi joins
      become inner joins (one output row per witness — the replication of
      §2.1); anti joins keep an unrewritten right side (absence has no
      witness tuples);
    - aggregation: two strategies — {e Join} rejoins the original aggregate
      with the rewritten input on null-safe group-key equality; {e Lateral}
      re-evaluates the rewritten input per group (an [Apply]). The paper's
      "heuristic and cost-based solution for choosing the best rewrite
      strategy" is {!strategy_mode};
    - duplicate elimination / LIMIT: rejoin the original operator's output
      with the (renamed) rewritten input on null-safe equality of all
      columns;
    - set operations: union-all NULL-pads each branch's missing provenance
      columns (Figure 2's shape); distinct union and intersection rejoin
      the original operator result with each rewritten branch; difference
      propagates only left-branch provenance (the right side contributes no
      witness tuples);
    - [BASERELATION]: the subtree is not rewritten — its own output is
      duplicated as its provenance (§2.4);
    - external provenance: declared attributes are passed through untouched
      (§2.2: the rules are unaware of how their input's provenance
      attributes were produced);
    - nested [SELECT PROVENANCE]: rewritten in place; its provenance
      columns propagate to the enclosing computation. *)

type agg_strategy = Agg_join | Agg_lateral

type strategy_mode =
  | Fixed of agg_strategy
  | Heuristic  (** Perm's default rule of thumb: always the join rewrite *)
  | Cost_based of (Perm_algebra.Plan.t -> float)
      (** builds both candidates and keeps the cheaper one according to the
          supplied cost oracle (the engine passes the planner's model) *)

type config = { agg_mode : strategy_mode }

val default_config : config
(** [{ agg_mode = Heuristic }] *)

type report = {
  agg_choices : agg_strategy list;
      (** chosen strategy per rewritten aggregate, outermost first *)
  rewritten_markers : int;  (** number of [Prov] markers expanded *)
  rule_counts : (string * int) list;
      (** how often each rewrite rule fired, sorted by rule name — e.g.
          [("base_relation", 2); ("join", 1)]; aggregate rewrites appear as
          [aggregate_join] / [aggregate_lateral] per chosen strategy. The
          engine republishes these as [rewriter.rule.<name>] counters. *)
}

exception Rewrite_error of string
(** Internal invariant violation (binding/source mismatch); a bug, not a
    user error. *)

val rewrite : ?config:config -> Perm_algebra.Plan.t -> Perm_algebra.Plan.t * report
