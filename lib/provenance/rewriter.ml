module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Value = Perm_value.Value

type agg_strategy = Agg_join | Agg_lateral

type strategy_mode =
  | Fixed of agg_strategy
  | Heuristic
  | Cost_based of (Plan.t -> float)

type config = { agg_mode : strategy_mode }

let default_config = { agg_mode = Heuristic }

type report = {
  agg_choices : agg_strategy list;
  rewritten_markers : int;
  rule_counts : (string * int) list;
}

exception Rewrite_error of string

type ctx = {
  config : config;
  mutable choices : agg_strategy list;  (* reverse order *)
  mutable markers : int;
  rules : (string, int) Hashtbl.t;  (* rewrite rule name -> times fired *)
}

let fired ctx rule =
  let n = Option.value ~default:0 (Hashtbl.find_opt ctx.rules rule) in
  Hashtbl.replace ctx.rules rule (n + 1)

(* SQL = is three-valued; the rejoin rules need a predicate under which each
   original tuple matches its own rewritten copy even when a key is NULL. *)
let null_safe_eq a b =
  Expr.Binop
    ( Expr.Or,
      Expr.Binop (Expr.Eq, a, b),
      Expr.Binop (Expr.And, Expr.Unop (Expr.Is_null, a), Expr.Unop (Expr.Is_null, b))
    )

let null_safe_eq_all pairs =
  match pairs with
  | [] -> Expr.Const (Value.Bool true)
  | pairs -> Expr.conjoin (List.map (fun (a, b) -> null_safe_eq a b) pairs)

(* Duplicate a plan's output columns as provenance copies, named after the
   given relation display name. Returns the projection and the bindings. *)
let duplicate_as_provenance rel_name plan =
  let attrs = Plan.schema plan in
  let copies =
    List.map
      (fun (a : Attr.t) ->
        Attr.fresh (Printf.sprintf "prov_%s_%s" rel_name a.Attr.name) a.Attr.ty)
      attrs
  in
  let cols =
    List.map (fun a -> (Expr.Attr a, a)) attrs
    @ List.map2 (fun (a : Attr.t) c -> (Expr.Attr a, c)) attrs copies
  in
  (Plan.Project { child = plan; cols }, List.map (fun c -> Expr.Attr c) copies)

(* Rename a rewritten plan's copy of the original output columns so a rejoin
   against the original operator cannot capture attribute ids, and
   materialize the bindings as real columns at the same time. Returns
   (projection, fresh copies of [orig_attrs], fresh binding attrs). *)
let rename_for_rejoin orig_attrs plan bindings =
  let data_copies =
    List.map (fun (a : Attr.t) -> Attr.renamed (a.Attr.name ^ "_rw") a) orig_attrs
  in
  let prov_attrs =
    List.map (fun b -> Attr.fresh "prov" (Expr.type_of b)) bindings
  in
  let cols =
    List.map2 (fun (a : Attr.t) c -> (Expr.Attr a, c)) orig_attrs data_copies
    @ List.map2 (fun b p -> (b, p)) bindings prov_attrs
  in
  (Plan.Project { child = plan; cols }, data_copies, prov_attrs)

let rec eliminate ctx (plan : Plan.t) =
  match plan with
  | Plan.Prov { child; semantics; sources } ->
    rewrite_prov ctx ~child ~semantics ~sources
  | Plan.Baserel { child; _ } | Plan.External { child; _ } ->
    eliminate ctx child
  | other -> Plan.map_children (eliminate ctx) other

(* The influence rewrite: returns the rewritten plan and the provenance
   bindings, one expression per column of Sources.instances, in the same
   order (the structural mirror of Sources.instances). *)
and rw ctx (plan : Plan.t) : Plan.t * Expr.t list =
  match plan with
  | Plan.Scan { table; _ } | Plan.Index_scan { table; _ } ->
    fired ctx "base_relation";
    duplicate_as_provenance table plan
  | Plan.Values _ ->
    fired ctx "values";
    (plan, [])
  | Plan.Baserel { child; rel_name } ->
    fired ctx "baserelation";
    duplicate_as_provenance rel_name (eliminate ctx child)
  | Plan.External { child; ext_attrs } ->
    fired ctx "external_provenance";
    (eliminate ctx child, List.map (fun a -> Expr.Attr a) ext_attrs)
  | Plan.Prov { child; semantics; sources } ->
    let rewritten = rewrite_prov ctx ~child ~semantics ~sources in
    ( rewritten,
      List.map (fun (s : Plan.prov_source) -> Expr.Attr s.prov_attr) sources )
  | Plan.Project { child; cols } ->
    fired ctx "project";
    let child', bindings = rw ctx child in
    let prov_attrs =
      List.map (fun b -> Attr.fresh "prov" (Expr.type_of b)) bindings
    in
    let cols' = cols @ List.map2 (fun b p -> (b, p)) bindings prov_attrs in
    ( Plan.Project { child = child'; cols = cols' },
      List.map (fun p -> Expr.Attr p) prov_attrs )
  | Plan.Filter { child; pred } ->
    fired ctx "filter";
    let child', bindings = rw ctx child in
    (Plan.Filter { child = child'; pred }, bindings)
  | Plan.Join { kind = Plan.Anti; left; right; pred } ->
    fired ctx "join_anti";
    let left', bl = rw ctx left in
    ( Plan.Join
        { kind = Plan.Anti; left = left'; right = eliminate ctx right; pred },
      bl )
  | Plan.Join { kind = Plan.Semi; left; right; pred } ->
    (* Witness tuples of the right side become visible: one output row per
       witness, the provenance replication of §2.1. *)
    fired ctx "join_semi";
    let left', bl = rw ctx left in
    let right', br = rw ctx right in
    (Plan.Join { kind = Plan.Inner; left = left'; right = right'; pred }, bl @ br)
  | Plan.Join { kind; left; right; pred } ->
    fired ctx "join";
    let left', bl = rw ctx left in
    let right', br = rw ctx right in
    (Plan.Join { kind; left = left'; right = right'; pred }, bl @ br)
  | Plan.Apply { kind = Plan.A_anti; left; right } ->
    fired ctx "apply_anti";
    let left', bl = rw ctx left in
    (Plan.Apply { kind = Plan.A_anti; left = left'; right = eliminate ctx right }, bl)
  | Plan.Apply { kind = Plan.A_semi; left; right } ->
    fired ctx "apply_semi";
    let left', bl = rw ctx left in
    let right', br = rw ctx right in
    (Plan.Apply { kind = Plan.A_cross; left = left'; right = right' }, bl @ br)
  | Plan.Apply { kind = Plan.A_scalar out; left; right } ->
    fired ctx "apply_scalar";
    let left', bl = rw ctx left in
    let right', br = rw ctx right in
    let r0 =
      match Plan.schema right with
      | r0 :: _ -> r0
      | [] -> raise (Rewrite_error "scalar subquery with empty schema")
    in
    let prov_attrs =
      List.map (fun b -> Attr.fresh "prov" (Expr.type_of b)) br
    in
    let right'' =
      Plan.Project
        {
          child = right';
          cols =
            ((Expr.Attr r0, out) :: List.map2 (fun b p -> (b, p)) br prov_attrs);
        }
    in
    ( Plan.Apply { kind = Plan.A_outer; left = left'; right = right'' },
      bl @ List.map (fun p -> Expr.Attr p) prov_attrs )
  | Plan.Apply { kind = (Plan.A_cross | Plan.A_outer) as kind; left; right } ->
    fired ctx "apply";
    let left', bl = rw ctx left in
    let right', br = rw ctx right in
    (Plan.Apply { kind; left = left'; right = right' }, bl @ br)
  | Plan.Aggregate { child; group_by; aggs } ->
    rw_aggregate ctx ~child ~group_by ~aggs
  | Plan.Distinct child ->
    fired ctx "distinct_rejoin";
    let child', bindings = rw ctx child in
    let orig_attrs = Plan.schema child in
    let renamed, data_copies, prov_attrs =
      rename_for_rejoin orig_attrs child' bindings
    in
    let pred =
      null_safe_eq_all
        (List.map2
           (fun (a : Attr.t) c -> (Expr.Attr a, Expr.Attr c))
           orig_attrs data_copies)
    in
    ( Plan.Join
        {
          kind = Plan.Inner;
          left = Plan.Distinct child;
          right = renamed;
          pred = Some pred;
        },
      List.map (fun p -> Expr.Attr p) prov_attrs )
  | Plan.Sort { child; keys } ->
    fired ctx "sort";
    let child', bindings = rw ctx child in
    (Plan.Sort { child = child'; keys }, bindings)
  | Plan.Limit { child; limit; offset } ->
    fired ctx "limit_rejoin";
    let child', bindings = rw ctx child in
    let orig_attrs = Plan.schema child in
    let renamed, data_copies, prov_attrs =
      rename_for_rejoin orig_attrs child' bindings
    in
    let pred =
      null_safe_eq_all
        (List.map2
           (fun (a : Attr.t) c -> (Expr.Attr a, Expr.Attr c))
           orig_attrs data_copies)
    in
    ( Plan.Join
        {
          kind = Plan.Inner;
          left = Plan.Limit { child; limit; offset };
          right = renamed;
          pred = Some pred;
        },
      List.map (fun p -> Expr.Attr p) prov_attrs )
  | Plan.Set_op { kind; all; left; right; attrs } ->
    rw_set_op ctx ~kind ~all ~left ~right ~attrs

and rw_aggregate ctx ~child ~group_by ~aggs =
  let child', bindings = rw ctx child in
  let original = Plan.Aggregate { child; group_by; aggs } in
  let pred =
    null_safe_eq_all
      (List.map (fun (e, out) -> (e, Expr.Attr out)) group_by)
  in
  let join_candidate () =
    Plan.Join
      { kind = Plan.Left; left = original; right = child'; pred = Some pred }
  in
  let lateral_candidate () =
    Plan.Apply
      {
        kind = Plan.A_outer;
        left = original;
        right = Plan.Filter { child = child'; pred };
      }
  in
  let choice =
    match ctx.config.agg_mode with
    | Fixed s -> s
    | Heuristic -> Agg_join
    | Cost_based cost ->
      if cost (join_candidate ()) <= cost (lateral_candidate ()) then Agg_join
      else Agg_lateral
  in
  ctx.choices <- choice :: ctx.choices;
  fired ctx
    (match choice with
    | Agg_join -> "aggregate_join"
    | Agg_lateral -> "aggregate_lateral");
  let plan =
    match choice with
    | Agg_join -> join_candidate ()
    | Agg_lateral -> lateral_candidate ()
  in
  (plan, bindings)

and rw_set_op ctx ~kind ~all ~left ~right ~attrs =
  let left', bl = rw ctx left in
  let right', br = rw ctx right in
  let l_attrs = Plan.schema left and r_attrs = Plan.schema right in
  (* Pad each branch with NULLs for the other branch's provenance columns
     and union-all them positionally (the Figure 2 shape). [data_outs] are
     the positional result attributes of the union. *)
  let union_all ~data_outs =
    let bl_outs = List.map (fun b -> Attr.fresh "prov" (Expr.type_of b)) bl in
    let br_outs = List.map (fun b -> Attr.fresh "prov" (Expr.type_of b)) br in
    let l_cols =
      List.map2 (fun (a : Attr.t) d -> (Expr.Attr a, d)) l_attrs data_outs
      @ List.map2 (fun b p -> (b, p)) bl bl_outs
      @ List.map
          (fun (p : Attr.t) -> (Expr.Const Value.Null, Attr.renamed p.Attr.name p))
          br_outs
    in
    let r_cols =
      List.map2 (fun (a : Attr.t) d -> (Expr.Attr a, Attr.renamed d.Attr.name d)) r_attrs data_outs
      @ List.map
          (fun (p : Attr.t) -> (Expr.Const Value.Null, Attr.renamed p.Attr.name p))
          bl_outs
      @ List.map2 (fun b p -> (b, p)) br br_outs
    in
    let lproj = Plan.Project { child = left'; cols = l_cols } in
    let rproj = Plan.Project { child = right'; cols = r_cols } in
    let out_attrs = data_outs @ bl_outs @ br_outs in
    ( Plan.Set_op
        {
          kind = Plan.Union;
          all = true;
          left = lproj;
          right = rproj;
          attrs = out_attrs;
        },
      bl_outs @ br_outs )
  in
  match kind, all with
  | Plan.Union, true ->
    (* no rejoin needed: the result rows are exactly the original rows, so
       the union keeps the original output attribute identities *)
    fired ctx "union_all";
    let u, prov_outs = union_all ~data_outs:attrs in
    (u, List.map (fun p -> Expr.Attr p) prov_outs)
  | Plan.Union, false ->
    fired ctx "union_distinct";
    let original = Plan.Set_op { kind; all; left; right; attrs } in
    let data_copies =
      List.map (fun (a : Attr.t) -> Attr.renamed (a.Attr.name ^ "_rw") a) attrs
    in
    let u, prov_outs = union_all ~data_outs:data_copies in
    let pred =
      null_safe_eq_all
        (List.map2
           (fun (a : Attr.t) c -> (Expr.Attr a, Expr.Attr c))
           attrs data_copies)
    in
    ( Plan.Join { kind = Plan.Inner; left = original; right = u; pred = Some pred },
      List.map (fun p -> Expr.Attr p) prov_outs )
  | Plan.Intersect, _ ->
    fired ctx "intersect";
    let original = Plan.Set_op { kind; all; left; right; attrs } in
    let l_renamed, l_copies, l_prov = rename_for_rejoin l_attrs left' bl in
    let r_renamed, r_copies, r_prov = rename_for_rejoin r_attrs right' br in
    let match_pred copies =
      null_safe_eq_all
        (List.map2
           (fun (a : Attr.t) c -> (Expr.Attr a, Expr.Attr c))
           attrs copies)
    in
    let with_left =
      Plan.Join
        {
          kind = Plan.Inner;
          left = original;
          right = l_renamed;
          pred = Some (match_pred l_copies);
        }
    in
    let with_both =
      Plan.Join
        {
          kind = Plan.Inner;
          left = with_left;
          right = r_renamed;
          pred = Some (match_pred r_copies);
        }
    in
    (with_both, List.map (fun p -> Expr.Attr p) (l_prov @ r_prov))
  | Plan.Except, _ ->
    fired ctx "except";
    (* Result tuples stem from the left branch only; the right branch has no
       witness tuples (a tuple survives because of an absence), so its
       provenance columns are NULL. *)
    let original = Plan.Set_op { kind; all; left; right; attrs } in
    let l_renamed, l_copies, l_prov = rename_for_rejoin l_attrs left' bl in
    let pred =
      null_safe_eq_all
        (List.map2
           (fun (a : Attr.t) c -> (Expr.Attr a, Expr.Attr c))
           attrs l_copies)
    in
    ( Plan.Join
        { kind = Plan.Inner; left = original; right = l_renamed; pred = Some pred },
      List.map (fun p -> Expr.Attr p) l_prov
      @ List.map (fun _ -> Expr.Const Value.Null) br )

and rewrite_prov ctx ~child ~semantics ~sources =
  ctx.markers <- ctx.markers + 1;
  fired ctx "provenance_marker";
  let child', bindings = rw ctx child in
  if List.length bindings <> List.length sources then
    raise
      (Rewrite_error
         (Printf.sprintf
            "provenance binding mismatch: %d sources but %d bindings"
            (List.length sources) (List.length bindings)));
  (* Copy semantics: NULL the provenance of instances whose values are not
     copied to the result. *)
  let instance_quals = Copy_analysis.qualifying semantics child in
  let col_quals =
    List.concat
      (List.map2
         (fun inst q -> List.map (fun _ -> q) inst.Sources.inst_cols)
         (Sources.instances child) instance_quals)
  in
  let prov_cols =
    List.map2
      (fun (s : Plan.prov_source) (b, qual) ->
        ((if qual then b else Expr.Const Value.Null), s.prov_attr))
      sources
      (List.combine bindings col_quals)
  in
  let cols =
    List.map (fun a -> (Expr.Attr a, a)) (Plan.schema child) @ prov_cols
  in
  Plan.Project { child = child'; cols }

let rewrite ?(config = default_config) plan =
  let ctx = { config; choices = []; markers = 0; rules = Hashtbl.create 16 } in
  let plan' = eliminate ctx plan in
  let rule_counts =
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) ctx.rules [])
  in
  ( plan',
    {
      agg_choices = List.rev ctx.choices;
      rewritten_markers = ctx.markers;
      rule_counts;
    } )
