(** Lock-free live progress for a running statement.

    One value per top-level statement, written by the executing domain
    (rows materialized at the plan root) and by pool workers (morsels
    claimed), read concurrently by progress samplers — the CLI's
    [\progress] ticker and [Engine.progress] — without locks or
    coordination. All counters are atomics; a snapshot is a consistent
    enough view for monitoring (each field is individually atomic). *)

type t

val create : unit -> t

val add_rows : t -> int -> unit
val incr_rows : t -> unit
val set_morsels_total : t -> int -> unit
(** Set when a parallel fan-out is sized; stays 0 on the serial path. *)

val incr_morsels_done : t -> unit

type snapshot = {
  sn_rows : int;
  sn_morsels_done : int;
  sn_morsels_total : int;  (** 0 = serial execution (no fan-out sized) *)
}

val snapshot : t -> snapshot
