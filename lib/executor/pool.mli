(** A reusable pool of worker domains for morsel-driven parallel execution
    (Leis et al., SIGMOD 2014).

    The pool owns [size - 1] spawned domains; the calling domain is the
    remaining worker, so a pool of size 1 is a valid degenerate pool that
    runs everything on the caller without spawning. Work arrives as a
    batch of independent tasks (one per morsel), claimed with an atomic
    counter so fast workers steal the tail of the batch from slow ones.

    Every batch is profiled: each claimed task records a timed slice and
    each worker accumulates morsel/busy/row totals. The accounting is
    always on (two clock reads per ~1000-row morsel) and feeds the
    [perm_stat_workers] system view and the per-domain lanes of the
    Chrome trace export. *)

type t

type task_slice = {
  ts_worker : int;  (** 0 = the calling domain *)
  ts_task : int;  (** index into the batch's task array (= morsel index) *)
  ts_start : float;  (** [Unix.gettimeofday] seconds *)
  ts_dur_s : float;
  ts_rows : int;  (** rows the task reported producing *)
}

type worker_stat = { ws_morsels : int; ws_busy_s : float; ws_rows : int }

type report = {
  rp_participants : int;  (** workers that executed at least one task *)
  rp_workers : worker_stat array;  (** length = [size], index = worker id *)
  rp_slices : task_slice list;  (** all task slices, unordered *)
  rp_start_s : float;  (** batch submission time *)
  rp_wall_s : float;  (** batch wall time as seen by the caller *)
}

val create : int -> t
(** [create n] spawns [n - 1] worker domains.
    @raise Invalid_argument when [n < 1]. *)

val size : t -> int
(** Total workers, including the calling domain. *)

val run : t -> (unit -> int) array -> report
(** Runs every task to completion (the caller participates) and returns
    the batch report. Each task returns the number of rows it produced,
    which feeds the per-worker row accounting. The first task exception,
    if any, is re-raised on the caller — but only after every worker has
    left the generation, so the pool is always reusable afterwards,
    poisoned batch or not. Once a task fails, the bodies of
    still-unclaimed tasks are skipped (the batch drains instead of
    grinding through doomed work). Not reentrant: one batch at a time per
    pool. *)

val shutdown : t -> unit
(** Stops and joins the worker domains; idempotent. [run] on a shut-down
    pool raises [Invalid_argument]. *)

val stopped : t -> bool
