(** A reusable pool of worker domains for morsel-driven parallel execution
    (Leis et al., SIGMOD 2014).

    The pool owns [size - 1] spawned domains; the calling domain is the
    remaining worker, so a pool of size 1 is a valid degenerate pool that
    runs everything on the caller without spawning. Work arrives as a
    batch of independent tasks (one per morsel), claimed with an atomic
    counter so fast workers steal the tail of the batch from slow ones. *)

type t

val create : int -> t
(** [create n] spawns [n - 1] worker domains.
    @raise Invalid_argument when [n < 1]. *)

val size : t -> int
(** Total workers, including the calling domain. *)

val run : t -> (unit -> unit) array -> int
(** Runs every task to completion (the caller participates) and returns
    the number of workers that executed at least one task. The first task
    exception, if any, is re-raised on the caller — but only after every
    worker has left the generation, so the pool is always reusable
    afterwards, poisoned batch or not. Once a task fails, the bodies of
    still-unclaimed tasks are skipped (the batch drains instead of
    grinding through doomed work). Not reentrant: one batch at a time per
    pool. *)

val shutdown : t -> unit
(** Stops and joins the worker domains; idempotent. [run] on a shut-down
    pool raises [Invalid_argument]. *)

val stopped : t -> bool
