(* A lock-free progress snapshot for a running statement: rows produced at
   the plan root and morsels claimed/total on the parallel path. Writers
   (the executing domain and pool workers) only touch atomics; readers
   (the CLI's progress sampler on another domain, Engine.progress) load
   them without coordination, so sampling never perturbs execution. *)

type t = {
  rows : int Atomic.t;  (* rows materialized at the plan root *)
  morsels_done : int Atomic.t;
  morsels_total : int Atomic.t;  (* 0 until a parallel fan-out is sized *)
}

let create () =
  {
    rows = Atomic.make 0;
    morsels_done = Atomic.make 0;
    morsels_total = Atomic.make 0;
  }

let add_rows t n = if n > 0 then ignore (Atomic.fetch_and_add t.rows n)
let incr_rows t = ignore (Atomic.fetch_and_add t.rows 1)
let set_morsels_total t n = Atomic.set t.morsels_total n
let incr_morsels_done t = ignore (Atomic.fetch_and_add t.morsels_done 1)

type snapshot = { sn_rows : int; sn_morsels_done : int; sn_morsels_total : int }

let snapshot t =
  {
    sn_rows = Atomic.get t.rows;
    sn_morsels_done = Atomic.get t.morsels_done;
    sn_morsels_total = Atomic.get t.morsels_total;
  }
