(** Plan execution (paper Fig. 3, "Executor").

    Interprets logical algebra plans directly over in-memory relations:
    hash joins for equi- and null-safe-equality predicates (the shape the
    provenance rewriter emits for its rejoin rules), nested-loop fallback,
    hash aggregation and duplicate elimination, bag-semantics set
    operations, stable sorting, and correlated [Apply] evaluation for
    de-correlated subqueries.

    Plans must be marker-free: [Plan.Prov] nodes are rejected (the engine
    always runs the provenance rewriter first); stray [Baserel]/[External]
    markers execute as identity.

    NULL handling follows SQL: predicates use three-valued logic and only
    [True] passes; grouping, DISTINCT and set operations use null-safe
    equality; plain join equality never matches NULL keys. *)

exception Runtime_error of string

type provider = {
  scan_table : string -> Perm_storage.Tuple.t Seq.t;
      (** full scan of a base table *)
  probe_index : string -> int -> Perm_value.Value.t -> Perm_storage.Tuple.t Seq.t;
      (** [probe_index table col key]: rows whose column [col] equals [key]
          — backs [Plan.Index_scan]; only called for indexes the planner
          saw in its statistics *)
  scan_morsels : string -> int -> Perm_storage.Tuple.t array array;
      (** [scan_morsels table rows]: the table partitioned into fixed-size
          morsels (the last may be short) in scan order; concatenating the
          morsels must reproduce [scan_table]. Backs {!Par}. *)
  scan_batches : string -> int -> Perm_storage.Batch.t array;
      (** [scan_batches table rows]: the table as columnar batches of at
          most [rows] rows each, in scan order; their live tuples must
          reproduce [scan_table]. Storage backends may serve a cached
          columnar image — callers must never mutate the column arrays.
          Backs the vectorized path's [Plan.Scan]. *)
}

val morsels_of_list :
  morsel_rows:int -> Perm_storage.Tuple.t list -> Perm_storage.Tuple.t array array
(** Partition a materialized row list into morsels — the [scan_morsels]
    implementation for providers without chunked storage (virtual
    relations, test fixtures). *)

val batches_of_list :
  arity:int ->
  batch_rows:int ->
  Perm_storage.Tuple.t list ->
  Perm_storage.Batch.t array
(** Transpose a materialized row list into dense batches — the
    [scan_batches] implementation for providers without columnar storage. *)

val default_batch_rows : int
(** Default batch size for the vectorized path (rows per columnar batch). *)

val batch_eligible : Perm_algebra.Plan.t -> bool
(** [true] when the whole plan can run on the vectorized batch path: any
    correlated [Apply] (or stray [Prov] marker) anywhere in the tree forces
    the row-at-a-time fallback. *)

val run :
  ?token:Perm_err.Token.t ->
  ?row_limit:int ->
  ?progress:Progress.t ->
  ?batch_rows:int ->
  ?spill:Perm_storage.Spill.config ->
  provider:provider ->
  Perm_algebra.Plan.t ->
  (Perm_storage.Tuple.t list, string) result
(** Executes the plan and materializes the result in plan-schema column
    order. Runtime errors (division by zero, failing casts, scalar
    subqueries returning several rows) are returned as [Error].

    When [spill] is given, materializing operators on the row path degrade
    gracefully past [spill.threshold] rows: sorts become external merge
    sorts and hash-join build sides are chunked onto temp files, with
    results byte-identical to the in-memory path. The batch path instead
    raises {!Perm_storage.Spill.Fallback_needed} internally and re-runs on
    the spilling row path (counted by the [executor.spill.*] metrics).
    Callers that arm a tuple budget on [token] should omit [spill] — and
    vice versa: the spill threshold replaces the budget's hard kill.

    When [batch_rows] is given (and positive) and the plan is
    {!batch_eligible}, operators exchange columnar batches of at most
    [batch_rows] rows (column arrays + a selection vector) instead of
    pulling tuples one at a time: filters narrow the selection vector with
    kernels specialized on the compared constant, projections of plain
    attributes share column pointers, joins expand matches out of line,
    and aggregation feeds group states from column reads. Every kernel
    applies the same [Value] operations in the same row order as the row
    path, so results are byte-identical regardless of batch size. With an
    active [token], the batch path checks it at operator start and charges
    it per batch (of its live row count) — cancel latency is bounded by
    one batch per operator.

    When [progress] is given, every row materialized at the plan root
    bumps its lock-free row counter, so another domain can sample live
    progress while the statement runs.

    Guardrails: when [token] is active, every operator charges the token
    in batches of a few hundred rows, so a deadline/budget/manual cancel
    surfaces as {!Perm_err.Cancel} within a bounded number of tuples;
    [row_limit] kills the statement (also via [Cancel], kind
    [Resource_exhausted]) once the root produces more rows than allowed.
    [Cancel] and {!Perm_fault.Injected} deliberately escape as exceptions:
    only the engine boundary maps them into its typed error result. *)

(** {1 Instrumented execution}

    [run_instrumented] wraps every compiled operator with counters and a
    wall-clock timer; the plain {!run} path compiles the exact same
    closures with no wrapper, so instrumentation is pay-for-what-you-use:
    with tracing off, nothing changes on the hot path. *)

type node_stats = {
  stat_kind : string;  (** coarse operator class, {!Perm_algebra.Plan.operator_kind} *)
  mutable stat_id : int;
      (** stable pre-order node id within the executed plan; [-1] for
          helper nodes the executor synthesizes (e.g. the swapped join a
          Right join compiles into) *)
  mutable stat_invocations : int;
      (** times the operator was (re)started — > 1 under a correlated
          [Apply], which re-runs its right side per outer row *)
  mutable stat_rows : int;  (** rows produced across all invocations *)
  mutable stat_time_s : float;
      (** cumulative wall-clock seconds spent pulling from this operator,
          {e inclusive} of its children (as in Postgres EXPLAIN ANALYZE) *)
  mutable stat_self_s : float;
      (** exclusive wall-clock seconds: inclusive time minus the
          children's inclusive time, clamped at 0 *)
  mutable stat_peak_rows : int;
      (** max rows produced by a single invocation — the largest batch
          this operator streamed *)
  mutable stat_peak_bytes : int;
      (** peak batch memory: on the row path, [stat_peak_rows] times an
          estimated row width; on the vectorized path, the exact measured
          heap footprint of the largest batch the operator emitted *)
  mutable stat_exact_bytes : bool;
      (** [true] when [stat_peak_bytes] was measured ([Obj.reachable_words]
          per batch, vectorized path) rather than estimated *)
}

type exec_stats

val run_instrumented :
  ?token:Perm_err.Token.t ->
  ?row_limit:int ->
  ?progress:Progress.t ->
  ?batch_rows:int ->
  ?spill:Perm_storage.Spill.config ->
  provider:provider ->
  Perm_algebra.Plan.t ->
  (Perm_storage.Tuple.t list * exec_stats, string) result
(** Like {!run} with per-operator counters. On success the stats are
    finalized: node ids assigned, self times and peak-memory estimates
    derived. *)

val lookup : exec_stats -> Perm_algebra.Plan.t -> node_stats option
(** Stats for one plan node, matched by physical identity — pass the same
    plan value that was executed (e.g. from [Pretty.plan_to_string
    ~annotate]). *)

val stats_entries : exec_stats -> node_stats list
(** All recorded operators, in compile order. *)

val stats_nodes : exec_stats -> (Perm_algebra.Plan.t * node_stats) list
(** All recorded operators with their plan nodes, in compile order. *)

val node_ids : Perm_algebra.Plan.t -> (Perm_algebra.Plan.t * int) list
(** Stable node ids: the plan's nodes numbered in pre-order. The same
    statement shape yields the same numbering on every execution; these
    are the ids reported in [stat_id] and the [perm_stat_plans] view. *)

val scan_stats : exec_stats -> (string * node_stats) list
(** The leaf scans ([Scan]/[Index_scan]) with the table each one read, in
    compile order — the per-base-relation counters behind
    [perm_stat_relations]. *)

(** {1 Morsel-driven parallel execution}

    Runs eligible plans over a {!Pool} of worker domains: the driving base
    relation is split into fixed-size morsels, scan→filter→project→probe
    pipeline fragments run on workers (hash-join builds stay serial and
    shared read-only), aggregation is partitioned with a serial merge, and
    Sort/Limit/Project tails run serially over the merged core. Results
    are bit-identical to the serial closures: morsel outputs concatenate
    in morsel order (= scan order) and aggregate partials merge in that
    same order, so group first-seen order matches serial execution. *)
module Par : sig
  type node_profile = {
    np_node : Perm_algebra.Plan.t;
        (** physical node within the executed plan (match with [==] or
            {!node_ids}) *)
    np_rows : int;  (** rows the stage emitted, summed over all morsels *)
    np_loops : int;
        (** stage instantiations: one per morsel, or 1 for serial
            merge/tail stages *)
  }

  type report = {
    par_domains : int;  (** pool size, caller included *)
    par_morsels : int;  (** tasks fanned out *)
    par_participants : int;  (** workers that executed at least one morsel *)
    par_pool : Pool.report;
        (** per-worker morsel/busy/row accounting and timed morsel slices
            — feeds [perm_stat_workers] and the trace's worker lanes *)
    par_nodes : node_profile list;
        (** per-stage cardinality profile; [[]] unless [profile] was
            requested *)
  }

  val default_morsel_rows : int

  val prepare :
    provider:provider ->
    pool:Pool.t ->
    ?morsel_rows:int ->
    ?batch_rows:int ->
    ?token:Perm_err.Token.t ->
    ?row_limit:int ->
    ?progress:Progress.t ->
    ?profile:bool ->
    ?spill:Perm_storage.Spill.config ->
    Perm_algebra.Plan.t ->
    (unit -> (Perm_storage.Tuple.t list * report, string) result) option
  (** [None] when the plan shape is not morsel-eligible (correlated
      [Apply], Right/Full join, Distinct, Set_op, non-mergeable
      aggregates, Index_scan or Values spines) — the caller falls back to
      {!run}. The returned thunk may be invoked once per statement; the
      pool is reused across calls.

      When [batch_rows] is given (and positive), workers slice their
      morsels into columnar batches and push them through the same batch
      kernels as the serial vectorized path — per-morsel overhead
      amortizes across the batch, and the token is charged per batch.
      Output rows still concatenate in morsel order, so results remain
      byte-identical to both serial paths.

      When [token] is active every morsel task checks it on entry and
      charges it per emitted batch, so a kill noticed by one domain stops
      the rest at their next morsel; the poisoned generation drains fully
      before {!Perm_err.Cancel} is re-raised on the caller, leaving the
      pool reusable. [row_limit] is enforced after the merge.

      When [progress] is given the fan-out sizes its morsel counters and
      every finished morsel bumps them (plus the live row count), so
      another domain can sample mid-flight progress. [profile:true]
      additionally counts rows/loops per recognized pipeline stage with
      shared atomics (a couple of atomic increments per row). *)
end

val eval_const : Perm_algebra.Expr.t -> (Perm_value.Value.t, string) result
(** Evaluates a closed expression (no attribute references) — INSERT rows,
    DEFAULT-style constants. *)

val compile_row_predicate :
  schema:Perm_algebra.Attr.t list ->
  Perm_algebra.Expr.t ->
  Perm_storage.Tuple.t ->
  (bool, string) result
(** Row-at-a-time predicate evaluation against a fixed schema (DELETE /
    UPDATE row selection); [true] iff the predicate is SQL-[TRUE]. *)

val plan_hash : ?mode:string -> Perm_algebra.Plan.t -> string
(** A short stable digest of the plan's structure: operator tree, table
    names, expression shapes, attribute names/types. Attribute ids are
    canonicalized (they are gensym'd per analysis) and literal values are
    blanked like statement fingerprints, so re-running or re-binding the
    same statement hashes identically; planner estimates never enter the
    hash, so it only moves when the plan itself changes. [mode] tags the
    execution strategy (["serial"] / ["parallel"], default ["serial"]) —
    a flipped parallel verdict is a plan change too. *)
