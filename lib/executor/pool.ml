(* A reusable pool of worker domains for morsel-driven parallel execution
   (Leis et al., SIGMOD 2014). The pool owns [size - 1] spawned domains;
   the calling domain is the remaining worker, so [create 1] is a valid
   degenerate pool that runs everything on the caller without spawning.

   Work arrives as a batch of independent tasks (one per morsel). Tasks are
   claimed with an atomic counter, so fast workers steal the tail of the
   batch from slow ones — the classic morsel scheduling discipline. [run]
   blocks until the whole batch finished and re-raises the first task
   exception on the caller.

   Every batch is timed per worker: each claimed task records a slice
   (worker, task index, start, duration, rows) and each worker accumulates
   morsel/busy/row totals. Two clock reads per ~1000-row morsel keep the
   overhead in the noise, so the accounting is always on — it feeds the
   perm_stat_workers view and the worker lanes of the Chrome trace. *)

let now_s () = Perm_obs.Trace.now ()

type task_slice = {
  ts_worker : int;  (* 0 = the calling domain *)
  ts_task : int;  (* index into the batch's task array (= morsel index) *)
  ts_start : float;  (* Unix.gettimeofday seconds *)
  ts_dur_s : float;
  ts_rows : int;  (* rows the task reported *)
}

type worker_stat = { ws_morsels : int; ws_busy_s : float; ws_rows : int }

type report = {
  rp_participants : int;  (* workers that ran >= 1 task *)
  rp_workers : worker_stat array;  (* length = pool size, index = worker *)
  rp_slices : task_slice list;  (* all task slices, unordered *)
  rp_start_s : float;  (* batch submission time *)
  rp_wall_s : float;  (* batch wall time as seen by the caller *)
}

type batch = {
  tasks : (unit -> int) array;  (* each returns the rows it produced *)
  next : int Atomic.t;  (* next unclaimed task index *)
  mutable completed : int;  (* finished tasks; protected by the pool mutex *)
  mutable participants : int;  (* workers that ran >= 1 task; same lock *)
  mutable error : exn option;  (* first failure; same lock *)
  poisoned : bool Atomic.t;  (* set with [error]; lock-free abort signal *)
  w_morsels : int array;  (* per-worker accounting; merged under the lock *)
  w_busy : float array;
  w_rows : int array;
  mutable slices : task_slice list;
}

(* Chaos-harness injection point: fires inside the per-task handler so an
   injected fault lands in [batch.error] like any task failure, never on a
   bare worker domain. *)
let fp_dispatch = Perm_fault.point "pool.dispatch"

type t = {
  size : int;  (* total workers, including the calling domain *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;  (* bumped once per submitted batch *)
  mutable current : batch option;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

(* Claim-and-run loop shared by spawned workers and the caller. [worker] is
   this domain's stable index (0 = caller). Once a task has failed the
   batch is poisoned: remaining tasks are still claimed and counted (so
   [run]'s completion accounting stays exact) but their bodies are skipped
   — the generation drains promptly instead of grinding through doomed
   work. Per-task timing is accumulated locally and merged into the batch
   under the pool mutex once, when this worker leaves the batch. *)
let drain t ~worker batch =
  let n = Array.length batch.tasks in
  let morsels = ref 0 and busy = ref 0. and rows = ref 0 in
  let slices = ref [] in
  let rec go ran =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i >= n then ran
    else begin
      (try
         if not (Atomic.get batch.poisoned) then begin
           Perm_fault.trip fp_dispatch;
           let t0 = now_s () in
           let produced = batch.tasks.(i) () in
           let dur = now_s () -. t0 in
           incr morsels;
           busy := !busy +. dur;
           rows := !rows + produced;
           slices :=
             {
               ts_worker = worker;
               ts_task = i;
               ts_start = t0;
               ts_dur_s = dur;
               ts_rows = produced;
             }
             :: !slices
         end
       with e ->
         Mutex.lock t.mutex;
         if batch.error = None then batch.error <- Some e;
         Mutex.unlock t.mutex;
         Atomic.set batch.poisoned true);
      go (ran + 1)
    end
  in
  let ran = go 0 in
  Mutex.lock t.mutex;
  batch.completed <- batch.completed + ran;
  if ran > 0 then batch.participants <- batch.participants + 1;
  batch.w_morsels.(worker) <- batch.w_morsels.(worker) + !morsels;
  batch.w_busy.(worker) <- batch.w_busy.(worker) +. !busy;
  batch.w_rows.(worker) <- batch.w_rows.(worker) + !rows;
  batch.slices <- List.rev_append !slices batch.slices;
  if batch.completed >= n then Condition.broadcast t.work_done;
  Mutex.unlock t.mutex;
  ran

let rec worker_loop t ~worker seen_gen =
  Mutex.lock t.mutex;
  while (not t.stopped) && (t.generation = seen_gen || t.current = None) do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let batch = Option.get t.current in
    Mutex.unlock t.mutex;
    ignore (drain t ~worker batch);
    worker_loop t ~worker gen
  end

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      size = n;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      current = None;
      stopped = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~worker:(i + 1) 0));
  t

let empty_report () =
  {
    rp_participants = 0;
    rp_workers = [||];
    rp_slices = [];
    rp_start_s = now_s ();
    rp_wall_s = 0.;
  }

(* Run every task to completion, caller included. Not reentrant: one batch
   at a time per pool (the engine submits one parallel fragment at a time). *)
let run t (tasks : (unit -> int) array) : report =
  let n = Array.length tasks in
  if n = 0 then empty_report ()
  else if t.stopped then invalid_arg "Pool.run: pool is shut down"
  else begin
    let batch =
      {
        tasks;
        next = Atomic.make 0;
        completed = 0;
        participants = 0;
        error = None;
        poisoned = Atomic.make false;
        w_morsels = Array.make t.size 0;
        w_busy = Array.make t.size 0.;
        w_rows = Array.make t.size 0;
        slices = [];
      }
    in
    let start = now_s () in
    Mutex.lock t.mutex;
    t.current <- Some batch;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    ignore (drain t ~worker:0 batch);
    (* Quiesce unconditionally — also on the error path — so every worker
       has left this generation before the batch is retired and the pool
       is handed back reusable. *)
    Mutex.lock t.mutex;
    while batch.completed < n do
      Condition.wait t.work_done t.mutex
    done;
    t.current <- None;
    let err = batch.error and participants = batch.participants in
    let workers =
      Array.init t.size (fun w ->
          {
            ws_morsels = batch.w_morsels.(w);
            ws_busy_s = batch.w_busy.(w);
            ws_rows = batch.w_rows.(w);
          })
    in
    let slices = batch.slices in
    Mutex.unlock t.mutex;
    (match err with Some e -> raise e | None -> ());
    {
      rp_participants = participants;
      rp_workers = workers;
      rp_slices = slices;
      rp_start_s = start;
      rp_wall_s = now_s () -. start;
    }
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.work_ready
  end;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join domains

let stopped t = t.stopped
