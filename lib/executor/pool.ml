(* A reusable pool of worker domains for morsel-driven parallel execution
   (Leis et al., SIGMOD 2014). The pool owns [size - 1] spawned domains;
   the calling domain is the remaining worker, so [create 1] is a valid
   degenerate pool that runs everything on the caller without spawning.

   Work arrives as a batch of independent tasks (one per morsel). Tasks are
   claimed with an atomic counter, so fast workers steal the tail of the
   batch from slow ones — the classic morsel scheduling discipline. [run]
   blocks until the whole batch finished and re-raises the first task
   exception on the caller. *)

type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;  (* next unclaimed task index *)
  mutable completed : int;  (* finished tasks; protected by the pool mutex *)
  mutable participants : int;  (* workers that ran >= 1 task; same lock *)
  mutable error : exn option;  (* first failure; same lock *)
  poisoned : bool Atomic.t;  (* set with [error]; lock-free abort signal *)
}

(* Chaos-harness injection point: fires inside the per-task handler so an
   injected fault lands in [batch.error] like any task failure, never on a
   bare worker domain. *)
let fp_dispatch = Perm_fault.point "pool.dispatch"

type t = {
  size : int;  (* total workers, including the calling domain *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;  (* bumped once per submitted batch *)
  mutable current : batch option;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

(* Claim-and-run loop shared by spawned workers and the caller. Returns the
   number of tasks this worker executed. Once a task has failed the batch
   is poisoned: remaining tasks are still claimed and counted (so [run]'s
   completion accounting stays exact) but their bodies are skipped — the
   generation drains promptly instead of grinding through doomed work. *)
let drain t batch =
  let n = Array.length batch.tasks in
  let rec go ran =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i >= n then ran
    else begin
      (try
         if not (Atomic.get batch.poisoned) then begin
           Perm_fault.trip fp_dispatch;
           batch.tasks.(i) ()
         end
       with e ->
         Mutex.lock t.mutex;
         if batch.error = None then batch.error <- Some e;
         Mutex.unlock t.mutex;
         Atomic.set batch.poisoned true);
      go (ran + 1)
    end
  in
  let ran = go 0 in
  Mutex.lock t.mutex;
  batch.completed <- batch.completed + ran;
  if ran > 0 then batch.participants <- batch.participants + 1;
  if batch.completed >= n then Condition.broadcast t.work_done;
  Mutex.unlock t.mutex;
  ran

let rec worker_loop t seen_gen =
  Mutex.lock t.mutex;
  while (not t.stopped) && (t.generation = seen_gen || t.current = None) do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let batch = Option.get t.current in
    Mutex.unlock t.mutex;
    ignore (drain t batch);
    worker_loop t gen
  end

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      size = n;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      current = None;
      stopped = false;
      domains = [];
    }
  in
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

(* Run every task to completion, caller included. Not reentrant: one batch
   at a time per pool (the engine submits one parallel fragment at a time). *)
let run t (tasks : (unit -> unit) array) : int =
  let n = Array.length tasks in
  if n = 0 then 0
  else if t.stopped then invalid_arg "Pool.run: pool is shut down"
  else begin
    let batch =
      {
        tasks;
        next = Atomic.make 0;
        completed = 0;
        participants = 0;
        error = None;
        poisoned = Atomic.make false;
      }
    in
    Mutex.lock t.mutex;
    t.current <- Some batch;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    ignore (drain t batch);
    (* Quiesce unconditionally — also on the error path — so every worker
       has left this generation before the batch is retired and the pool
       is handed back reusable. *)
    Mutex.lock t.mutex;
    while batch.completed < n do
      Condition.wait t.work_done t.mutex
    done;
    t.current <- None;
    let err = batch.error and participants = batch.participants in
    Mutex.unlock t.mutex;
    (match err with Some e -> raise e | None -> ());
    participants
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.work_ready
  end;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join domains

let stopped t = t.stopped
