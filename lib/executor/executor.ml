module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Builtins = Perm_algebra.Builtins
module Value = Perm_value.Value
module Tristate = Perm_value.Tristate
module Tuple = Perm_storage.Tuple
module Batch = Perm_storage.Batch
module Dtype = Perm_value.Dtype

(* Monomorphic hash tables for the single-column aggregate fast paths:
   grouping on an immediate int avoids per-row key-tuple allocation and
   polymorphic [caml_hash]; strings hash with the stdlib string hash. *)
module Int_hash = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash (x : int) = (x * 0x9e3779b1) land max_int
end)

module Str_hash = Hashtbl.Make (struct
  type t = string

  let equal (a : string) b = String.equal a b
  let hash (s : string) = Hashtbl.hash s
end)

exception Runtime_error of string

let err msg = raise (Runtime_error msg)
let errf fmt = Printf.ksprintf err fmt

module Token = Perm_err.Token
module Spill = Perm_storage.Spill

(* Chaos-harness injection points (no-ops unless armed via Perm_fault),
   shared between the serial and parallel paths of each operator. *)
let fp_join_build = Perm_fault.point "join.build"
let fp_agg_merge = Perm_fault.point "agg.merge"
let fp_sort = Perm_fault.point "sort.materialize"

(* ------------------------------------------------------------------ *)
(* Graceful spill-to-disk                                              *)
(* ------------------------------------------------------------------ *)

(* Statement-scoped spill configuration, installed by the entry points
   ([run_rows]/[run]/[run_instrumented]/[Par.prepare]) from the engine's
   governor settings. An atomic module global rather than a parameter
   because it must reach operator closures across the whole compile
   recursion and the parallel workers; the engine executes one statement
   at a time, so statement scoping is enough. When set, the serial row
   path spills sort materializations and join build sides past the
   threshold, while the batch and parallel paths raise
   {!Spill.Fallback_needed} so the engine can retry on the row path. *)
let current_spill : Spill.config option Atomic.t = Atomic.make None

let spill_config () =
  match Atomic.get current_spill with
  | Some c when c.Spill.threshold > 0 -> Some c
  | _ -> None

let spill_fallback ~what n threshold =
  let reason =
    Printf.sprintf "%s materialized %d rows over the spill threshold %d" what
      n threshold
  in
  (* the flight recorder sees *why* the batch/parallel path bailed, not
     just that a fallback happened (note_fallback fires later, when the
     engine catches the exception and re-plans on the row path) *)
  Spill.observe "fallback-reason" reason;
  raise (Spill.Fallback_needed reason)

let fallback_if_spill ~what n =
  match spill_config () with
  | Some c when n > c.Spill.threshold -> spill_fallback ~what n c.Spill.threshold
  | _ -> ()

(* Hard ceiling for materialized state no path can spill (hash-aggregate
   groups, DISTINCT / set-op seen-tables). With spill on the row-path
   token carries no tuple budget — sorts and join builds degrade to disk
   instead — so without this check those operators would run unguarded.
   Call it with the current size of the in-memory table; past the
   threshold the statement dies with Resource_exhausted rather than
   silently ignoring the configured budget. *)
let budget_materialized ~what n =
  match spill_config () with
  | Some c when n > c.Spill.threshold ->
    raise
      (Perm_err.Cancel
         ( Perm_err.Resource_exhausted,
           Printf.sprintf
             "tuple budget exceeded: %s holds %d rows (budget %d, not \
              spillable)"
             what n c.Spill.threshold ))
  | _ -> ()

(* Pull at most [n] elements (in order); return them with the unforced
   tail, so callers can detect "fits in memory" without materializing
   everything. *)
let take_up_to n seq =
  let rec go acc k s =
    if k = 0 then (List.rev acc, s)
    else
      match s () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, rest) -> go (x :: acc) (k - 1) rest
  in
  go [] n seq

let rec seq_append_list xs tail =
  match xs with
  | [] -> tail ()
  | x :: rest -> Seq.Cons (x, fun () -> seq_append_list rest tail)

(* External merge sort: inputs within the threshold take the exact
   in-memory path; larger inputs are cut into threshold-sized runs, each
   stable-sorted and spilled, then k-way merged. Ties pick the
   lowest-numbered run — runs hold earlier input rows — so the merged
   stream is byte-identical to [Array.stable_sort] over the whole input. *)
let external_sort (cfg : Spill.config) cmp (seq : Tuple.t Seq.t) : Tuple.t Seq.t
    =
  let th = cfg.Spill.threshold in
  let first, rest = take_up_to th seq in
  match rest () with
  | Seq.Nil ->
    let rows = Array.of_list first in
    Array.stable_sort cmp rows;
    Array.to_seq rows
  | Seq.Cons (x0, rest') ->
    Spill.note_spill ();
    let runs = ref [] in
    let flush chunk =
      let arr = Array.of_list chunk in
      Array.stable_sort cmp arr;
      let f = Spill.create cfg in
      Array.iter (Spill.push f) arr;
      Spill.rewind f;
      Spill.note_run ();
      runs := f :: !runs
    in
    flush first;
    let rec consume acc n s =
      match s () with
      | Seq.Nil -> if n > 0 then flush (List.rev acc)
      | Seq.Cons (x, tail) ->
        let acc = x :: acc and n = n + 1 in
        if n = th then begin
          flush (List.rev acc);
          consume [] 0 tail
        end
        else consume acc n tail
    in
    consume [ x0 ] 1 rest';
    let runs = Array.of_list (List.rev !runs) in
    let n_runs = Array.length runs in
    let heads = Array.map Spill.next runs in
    let next_row () =
      let best = ref (-1) in
      for i = 0 to n_runs - 1 do
        match heads.(i) with
        | None -> ()
        | Some x -> (
          if !best = -1 then best := i
          else
            match heads.(!best) with
            | Some y -> if cmp x y < 0 then best := i
            | None -> assert false)
      done;
      if !best = -1 then None
      else begin
        let row = Option.get heads.(!best) in
        heads.(!best) <- Spill.next runs.(!best);
        Some row
      end
    in
    let rec emit () =
      match next_row () with
      | None ->
        Array.iter Spill.release runs;
        Seq.Nil
      | Some row -> Seq.Cons (row, emit)
    in
    (* The k-way merge mutates run heads and releases the spill files at
       exhaustion — memoize so re-forcing the result behaves like the
       persistent Array.to_seq of the in-memory branch. *)
    Seq.memoize emit

type provider = {
  scan_table : string -> Tuple.t Seq.t;
  probe_index : string -> int -> Value.t -> Tuple.t Seq.t;
  scan_morsels : string -> int -> Tuple.t array array;
      (* contiguous row slices of at most [morsel_rows] rows, in scan order:
         concatenating them must reproduce [scan_table] exactly *)
  scan_batches : string -> int -> Perm_storage.Batch.t array;
      (* columnar batches of at most [batch_rows] live rows, in scan order:
         their live tuples must reproduce [scan_table] exactly. Storage
         backends may serve these from a cached columnar image; callers
         must never mutate the column arrays. *)
}

(* Default morsel slicing for providers without native chunked storage
   (virtual system relations, test fixtures). *)
let morsels_of_list ~morsel_rows rows =
  let rows = Array.of_list rows in
  let len = Array.length rows in
  let size = max 1 morsel_rows in
  Array.init
    ((len + size - 1) / size)
    (fun i ->
      let pos = i * size in
      Array.sub rows pos (min size (len - pos)))

(* Default batch slicing for providers without native columnar storage. *)
let batches_of_list ~arity ~batch_rows rows =
  let rows = Array.of_list rows in
  let len = Array.length rows in
  let size = max 1 batch_rows in
  Array.init
    ((len + size - 1) / size)
    (fun i ->
      let pos = i * size in
      Perm_storage.Batch.of_rows ~arity rows ~pos ~len:(min size (len - pos)))

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

(* Attribute resolution: position in the current row, or an outer accessor
   installed by an enclosing Apply. *)
type resolver = Attr.t -> (Tuple.t -> Value.t) option

let resolver_of_schema (schema : Attr.t list) : resolver =
  let table = Hashtbl.create 16 in
  List.iteri (fun i (a : Attr.t) -> Hashtbl.replace table a.Attr.id i) schema;
  fun a ->
    match Hashtbl.find_opt table a.Attr.id with
    | Some i -> Some (fun row -> row.(i))
    | None -> None

let combine_resolvers inner outer : resolver =
 fun a -> match inner a with Some f -> Some f | None -> outer a

let no_outer : resolver = fun _ -> None

let unwrap = function Ok v -> v | Error msg -> err msg

(* Constant subtrees built from Binop/Unop/Cast over literals: safe to
   evaluate once at compile time. Func is excluded deliberately (builtins
   may grow impure members), as is anything touching a row. *)
let rec is_const_subtree (e : Expr.t) =
  match e with
  | Expr.Const _ -> true
  | Expr.Binop (_, a, b) -> is_const_subtree a && is_const_subtree b
  | Expr.Unop (_, a) | Expr.Cast (a, _) -> is_const_subtree a
  | Expr.Attr _ | Expr.Case _ | Expr.Func _ -> false

(* Pre-evaluate a compiled closure whose source expression is constant, so
   predicates like [x > 1 + 1] pay for the constant once per statement, not
   per tuple. Evaluation errors (e.g. division by zero) keep the dynamic
   closure so they still surface per-row, exactly as before. *)
let constantize (e : Expr.t) (f : Tuple.t -> Value.t) =
  if is_const_subtree e then
    match f [||] with
    | v -> fun _ -> v
    | exception Runtime_error _ -> f
  else f

let rec compile_expr (resolve : resolver) (e : Expr.t) : Tuple.t -> Value.t =
  match e with
  | Expr.Const v -> fun _ -> v
  | Expr.Attr a -> (
    match resolve a with
    | Some f -> f
    | None -> errf "internal: unbound attribute %s#%d" a.Attr.name a.Attr.id)
  | Expr.Binop (op, a, b) -> constantize e (compile_binop resolve op a b)
  | Expr.Unop (Expr.Not, a) ->
    let fa = compile_expr resolve a in
    constantize e (fun row ->
        Tristate.to_value (Tristate.not_ (unwrap (Tristate.of_value (fa row)))))
  | Expr.Unop (Expr.Neg, a) ->
    let fa = compile_expr resolve a in
    constantize e (fun row -> unwrap (Value.neg (fa row)))
  | Expr.Unop (Expr.Is_null, a) ->
    let fa = compile_expr resolve a in
    constantize e (fun row -> Value.Bool (Value.is_null (fa row)))
  | Expr.Case { branches; else_ } ->
    let branches =
      List.map
        (fun (c, r) -> (compile_expr resolve c, compile_expr resolve r))
        branches
    in
    let felse =
      match else_ with
      | Some e -> compile_expr resolve e
      | None -> fun _ -> Value.Null
    in
    fun row ->
      let rec go = function
        | [] -> felse row
        | (fc, fr) :: rest ->
          if Tristate.is_true (unwrap (Tristate.of_value (fc row))) then fr row
          else go rest
      in
      go branches
  | Expr.Cast (inner, ty) ->
    let fe = compile_expr resolve inner in
    constantize e (fun row -> unwrap (Value.cast ty (fe row)))
  | Expr.Func (name, args) -> (
    match Builtins.find name with
    | None -> errf "unknown function %S" name
    | Some s ->
      let fargs = List.map (compile_expr resolve) args in
      fun row -> unwrap (s.Builtins.eval (List.map (fun f -> f row) fargs)))

and compile_binop resolve op a b =
  let fa = compile_expr resolve a and fb = compile_expr resolve b in
  match op with
  | Expr.And ->
    fun row ->
      let va = unwrap (Tristate.of_value (fa row)) in
      if va = Tristate.False then Value.Bool false
      else
        Tristate.to_value
          Tristate.(va &&& unwrap (Tristate.of_value (fb row)))
  | Expr.Or ->
    fun row ->
      let va = unwrap (Tristate.of_value (fa row)) in
      if va = Tristate.True then Value.Bool true
      else
        Tristate.to_value
          Tristate.(va ||| unwrap (Tristate.of_value (fb row)))
  | Expr.Add -> fun row -> unwrap (Value.add (fa row) (fb row))
  | Expr.Sub -> fun row -> unwrap (Value.sub (fa row) (fb row))
  | Expr.Mul -> fun row -> unwrap (Value.mul (fa row) (fb row))
  | Expr.Div -> fun row -> unwrap (Value.div (fa row) (fb row))
  | Expr.Mod -> (
    fun row ->
      match fa row, fb row with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Int _, Value.Int 0 -> err "division by zero"
      | Value.Int x, Value.Int y -> Value.Int (x mod y)
      | x, y ->
        errf "%% expects integers, got %s and %s" (Value.to_string x)
          (Value.to_string y))
  | Expr.Eq -> fun row -> Value.sql_eq (fa row) (fb row)
  | Expr.Neq -> fun row -> Value.sql_neq (fa row) (fb row)
  | Expr.Lt -> fun row -> Value.sql_lt (fa row) (fb row)
  | Expr.Leq -> fun row -> Value.sql_leq (fa row) (fb row)
  | Expr.Gt -> fun row -> Value.sql_gt (fa row) (fb row)
  | Expr.Geq -> fun row -> Value.sql_geq (fa row) (fb row)
  | Expr.Concat -> fun row -> unwrap (Value.concat (fa row) (fb row))
  | Expr.Like -> fun row -> Value.like (fa row) (fb row)

let compile_pred resolve pred =
  let f = compile_expr resolve pred in
  fun row -> Tristate.is_true (unwrap (Tristate.of_value (f row)))

(* ------------------------------------------------------------------ *)
(* Join key extraction                                                 *)
(* ------------------------------------------------------------------ *)

(* A hashable key pair: [l_expr] over the left schema equals [r_expr] over
   the right schema, either with SQL semantics (NULL never matches) or
   null-safe (the provenance rejoin pattern
   [(a = b) OR (a IS NULL AND b IS NULL)]). *)
type key_pair = { l_expr : Expr.t; r_expr : Expr.t; null_safe : bool }

let subset_of attrs schema =
  let ids = List.map (fun (a : Attr.t) -> a.Attr.id) schema in
  Attr.Set.for_all (fun (a : Attr.t) -> List.mem a.Attr.id ids) attrs

let orient left_schema right_schema a b ~null_safe =
  let aa = Expr.attrs a and ab = Expr.attrs b in
  if subset_of aa left_schema && subset_of ab right_schema then
    Some { l_expr = a; r_expr = b; null_safe }
  else if subset_of ab left_schema && subset_of aa right_schema then
    Some { l_expr = b; r_expr = a; null_safe }
  else None

(* Recognize hashable conjuncts of a join predicate; remaining conjuncts
   become a residual filter. *)
let split_join_pred left_schema right_schema pred =
  let conjuncts = Expr.conjuncts pred in
  let keys = ref [] and residual = ref [] in
  List.iter
    (fun c ->
      let recognized =
        match c with
        | Expr.Binop (Expr.Eq, a, b) ->
          orient left_schema right_schema a b ~null_safe:false
        | Expr.Binop
            ( Expr.Or,
              Expr.Binop (Expr.Eq, a, b),
              Expr.Binop
                ( Expr.And,
                  Expr.Unop (Expr.Is_null, a'),
                  Expr.Unop (Expr.Is_null, b') ) )
          when (Expr.equal a a' && Expr.equal b b')
               || (Expr.equal a b' && Expr.equal b a') ->
          orient left_schema right_schema a b ~null_safe:true
        | _ -> None
      in
      match recognized with
      | Some k -> keys := k :: !keys
      | None -> residual := c :: !residual)
    conjuncts;
  (List.rev !keys, List.rev !residual)

(* The join hot path: the per-side key extractors are compiled once into an
   array, and each row fills a preallocated key array directly — no
   List.map + Array.of_list churn per probed tuple. *)
let key_of (fs : (Tuple.t -> Value.t) array) row =
  let n = Array.length fs in
  let key = Array.make n Value.Null in
  for i = 0 to n - 1 do
    key.(i) <- (Array.unsafe_get fs i) row
  done;
  key

(* a plain (non null-safe) key never matches when NULL *)
let key_usable (null_safety : bool array) (key : Tuple.t) =
  let n = Array.length key in
  let rec go i =
    i >= n || ((null_safety.(i) || not (Value.is_null key.(i))) && go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Aggregate state machines                                            *)
(* ------------------------------------------------------------------ *)

type agg_state = {
  mutable count : int;
  mutable sum : Value.t;  (* running sum for Sum/Avg; Null until first value *)
  mutable sum_count : int;  (* non-null inputs seen, for Avg *)
  mutable extreme : Value.t;  (* Min/Max *)
  seen : unit Tuple.Hash.t option;  (* distinct filter *)
}

let new_agg_state (call : Plan.agg_call) =
  {
    count = 0;
    sum = Value.Null;
    sum_count = 0;
    extreme = Value.Null;
    seen = (if call.distinct then Some (Tuple.Hash.create 16) else None);
  }

let agg_feed (call : Plan.agg_call) state (v : Value.t option) =
  (* [v = None] means count-star: every row counts *)
  match call.agg, v with
  | Plan.Count_star, _ -> state.count <- state.count + 1
  | _, None -> ()
  | _, Some Value.Null -> ()
  | agg, Some v -> (
    let fresh =
      match state.seen with
      | None -> true
      | Some seen ->
        let key = [| v |] in
        if Tuple.Hash.mem seen key then false
        else begin
          Tuple.Hash.replace seen key ();
          true
        end
    in
    if fresh then
      match agg with
      | Plan.Count -> state.count <- state.count + 1
      | Plan.Sum | Plan.Avg ->
        state.sum_count <- state.sum_count + 1;
        state.sum <-
          (if Value.is_null state.sum then v
           else
             match Value.add state.sum v with
             | Ok s -> s
             | Error msg -> err msg)
      | Plan.Min ->
        if Value.is_null state.extreme || Value.compare v state.extreme < 0 then
          state.extreme <- v
      | Plan.Max ->
        if Value.is_null state.extreme || Value.compare v state.extreme > 0 then
          state.extreme <- v
      | Plan.Bool_and | Plan.Bool_or -> (
        let b =
          match v with
          | Value.Bool b -> b
          | v -> errf "%s expects booleans, got %s"
                   (if agg = Plan.Bool_and then "bool_and" else "bool_or")
                   (Value.to_string v)
        in
        match state.extreme with
        | Value.Null -> state.extreme <- Value.Bool b
        | Value.Bool prev ->
          state.extreme <-
            Value.Bool (if agg = Plan.Bool_and then prev && b else prev || b)
        | _ -> assert false)
      | Plan.Count_star -> ())

let agg_result (call : Plan.agg_call) state =
  match call.agg with
  | Plan.Count_star | Plan.Count -> Value.Int state.count
  | Plan.Sum -> state.sum
  | Plan.Avg ->
    if state.sum_count = 0 then Value.Null
    else
      let total =
        match state.sum with
        | Value.Int i -> float_of_int i
        | Value.Float f -> f
        | v -> errf "avg over non-numeric value %s" (Value.to_string v)
      in
      Value.Float (total /. float_of_int state.sum_count)
  | Plan.Min | Plan.Max | Plan.Bool_and | Plan.Bool_or -> state.extreme

(* ------------------------------------------------------------------ *)
(* Operator evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let seq_of_list l = List.to_seq l

(* Per-node instrumentation hook, applied once per plan node at compile
   time. The uninstrumented path passes [no_wrap] (the identity), so with
   tracing off the compiled thunks are byte-for-byte the same closures as
   before — zero per-row cost. *)
type wrapper = Plan.t -> (unit -> Tuple.t Seq.t) -> unit -> Tuple.t Seq.t

let no_wrap : wrapper = fun _ thunk -> thunk

(* Compilation produces a thunk so Apply can re-evaluate its right side per
   outer row with fresh operator state. *)
let rec compile ~(provider : provider) ~(wrap : wrapper) (outer : resolver)
    (plan : Plan.t) : unit -> Tuple.t Seq.t =
  wrap plan (compile_node ~provider ~wrap outer plan)

and compile_node ~(provider : provider) ~(wrap : wrapper) (outer : resolver)
    (plan : Plan.t) : unit -> Tuple.t Seq.t =
  match plan with
  | Plan.Scan { table; _ } -> fun () -> provider.scan_table table
  | Plan.Index_scan { table; key_col; key; _ } ->
    let fkey = compile_expr outer key in
    fun () -> provider.probe_index table key_col (fkey [||])
  | Plan.Values { rows; _ } ->
    let compiled =
      List.map (fun row -> List.map (compile_expr no_outer) row) rows
    in
    fun () ->
      seq_of_list
        (List.map
           (fun row -> Array.of_list (List.map (fun f -> f [||]) row))
           compiled)
  | Plan.Project { child; cols } ->
    let child_schema = Plan.schema child in
    let resolve = combine_resolvers (resolver_of_schema child_schema) outer in
    let fs = List.map (fun (e, _) -> compile_expr resolve e) cols in
    let fs = Array.of_list fs in
    let run_child = compile ~provider ~wrap outer child in
    fun () -> Seq.map (fun row -> Array.map (fun f -> f row) fs) (run_child ())
  | Plan.Filter { child; pred } ->
    let resolve =
      combine_resolvers (resolver_of_schema (Plan.schema child)) outer
    in
    let fpred = compile_pred resolve pred in
    let run_child = compile ~provider ~wrap outer child in
    fun () -> Seq.filter fpred (run_child ())
  | Plan.Join { kind; left; right; pred } -> compile_join ~provider ~wrap outer kind left right pred
  | Plan.Apply { kind; left; right } -> compile_apply ~provider ~wrap outer kind left right
  | Plan.Aggregate { child; group_by; aggs } ->
    compile_aggregate ~provider ~wrap outer child group_by aggs
  | Plan.Distinct child ->
    let run_child = compile ~provider ~wrap outer child in
    fun () ->
      Seq.memoize
        (fun () ->
          let seen = Tuple.Hash.create 64 in
          Seq.filter
            (fun row ->
              if Tuple.Hash.mem seen row then false
              else begin
                Tuple.Hash.replace seen row ();
                budget_materialized ~what:"DISTINCT" (Tuple.Hash.length seen);
                true
              end)
            (run_child ())
            ())
  | Plan.Set_op { kind; all; left; right; _ } ->
    compile_set_op ~provider ~wrap outer kind all left right
  | Plan.Sort { child; keys } ->
    let resolve =
      combine_resolvers (resolver_of_schema (Plan.schema child)) outer
    in
    let keyfs =
      List.map (fun (e, dir) -> (compile_expr resolve e, dir)) keys
    in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (f, dir) :: rest ->
          let c = Value.compare (f a) (f b) in
          let c = match dir with Plan.Asc -> c | Plan.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go keyfs
    in
    let run_child = compile ~provider ~wrap outer child in
    fun () ->
      (* materialize into an array and sort in place: large sorts avoid the
         intermediate list and List.stable_sort's allocation. Under a spill
         configuration the materialization degrades to an external merge
         sort past the threshold instead of blowing the budget. *)
      Perm_fault.trip fp_sort;
      (match spill_config () with
      | Some cfg -> external_sort cfg cmp (run_child ())
      | None ->
        let rows = Array.of_seq (run_child ()) in
        Array.stable_sort cmp rows;
        Array.to_seq rows)
  | Plan.Limit { child; limit; offset } ->
    let run_child = compile ~provider ~wrap outer child in
    fun () ->
      let s = run_child () in
      let s = Seq.drop offset s in
      (match limit with Some n -> Seq.take n s | None -> s)
  | Plan.Prov _ ->
    err "internal: provenance marker reached the executor (rewriter not run)"
  | Plan.Baserel { child; _ } | Plan.External { child; _ } ->
    compile ~provider ~wrap outer child

and compile_join ~provider ~wrap outer kind left right pred =
  let left_schema = Plan.schema left and right_schema = Plan.schema right in
  let l_arity = List.length left_schema and r_arity = List.length right_schema in
  let run_left = compile ~provider ~wrap outer left in
  let run_right = compile ~provider ~wrap outer right in
  let l_resolve = combine_resolvers (resolver_of_schema left_schema) outer in
  let r_resolve = combine_resolvers (resolver_of_schema right_schema) outer in
  let keys, residual =
    match pred with
    | None -> ([], [])
    | Some p -> split_join_pred left_schema right_schema p
  in
  let lkey_fs =
    Array.of_list (List.map (fun k -> compile_expr l_resolve k.l_expr) keys)
  in
  let rkey_fs =
    Array.of_list (List.map (fun k -> compile_expr r_resolve k.r_expr) keys)
  in
  let null_safety = Array.of_list (List.map (fun k -> k.null_safe) keys) in
  let combined_resolve =
    combine_resolvers (resolver_of_schema (left_schema @ right_schema)) outer
  in
  let residual_f =
    match residual with
    | [] -> fun _ -> true
    | preds -> compile_pred combined_resolve (Expr.conjoin preds)
  in
  let key_usable = key_usable null_safety in
  let pad n = Array.make n Value.Null in
  (* The probe body shared by the in-memory and spilled builds: matches
     come back in ascending right-row order (within the hash table /
     chunk), with the residual applied. *)
  let probe_in tbl lrow =
    let key = key_of lkey_fs lrow in
    if not (key_usable key) then []
    else
      match Tuple.Hash.find_opt tbl key with
      | None -> []
      | Some candidates ->
        List.filter_map
          (fun (idx, rrow) ->
            let combined = Tuple.concat lrow rrow in
            if residual_f combined then Some (idx, combined) else None)
          (List.rev candidates)
  in
  let hash_rows rows =
    let tbl = Tuple.Hash.create 256 in
    Array.iteri
      (fun idx rrow ->
        let key = key_of rkey_fs rrow in
        let prev =
          match Tuple.Hash.find_opt tbl key with Some l -> l | None -> []
        in
        Tuple.Hash.replace tbl key ((idx, rrow) :: prev))
      rows;
    tbl
  in
  match kind with
  | Plan.Cross | Plan.Inner | Plan.Left | Plan.Full | Plan.Semi | Plan.Anti ->
    (* The whole build side fits in memory: hash it once and stream the
       probe side through. *)
    let in_memory right_rows : Tuple.t Seq.node =
      let table = hash_rows right_rows in
      let matched_right = Array.make (Array.length right_rows) false in
      let left_seq = run_left () in
      let main =
        Seq.concat_map
          (fun lrow ->
            let matches = probe_in table lrow in
            match kind with
            | Plan.Semi ->
              if matches <> [] then Seq.return lrow else Seq.empty
            | Plan.Anti ->
              if matches = [] then Seq.return lrow else Seq.empty
            | Plan.Inner | Plan.Cross ->
              seq_of_list (List.map snd matches)
            | Plan.Left | Plan.Full ->
              if matches = [] then
                Seq.return (Tuple.concat lrow (pad r_arity))
              else begin
                List.iter (fun (idx, _) -> matched_right.(idx) <- true) matches;
                seq_of_list (List.map snd matches)
              end
            | Plan.Right -> assert false)
          left_seq
      in
      match kind with
      | Plan.Full ->
        (* main must be fully consumed before the right-pad tail so the
           matched_right flags are complete; Seq.append is lazy and
           ordered, which guarantees that *)
        Seq.append main
          (Seq.concat_map
             (fun i ->
               if matched_right.(i) then Seq.empty
               else Seq.return (Tuple.concat (pad l_arity) right_rows.(i)))
             (Seq.init (Array.length right_rows) (fun i -> i)))
          ()
      | _ -> main ()
    in
    (* Spilled build: the build side is cut into threshold-sized chunks on
       temp files and the probe side is materialized to a temp file once.
       Each chunk is hashed in turn and probed with one sequential pass
       over the probe file; matches are written as (probe index, row)
       pairs per chunk, then merged back in probe order, chunk order
       within a probe row. That order — ascending global right-row index
       per probe row, pads in stream position, FULL right-pads appended in
       right order — reproduces the in-memory stream byte for byte while
       holding at most one chunk (plus a probe-side bitmap) in memory. *)
    let spilled cfg first rest : Tuple.t Seq.node =
      let th = cfg.Spill.threshold in
      Spill.note_spill ();
      let chunks = ref [] in
      let flush rows =
        let f = Spill.create cfg in
        List.iter (Spill.push f) rows;
        Spill.rewind f;
        Spill.note_chunk ();
        chunks := f :: !chunks
      in
      flush first;
      let rec consume acc n s =
        match s () with
        | Seq.Nil -> if n > 0 then flush (List.rev acc)
        | Seq.Cons (x, tail) ->
          let acc = x :: acc and n = n + 1 in
          if n = th then begin
            flush (List.rev acc);
            consume [] 0 tail
          end
          else consume acc n tail
      in
      consume [] 0 rest;
      let chunks = Array.of_list (List.rev !chunks) in
      (* materialize the probe side once: its pipeline must run exactly
         one pass whatever the chunk count (progress counters, fault
         schedules and non-reentrant child state all assume one pass) *)
      let probe_file = Spill.create cfg in
      Seq.iter (Spill.push probe_file) (run_left ());
      let n_probe = Spill.count probe_file in
      let matched_left = Bytes.make (max 1 n_probe) '\000' in
      let outs = Array.map (fun _ -> Spill.create cfg) chunks in
      let pads = Spill.create cfg in
      Array.iteri
        (fun ci chunk ->
          let buf = ref [] in
          let rec read_chunk () =
            match Spill.next chunk with
            | Some r ->
              buf := r :: !buf;
              read_chunk ()
            | None -> ()
          in
          read_chunk ();
          let rows = Array.of_list (List.rev !buf) in
          Spill.release chunk;
          let tbl = hash_rows rows in
          let matched_chunk = Array.make (Array.length rows) false in
          Spill.rewind probe_file;
          let out = outs.(ci) in
          let p = ref 0 in
          let rec probe_pass () =
            match Spill.next probe_file with
            | None -> ()
            | Some lrow ->
              let pi = !p in
              incr p;
              (match probe_in tbl lrow with
              | [] -> ()
              | ms ->
                Bytes.set matched_left pi '\001';
                List.iter
                  (fun (idx, combined) ->
                    matched_chunk.(idx) <- true;
                    match kind with
                    | Plan.Inner | Plan.Cross | Plan.Left | Plan.Full ->
                      Spill.push out (pi, combined)
                    | Plan.Semi | Plan.Anti | Plan.Right -> ())
                  ms);
              probe_pass ()
          in
          probe_pass ();
          Spill.rewind out;
          match kind with
          | Plan.Full ->
            Array.iteri
              (fun i rrow ->
                if not matched_chunk.(i) then
                  Spill.push pads (Tuple.concat (pad l_arity) rrow))
              rows
          | _ -> ())
        chunks;
      Spill.rewind pads;
      Spill.rewind probe_file;
      let heads = Array.map Spill.next outs in
      let release_everything () =
        Array.iter Spill.release outs;
        Spill.release probe_file;
        Spill.release pads
      in
      (* matches of one probe row, chunks in order — ascending global
         right-row index, like the in-memory probe *)
      let matches_for pi =
        let acc = ref [] in
        for ci = 0 to Array.length outs - 1 do
          let more = ref true in
          while !more do
            match heads.(ci) with
            | Some (p, combined) when p = pi ->
              acc := combined :: !acc;
              heads.(ci) <- Spill.next outs.(ci)
            | _ -> more := false
          done
        done;
        List.rev !acc
      in
      let next_probe = ref 0 in
      let rec main () =
        match Spill.next probe_file with
        | None -> (
          match kind with
          | Plan.Full -> pads_tail ()
          | _ ->
            release_everything ();
            Seq.Nil)
        | Some lrow -> (
          let pi = !next_probe in
          incr next_probe;
          let matched = Bytes.get matched_left pi = '\001' in
          match kind with
          | Plan.Semi -> if matched then Seq.Cons (lrow, main) else main ()
          | Plan.Anti ->
            if not matched then Seq.Cons (lrow, main) else main ()
          | Plan.Inner | Plan.Cross -> seq_append_list (matches_for pi) main
          | Plan.Left | Plan.Full ->
            if not matched then
              Seq.Cons (Tuple.concat lrow (pad r_arity), main)
            else seq_append_list (matches_for pi) main
          | Plan.Right -> assert false)
      and pads_tail () =
        match Spill.next pads with
        | None ->
          release_everything ();
          Seq.Nil
        | Some row -> Seq.Cons (row, pads_tail)
      in
      main ()
    in
    fun () ->
      Seq.memoize
        (fun () ->
          (* build on the right *)
          Perm_fault.trip fp_join_build;
          match spill_config () with
          | Some cfg -> (
            let first, rest = take_up_to cfg.Spill.threshold (run_right ()) in
            match rest () with
            | Seq.Nil -> in_memory (Array.of_list first)
            | Seq.Cons (x0, rest') ->
              spilled cfg first (fun () -> Seq.Cons (x0, rest')))
          | None -> in_memory (Array.of_seq (run_right ())))
  | Plan.Right ->
    (* evaluate as a left join with sides swapped, then reorder columns *)
    let swapped =
      Plan.Join { kind = Plan.Left; left = right; right = left; pred }
    in
    let run = compile ~provider ~wrap outer swapped in
    fun () ->
      Seq.map
        (fun row ->
          let l = Array.sub row r_arity l_arity in
          let r = Array.sub row 0 r_arity in
          Tuple.concat l r)
        (run ())

and compile_apply ~provider ~wrap outer kind left right =
  let left_schema = Plan.schema left in
  let run_left = compile ~provider ~wrap outer left in
  (* the right side resolves left attributes against the current outer row *)
  let current_left : Tuple.t ref = ref [||] in
  let left_positions = Hashtbl.create 16 in
  List.iteri
    (fun i (a : Attr.t) -> Hashtbl.replace left_positions a.Attr.id i)
    left_schema;
  let right_outer : resolver =
   fun a ->
    match Hashtbl.find_opt left_positions a.Attr.id with
    | Some i -> Some (fun _ -> !current_left.(i))
    | None -> outer a
  in
  let run_right = compile ~provider ~wrap right_outer right in
  let r_arity = List.length (Plan.schema right) in
  fun () ->
    Seq.concat_map
      (fun lrow ->
        current_left := lrow;
        let rows = List.of_seq (run_right ()) in
        match kind with
        | Plan.A_cross ->
          seq_of_list (List.map (fun r -> Tuple.concat lrow r) rows)
        | Plan.A_outer ->
          if rows = [] then
            Seq.return (Tuple.concat lrow (Array.make r_arity Value.Null))
          else seq_of_list (List.map (fun r -> Tuple.concat lrow r) rows)
        | Plan.A_scalar _ -> (
          match rows with
          | [] -> Seq.return (Tuple.concat lrow [| Value.Null |])
          | [ r ] -> Seq.return (Tuple.concat lrow [| r.(0) |])
          | _ -> err "scalar subquery returned more than one row")
        | Plan.A_semi -> if rows <> [] then Seq.return lrow else Seq.empty
        | Plan.A_anti -> if rows = [] then Seq.return lrow else Seq.empty)
      (run_left ())

and compile_aggregate ~provider ~wrap outer child group_by aggs =
  let resolve =
    combine_resolvers (resolver_of_schema (Plan.schema child)) outer
  in
  let group_fs = List.map (fun (e, _) -> compile_expr resolve e) group_by in
  let agg_arg_fs =
    List.map
      (fun (c : Plan.agg_call) -> Option.map (compile_expr resolve) c.arg)
      aggs
  in
  let run_child = compile ~provider ~wrap outer child in
  let global = group_by = [] in
  fun () ->
    Seq.memoize
      (fun () ->
        Perm_fault.trip fp_agg_merge;
        let groups : (Tuple.t * agg_state list) Tuple.Hash.t =
          Tuple.Hash.create 64
        in
        let order = ref [] in
        Seq.iter
          (fun row ->
            let key = Array.of_list (List.map (fun f -> f row) group_fs) in
            let states =
              match Tuple.Hash.find_opt groups key with
              | Some (_, states) -> states
              | None ->
                let states = List.map new_agg_state aggs in
                Tuple.Hash.replace groups key (key, states);
                budget_materialized ~what:"GROUP BY"
                  (Tuple.Hash.length groups);
                order := key :: !order;
                states
            in
            List.iter2
              (fun (call : Plan.agg_call) (state, argf) ->
                let v =
                  match argf with None -> None | Some f -> Some (f row)
                in
                agg_feed call state v)
              aggs
              (List.combine states agg_arg_fs))
          (run_child ());
        let emit key states =
          Array.append key
            (Array.of_list
               (List.map2 (fun call st -> agg_result call st) aggs states))
        in
        if global && Tuple.Hash.length groups = 0 then
          (* aggregate over an empty input: one row of defaults *)
          Seq.return (emit [||] (List.map new_agg_state aggs)) ()
        else
          seq_of_list
            (List.rev_map
               (fun key ->
                 let key, states = Tuple.Hash.find groups key in
                 emit key states)
               !order)
            ())

and compile_set_op ~provider ~wrap outer kind all left right =
  let run_left = compile ~provider ~wrap outer left in
  let run_right = compile ~provider ~wrap outer right in
  match kind, all with
  | Plan.Union, true -> fun () -> Seq.append (run_left ()) (run_right ())
  | Plan.Union, false ->
    fun () ->
      Seq.memoize
        (fun () ->
          let seen = Tuple.Hash.create 64 in
          Seq.filter
            (fun row ->
              if Tuple.Hash.mem seen row then false
              else begin
                Tuple.Hash.replace seen row ();
                budget_materialized ~what:"UNION" (Tuple.Hash.length seen);
                true
              end)
            (Seq.append (run_left ()) (run_right ()))
            ())
  | (Plan.Intersect | Plan.Except), _ ->
    fun () ->
      Seq.memoize
        (fun () ->
          let counts = Tuple.Hash.create 64 in
          Seq.iter
            (fun row ->
              let c =
                match Tuple.Hash.find_opt counts row with
                | Some c -> c
                | None ->
                  budget_materialized ~what:"INTERSECT/EXCEPT"
                    (Tuple.Hash.length counts + 1);
                  0
              in
              Tuple.Hash.replace counts row (c + 1))
            (run_right ());
          let emitted = Tuple.Hash.create 64 in
          Seq.filter
            (fun row ->
              let rc =
                match Tuple.Hash.find_opt counts row with
                | Some c -> c
                | None -> 0
              in
              match kind, all with
              | Plan.Intersect, true ->
                if rc > 0 then begin
                  Tuple.Hash.replace counts row (rc - 1);
                  true
                end
                else false
              | Plan.Intersect, false ->
                if rc > 0 && not (Tuple.Hash.mem emitted row) then begin
                  Tuple.Hash.replace emitted row ();
                  true
                end
                else false
              | Plan.Except, true ->
                if rc > 0 then begin
                  Tuple.Hash.replace counts row (rc - 1);
                  false
                end
                else true
              | Plan.Except, false ->
                if rc = 0 && not (Tuple.Hash.mem emitted row) then begin
                  Tuple.Hash.replace emitted row ();
                  budget_materialized ~what:"EXCEPT"
                    (Tuple.Hash.length emitted);
                  true
                end
                else false
              | Plan.Union, _ -> assert false)
            (run_left ())
            ())

(* ------------------------------------------------------------------ *)
(* Cooperative guardrails                                              *)
(* ------------------------------------------------------------------ *)

(* Rows between two token checks. Checks cost one atomic load plus (for
   armed deadlines) a clock read, so batching keeps the armed-but-idle
   overhead in the noise while still bounding kill latency to a few
   hundred tuples per operator. *)
let guard_interval = 256

(* The guard only wraps operators that can *create* row multiplicity —
   sources, joins, aggregations, sorts, set ops. Pass-through nodes
   (Project/Filter/Limit) emit at most one row per guarded input row, so
   wrapping them too would only add a Seq.map allocation per row per node
   (provenance rewrites are projection-heavy: measured >2x on join-bound
   queries) without tightening the cancellation bound: every stream is
   charged at its multiplicity source, and every operator (re)invocation
   — the Apply case — re-checks the deadline at thunk start. *)
let guard_this_node (node : Plan.t) =
  match node with
  | Plan.Project _ | Plan.Filter _ | Plan.Limit _ -> false
  | _ -> true

(* Per-operator guard, same compile-time hook as instrumentation: counts
   rows flowing out of each operator and charges the token in batches.
   Installed only when the token is active — the unguarded path compiles
   the exact same closures as before. *)
let guard_wrap (token : Token.t) : wrapper =
 fun node thunk ->
  if not (guard_this_node node) then thunk
  else
    fun () ->
      Token.check token;
      let pending = ref 0 in
      Seq.map
        (fun row ->
          incr pending;
          if !pending >= guard_interval then begin
            Token.charge token !pending;
            pending := 0
          end;
          row)
        (thunk ())

(* The same guard for push-based parallel fragments: wraps a morsel
   worker's emit sink. Must be instantiated once per task so the pending
   counter stays domain-local. *)
let guard_emit (token : Token.t) emit =
  if not (Token.active token) then emit
  else begin
    let pending = ref 0 in
    fun row ->
      incr pending;
      if !pending >= guard_interval then begin
        Token.charge token !pending;
        pending := 0
      end;
      emit row
  end

let over_row_limit limit =
  raise
    (Perm_err.Cancel
       ( Perm_err.Resource_exhausted,
         Printf.sprintf "row limit exceeded (limit %d)" limit ))

(* Root materialization: the one place every result passes through, so the
   row-limit guardrail and the live row-progress counter live here. *)
let materialize ?row_limit ?progress seq =
  let seq =
    match progress with
    | None -> seq
    | Some p ->
      Seq.map
        (fun row ->
          Progress.incr_rows p;
          row)
        seq
  in
  match row_limit with
  | None -> List.of_seq seq
  | Some limit ->
    let count = ref 0 in
    List.of_seq
      (Seq.map
         (fun row ->
           incr count;
           if !count > limit then over_row_limit limit;
           row)
         seq)

(* ------------------------------------------------------------------ *)
(* Vectorized batch-at-a-time execution                                *)
(* ------------------------------------------------------------------ *)

(* The batch path exchanges columnar batches (column arrays + a selection
   vector, [Perm_storage.Batch]) between operators instead of pulling one
   tuple at a time through per-row closures. Filters narrow the selection
   vector with tight kernels specialized on the constant's constructor;
   projections on dense batches share column pointers (the provenance
   rewrites are projection-heavy, so attribute moves become free); joins
   expand matches out of line into capped output batches; aggregation feeds
   group states from column reads. Every kernel applies the exact same
   [Value] operations in the exact same row order as the row path, so
   results are byte-identical by construction and the serial/parallel
   determinism contract carries over unchanged. *)

let default_batch_rows = 1024

type bop = unit -> Batch.t Seq.t
type bwrapper = Plan.t -> bop -> bop

let no_bwrap : bwrapper = fun _ thunk -> thunk

(* Plans containing correlated subplans (Apply) or an unrewritten
   provenance marker fall back to the row path wholesale. *)
let rec batch_supported (p : Plan.t) =
  match p with
  | Plan.Apply _ | Plan.Prov _ -> false
  | _ -> List.for_all batch_supported (Plan.children p)

let batch_eligible = batch_supported

(* Attribute -> column position over a schema (no outer resolution: the
   batch path never sees Apply). *)
let positions_of_schema (schema : Attr.t list) : Attr.t -> int option =
  let table = Hashtbl.create 16 in
  List.iteri (fun i (a : Attr.t) -> Hashtbl.replace table a.Attr.id i) schema;
  fun a -> Hashtbl.find_opt table a.Attr.id

(* Batch expression evaluator: [f b p] evaluates over physical row [p] of
   batch [b]. Plain attributes and constants compile to direct array
   reads; everything else reuses the row compiler through a current-row
   cursor, so semantics and error messages are identical by construction.
   The cursor makes general evaluators stateful: NOT shareable across
   domains — the parallel path instantiates them per morsel. *)
let bexpr_of (pos : Attr.t -> int option) (e : Expr.t) : Batch.t -> int -> Value.t =
  match e with
  | Expr.Const v -> fun _ _ -> v
  | Expr.Attr a -> (
    match pos a with
    | Some i -> fun b p -> (Batch.col b i).(p)
    | None -> errf "internal: unbound attribute %s#%d" a.Attr.name a.Attr.id)
  | e ->
    let cur = ref (Batch.dense [||] 0) in
    let cp = ref 0 in
    let resolve : resolver =
     fun a ->
      match pos a with
      | Some i -> Some (fun _ -> (Batch.col !cur i).(!cp))
      | None -> None
    in
    let f = compile_expr resolve e in
    fun b p ->
      cur := b;
      cp := p;
      f [||]

let bpred_of pos e =
  let f = bexpr_of pos e in
  fun b p -> Tristate.is_true (unwrap (Tristate.of_value (f b p)))

(* Multi-column key extraction by physical index (join keys, group keys). *)
let key_filler pos exprs : Batch.t -> int -> Tuple.t =
  let gets = Array.of_list (List.map (bexpr_of pos) exprs) in
  let n = Array.length gets in
  fun b p ->
    let key = Array.make n Value.Null in
    for i = 0 to n - 1 do
      key.(i) <- (Array.unsafe_get gets i) b p
    done;
    key

let brow (b : Batch.t) p = Array.map (fun col -> col.(p)) b.Batch.cols

(* Chunk a row array into dense batches of at most [batch_rows] rows. *)
let batches_of_rows ~arity ~batch_rows (rows : Tuple.t array) : Batch.t Seq.t =
  let len = Array.length rows in
  let size = max 1 batch_rows in
  Seq.init
    ((len + size - 1) / size)
    (fun i ->
      let pos = i * size in
      Batch.of_rows ~arity rows ~pos ~len:(min size (len - pos)))

let batches_of_tuple_list ~arity ~batch_rows rows =
  batches_of_rows ~arity ~batch_rows (Array.of_list rows)

(* Materialize a batch stream into tuples, raising Fallback_needed as
   soon as the count passes the spill threshold — the fallback must fire
   before the memory spike it exists to bound, not after full
   materialization. *)
let collect_tuples_bounded ~what (bs : Batch.t Seq.t) : Tuple.t array =
  let limit =
    match spill_config () with
    | Some c -> c.Spill.threshold
    | None -> max_int
  in
  let acc = ref [] in
  let n = ref 0 in
  Seq.iter
    (fun b ->
      n := !n + Batch.live b;
      if !n > limit then spill_fallback ~what !n limit;
      List.iter (fun t -> acc := t :: !acc) (Batch.to_tuples b))
    bs;
  Array.of_list (List.rev !acc)

(* Incremental-threshold Array.of_seq for tuple streams (parallel build
   sides): same contract as {!collect_tuples_bounded}. *)
let array_of_seq_bounded ~what (seq : Tuple.t Seq.t) : Tuple.t array =
  let limit =
    match spill_config () with
    | Some c -> c.Spill.threshold
    | None -> max_int
  in
  let acc = ref [] in
  let n = ref 0 in
  Seq.iter
    (fun t ->
      incr n;
      if !n > limit then spill_fallback ~what !n limit;
      acc := t :: !acc)
    seq;
  Array.of_list (List.rev !acc)

(* ---- filter kernels ---------------------------------------------- *)

(* A conjunct kernel narrows sel[0..n-1] in place and returns the new live
   count. Hot comparison shapes get a [Value.t -> bool] test specialized
   on the constant's constructor; every non-matching arm falls back to the
   generic SQL operator, so numeric promotion, NULL handling and the
   type-rank total order behave identically to the row path. *)
let generic_keep op v k =
  match op v k with Value.Bool b -> b | _ -> false

(* Ordered comparisons: int/date arms use [rel_i], an inline primitive
   comparison on unboxed ints (no polymorphic-compare C call per row);
   float arms take [Stdlib.compare] through [rel] so they keep
   [Value.compare]'s total order (NaN included). *)
let test_rel sqlop (rel : int -> bool) (rel_i : int -> int -> bool) k =
  match k with
  | Value.Int y -> (
    function
    | Value.Int x -> rel_i x y
    | Value.Null -> false
    | v -> generic_keep sqlop v k)
  | Value.Float y -> (
    function
    | Value.Float x -> rel (Stdlib.compare x y)
    | Value.Int x -> rel (Stdlib.compare (float_of_int x) y)
    | Value.Null -> false
    | v -> generic_keep sqlop v k)
  | Value.Text y -> (
    function
    | Value.Text x -> rel (String.compare x y)
    | Value.Null -> false
    | v -> generic_keep sqlop v k)
  | Value.Date y -> (
    function
    | Value.Date x -> rel_i x y
    | Value.Null -> false
    | v -> generic_keep sqlop v k)
  | k -> fun v -> generic_keep sqlop v k

let test_eq k =
  match k with
  | Value.Int y -> (
    function
    | Value.Int x -> x = y
    | Value.Null -> false
    | v -> generic_keep Value.sql_eq v k)
  | Value.Float y -> (
    function
    | Value.Float x -> x = y
    | Value.Int x -> float_of_int x = y
    | Value.Null -> false
    | v -> generic_keep Value.sql_eq v k)
  | Value.Text y -> (
    function
    | Value.Text x -> String.equal x y
    | Value.Null -> false
    | v -> generic_keep Value.sql_eq v k)
  | Value.Date y -> (
    function
    | Value.Date x -> x = y
    | Value.Null -> false
    | v -> generic_keep Value.sql_eq v k)
  | k -> fun v -> generic_keep Value.sql_eq v k

let test_neq k =
  let eq = test_eq k in
  fun v -> if Value.is_null v then false else not (eq v)

let test_for op k =
  match op with
  | Expr.Eq -> Some (test_eq k)
  | Expr.Neq -> Some (test_neq k)
  | Expr.Lt ->
    Some (test_rel Value.sql_lt (fun c -> c < 0) (fun (x : int) y -> x < y) k)
  | Expr.Leq ->
    Some (test_rel Value.sql_leq (fun c -> c <= 0) (fun (x : int) y -> x <= y) k)
  | Expr.Gt ->
    Some (test_rel Value.sql_gt (fun c -> c > 0) (fun (x : int) y -> x > y) k)
  | Expr.Geq ->
    Some (test_rel Value.sql_geq (fun c -> c >= 0) (fun (x : int) y -> x >= y) k)
  | _ -> None

(* [attr OP const] with the constant on the left flips to the mirrored
   operator over the attribute. *)
let flip_op = function
  | Expr.Eq -> Expr.Eq
  | Expr.Neq -> Expr.Neq
  | Expr.Lt -> Expr.Gt
  | Expr.Leq -> Expr.Geq
  | Expr.Gt -> Expr.Lt
  | Expr.Geq -> Expr.Leq
  | op -> op

let narrow_col ci (test : Value.t -> bool) : Batch.t -> int array -> int -> int
    =
 fun b sel n ->
  let col = b.Batch.cols.(ci) in
  let m = ref 0 in
  for i = 0 to n - 1 do
    let p = Array.unsafe_get sel i in
    if test (Array.unsafe_get col p) then begin
      Array.unsafe_set sel !m p;
      incr m
    end
  done;
  !m

let narrow_generic (keep : Batch.t -> int -> bool) :
    Batch.t -> int array -> int -> int =
 fun b sel n ->
  let m = ref 0 in
  for i = 0 to n - 1 do
    let p = Array.unsafe_get sel i in
    if keep b p then begin
      Array.unsafe_set sel !m p;
      incr m
    end
  done;
  !m

(* NOT thread-safe in general (generic fallback kernels carry a row
   cursor): instantiate per worker on the parallel path. *)
let conjunct_kernel (pos : Attr.t -> int option) (c : Expr.t) :
    Batch.t -> int array -> int -> int =
  let col a = pos a in
  let fallback () = narrow_generic (bpred_of pos c) in
  match c with
  | Expr.Binop
      ( (Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq) as op,
        Expr.Attr a,
        Expr.Const k ) -> (
    match col a, test_for op k with
    | Some ci, Some test -> narrow_col ci test
    | _ -> fallback ())
  | Expr.Binop
      ( (Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq) as op,
        Expr.Const k,
        Expr.Attr a ) -> (
    match col a, test_for (flip_op op) k with
    | Some ci, Some test -> narrow_col ci test
    | _ -> fallback ())
  | Expr.Binop
      ( Expr.Eq,
        Expr.Binop (Expr.Mod, Expr.Attr a, Expr.Const (Value.Int m)),
        Expr.Const (Value.Int r) )
    when m <> 0 -> (
    match col a with
    | Some ci ->
      narrow_col ci (function
        | Value.Int x -> x mod m = r
        | Value.Null -> false
        | v ->
          errf "%% expects integers, got %s and %s" (Value.to_string v)
            (Value.to_string (Value.Int m)))
    | None -> fallback ())
  | Expr.Binop ((Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq) as op,
                Expr.Attr a, Expr.Attr b) -> (
    match col a, col b with
    | Some ci, Some cj ->
      let sqlop =
        match op with
        | Expr.Eq -> Value.sql_eq
        | Expr.Neq -> Value.sql_neq
        | Expr.Lt -> Value.sql_lt
        | Expr.Leq -> Value.sql_leq
        | Expr.Gt -> Value.sql_gt
        | Expr.Geq -> Value.sql_geq
        | _ -> assert false
      in
      narrow_generic (fun bt p ->
          generic_keep sqlop bt.Batch.cols.(ci).(p) bt.Batch.cols.(cj).(p))
    | _ -> fallback ())
  | Expr.Unop (Expr.Is_null, Expr.Attr a) -> (
    match col a with
    | Some ci -> narrow_col ci Value.is_null
    | None -> fallback ())
  | Expr.Unop (Expr.Not, Expr.Unop (Expr.Is_null, Expr.Attr a)) -> (
    match col a with
    | Some ci -> narrow_col ci (fun v -> not (Value.is_null v))
    | None -> fallback ())
  | Expr.Binop (Expr.Like, Expr.Attr a, Expr.Const (Value.Text _ as pat)) -> (
    match col a with
    | Some ci -> narrow_col ci (fun v -> generic_keep Value.like v pat)
    | None -> fallback ())
  | _ -> fallback ()

let filter_kernels pos pred = List.map (conjunct_kernel pos) (Expr.conjuncts pred)

(* Conjunct-wise narrowing evaluates exactly the (row, conjunct) pairs a
   short-circuiting AND would: rows failing conjunct i never see conjunct
   i+1. *)
let apply_filter kernels b =
  let n0 = Batch.live b in
  if n0 = 0 then None
  else
    let sel = Batch.sel_array b in
    let n =
      List.fold_left (fun n k -> if n = 0 then 0 else k b sel n) n0 kernels
    in
    if n = 0 then None else Some (Batch.with_sel b sel n)

(* ---- projection kernels ------------------------------------------ *)

type col_builder =
  | Share of int  (* plain attribute: share the column pointer when dense *)
  | Compute of (Batch.t -> int -> Value.t)

let project_builders pos cols =
  Array.of_list
    (List.map
       (fun (e, _) ->
         match e with
         | Expr.Attr a -> (
           match pos a with
           | Some i -> Share i
           | None -> Compute (bexpr_of pos e))
         | e -> Compute (bexpr_of pos e))
       cols)

let apply_project builders b =
  let all_share =
    Array.for_all (function Share _ -> true | Compute _ -> false) builders
  in
  if all_share then
    (* plain-attribute projection: share column pointers and keep the
       selection vector — no per-row copying even on filtered batches *)
    Batch.with_cols b
      (Array.map
         (function Share i -> Batch.col b i | Compute _ -> assert false)
         builders)
  else
    let n = Batch.live b in
    let dense = Batch.is_dense b in
    let cols =
      Array.map
        (function
          | Share i ->
            if dense then Batch.col b i
            else begin
              let src = Batch.col b i in
              let dst = Array.make n Value.Null in
              for j = 0 to n - 1 do
                dst.(j) <- src.(Batch.idx b j)
              done;
              dst
            end
          | Compute f ->
            let dst = Array.make n Value.Null in
            for j = 0 to n - 1 do
              dst.(j) <- f b (Batch.idx b j)
            done;
            dst)
        builders
    in
    Batch.dense cols n

(* ---- join probe kernel ------------------------------------------- *)

(* Probe one left batch against a built join hash table. Semi/Anti narrow
   the selection vector in place; the expanding kinds gather matches out
   of line (left physical index + right row reference) and flush into
   dense output batches capped at [batch_rows], so giant expansions stay
   streamed and the cancel token keeps batch-granular kill latency.
   Candidate order is [List.rev] of the build list — exactly the row
   path's probe order, so output rows are byte-identical. *)
let probe_batch ~kind ~r_arity ~batch_rows ~(lkey : Batch.t -> int -> Tuple.t)
    ~usable ~(tbl : (int * Tuple.t) list Tuple.Hash.t)
    ~(residual_f : (Tuple.t -> bool) option)
    ~(matched_right : bool array option) (lb : Batch.t) : Batch.t list =
  let find key =
    if not (usable key) then []
    else
      match Tuple.Hash.find_opt tbl key with
      | None -> []
      | Some l -> List.rev l
  in
  match kind with
  | Plan.Semi | Plan.Anti ->
    let want = kind = Plan.Semi in
    let sel = Batch.sel_array lb in
    let n = Batch.live lb in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let p = sel.(i) in
      let cands = find (lkey lb p) in
      let hit =
        match residual_f with
        | None -> cands <> []
        | Some rf ->
          let lrow = brow lb p in
          List.exists (fun (_, rrow) -> rf (Tuple.concat lrow rrow)) cands
      in
      if hit = want then begin
        sel.(!m) <- p;
        incr m
      end
    done;
    if !m = 0 then [] else [ Batch.with_sel lb sel !m ]
  | Plan.Inner | Plan.Cross | Plan.Left | Plan.Full ->
    let l_arity = Batch.arity lb in
    let cap = max 1 batch_rows in
    let lidx = Array.make cap 0 in
    let pad_row = Array.make r_arity Value.Null in
    let rref = Array.make cap pad_row in
    let cnt = ref 0 in
    let out = ref [] in
    let flush () =
      if !cnt > 0 then begin
        let n = !cnt in
        let cols = Array.make (l_arity + r_arity) [||] in
        for c = 0 to l_arity - 1 do
          let src = lb.Batch.cols.(c) in
          let dst = Array.make n Value.Null in
          for j = 0 to n - 1 do
            dst.(j) <- src.(lidx.(j))
          done;
          cols.(c) <- dst
        done;
        for c = 0 to r_arity - 1 do
          let dst = Array.make n Value.Null in
          for j = 0 to n - 1 do
            dst.(j) <- (rref.(j)).(c)
          done;
          cols.(l_arity + c) <- dst
        done;
        out := Batch.dense cols n :: !out;
        cnt := 0
      end
    in
    let push p rrow =
      lidx.(!cnt) <- p;
      rref.(!cnt) <- rrow;
      incr cnt;
      if !cnt = cap then flush ()
    in
    let mark idx =
      match matched_right with Some m -> m.(idx) <- true | None -> ()
    in
    Batch.iter_live
      (fun p ->
        let cands = find (lkey lb p) in
        match kind with
        | Plan.Inner | Plan.Cross -> (
          match residual_f with
          | None -> List.iter (fun (_, rrow) -> push p rrow) cands
          | Some rf ->
            let lrow = brow lb p in
            List.iter
              (fun (_, rrow) ->
                if rf (Tuple.concat lrow rrow) then push p rrow)
              cands)
        | Plan.Left | Plan.Full ->
          let any = ref false in
          (match residual_f with
          | None ->
            List.iter
              (fun (idx, rrow) ->
                any := true;
                mark idx;
                push p rrow)
              cands
          | Some rf ->
            let lrow = brow lb p in
            List.iter
              (fun (idx, rrow) ->
                if rf (Tuple.concat lrow rrow) then begin
                  any := true;
                  mark idx;
                  push p rrow
                end)
              cands);
          if not !any then push p pad_row
        | Plan.Semi | Plan.Anti | Plan.Right -> assert false)
      lb;
    flush ();
    List.rev !out
  | Plan.Right -> assert false

(* ---- batch operator compilation ---------------------------------- *)

let rec compile_batch ~(provider : provider) ~batch_rows ~(bwrap : bwrapper)
    (plan : Plan.t) : bop =
  bwrap plan (compile_batch_node ~provider ~batch_rows ~bwrap plan)

and compile_batch_node ~provider ~batch_rows ~bwrap (plan : Plan.t) : bop =
  match plan with
  | Plan.Scan { table; _ } ->
    fun () -> Array.to_seq (provider.scan_batches table batch_rows)
  | Plan.Index_scan { table; key_col; key; _ } ->
    let arity = List.length (Plan.schema plan) in
    let fkey = compile_expr no_outer key in
    fun () ->
      batches_of_tuple_list ~arity ~batch_rows
        (List.of_seq (provider.probe_index table key_col (fkey [||])))
  | Plan.Values { rows; _ } ->
    let arity = List.length (Plan.schema plan) in
    let compiled =
      List.map (fun row -> List.map (compile_expr no_outer) row) rows
    in
    fun () ->
      batches_of_tuple_list ~arity ~batch_rows
        (List.map
           (fun row -> Array.of_list (List.map (fun f -> f [||]) row))
           compiled)
  | Plan.Project { child; cols } ->
    let pos = positions_of_schema (Plan.schema child) in
    let builders = project_builders pos cols in
    let run_child = compile_batch ~provider ~batch_rows ~bwrap child in
    fun () -> Seq.map (apply_project builders) (run_child ())
  | Plan.Filter { child; pred } ->
    let pos = positions_of_schema (Plan.schema child) in
    let kernels = filter_kernels pos pred in
    let run_child = compile_batch ~provider ~batch_rows ~bwrap child in
    fun () -> Seq.filter_map (apply_filter kernels) (run_child ())
  | Plan.Join { kind; left; right; pred } ->
    compile_batch_join ~provider ~batch_rows ~bwrap kind left right pred
  | Plan.Aggregate { child; group_by; aggs } ->
    compile_batch_aggregate ~provider ~batch_rows ~bwrap child group_by aggs
  | Plan.Distinct child ->
    let run_child = compile_batch ~provider ~batch_rows ~bwrap child in
    fun () ->
      Seq.memoize
        (fun () ->
          let seen = Tuple.Hash.create 64 in
          Seq.filter_map
            (fun b ->
              let sel = Batch.sel_array b in
              let n = Batch.live b in
              let m = ref 0 in
              for i = 0 to n - 1 do
                let p = sel.(i) in
                let row = brow b p in
                if not (Tuple.Hash.mem seen row) then begin
                  Tuple.Hash.replace seen row ();
                  sel.(!m) <- p;
                  incr m
                end
              done;
              budget_materialized ~what:"DISTINCT" (Tuple.Hash.length seen);
              if !m = 0 then None else Some (Batch.with_sel b sel !m))
            (run_child ())
            ())
  | Plan.Set_op { kind; all; left; right; _ } ->
    compile_batch_set_op ~provider ~batch_rows ~bwrap kind all left right
  | Plan.Sort { child; keys } ->
    let resolve = resolver_of_schema (Plan.schema child) in
    let keyfs =
      List.map (fun (e, dir) -> (compile_expr resolve e, dir)) keys
    in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (f, dir) :: rest ->
          let c = Value.compare (f a) (f b) in
          let c = match dir with Plan.Asc -> c | Plan.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go keyfs
    in
    let arity = List.length (Plan.schema child) in
    let run_child = compile_batch ~provider ~batch_rows ~bwrap child in
    fun () ->
      Perm_fault.trip fp_sort;
      (* the batch path does not spill; hand oversized sorts back to the
         engine (which retries on the spilling row path) as soon as the
         threshold is crossed, before the full input is in memory *)
      let rows = collect_tuples_bounded ~what:"sort" (run_child ()) in
      Array.stable_sort cmp rows;
      batches_of_rows ~arity ~batch_rows rows
  | Plan.Limit { child; limit; offset } ->
    let run_child = compile_batch ~provider ~batch_rows ~bwrap child in
    fun () ->
      let rec go skip rem s () =
        if rem = 0 then Seq.Nil
        else
          match s () with
          | Seq.Nil -> Seq.Nil
          | Seq.Cons (b, rest) ->
            let n = Batch.live b in
            if skip >= n then go (skip - n) rem rest ()
            else
              let take_n = min rem (n - skip) in
              let b' =
                if skip = 0 && take_n = n then b
                else
                  let sel = Batch.sel_array b in
                  Batch.with_sel b (Array.sub sel skip take_n) take_n
              in
              Seq.Cons (b', go 0 (rem - take_n) rest)
      in
      go offset
        (match limit with Some n -> n | None -> max_int)
        (run_child ())
  | Plan.Apply _ ->
    err "internal: Apply reached the batch compiler (not batch-eligible)"
  | Plan.Prov _ ->
    err "internal: provenance marker reached the executor (rewriter not run)"
  | Plan.Baserel { child; _ } | Plan.External { child; _ } ->
    compile_batch ~provider ~batch_rows ~bwrap child

and compile_batch_join ~provider ~batch_rows ~bwrap kind left right pred =
  let left_schema = Plan.schema left and right_schema = Plan.schema right in
  let l_arity = List.length left_schema
  and r_arity = List.length right_schema in
  match kind with
  | Plan.Right ->
    (* evaluate as a left join with sides swapped, then permute the column
       arrays back — a pointer shuffle per batch, no row rebuilds *)
    let swapped =
      Plan.Join { kind = Plan.Left; left = right; right = left; pred }
    in
    let run = compile_batch ~provider ~batch_rows ~bwrap swapped in
    fun () ->
      Seq.map
        (fun b ->
          let b = Batch.compact b in
          let cols =
            Array.append
              (Array.sub b.Batch.cols r_arity l_arity)
              (Array.sub b.Batch.cols 0 r_arity)
          in
          Batch.dense cols b.Batch.rows)
        (run ())
  | _ ->
    let run_left = compile_batch ~provider ~batch_rows ~bwrap left in
    let run_right = compile_batch ~provider ~batch_rows ~bwrap right in
    let l_pos = positions_of_schema left_schema in
    let r_resolve = resolver_of_schema right_schema in
    let keys, residual =
      match pred with
      | None -> ([], [])
      | Some p -> split_join_pred left_schema right_schema p
    in
    let lkey = key_filler l_pos (List.map (fun k -> k.l_expr) keys) in
    let rkey_fs =
      Array.of_list (List.map (fun k -> compile_expr r_resolve k.r_expr) keys)
    in
    let null_safety = Array.of_list (List.map (fun k -> k.null_safe) keys) in
    let residual_f =
      match residual with
      | [] -> None
      | preds ->
        Some
          (compile_pred
             (resolver_of_schema (left_schema @ right_schema))
             (Expr.conjoin preds))
    in
    let usable = key_usable null_safety in
    fun () ->
      Seq.memoize
        (fun () ->
          Perm_fault.trip fp_join_build;
          let tbl = Tuple.Hash.create 256 in
          (* the batch path does not spill; hand oversized builds back to
             the engine (which retries on the spilling row path) as soon
             as the threshold is crossed, before the full build side is
             in memory *)
          let right_rows =
            collect_tuples_bounded ~what:"join build" (run_right ())
          in
          let matched_right =
            match kind with
            | Plan.Full -> Some (Array.make (Array.length right_rows) false)
            | _ -> None
          in
          Array.iteri
            (fun idx rrow ->
              let key = key_of rkey_fs rrow in
              let prev =
                match Tuple.Hash.find_opt tbl key with
                | Some l -> l
                | None -> []
              in
              Tuple.Hash.replace tbl key ((idx, rrow) :: prev))
            right_rows;
          let main =
            Seq.concat_map
              (fun lb ->
                List.to_seq
                  (probe_batch ~kind ~r_arity ~batch_rows ~lkey ~usable ~tbl
                     ~residual_f ~matched_right lb))
              (run_left ())
          in
          match kind with
          | Plan.Full ->
            let matched = Option.get matched_right in
            let tail () =
              let unmatched = ref [] in
              Array.iteri
                (fun i rrow ->
                  if not matched.(i) then
                    unmatched :=
                      Tuple.concat (Array.make l_arity Value.Null) rrow
                      :: !unmatched)
                right_rows;
              batches_of_tuple_list ~arity:(l_arity + r_arity) ~batch_rows
                (List.rev !unmatched)
                ()
            in
            (* main must be fully consumed before the tail is forced so the
               matched flags are complete; Seq.append guarantees that *)
            Seq.append main tail ()
          | _ -> main ())

and compile_batch_aggregate ~provider ~batch_rows ~bwrap child group_by aggs =
  let pos = positions_of_schema (Plan.schema child) in
  let gkey = key_filler pos (List.map fst group_by) in
  let aggs_arr = Array.of_list aggs in
  let nagg = Array.length aggs_arr in
  let arg_gets =
    Array.of_list
      (List.map
         (fun (c : Plan.agg_call) -> Option.map (bexpr_of pos) c.arg)
         aggs)
  in
  let run_child = compile_batch ~provider ~batch_rows ~bwrap child in
  let global = group_by = [] in
  let ngroup = List.length group_by in
  let out_arity = ngroup + nagg in
  let emit key states =
    let row = Array.make out_arity Value.Null in
    Array.blit key 0 row 0 ngroup;
    for k = 0 to nagg - 1 do
      row.(ngroup + k) <- agg_result aggs_arr.(k) states.(k)
    done;
    row
  in
  let fresh_states () = Array.map (fun c -> new_agg_state c) aggs_arr in
  let feed_row states b p =
    for k = 0 to nagg - 1 do
      let v =
        match arg_gets.(k) with None -> None | Some g -> Some (g b p)
      in
      agg_feed aggs_arr.(k) states.(k) v
    done
  in
  (* Group-key specialization: a single plain-attribute key of an
     immediate dtype hashes on the unboxed int (or the raw string) — no
     per-row key-tuple allocation, no polymorphic hashing. An engine-typed
     column only ever carries its declared constructor or NULL, and NULL
     (which never equals anything but groups with itself) gets its own
     slot, so group identity and first-seen order match the generic path
     exactly. *)
  let single_col =
    match group_by with
    | [ (Expr.Attr a, _) ] -> Option.map (fun i -> (i, a.Attr.ty)) (pos a)
    | _ -> None
  in
  fun () ->
    Seq.memoize
      (fun () ->
        Perm_fault.trip fp_agg_merge;
        let order = ref [] in
        let ngroups = ref 0 in
        (* group state is not spillable: enforce the hard ceiling as
           groups are created (the global path counts rows, not groups,
           and holds exactly one state array — never checked) *)
        let note_group () =
          incr ngroups;
          budget_materialized ~what:"GROUP BY" !ngroups
        in
        let rows_of_order () =
          if global && !ngroups = 0 then [ emit [||] (fresh_states ()) ]
          else List.rev_map (fun (key, states) -> emit key states) !order
        in
        let generic_groups : agg_state array Tuple.Hash.t =
          Tuple.Hash.create 64
        in
        let generic_feed key b p =
          let states =
            match Tuple.Hash.find_opt generic_groups key with
            | Some states -> states
            | None ->
              let states = fresh_states () in
              Tuple.Hash.replace generic_groups key states;
              order := (key, states) :: !order;
              note_group ();
              states
          in
          feed_row states b p
        in
        (if global then begin
           (* no grouping: one state array, no hash table at all *)
           let states = fresh_states () in
           Seq.iter
             (fun b ->
               Batch.iter_live
                 (fun p ->
                   incr ngroups;
                   feed_row states b p)
                 b)
             (run_child ());
           if !ngroups > 0 then order := ([||], states) :: !order;
           ngroups := min !ngroups 1
         end
         else
           match single_col with
           | Some (ci, (Dtype.Int | Dtype.Date | Dtype.Bool)) ->
             let igroups : agg_state array Int_hash.t = Int_hash.create 64 in
             let null_states = ref None in
             Seq.iter
               (fun b ->
                 let col = Batch.col b ci in
                 Batch.iter_live
                   (fun p ->
                     match Array.unsafe_get col p with
                     | (Value.Int k | Value.Date k) as v ->
                       let states =
                         match Int_hash.find_opt igroups k with
                         | Some states -> states
                         | None ->
                           let states = fresh_states () in
                           Int_hash.replace igroups k states;
                           order := ([| v |], states) :: !order;
                           note_group ();
                           states
                       in
                       feed_row states b p
                     | Value.Bool bv as v ->
                       let k = if bv then 1 else 0 in
                       let states =
                         match Int_hash.find_opt igroups k with
                         | Some states -> states
                         | None ->
                           let states = fresh_states () in
                           Int_hash.replace igroups k states;
                           order := ([| v |], states) :: !order;
                           note_group ();
                           states
                       in
                       feed_row states b p
                     | Value.Null ->
                       let states =
                         match !null_states with
                         | Some states -> states
                         | None ->
                           let states = fresh_states () in
                           null_states := Some states;
                           order := ([| Value.Null |], states) :: !order;
                           note_group ();
                           states
                       in
                       feed_row states b p
                     | v ->
                       (* off-dtype straggler: group through the generic
                          table so semantics never depend on the schema
                          invariant *)
                       generic_feed [| v |] b p)
                   b)
               (run_child ())
           | Some (ci, Dtype.Text) ->
             let sgroups : agg_state array Str_hash.t = Str_hash.create 64 in
             let null_states = ref None in
             Seq.iter
               (fun b ->
                 let col = Batch.col b ci in
                 Batch.iter_live
                   (fun p ->
                     match Array.unsafe_get col p with
                     | Value.Text k as v ->
                       let states =
                         match Str_hash.find_opt sgroups k with
                         | Some states -> states
                         | None ->
                           let states = fresh_states () in
                           Str_hash.replace sgroups k states;
                           order := ([| v |], states) :: !order;
                           note_group ();
                           states
                       in
                       feed_row states b p
                     | Value.Null ->
                       let states =
                         match !null_states with
                         | Some states -> states
                         | None ->
                           let states = fresh_states () in
                           null_states := Some states;
                           order := ([| Value.Null |], states) :: !order;
                           note_group ();
                           states
                       in
                       feed_row states b p
                     | v -> generic_feed [| v |] b p)
                   b)
               (run_child ())
           | _ ->
             Seq.iter
               (fun b ->
                 Batch.iter_live (fun p -> generic_feed (gkey b p) b p) b)
               (run_child ()));
        batches_of_tuple_list ~arity:out_arity ~batch_rows (rows_of_order ())
          ())

and compile_batch_set_op ~provider ~batch_rows ~bwrap kind all left right =
  let run_left = compile_batch ~provider ~batch_rows ~bwrap left in
  let run_right = compile_batch ~provider ~batch_rows ~bwrap right in
  let narrow_rows keep b =
    let sel = Batch.sel_array b in
    let n = Batch.live b in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let p = sel.(i) in
      if keep (brow b p) then begin
        sel.(!m) <- p;
        incr m
      end
    done;
    if !m = 0 then None else Some (Batch.with_sel b sel !m)
  in
  match kind, all with
  | Plan.Union, true -> fun () -> Seq.append (run_left ()) (run_right ())
  | Plan.Union, false ->
    fun () ->
      Seq.memoize
        (fun () ->
          let seen = Tuple.Hash.create 64 in
          let keep row =
            if Tuple.Hash.mem seen row then false
            else begin
              Tuple.Hash.replace seen row ();
              budget_materialized ~what:"UNION" (Tuple.Hash.length seen);
              true
            end
          in
          Seq.filter_map (narrow_rows keep)
            (Seq.append (run_left ()) (run_right ()))
            ())
  | (Plan.Intersect | Plan.Except), _ ->
    fun () ->
      Seq.memoize
        (fun () ->
          let counts = Tuple.Hash.create 64 in
          Seq.iter
            (fun b ->
              Batch.iter_live
                (fun p ->
                  let row = brow b p in
                  let c =
                    match Tuple.Hash.find_opt counts row with
                    | Some c -> c
                    | None ->
                      budget_materialized ~what:"INTERSECT/EXCEPT"
                        (Tuple.Hash.length counts + 1);
                      0
                  in
                  Tuple.Hash.replace counts row (c + 1))
                b)
            (run_right ());
          let emitted = Tuple.Hash.create 64 in
          let keep row =
            let rc =
              match Tuple.Hash.find_opt counts row with
              | Some c -> c
              | None -> 0
            in
            match kind, all with
            | Plan.Intersect, true ->
              if rc > 0 then begin
                Tuple.Hash.replace counts row (rc - 1);
                true
              end
              else false
            | Plan.Intersect, false ->
              if rc > 0 && not (Tuple.Hash.mem emitted row) then begin
                Tuple.Hash.replace emitted row ();
                true
              end
              else false
            | Plan.Except, true ->
              if rc > 0 then begin
                Tuple.Hash.replace counts row (rc - 1);
                false
              end
              else true
            | Plan.Except, false ->
              if rc = 0 && not (Tuple.Hash.mem emitted row) then begin
                Tuple.Hash.replace emitted row ();
                budget_materialized ~what:"EXCEPT" (Tuple.Hash.length emitted);
                true
              end
              else false
            | Plan.Union, _ -> assert false
          in
          Seq.filter_map (narrow_rows keep) (run_left ()) ())

(* ---- batch guardrails and root materialization -------------------- *)

(* Cancel-token checks move to batch boundaries: one [Token.charge] per
   batch (of its live row count) at every multiplicity-source node, plus a
   deadline check at operator start. Kill latency is bounded by one batch
   per operator instead of [guard_interval] rows. *)
let guard_bwrap (token : Token.t) : bwrapper =
 fun node thunk ->
  if not (guard_this_node node) then thunk
  else
    fun () ->
      Token.check token;
      Seq.map
        (fun b ->
          Token.charge token (Batch.live b);
          b)
        (thunk ())

let materialize_batches ?row_limit ?progress (bs : Batch.t Seq.t) =
  let acc = ref [] in
  let count = ref 0 in
  Seq.iter
    (fun b ->
      let n = Batch.live b in
      (match progress with None -> () | Some p -> Progress.add_rows p n);
      (match row_limit with
      | Some limit when !count + n > limit -> over_row_limit limit
      | _ -> ());
      count := !count + n;
      List.iter (fun t -> acc := t :: !acc) (Batch.to_tuples b))
    bs;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run_rows ?(token = Token.none) ?row_limit ?progress ?spill ~provider plan
    =
  Atomic.set current_spill spill;
  let wrap = if Token.active token then guard_wrap token else no_wrap in
  match
    (* release any spill files an abandoned lazy consumer left behind
       (LIMIT over a spilled sort never reaches the sort's own cleanup) *)
    Fun.protect
      ~finally:Spill.release_all
      (fun () ->
        materialize ?row_limit ?progress
          ((compile ~provider ~wrap no_outer plan) ()))
  with
  | rows -> Ok rows
  | exception Runtime_error msg -> Error msg

let run ?(token = Token.none) ?row_limit ?progress ?batch_rows ?spill
    ~provider plan =
  Atomic.set current_spill spill;
  match batch_rows with
  | Some batch_rows when batch_rows > 0 && batch_supported plan -> (
    let bwrap = if Token.active token then guard_bwrap token else no_bwrap in
    match
      materialize_batches ?row_limit ?progress
        ((compile_batch ~provider ~batch_rows ~bwrap plan) ())
    with
    | rows -> Ok rows
    | exception Runtime_error msg -> Error msg
    | exception Spill.Fallback_needed _ ->
      (* the batch path refuses to materialize past the spill threshold;
         the row path spills to disk instead *)
      Spill.note_fallback ();
      run_rows ~token ?row_limit ?progress ?spill ~provider plan)
  | _ -> run_rows ~token ?row_limit ?progress ?spill ~provider plan

(* ------------------------------------------------------------------ *)
(* Instrumented execution (EXPLAIN ANALYZE, \trace on)                 *)
(* ------------------------------------------------------------------ *)

type node_stats = {
  stat_kind : string;
  mutable stat_id : int;  (* stable pre-order id within the plan; -1 until
                             [finalize], and stays -1 for helper nodes the
                             executor synthesizes (e.g. the swapped join a
                             Right join compiles into) *)
  mutable stat_invocations : int;
  mutable stat_rows : int;
  mutable stat_time_s : float;
  mutable stat_self_s : float;  (* exclusive time, derived by [finalize] *)
  mutable stat_peak_rows : int;  (* max rows out of a single invocation *)
  mutable stat_peak_bytes : int;  (* peak_rows * estimated row width, or —
                                     on the batch path — the exact measured
                                     heap footprint of the largest batch *)
  mutable stat_exact_bytes : bool;  (* peak_bytes measured, not estimated *)
}

(* Stats are keyed by the physical identity of the plan node: the plan is a
   tree built once per statement, so [==] identifies each operator uniquely
   and survives the trip through [Pretty.plan_to_string ~annotate]. *)
type exec_stats = { mutable entries : (Plan.t * node_stats) list }

let lookup stats node =
  let rec go = function
    | [] -> None
    | (p, ns) :: rest -> if p == node then Some ns else go rest
  in
  go stats.entries

let stats_entries stats = List.rev_map snd stats.entries
let stats_nodes stats = List.rev stats.entries

(* Stable node ids: pre-order over the plan tree, so the same statement
   shape yields the same numbering on every execution. Ids advance even
   for nodes that never executed (short-circuited subtrees), which keeps
   the numbering a function of the plan alone. *)
let node_ids plan =
  let id = ref 0 in
  let rec walk acc node =
    let this = !id in
    incr id;
    List.fold_left walk ((node, this) :: acc) (Plan.children node)
  in
  List.rev (walk [] plan)

(* Coarse per-row width estimate for the peak-memory column: a tuple is an
   array of boxed values — header + one word per field plus roughly one
   boxed payload per field. *)
let row_bytes node = 16 + (16 * List.length (Plan.schema node))

(* Derive the per-node columns that need the whole tree: stable ids, self
   time (inclusive minus the children's inclusive time — children of an
   Apply right side re-run per outer row, and their cumulative time is
   already cumulative across invocations, so the subtraction stays exact),
   and the peak batch memory estimate. *)
let finalize stats plan =
  List.iter
    (fun (node, id) ->
      match lookup stats node with
      | None -> ()
      | Some ns ->
        ns.stat_id <- id;
        let child_s =
          List.fold_left
            (fun acc c ->
              match lookup stats c with
              | Some cns -> acc +. cns.stat_time_s
              | None -> acc)
            0. (Plan.children node)
        in
        ns.stat_self_s <- Float.max 0. (ns.stat_time_s -. child_s);
        if not ns.stat_exact_bytes then
          ns.stat_peak_bytes <- ns.stat_peak_rows * row_bytes node)
    (node_ids plan)

(* Per-base-relation view of the recorded stats: the leaf scans, labelled
   with the table they read. Feeds the perm_stat_relations system view. *)
let scan_stats stats =
  List.rev
    (List.filter_map
       (fun (p, ns) ->
         match p with
         | Plan.Scan { table; _ } | Plan.Index_scan { table; _ } ->
           Some (table, ns)
         | _ -> None)
       stats.entries)

let now_s () = Perm_obs.Trace.now ()

let instrumenting_wrap stats : wrapper =
 fun node thunk ->
  let ns =
    {
      stat_kind = Plan.operator_kind node;
      stat_id = -1;
      stat_invocations = 0;
      stat_rows = 0;
      stat_time_s = 0.;
      stat_self_s = 0.;
      stat_peak_rows = 0;
      stat_peak_bytes = 0;
      stat_exact_bytes = false;
    }
  in
  stats.entries <- (node, ns) :: stats.entries;
  fun () ->
    ns.stat_invocations <- ns.stat_invocations + 1;
    let inv_rows = ref 0 in
    let t0 = now_s () in
    let seq = thunk () in
    ns.stat_time_s <- ns.stat_time_s +. (now_s () -. t0);
    (* time every pull: the measured interval covers this operator AND its
       children (inclusive time, as in Postgres EXPLAIN ANALYZE) *)
    let rec step s () =
      let t0 = now_s () in
      let cell = s () in
      ns.stat_time_s <- ns.stat_time_s +. (now_s () -. t0);
      match cell with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (x, rest) ->
        ns.stat_rows <- ns.stat_rows + 1;
        incr inv_rows;
        if !inv_rows > ns.stat_peak_rows then ns.stat_peak_rows <- !inv_rows;
        Seq.Cons (x, step rest)
    in
    step seq

let compose_wrap (outer : wrapper) (inner : wrapper) : wrapper =
 fun node thunk -> outer node (inner node thunk)

(* Batch-path instrumentation: rows accumulate by live count per batch, and
   peak_bytes is the exact reachable-heap footprint of the largest batch
   the node emitted ([Batch.measured_bytes]) instead of the row-width
   estimate — [finalize] leaves measured values untouched. *)
let instrumenting_bwrap stats : bwrapper =
 fun node thunk ->
  let ns =
    {
      stat_kind = Plan.operator_kind node;
      stat_id = -1;
      stat_invocations = 0;
      stat_rows = 0;
      stat_time_s = 0.;
      stat_self_s = 0.;
      stat_peak_rows = 0;
      stat_peak_bytes = 0;
      stat_exact_bytes = true;
    }
  in
  stats.entries <- (node, ns) :: stats.entries;
  fun () ->
    ns.stat_invocations <- ns.stat_invocations + 1;
    let inv_rows = ref 0 in
    let t0 = now_s () in
    let seq = thunk () in
    ns.stat_time_s <- ns.stat_time_s +. (now_s () -. t0);
    let rec step s () =
      let t0 = now_s () in
      let cell = s () in
      ns.stat_time_s <- ns.stat_time_s +. (now_s () -. t0);
      match cell with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (b, rest) ->
        let live = Batch.live b in
        ns.stat_rows <- ns.stat_rows + live;
        inv_rows := !inv_rows + live;
        if !inv_rows > ns.stat_peak_rows then ns.stat_peak_rows <- !inv_rows;
        let bytes = Batch.measured_bytes b in
        if bytes > ns.stat_peak_bytes then ns.stat_peak_bytes <- bytes;
        Seq.Cons (b, step rest)
    in
    step seq

let compose_bwrap (outer : bwrapper) (inner : bwrapper) : bwrapper =
 fun node thunk -> outer node (inner node thunk)

let run_instrumented ?(token = Token.none) ?row_limit ?progress ?batch_rows
    ?spill ~provider plan =
  Atomic.set current_spill spill;
  let row_path () =
    let stats = { entries = [] } in
    let wrap = instrumenting_wrap stats in
    let wrap =
      if Token.active token then compose_wrap (guard_wrap token) wrap else wrap
    in
    match
      Fun.protect
        ~finally:Spill.release_all
        (fun () ->
          materialize ?row_limit ?progress
            ((compile ~provider ~wrap no_outer plan) ()))
    with
    | rows ->
      finalize stats plan;
      Ok (rows, stats)
    | exception Runtime_error msg -> Error msg
  in
  match batch_rows with
  | Some batch_rows when batch_rows > 0 && batch_supported plan -> (
    let stats = { entries = [] } in
    let bwrap = instrumenting_bwrap stats in
    let bwrap =
      if Token.active token then compose_bwrap (guard_bwrap token) bwrap
      else bwrap
    in
    match
      materialize_batches ?row_limit ?progress
        ((compile_batch ~provider ~batch_rows ~bwrap plan) ())
    with
    | rows ->
      finalize stats plan;
      Ok (rows, stats)
    | exception Runtime_error msg -> Error msg
    | exception Spill.Fallback_needed _ ->
      Spill.note_fallback ();
      row_path ())
  | _ -> row_path ()

(* ------------------------------------------------------------------ *)
(* Morsel-driven parallel execution (Leis et al., SIGMOD 2014)         *)
(* ------------------------------------------------------------------ *)

(* The parallel mode executes an eligible plan as: one serial *build*
   phase (hash tables for join right sides, expression compilation), then
   a fan-out of scan->filter->project->probe pipeline *fragments* over
   fixed-size morsels of the driving base relation on a domain pool, then
   a serial merge (concatenation in morsel order; partitioned
   pre-aggregation merged group-by-group for Aggregate) and a serial tail
   (Sort/Limit/final Project).

   Determinism: morsels partition the scan in scan order and per-morsel
   outputs are concatenated in morsel-index order, so the merged row
   stream is exactly the serial stream; aggregate groups are merged in
   that same order, so first-seen group order matches serial execution,
   and Sum/Avg over floats are excluded from parallel merging because
   float addition is not associative. Results are bit-identical to the
   serial closures by construction.

   Plans containing Apply (correlated subplans), Right/Full joins,
   Distinct, Set_op, Index_scan spines, or non-mergeable aggregates fall
   back to the serial path. *)
module Par = struct
  module Dtype = Perm_value.Dtype

  type node_profile = {
    np_node : Plan.t;  (* physical node within the executed plan *)
    np_rows : int;  (* rows the stage emitted, summed over all morsels *)
    np_loops : int;  (* stage instantiations (one per morsel, or 1 for
                        serial merge/tail stages) *)
  }

  type report = {
    par_domains : int;  (* pool size, caller included *)
    par_morsels : int;  (* tasks fanned out *)
    par_participants : int;  (* workers that executed at least one morsel *)
    par_pool : Pool.report;  (* per-worker accounting and morsel slices *)
    par_nodes : node_profile list;  (* [] unless profiling was requested *)
  }

  let default_morsel_rows = 1024

  (* Plan-node profiling for the push-based path: one atomic row/loop
     counter pair per recognized pipeline stage, shared by all workers.
     With profiling off no counter exists and the emit chains compile
     exactly as before. *)
  type stage_counter = {
    sc_node : Plan.t;
    sc_rows : int Atomic.t;
    sc_loops : int Atomic.t;
  }

  let prof_register prof node =
    match prof with
    | None -> None
    | Some reg ->
      let c =
        { sc_node = node; sc_rows = Atomic.make 0; sc_loops = Atomic.make 0 }
      in
      reg := c :: !reg;
      Some c

  (* Instantiated once per morsel: bumps the stage's loop count and wraps
     the sink to count emitted rows. *)
  let prof_emit c emit =
    match c with
    | None -> emit
    | Some c ->
      Atomic.incr c.sc_loops;
      fun row ->
        Atomic.incr c.sc_rows;
        emit row

  (* Batch-fragment variant of [prof_emit]: rows accumulate by live count
     per pushed batch; loops still count chain instantiations (morsels). *)
  let prof_bemit c emit =
    match c with
    | None -> emit
    | Some c ->
      Atomic.incr c.sc_loops;
      fun b ->
        ignore (Atomic.fetch_and_add c.sc_rows (Batch.live b));
        emit b

  (* One-shot accounting for serial stages (aggregate merge, sort/limit/
     project tails). *)
  let prof_count c rows =
    match c with
    | None -> ()
    | Some c ->
      Atomic.incr c.sc_loops;
      ignore (Atomic.fetch_and_add c.sc_rows rows)

  (* Aggregates whose partial states merge without changing the result
     bit-for-bit. DISTINCT needs a cross-partition seen-set; float Sum/Avg
     would reassociate additions. *)
  let mergeable_agg (c : Plan.agg_call) =
    (not c.distinct)
    &&
    match c.agg with
    | Plan.Count_star | Plan.Count | Plan.Min | Plan.Max | Plan.Bool_and
    | Plan.Bool_or ->
      true
    | Plan.Sum | Plan.Avg -> (
      match c.arg with
      | Some (Expr.Attr a) -> Dtype.equal a.Attr.ty Dtype.Int
      | Some (Expr.Const (Value.Int _)) -> true
      | _ -> false)

  let agg_merge (call : Plan.agg_call) g p =
    match call.agg with
    | Plan.Count_star | Plan.Count -> g.count <- g.count + p.count
    | Plan.Sum | Plan.Avg ->
      g.sum_count <- g.sum_count + p.sum_count;
      if not (Value.is_null p.sum) then
        g.sum <-
          (if Value.is_null g.sum then p.sum
           else
             match Value.add g.sum p.sum with
             | Ok s -> s
             | Error msg -> err msg)
    | Plan.Min ->
      if
        (not (Value.is_null p.extreme))
        && (Value.is_null g.extreme || Value.compare p.extreme g.extreme < 0)
      then g.extreme <- p.extreme
    | Plan.Max ->
      if
        (not (Value.is_null p.extreme))
        && (Value.is_null g.extreme || Value.compare p.extreme g.extreme > 0)
      then g.extreme <- p.extreme
    | Plan.Bool_and | Plan.Bool_or -> (
      match g.extreme, p.extreme with
      | _, Value.Null -> ()
      | Value.Null, v -> g.extreme <- v
      | Value.Bool a, Value.Bool b ->
        g.extreme <-
          Value.Bool (if call.agg = Plan.Bool_and then a && b else a || b)
      | _ -> assert false)

  let rec iter3 f a b c =
    match a, b, c with
    | [], [], [] -> ()
    | x :: a, y :: b, z :: c ->
      f x y z;
      iter3 f a b c
    | _ -> invalid_arg "iter3"

  (* Compile an eligible pipeline fragment. [Some (table, inst)] means the
     fragment is driven by morsels of [table]; [inst ()] runs the serial
     build phase (hash joins) and returns a consumer factory: applied to an
     [emit] sink it yields the per-row entry point of the fragment. The
     factory and the closures it builds are stateless apart from [emit],
     so each worker instantiates its own chain per morsel. *)
  let rec frag ~(provider : provider) ?prof (plan : Plan.t) :
      (string * (unit -> (Tuple.t -> unit) -> Tuple.t -> unit)) option =
    match plan with
    | Plan.Scan { table; _ } ->
      let c = prof_register prof plan in
      Some (table, fun () emit -> prof_emit c emit)
    | Plan.Baserel { child; _ } | Plan.External { child; _ } ->
      frag ~provider ?prof child
    | Plan.Filter { child; pred } -> (
      match frag ~provider ?prof child with
      | None -> None
      | Some (table, inst) ->
        let resolve = resolver_of_schema (Plan.schema child) in
        let fpred = compile_pred resolve pred in
        let c = prof_register prof plan in
        Some
          ( table,
            fun () ->
              let mk = inst () in
              fun emit ->
                let emit = prof_emit c emit in
                mk (fun row -> if fpred row then emit row) ))
    | Plan.Project { child; cols } -> (
      match frag ~provider ?prof child with
      | None -> None
      | Some (table, inst) ->
        let resolve = resolver_of_schema (Plan.schema child) in
        let fs = Array.of_list (List.map (fun (e, _) -> compile_expr resolve e) cols) in
        let c = prof_register prof plan in
        Some
          ( table,
            fun () ->
              let mk = inst () in
              fun emit ->
                let emit = prof_emit c emit in
                mk (fun row -> emit (Array.map (fun f -> f row) fs)) ))
    | Plan.Join
        {
          kind = (Plan.Inner | Plan.Cross | Plan.Left | Plan.Semi | Plan.Anti) as kind;
          left;
          right;
          pred;
        } -> (
      match frag ~provider ?prof left with
      | None -> None
      | Some (table, inst) ->
        let left_schema = Plan.schema left
        and right_schema = Plan.schema right in
        let r_arity = List.length right_schema in
        let l_resolve = resolver_of_schema left_schema in
        let r_resolve = resolver_of_schema right_schema in
        let keys, residual =
          match pred with
          | None -> ([], [])
          | Some p -> split_join_pred left_schema right_schema p
        in
        let lkey_fs =
          Array.of_list (List.map (fun k -> compile_expr l_resolve k.l_expr) keys)
        in
        let rkey_fs =
          Array.of_list (List.map (fun k -> compile_expr r_resolve k.r_expr) keys)
        in
        let null_safety = Array.of_list (List.map (fun k -> k.null_safe) keys) in
        let residual_f =
          match residual with
          | [] -> fun _ -> true
          | preds ->
            compile_pred
              (resolver_of_schema (left_schema @ right_schema))
              (Expr.conjoin preds)
        in
        let usable = key_usable null_safety in
        let run_right = compile ~provider ~wrap:no_wrap no_outer right in
        let c = prof_register prof plan in
        Some
          ( table,
            fun () ->
              let mk = inst () in
              (* serial build: hash the right side once; workers only read *)
              Perm_fault.trip fp_join_build;
              let tbl = Tuple.Hash.create 256 in
              (* the parallel path does not spill; hand oversized builds
                 back to the engine for a spilling serial retry, bailing
                 as soon as the threshold is crossed *)
              let right_rows =
                array_of_seq_bounded ~what:"parallel join build"
                  (run_right ())
              in
              Array.iteri
                (fun idx rrow ->
                  let key = key_of rkey_fs rrow in
                  let prev =
                    match Tuple.Hash.find_opt tbl key with
                    | Some l -> l
                    | None -> []
                  in
                  Tuple.Hash.replace tbl key ((idx, rrow) :: prev))
                right_rows;
              let probe lrow =
                let key = key_of lkey_fs lrow in
                if not (usable key) then []
                else
                  match Tuple.Hash.find_opt tbl key with
                  | None -> []
                  | Some candidates ->
                    List.filter_map
                      (fun (_, rrow) ->
                        let combined = Tuple.concat lrow rrow in
                        if residual_f combined then Some combined else None)
                      (List.rev candidates)
              in
              fun emit ->
                let emit = prof_emit c emit in
                let stage lrow =
                  match kind with
                  | Plan.Semi -> if probe lrow <> [] then emit lrow
                  | Plan.Anti -> if probe lrow = [] then emit lrow
                  | Plan.Inner | Plan.Cross -> List.iter emit (probe lrow)
                  | Plan.Left -> (
                    match probe lrow with
                    | [] -> emit (Tuple.concat lrow (Array.make r_arity Value.Null))
                    | matches -> List.iter emit matches)
                  | Plan.Right | Plan.Full -> assert false
                in
                mk stage ))
    | _ -> None

  (* Batch-fragment compilation: the same pipeline spine as [frag], but
     workers push columnar batches instead of rows, reusing the serial
     batch kernels (selection-vector filters, pointer-sharing projections,
     out-of-line probe expansion) so per-morsel overhead amortizes across
     [batch_rows] rows and the output row order stays byte-identical to
     the serial paths. The returned [int] is the driving scan's arity.
     Kernels with a row cursor (generic expression fallbacks) are
     instantiated per morsel in the [fun emit ->] stage, which runs on the
     claiming worker — nothing mutable is shared across domains except
     the read-only join hash tables built serially in [inst ()]. *)
  let rec bfrag ~(provider : provider) ~batch_rows ?prof (plan : Plan.t) :
      (string * int * (unit -> (Batch.t -> unit) -> Batch.t -> unit)) option =
    match plan with
    | Plan.Scan { table; _ } ->
      let c = prof_register prof plan in
      let arity = List.length (Plan.schema plan) in
      Some (table, arity, fun () emit -> prof_bemit c emit)
    | Plan.Baserel { child; _ } | Plan.External { child; _ } ->
      bfrag ~provider ~batch_rows ?prof child
    | Plan.Filter { child; pred } -> (
      match bfrag ~provider ~batch_rows ?prof child with
      | None -> None
      | Some (table, arity, inst) ->
        let pos = positions_of_schema (Plan.schema child) in
        let conjuncts = Expr.conjuncts pred in
        let c = prof_register prof plan in
        Some
          ( table,
            arity,
            fun () ->
              let mk = inst () in
              fun emit ->
                let emit = prof_bemit c emit in
                let kernels = List.map (conjunct_kernel pos) conjuncts in
                mk (fun b ->
                    match apply_filter kernels b with
                    | None -> ()
                    | Some b -> emit b) ))
    | Plan.Project { child; cols } -> (
      match bfrag ~provider ~batch_rows ?prof child with
      | None -> None
      | Some (table, arity, inst) ->
        let pos = positions_of_schema (Plan.schema child) in
        let c = prof_register prof plan in
        Some
          ( table,
            arity,
            fun () ->
              let mk = inst () in
              fun emit ->
                let emit = prof_bemit c emit in
                let builders = project_builders pos cols in
                mk (fun b -> emit (apply_project builders b)) ))
    | Plan.Join
        {
          kind = (Plan.Inner | Plan.Cross | Plan.Left | Plan.Semi | Plan.Anti) as kind;
          left;
          right;
          pred;
        } -> (
      match bfrag ~provider ~batch_rows ?prof left with
      | None -> None
      | Some (table, arity, inst) ->
        let left_schema = Plan.schema left
        and right_schema = Plan.schema right in
        let r_arity = List.length right_schema in
        let l_pos = positions_of_schema left_schema in
        let r_resolve = resolver_of_schema right_schema in
        let keys, residual =
          match pred with
          | None -> ([], [])
          | Some p -> split_join_pred left_schema right_schema p
        in
        let key_exprs = List.map (fun k -> k.l_expr) keys in
        let rkey_fs =
          Array.of_list
            (List.map (fun k -> compile_expr r_resolve k.r_expr) keys)
        in
        let null_safety =
          Array.of_list (List.map (fun k -> k.null_safe) keys)
        in
        let residual_f =
          match residual with
          | [] -> None
          | preds ->
            Some
              (compile_pred
                 (resolver_of_schema (left_schema @ right_schema))
                 (Expr.conjoin preds))
        in
        let usable = key_usable null_safety in
        let run_right = compile ~provider ~wrap:no_wrap no_outer right in
        let c = prof_register prof plan in
        Some
          ( table,
            arity,
            fun () ->
              let mk = inst () in
              (* serial build: hash the right side once; workers only read *)
              Perm_fault.trip fp_join_build;
              let tbl = Tuple.Hash.create 256 in
              let right_rows =
                array_of_seq_bounded ~what:"parallel join build"
                  (run_right ())
              in
              Array.iteri
                (fun idx rrow ->
                  let key = key_of rkey_fs rrow in
                  let prev =
                    match Tuple.Hash.find_opt tbl key with
                    | Some l -> l
                    | None -> []
                  in
                  Tuple.Hash.replace tbl key ((idx, rrow) :: prev))
                right_rows;
              fun emit ->
                let emit = prof_bemit c emit in
                let lkey = key_filler l_pos key_exprs in
                mk (fun lb ->
                    List.iter emit
                      (probe_batch ~kind ~r_arity ~batch_rows ~lkey ~usable
                         ~tbl ~residual_f ~matched_right:None lb)) ))
    | _ -> None

  (* Fan a compiled fragment out over the driving table's morsels; per-
     morsel outputs concatenate in morsel order, reproducing scan order.
     Every task checks the cancellation token before touching its morsel
     and charges it per emitted batch, so a kill (deadline, budget, manual
     cancel) noticed by any domain stops the rest at their next morsel. *)
  (* Batch variant of [run_pipeline]: each task slices its morsel into
     batches of [batch_rows] and pushes them through the fragment chain;
     emitted batches flatten back to rows per morsel, so the morsel-order
     merge (and therefore row order) is unchanged. The token is charged
     once per emitted batch — cancel checks at batch boundaries. *)
  let run_bpipeline ~provider ~pool ~morsel_rows ~batch_rows ~token ?prof
      ?progress plan =
    match bfrag ~provider ~batch_rows ?prof plan with
    | None -> None
    | Some (table, arity, inst) ->
      Some
        (fun () ->
          Token.check token;
          let morsels = provider.scan_morsels table morsel_rows in
          let mk = inst () in
          let n = Array.length morsels in
          Option.iter (fun p -> Progress.set_morsels_total p n) progress;
          let out = Array.make n [] in
          let charge =
            if Token.active token then fun k -> Token.charge token k
            else fun _ -> ()
          in
          let tasks =
            Array.init n (fun i () ->
                Token.check token;
                let acc = ref [] and cnt = ref 0 in
                let consume =
                  mk (fun b ->
                      let live = Batch.live b in
                      charge live;
                      cnt := !cnt + live;
                      List.iter
                        (fun t -> acc := t :: !acc)
                        (Batch.to_tuples b))
                in
                let m = morsels.(i) in
                let len = Array.length m in
                let size = max 1 batch_rows in
                let off = ref 0 in
                while !off < len do
                  let l = min size (len - !off) in
                  consume (Batch.of_rows ~arity m ~pos:!off ~len:l);
                  off := !off + l
                done;
                out.(i) <- List.rev !acc;
                Option.iter
                  (fun p ->
                    Progress.add_rows p !cnt;
                    Progress.incr_morsels_done p)
                  progress;
                !cnt)
          in
          let rp = Pool.run pool tasks in
          (List.concat (Array.to_list out), n, rp))

  (* Batch variant of [run_aggregate]: per-morsel pre-aggregation fed from
     column reads, merged in morsel order with the same [agg_merge] as the
     row path — results and group order stay byte-identical to serial. *)
  let run_baggregate ~provider ~pool ~morsel_rows ~batch_rows ~token ?prof
      ?progress plan child group_by aggs =
    if not (List.for_all mergeable_agg aggs) then None
    else
      match bfrag ~provider ~batch_rows ?prof child with
      | None -> None
      | Some (table, arity, inst) ->
        let pos = positions_of_schema (Plan.schema child) in
        let group_exprs = List.map fst group_by in
        let aggs_arr = Array.of_list aggs in
        let nagg = Array.length aggs_arr in
        let global = group_by = [] in
        let c = prof_register prof plan in
        Some
          (fun () ->
            let morsels = provider.scan_morsels table morsel_rows in
            let mk = inst () in
            let n = Array.length morsels in
            Option.iter (fun p -> Progress.set_morsels_total p n) progress;
            let partials : (Tuple.t * agg_state array) list array =
              Array.make n []
            in
            let charge =
              if Token.active token then fun k -> Token.charge token k
              else fun _ -> ()
            in
            let tasks =
              Array.init n (fun i () ->
                  Token.check token;
                  let groups = Tuple.Hash.create 64 in
                  let order = ref [] in
                  let cnt = ref 0 in
                  let gkey = key_filler pos group_exprs in
                  let arg_gets =
                    Array.of_list
                      (List.map
                         (fun (ac : Plan.agg_call) ->
                           Option.map (bexpr_of pos) ac.arg)
                         aggs)
                  in
                  let consume =
                    mk (fun b ->
                        let live = Batch.live b in
                        charge live;
                        cnt := !cnt + live;
                        Batch.iter_live
                          (fun p ->
                            let key = gkey b p in
                            let states =
                              match Tuple.Hash.find_opt groups key with
                              | Some s -> s
                              | None ->
                                let s =
                                  Array.map (fun a -> new_agg_state a) aggs_arr
                                in
                                Tuple.Hash.replace groups key s;
                                (* Cancel raised here propagates through
                                   Pool.run to the coordinator *)
                                budget_materialized ~what:"GROUP BY"
                                  (Tuple.Hash.length groups);
                                order := (key, s) :: !order;
                                s
                            in
                            for k = 0 to nagg - 1 do
                              let v =
                                match arg_gets.(k) with
                                | None -> None
                                | Some g -> Some (g b p)
                              in
                              agg_feed aggs_arr.(k) states.(k) v
                            done)
                          b)
                  in
                  let m = morsels.(i) in
                  let len = Array.length m in
                  let size = max 1 batch_rows in
                  let off = ref 0 in
                  while !off < len do
                    let l = min size (len - !off) in
                    consume (Batch.of_rows ~arity m ~pos:!off ~len:l);
                    off := !off + l
                  done;
                  partials.(i) <- List.rev !order;
                  Option.iter
                    (fun p ->
                      Progress.add_rows p !cnt;
                      Progress.incr_morsels_done p)
                    progress;
                  !cnt)
            in
            let rp = Pool.run pool tasks in
            Token.check token;
            Perm_fault.trip fp_agg_merge;
            let groups = Tuple.Hash.create 64 in
            let order = ref [] in
            Array.iter
              (List.iter (fun (key, states) ->
                   match Tuple.Hash.find_opt groups key with
                   | None ->
                     Tuple.Hash.replace groups key states;
                     budget_materialized ~what:"GROUP BY"
                       (Tuple.Hash.length groups);
                     order := key :: !order
                   | Some gstates ->
                     for k = 0 to nagg - 1 do
                       agg_merge aggs_arr.(k) gstates.(k) states.(k)
                     done))
              partials;
            let emit key states =
              Array.append key (Array.map2 agg_result aggs_arr states)
            in
            let rows =
              if global && Tuple.Hash.length groups = 0 then
                [ emit [||] (Array.map (fun a -> new_agg_state a) aggs_arr) ]
              else
                List.rev_map
                  (fun key -> emit key (Tuple.Hash.find groups key))
                  !order
            in
            prof_count c (List.length rows);
            (rows, n, rp))

  let run_row_pipeline ~provider ~pool ~morsel_rows ~token ?prof ?progress
      plan =
    match frag ~provider ?prof plan with
    | None -> None
    | Some (table, inst) ->
      Some
        (fun () ->
          Token.check token;
          let morsels = provider.scan_morsels table morsel_rows in
          let mk = inst () in
          let n = Array.length morsels in
          Option.iter (fun p -> Progress.set_morsels_total p n) progress;
          let out = Array.make n [] in
          let tasks =
            Array.init n (fun i () ->
                Token.check token;
                let acc = ref [] and cnt = ref 0 in
                let consume =
                  mk
                    (guard_emit token (fun row ->
                         incr cnt;
                         acc := row :: !acc))
                in
                let m = morsels.(i) in
                for j = 0 to Array.length m - 1 do
                  consume m.(j)
                done;
                out.(i) <- List.rev !acc;
                Option.iter
                  (fun p ->
                    Progress.add_rows p !cnt;
                    Progress.incr_morsels_done p)
                  progress;
                !cnt)
          in
          let rp = Pool.run pool tasks in
          (List.concat (Array.to_list out), n, rp))

  let run_pipeline ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof
      ?progress plan =
    match batch_rows with
    | Some bn when bn > 0 ->
      run_bpipeline ~provider ~pool ~morsel_rows ~batch_rows:bn ~token ?prof
        ?progress plan
    | _ ->
      run_row_pipeline ~provider ~pool ~morsel_rows ~token ?prof ?progress plan

  (* Partitioned pre-aggregation: each morsel aggregates into its own group
     table, the driver merges partitions in morsel order so the first-seen
     group order (and therefore row order) matches serial execution. *)
  let run_row_aggregate ~provider ~pool ~morsel_rows ~token ?prof ?progress
      plan child group_by aggs =
    if not (List.for_all mergeable_agg aggs) then None
    else
      match frag ~provider ?prof child with
      | None -> None
      | Some (table, inst) ->
        let resolve = resolver_of_schema (Plan.schema child) in
        let group_fs =
          Array.of_list (List.map (fun (e, _) -> compile_expr resolve e) group_by)
        in
        let agg_arg_fs =
          List.map
            (fun (c : Plan.agg_call) -> Option.map (compile_expr resolve) c.arg)
            aggs
        in
        let global = group_by = [] in
        let c = prof_register prof plan in
        Some
          (fun () ->
            let morsels = provider.scan_morsels table morsel_rows in
            let mk = inst () in
            let n = Array.length morsels in
            Option.iter (fun p -> Progress.set_morsels_total p n) progress;
            let partials : (Tuple.t * agg_state list) list array =
              Array.make n []
            in
            let tasks =
              Array.init n (fun i () ->
                  Token.check token;
                  let groups = Tuple.Hash.create 64 in
                  let order = ref [] in
                  let cnt = ref 0 in
                  let consume =
                    mk
                      (guard_emit token (fun row ->
                        incr cnt;
                        let key = key_of group_fs row in
                        let states =
                          match Tuple.Hash.find_opt groups key with
                          | Some states -> states
                          | None ->
                            let states = List.map new_agg_state aggs in
                            Tuple.Hash.replace groups key states;
                            budget_materialized ~what:"GROUP BY"
                              (Tuple.Hash.length groups);
                            order := (key, states) :: !order;
                            states
                        in
                        iter3
                          (fun (call : Plan.agg_call) state argf ->
                            let v =
                              match argf with
                              | None -> None
                              | Some f -> Some (f row)
                            in
                            agg_feed call state v)
                          aggs states agg_arg_fs))
                  in
                  let m = morsels.(i) in
                  for j = 0 to Array.length m - 1 do
                    consume m.(j)
                  done;
                  partials.(i) <- List.rev !order;
                  Option.iter
                    (fun p ->
                      Progress.add_rows p !cnt;
                      Progress.incr_morsels_done p)
                    progress;
                  !cnt)
            in
            let rp = Pool.run pool tasks in
            Token.check token;
            Perm_fault.trip fp_agg_merge;
            let groups = Tuple.Hash.create 64 in
            let order = ref [] in
            Array.iter
              (List.iter (fun (key, states) ->
                   match Tuple.Hash.find_opt groups key with
                   | None ->
                     Tuple.Hash.replace groups key states;
                     budget_materialized ~what:"GROUP BY"
                       (Tuple.Hash.length groups);
                     order := key :: !order
                   | Some gstates -> iter3 agg_merge aggs gstates states))
              partials;
            let emit key states =
              Array.append key
                (Array.of_list (List.map2 agg_result aggs states))
            in
            let rows =
              if global && Tuple.Hash.length groups = 0 then
                [ emit [||] (List.map new_agg_state aggs) ]
              else
                List.rev_map
                  (fun key -> emit key (Tuple.Hash.find groups key))
                  !order
            in
            prof_count c (List.length rows);
            (rows, n, rp))

  let run_aggregate ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof
      ?progress plan child group_by aggs =
    match batch_rows with
    | Some bn when bn > 0 ->
      run_baggregate ~provider ~pool ~morsel_rows ~batch_rows:bn ~token ?prof
        ?progress plan child group_by aggs
    | _ ->
      run_row_aggregate ~provider ~pool ~morsel_rows ~token ?prof ?progress
        plan child group_by aggs

  let rec drop n l =
    if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

  let rec take n l =
    if n <= 0 then []
    else match l with [] -> [] | x :: t -> x :: take (n - 1) t

  (* Serial tails (Sort/Limit/final Project) over a parallel core. *)
  let rec runner ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof
      ?progress (plan : Plan.t) :
      (unit -> Tuple.t list * int * Pool.report) option =
    match plan with
    | Plan.Aggregate { child; group_by; aggs } ->
      run_aggregate ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof
        ?progress plan child group_by aggs
    | Plan.Sort { child; keys } -> (
      match runner ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof ?progress child with
      | None -> None
      | Some run ->
        let resolve = resolver_of_schema (Plan.schema child) in
        let keyfs =
          List.map (fun (e, dir) -> (compile_expr resolve e, dir)) keys
        in
        let cmp a b =
          let rec go = function
            | [] -> 0
            | (f, dir) :: rest ->
              let c = Value.compare (f a) (f b) in
              let c = match dir with Plan.Asc -> c | Plan.Desc -> -c in
              if c <> 0 then c else go rest
          in
          go keyfs
        in
        let c = prof_register prof plan in
        Some
          (fun () ->
            let rows, m, rp = run () in
            Token.check token;
            Perm_fault.trip fp_sort;
            (* the input list is already materialized by the fragment
               runner; bail before the extra array copy *)
            fallback_if_spill ~what:"parallel sort" (List.length rows);
            let arr = Array.of_list rows in
            Array.stable_sort cmp arr;
            prof_count c (Array.length arr);
            (Array.to_list arr, m, rp)))
    | Plan.Limit { child; limit; offset } -> (
      match runner ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof ?progress child with
      | None -> None
      | Some run ->
        let c = prof_register prof plan in
        Some
          (fun () ->
            let rows, m, rp = run () in
            let rows = drop offset rows in
            let rows = match limit with Some l -> take l rows | None -> rows in
            prof_count c (List.length rows);
            (rows, m, rp)))
    | Plan.Project { child; cols } -> (
      (* Project over a scan/join spine runs inside the workers; this tail
         case only fires for Project over an Aggregate/Sort core. The
         failed pipeline attempt may have registered stage counters for
         part of the spine — roll the registry back so only stages that
         actually run are reported. *)
      let saved = match prof with Some reg -> !reg | None -> [] in
      match run_pipeline ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof ?progress plan with
      | Some r -> Some r
      | None -> (
        (match prof with Some reg -> reg := saved | None -> ());
        match runner ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof ?progress child with
        | None -> None
        | Some run ->
          let resolve = resolver_of_schema (Plan.schema child) in
          let fs =
            Array.of_list
              (List.map (fun (e, _) -> compile_expr resolve e) cols)
          in
          let c = prof_register prof plan in
          Some
            (fun () ->
              let rows, m, rp = run () in
              let rows =
                List.map (fun row -> Array.map (fun f -> f row) fs) rows
              in
              prof_count c (List.length rows);
              (rows, m, rp))))
    | _ ->
      run_pipeline ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof
        ?progress plan

  (* [prepare] returns None when the plan shape is not morsel-eligible (the
     caller falls back to the serial compile); otherwise a thunk that runs
     the parallel plan and reports fan-out statistics. *)
  let prepare ~provider ~pool ?(morsel_rows = default_morsel_rows)
      ?batch_rows ?(token = Token.none) ?row_limit ?progress
      ?(profile = false) ?spill plan =
    Atomic.set current_spill spill;
    let prof = if profile then Some (ref []) else None in
    match
      runner ~provider ~pool ~morsel_rows ?batch_rows ~token ?prof ?progress
        plan
    with
    | None -> None
    | Some run ->
      Some
        (fun () ->
          match
            let rows, morsels, rp = run () in
            (match row_limit with
            | Some limit when List.length rows > limit -> over_row_limit limit
            | _ -> ());
            (rows, morsels, rp)
          with
          | rows, morsels, rp ->
            let nodes =
              match prof with
              | None -> []
              | Some reg ->
                List.rev_map
                  (fun c ->
                    {
                      np_node = c.sc_node;
                      np_rows = Atomic.get c.sc_rows;
                      np_loops = Atomic.get c.sc_loops;
                    })
                  !reg
            in
            Ok
              ( rows,
                {
                  par_domains = Pool.size pool;
                  par_morsels = morsels;
                  par_participants = rp.Pool.rp_participants;
                  par_pool = rp;
                  par_nodes = nodes;
                } )
          | exception Runtime_error msg -> Error msg)
end

let eval_const e =
  match (compile_expr no_outer e) [||] with
  | v -> Ok v
  | exception Runtime_error msg -> Error msg

let compile_row_predicate ~schema pred =
  let resolve = resolver_of_schema schema in
  fun row ->
    match (compile_pred resolve pred) row with
    | b -> Ok b
    | exception Runtime_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Structural plan hashing                                             *)
(* ------------------------------------------------------------------ *)

(* A stable digest of the compiled plan's *shape*: operator tree, table
   names, expression structure, attribute names and types — but not
   attribute ids (gensym'd afresh on every analysis of the same SQL),
   not literal values (two bindings of one parameterized statement share
   a hash, like they share a fingerprint), and not planner estimates
   (the hash may only change when the plan itself changes). Attributes
   are renumbered in first-visit order over the pre-order traversal, so
   the same plan shape always serializes identically. The execution mode
   is mixed in so the parallel verdict flipping is itself a plan change
   the regression watchdog can attribute. *)
let plan_hash ?(mode = "serial") plan =
  let buf = Buffer.create 256 in
  let canon : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let next = ref 0 in
  let add s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\x00'
  in
  let attr (a : Attr.t) =
    let k =
      match Hashtbl.find_opt canon a.Attr.id with
      | Some k -> k
      | None ->
        let k = !next in
        incr next;
        Hashtbl.replace canon a.Attr.id k;
        k
    in
    Printf.sprintf "%s@%d:%s" a.Attr.name k
      (Perm_value.Dtype.to_string a.Attr.ty)
  in
  let attrs l = String.concat "," (List.map attr l) in
  let rec expr (e : Expr.t) =
    match e with
    | Expr.Const _ -> "?"
    | Expr.Attr a -> attr a
    | Expr.Binop (op, l, r) ->
      Printf.sprintf "(%s %s %s)" (expr l) (Expr.binop_name op) (expr r)
    | Expr.Unop (Expr.Not, x) -> "not(" ^ expr x ^ ")"
    | Expr.Unop (Expr.Neg, x) -> "neg(" ^ expr x ^ ")"
    | Expr.Unop (Expr.Is_null, x) -> "isnull(" ^ expr x ^ ")"
    | Expr.Case { branches; else_ } ->
      Printf.sprintf "case(%s%s)"
        (String.concat ";"
           (List.map (fun (c, v) -> expr c ^ ">" ^ expr v) branches))
        (match else_ with None -> "" | Some e -> ";else:" ^ expr e)
    | Expr.Cast (x, ty) ->
      Printf.sprintf "cast(%s:%s)" (expr x) (Perm_value.Dtype.to_string ty)
    | Expr.Func (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr args))
  in
  let agg_name = function
    | Plan.Count_star -> "count*"
    | Plan.Count -> "count"
    | Plan.Sum -> "sum"
    | Plan.Avg -> "avg"
    | Plan.Min -> "min"
    | Plan.Max -> "max"
    | Plan.Bool_and -> "bool_and"
    | Plan.Bool_or -> "bool_or"
  in
  let rec go (p : Plan.t) =
    (match p with
    | Plan.Scan { table; attrs = a } -> add ("scan:" ^ table ^ ":" ^ attrs a)
    | Plan.Index_scan { table; attrs = a; key_col; key } ->
      add (Printf.sprintf "iscan:%s:%d:%s:%s" table key_col (expr key) (attrs a))
    | Plan.Values { attrs = a; rows = _ } ->
      (* row count and row contents are literal-derived: arity only *)
      add ("values:" ^ attrs a)
    | Plan.Project { cols; _ } ->
      add
        ("project:"
        ^ String.concat ","
            (List.map (fun (e, a) -> expr e ^ ">" ^ attr a) cols))
    | Plan.Filter { pred; _ } -> add ("filter:" ^ expr pred)
    | Plan.Join { kind; pred; _ } ->
      add
        ("join:"
        ^ Plan.join_kind_name kind
        ^ ":"
        ^ (match pred with None -> "" | Some p -> expr p))
    | Plan.Apply { kind; _ } ->
      add
        ("apply:"
        ^ Plan.apply_kind_name kind
        ^ (match kind with Plan.A_scalar a -> ":" ^ attr a | _ -> ""))
    | Plan.Aggregate { group_by; aggs; _ } ->
      add
        ("agg:"
        ^ String.concat ","
            (List.map (fun (e, a) -> expr e ^ ">" ^ attr a) group_by)
        ^ ":"
        ^ String.concat ","
            (List.map
               (fun (c : Plan.agg_call) ->
                 Printf.sprintf "%s%s(%s)>%s" (agg_name c.Plan.agg)
                   (if c.Plan.distinct then ":distinct" else "")
                   (match c.Plan.arg with None -> "" | Some e -> expr e)
                   (attr c.Plan.agg_out))
               aggs))
    | Plan.Distinct _ -> add "distinct"
    | Plan.Set_op { kind; all; attrs = a; _ } ->
      add
        (Printf.sprintf "setop:%s:%s:%s"
           (match kind with
           | Plan.Union -> "union"
           | Plan.Intersect -> "intersect"
           | Plan.Except -> "except")
           (if all then "all" else "distinct")
           (attrs a))
    | Plan.Sort { keys; _ } ->
      add
        ("sort:"
        ^ String.concat ","
            (List.map
               (fun (e, dir) ->
                 expr e ^ (match dir with Plan.Asc -> ":asc" | Plan.Desc -> ":desc"))
               keys))
    | Plan.Limit { limit; offset; _ } ->
      (* limit/offset magnitudes are literal-derived: presence only *)
      add
        (Printf.sprintf "limit:%s:%s"
           (match limit with None -> "all" | Some _ -> "n")
           (if offset > 0 then "ofs" else "-"))
    | Plan.Prov { semantics; sources; _ } ->
      add
        (Printf.sprintf "prov:%s:%s"
           (match semantics with
           | Plan.Influence -> "influence"
           | Plan.Copy_partial -> "copy-partial"
           | Plan.Copy_complete -> "copy-complete")
           (String.concat ","
              (List.map
                 (fun (s : Plan.prov_source) ->
                   Printf.sprintf "%s.%s>%s" s.Plan.prov_rel s.Plan.prov_col
                     (attr s.Plan.prov_attr))
                 sources)))
    | Plan.Baserel { rel_name; _ } -> add ("baserel:" ^ rel_name)
    | Plan.External { ext_attrs; _ } -> add ("external:" ^ attrs ext_attrs));
    List.iter go (Plan.children p)
  in
  add ("mode:" ^ mode);
  go plan;
  String.sub (Digest.to_hex (Digest.string (Buffer.contents buf))) 0 12
