(** Append-only, CRC-checksummed write-ahead log with crash recovery.

    File layout: an 8-byte magic ["PERMWAL1"] followed by records, each
    [u32 LE payload-length][u32 LE CRC-32][payload] where the payload is
    one {!frame}. The engine appends mutation frames at statement
    boundaries between a lazy [Begin] and a [Commit], and fsyncs on
    [Commit] only — the durability contract is: committed work survives a
    crash, a torn tail may lose (exactly) the open transaction.

    {!open_} replays the log through caller callbacks: it applies the
    [snapshot.sql] checkpoint first (if present), then every committed
    transaction in order; the scan stops at the first structurally bad
    record (short header, bad CRC, undecodable frame) and truncates that
    torn tail off the file. Uncommitted trailing frames are discarded and
    duplicate [Commit]s are ignored, so replaying twice — or replaying a
    log whose crash landed between append and engine bookkeeping — is
    idempotent.

    Checkpoints are crash-atomic via an epoch protocol: {!checkpoint}
    first appends a fsynced [Checkpoint] marker frame carrying the new
    epoch, then publishes the snapshot (tmp file + rename + directory
    fsync) with the same epoch in a leading header comment, then
    truncates the log. Replay skips every record up to and including the
    last marker whose epoch is [<=] the snapshot's epoch — those records
    are already contained in the snapshot — so a crash in any window of
    the checkpoint recovers to exactly the committed state, never a
    double application.

    Fault points ["wal.append"], ["wal.fsync"], ["wal.replay"],
    ["wal.checkpoint.mark"], ["wal.checkpoint.publish"] and
    ["wal.checkpoint.truncate"] ({!Perm_fault}) fire before the
    corresponding I/O so the chaos suite can kill-and-recover at every
    stage of a commit or checkpoint. *)

val magic : string

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, polynomial [0xedb88320]) as a non-negative int. *)

type frame =
  | Begin
  | Commit
  | Abort
  | Create of string  (** canonical DDL: CREATE TABLE/VIEW/INDEX *)
  | Drop of string  (** canonical DDL: DROP TABLE/VIEW *)
  | Insert of string * Perm_storage.Tuple.t list  (** rows appended *)
  | Delete of string  (** heap truncated *)
  | Replace of string * Perm_storage.Tuple.t list  (** heap replaced *)
  | Prov of string * string list  (** provenance-column names of a table *)
  | Checkpoint of int
      (** epoch marker: every record before this one is captured by the
          snapshot published for this epoch *)

val frame_label : frame -> string
(** Stable lowercase slug (["begin"], ["insert"], ["checkpoint"], …) —
    the flight recorder's [wal_append] event tag. *)

val encode_frame : frame -> string
(** Payload bytes of one record (length/CRC header not included). *)

val decode_frame : string -> frame option
(** [None] on any malformed payload (wrong tag, short read, trailing
    bytes) — replay treats that record as the start of a torn tail. *)

(** Replay callbacks. Each returns [Error msg] to abort the whole replay
    (the engine restores its pre-replay state in that case). *)
type apply = {
  ap_sql : string -> (unit, string) result;
      (** run canonical DDL, or the whole snapshot script *)
  ap_insert : string -> Perm_storage.Tuple.t list -> (unit, string) result;
  ap_truncate : string -> (unit, string) result;
  ap_replace : string -> Perm_storage.Tuple.t list -> (unit, string) result;
  ap_prov : string -> string list -> (unit, string) result;
}

type replay = {
  rp_snapshot : bool;  (** a snapshot.sql was applied first *)
  rp_records : int;  (** structurally valid records scanned *)
  rp_committed : int;  (** committed transactions applied *)
  rp_discarded : int;  (** trailing uncommitted frames discarded *)
  rp_skipped : int;
      (** records skipped because the snapshot already contained them
          (crash landed between snapshot publish and log truncation) *)
  rp_truncated_bytes : int;  (** torn-tail bytes chopped off the log *)
}

val no_replay : replay

type t

val open_ : dir:string -> apply:apply -> (t * replay, string) result
(** Open (creating [dir] and the log as needed) and replay. On [Error]
    nothing is kept open; an [Error] from a callback or an I/O failure
    surfaces here, while a fault injected at ["wal.replay"] escapes as
    {!Perm_fault.Injected} (no resources are held at the trip point) so
    the engine can map it to its typed [Faulted] error. A log shorter
    than the magic is restarted from scratch (torn creation); a file
    with a wrong magic is refused. *)

val append : t -> frame -> unit
(** Append one record (single [write]). Trips ["wal.append"] first; on
    {!Perm_fault.Injected} or an I/O exception nothing is recorded and
    the engine marks the log dirty. *)

val fsync : t -> unit
(** Flush to stable storage; trips ["wal.fsync"] first. *)

val checkpoint : t -> snapshot_sql:string -> prov:(string * string list) list -> unit
(** Compact: append a fsynced [Checkpoint] marker for the next epoch,
    publish [snapshot_sql] to [snapshot.sql] (temp file + fsync + rename
    + directory fsync, with the epoch in a header comment), truncate the
    log back to the magic, and re-log [prov] (table → provenance
    columns, the one piece of state the SQL snapshot cannot express) as
    a single committed transaction. Crash-safe at every step: replay
    skips records the published snapshot already contains (see the
    module doc). Trips ["wal.checkpoint.mark"],
    ["wal.checkpoint.publish"] and ["wal.checkpoint.truncate"] before
    the marker append, the rename and the truncation respectively. *)

type status = {
  st_dir : string;
  st_bytes : int;  (** log size in bytes *)
  st_records : int;  (** records since the last checkpoint *)
  st_last_lsn : int;  (** monotonic record ordinal, replay included *)
  st_fsyncs : int;  (** fsyncs since open *)
  st_epoch : int;  (** epoch of the published snapshot (0 = none) *)
  st_replay : replay;  (** what {!open_} recovered *)
}

val status : t -> status
val log_path : t -> string
val close : t -> unit
