(* Append-only, CRC-checksummed write-ahead log.

   File layout: an 8-byte magic ("PERMWAL1") followed by records, each
   [u32 LE payload-length][u32 LE CRC-32 of payload][payload]. A payload
   is one {!frame}, written by the engine at statement boundaries:
   mutations accumulate between a lazy [Begin] and the [Commit] appended
   when the top-level statement (or explicit transaction) finishes, and
   only [Commit] is fsynced — the fsync contract is "committed work
   survives a crash; a torn tail may lose the open transaction".

   Replay scans from the magic, stops at the first structurally bad
   record (short header, over-long length, CRC mismatch, undecodable
   frame), truncates that torn tail off the file, and applies each
   committed transaction's frames through caller-supplied callbacks.
   Frames after the last [Commit] are discarded; a duplicate [Commit]
   (possible when a crash lands between the engine's append and its
   bookkeeping) applies nothing and is ignored.

   [checkpoint] compacts the log under a monotonically increasing
   *epoch* so the snapshot and the log can never disagree after a crash:
   (1) a fsynced [Checkpoint epoch] marker is appended, (2) the caller's
   SQL snapshot — prefixed with an epoch header line — is written to a
   temp file, fsynced, renamed over [snapshot.sql], and the directory is
   fsynced so the rename is durable, (3) only then is the log truncated
   back to the magic and provenance-column metadata (the one piece of
   engine state the SQL snapshot cannot express) re-logged as a
   committed [Prov] transaction. A crash anywhere in that sequence
   recovers exactly: replay skips every record up to (and including) the
   last [Checkpoint e] marker with [e <= snapshot epoch], because those
   records are provably captured by the applied snapshot — so the
   rename-landed-but-truncate-didn't window can no longer double-apply
   committed transactions, and the directory fsync stops the reverse
   window (truncate persisted, rename reverted) from losing them. *)

module Value = Perm_value.Value
module Tuple = Perm_storage.Tuple

let fp_append = Perm_fault.point "wal.append"
let fp_fsync = Perm_fault.point "wal.fsync"
let fp_replay = Perm_fault.point "wal.replay"

(* Checkpoint crash windows, in protocol order: [mark] fires before the
   epoch marker is appended, [publish] after the temp snapshot is written
   but before the rename, [truncate] after the rename is durable but
   before the log shrinks. The chaos suite kills at each and recovery
   must reproduce the committed state exactly. *)
let fp_ckpt_mark = Perm_fault.point "wal.checkpoint.mark"
let fp_ckpt_publish = Perm_fault.point "wal.checkpoint.publish"
let fp_ckpt_truncate = Perm_fault.point "wal.checkpoint.truncate"
let magic = "PERMWAL1"

(* ---- CRC-32 (IEEE 802.3, poly 0xedb88320) ------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffffl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.to_int (Int32.logxor !c 0xffffffffl) land 0xffffffff

(* ---- frames and their codec --------------------------------------- *)

type frame =
  | Begin
  | Commit
  | Abort
  | Create of string  (** canonical DDL: CREATE TABLE/VIEW/INDEX *)
  | Drop of string  (** canonical DDL: DROP TABLE/VIEW *)
  | Insert of string * Tuple.t list  (** rows appended to a heap *)
  | Delete of string  (** heap truncated *)
  | Replace of string * Tuple.t list  (** heap contents replaced *)
  | Prov of string * string list  (** provenance-column names of a table *)
  | Checkpoint of int
      (** epoch marker: every record before this one is captured by the
          snapshot carrying the same epoch *)

exception Corrupt

let add_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let add_i64 buf (n : int64) =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xffL)))
  done

let add_lstring buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.Int n ->
    Buffer.add_char buf '\001';
    add_i64 buf (Int64.of_int n)
  | Value.Float f ->
    Buffer.add_char buf '\002';
    add_i64 buf (Int64.bits_of_float f)
  | Value.Bool b ->
    Buffer.add_char buf '\003';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Text s ->
    Buffer.add_char buf '\004';
    add_lstring buf s
  | Value.Date d ->
    Buffer.add_char buf '\005';
    add_i64 buf (Int64.of_int d)

let add_rows buf rows =
  add_u32 buf (List.length rows);
  List.iter
    (fun row ->
      add_u32 buf (Array.length row);
      Array.iter (add_value buf) row)
    rows

let frame_label = function
  | Begin -> "begin"
  | Commit -> "commit"
  | Abort -> "abort"
  | Create _ -> "create"
  | Drop _ -> "drop"
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Replace _ -> "replace"
  | Prov _ -> "prov"
  | Checkpoint _ -> "checkpoint"

let encode_frame frame =
  let buf = Buffer.create 64 in
  (match frame with
  | Begin -> Buffer.add_char buf '\000'
  | Commit -> Buffer.add_char buf '\001'
  | Abort -> Buffer.add_char buf '\002'
  | Create sql ->
    Buffer.add_char buf '\003';
    add_lstring buf sql
  | Drop sql ->
    Buffer.add_char buf '\004';
    add_lstring buf sql
  | Insert (tbl, rows) ->
    Buffer.add_char buf '\005';
    add_lstring buf tbl;
    add_rows buf rows
  | Delete tbl ->
    Buffer.add_char buf '\006';
    add_lstring buf tbl
  | Replace (tbl, rows) ->
    Buffer.add_char buf '\007';
    add_lstring buf tbl;
    add_rows buf rows
  | Prov (tbl, cols) ->
    Buffer.add_char buf '\008';
    add_lstring buf tbl;
    add_u32 buf (List.length cols);
    List.iter (add_lstring buf) cols
  | Checkpoint epoch ->
    Buffer.add_char buf '\009';
    add_i64 buf (Int64.of_int epoch));
  Buffer.contents buf

(* Decoding: a cursor over the payload string; any out-of-bounds read or
   unknown tag raises [Corrupt], which replay treats as a torn tail. *)

let u8 s pos =
  if !pos >= String.length s then raise Corrupt;
  let c = Char.code s.[!pos] in
  incr pos;
  c

let u32 s pos =
  let a = u8 s pos in
  let b = u8 s pos in
  let c = u8 s pos in
  let d = u8 s pos in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let i64 s pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 s pos)) (8 * i))
  done;
  !v

let lstring s pos =
  let len = u32 s pos in
  if len < 0 || !pos + len > String.length s then raise Corrupt;
  let r = String.sub s !pos len in
  pos := !pos + len;
  r

let value s pos =
  match u8 s pos with
  | 0 -> Value.Null
  | 1 -> Value.Int (Int64.to_int (i64 s pos))
  | 2 -> Value.Float (Int64.float_of_bits (i64 s pos))
  | 3 -> Value.Bool (u8 s pos <> 0)
  | 4 -> Value.Text (lstring s pos)
  | 5 -> Value.Date (Int64.to_int (i64 s pos))
  | _ -> raise Corrupt

let rows s pos =
  let n = u32 s pos in
  if n < 0 || n > String.length s then raise Corrupt;
  List.init n (fun _ ->
      let arity = u32 s pos in
      if arity < 0 || arity > String.length s then raise Corrupt;
      Array.init arity (fun _ -> value s pos))

let decode_frame payload =
  match
    let pos = ref 0 in
    let frame =
      match u8 payload pos with
      | 0 -> Begin
      | 1 -> Commit
      | 2 -> Abort
      | 3 -> Create (lstring payload pos)
      | 4 -> Drop (lstring payload pos)
      | 5 ->
        let tbl = lstring payload pos in
        Insert (tbl, rows payload pos)
      | 6 -> Delete (lstring payload pos)
      | 7 ->
        let tbl = lstring payload pos in
        Replace (tbl, rows payload pos)
      | 8 ->
        let tbl = lstring payload pos in
        let n = u32 payload pos in
        if n < 0 || n > String.length payload then raise Corrupt;
        Prov (tbl, List.init n (fun _ -> lstring payload pos))
      | 9 ->
        let epoch = Int64.to_int (i64 payload pos) in
        if epoch < 0 then raise Corrupt;
        Checkpoint epoch
      | _ -> raise Corrupt
    in
    if !pos <> String.length payload then raise Corrupt;
    frame
  with
  | frame -> Some frame
  | exception Corrupt -> None

(* ---- replay -------------------------------------------------------- *)

type apply = {
  ap_sql : string -> (unit, string) result;
      (** run canonical DDL (or a whole snapshot script) *)
  ap_insert : string -> Tuple.t list -> (unit, string) result;
  ap_truncate : string -> (unit, string) result;
  ap_replace : string -> Tuple.t list -> (unit, string) result;
  ap_prov : string -> string list -> (unit, string) result;
}

type replay = {
  rp_snapshot : bool;  (** a snapshot.sql was applied first *)
  rp_records : int;  (** structurally valid records scanned *)
  rp_committed : int;  (** committed transactions applied *)
  rp_discarded : int;  (** trailing uncommitted frames discarded *)
  rp_skipped : int;
      (** records already captured by the snapshot (a checkpoint crashed
          between its rename and its log truncation) and skipped *)
  rp_truncated_bytes : int;  (** torn-tail bytes chopped off the log *)
}

let no_replay =
  {
    rp_snapshot = false;
    rp_records = 0;
    rp_committed = 0;
    rp_discarded = 0;
    rp_skipped = 0;
    rp_truncated_bytes = 0;
  }

type t = {
  dir : string;
  log_path : string;
  snapshot_path : string;
  fd : Unix.file_descr;
  mutable bytes : int;
  mutable records : int;  (** records in the log since the last checkpoint *)
  mutable last_lsn : int;  (** monotonic record ordinal, replay included *)
  mutable fsyncs : int;
  mutable epoch : int;  (** epoch of the published snapshot (0 = none) *)
  replayed : replay;
}

type status = {
  st_dir : string;
  st_bytes : int;
  st_records : int;
  st_last_lsn : int;
  st_fsyncs : int;
  st_epoch : int;
  st_replay : replay;
}

exception Apply_error of string

let ap = function Ok () -> () | Error msg -> raise (Apply_error msg)

let apply_one apply = function
  | Begin | Commit | Abort | Checkpoint _ -> ()
  | Create sql | Drop sql -> ap (apply.ap_sql sql)
  | Insert (tbl, rows) -> ap (apply.ap_insert tbl rows)
  | Delete tbl -> ap (apply.ap_truncate tbl)
  | Replace (tbl, rows) -> ap (apply.ap_replace tbl rows)
  | Prov (tbl, cols) -> ap (apply.ap_prov tbl cols)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let u32_at s p =
  Char.code s.[p]
  lor (Char.code s.[p + 1] lsl 8)
  lor (Char.code s.[p + 2] lsl 16)
  lor (Char.code s.[p + 3] lsl 24)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Make a rename durable: fsync the containing directory. Best-effort on
   filesystems that reject fsync on a directory fd. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    Unix.close dfd
  | exception Unix.Unix_error _ -> ()

(* The snapshot carries its checkpoint epoch as a leading SQL-comment
   header so replay can prove which log records it already contains. The
   header is stripped before the script reaches the engine; a snapshot
   without one (or with an unparsable one) is epoch 0. *)
let epoch_header = "-- perm-wal-epoch: "

let render_snapshot ~epoch sql = Printf.sprintf "%s%d\n%s" epoch_header epoch sql

let split_snapshot data =
  let hlen = String.length epoch_header in
  if String.length data >= hlen && String.sub data 0 hlen = epoch_header then
    match String.index_opt data '\n' with
    | Some nl -> (
      match int_of_string_opt (String.trim (String.sub data hlen (nl - hlen))) with
      | Some epoch when epoch >= 0 ->
        (epoch, String.sub data (nl + 1) (String.length data - nl - 1))
      | _ -> (0, data))
    | None -> (0, data)
  else (0, data)

let open_ ~dir ~apply =
  let log_path = Filename.concat dir "wal.log" in
  let snapshot_path = Filename.concat dir "snapshot.sql" in
  try
    mkdir_p dir;
    let snapshot_epoch, snapshot_applied =
      if Sys.file_exists snapshot_path then begin
        let data = In_channel.with_open_bin snapshot_path In_channel.input_all in
        let epoch, sql = split_snapshot data in
        ap (apply.ap_sql sql);
        (epoch, true)
      end
      else (0, false)
    in
    let data =
      if Sys.file_exists log_path then
        In_channel.with_open_bin log_path In_channel.input_all
      else ""
    in
    if String.length data >= 8 && String.sub data 0 8 <> magic then
      Error (Printf.sprintf "%s is not a WAL file (bad magic)" log_path)
    else begin
      (* A log shorter than the magic can only be a torn creation — start
         it over. *)
      let fresh = String.length data < 8 in
      let total = String.length data in
      let pos = ref 8 in
      let good = ref 8 in
      let torn = ref false in
      let frames = ref [] in
      (* Pass 1 — structural scan: find the valid prefix and collect its
         frames without applying anything, because the skip point (below)
         depends on Checkpoint markers that may sit anywhere in the log. *)
      if not fresh then begin
        while (not !torn) && !pos + 8 <= total do
          let len = u32_at data !pos in
          let crc = u32_at data (!pos + 4) in
          if len < 0 || len > total - (!pos + 8) then torn := true
          else begin
            let payload = String.sub data (!pos + 8) len in
            if crc32 payload <> crc then torn := true
            else
              match decode_frame payload with
              | None -> torn := true
              | Some frame ->
                Perm_fault.trip fp_replay;
                frames := frame :: !frames;
                good := !pos + 8 + len;
                pos := !good
          end
        done;
        if !pos < total then torn := true
      end;
      let frames = Array.of_list (List.rev !frames) in
      let records = Array.length frames in
      (* Every record before a [Checkpoint e] marker is captured by the
         snapshot published for epoch [e]. If the snapshot on disk is at
         least that epoch, those records have already been applied via the
         snapshot — replaying them would double-apply committed work (the
         crash window between snapshot rename and log truncation). Skip
         through the LAST such marker; a log with no qualifying marker
         (the common case: truncation succeeded) replays in full. *)
      let skip_to = ref 0 in
      let max_epoch = ref snapshot_epoch in
      Array.iteri
        (fun i frame ->
          match frame with
          | Checkpoint e ->
            if e > !max_epoch then max_epoch := e;
            if e <= snapshot_epoch then skip_to := i + 1
          | _ -> ())
        frames;
      let skipped = !skip_to in
      (* Pass 2 — transactional replay of the surviving suffix. *)
      let pending = ref [] in
      let in_txn = ref false in
      let committed = ref 0 in
      let discarded = ref 0 in
      for i = skipped to records - 1 do
        match frames.(i) with
        | Begin ->
          (* an open transaction cut short by a new Begin never
             committed — discard it *)
          discarded := !discarded + List.length !pending;
          pending := [];
          in_txn := true
        | Commit ->
          if !in_txn || !pending <> [] then begin
            List.iter (apply_one apply) (List.rev !pending);
            incr committed;
            pending := [];
            in_txn := false
          end
          (* duplicate Commit: nothing pending, nothing to do *)
        | Abort ->
          discarded := !discarded + List.length !pending;
          pending := [];
          in_txn := false
        | Checkpoint _ -> ()
        | frame -> pending := frame :: !pending
      done;
      discarded := !discarded + List.length !pending;
      let fd = Unix.openfile log_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
      let truncated_bytes = if fresh then 0 else total - !good in
      if fresh then begin
        Unix.ftruncate fd 0;
        write_all fd (Bytes.of_string magic) 0 8
      end
      else if !good < total then Unix.ftruncate fd !good;
      let replayed =
        {
          rp_snapshot = snapshot_applied;
          rp_records = records;
          rp_committed = !committed;
          rp_discarded = !discarded;
          rp_truncated_bytes = truncated_bytes;
          rp_skipped = skipped;
        }
      in
      Ok
        ( {
            dir;
            log_path;
            snapshot_path;
            fd;
            bytes = (if fresh then 8 else !good);
            records;
            last_lsn = records;
            fsyncs = 0;
            epoch = !max_epoch;
            replayed;
          },
          replayed )
    end
  with
  | Apply_error msg -> Error ("WAL replay: " ^ msg)
  (* Perm_fault.Injected at wal.replay escapes on purpose: the engine
     maps it to its typed Faulted error after restoring its state *)
  | Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "WAL open: %s: %s" fn (Unix.error_message e))
  | Sys_error msg -> Error ("WAL open: " ^ msg)

let raw_append t frame =
  let payload = encode_frame frame in
  let buf = Buffer.create (String.length payload + 8) in
  add_u32 buf (String.length payload);
  add_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  let b = Buffer.to_bytes buf in
  write_all t.fd b 0 (Bytes.length b);
  t.bytes <- t.bytes + Bytes.length b;
  t.records <- t.records + 1;
  t.last_lsn <- t.last_lsn + 1

let append t frame =
  Perm_fault.trip fp_append;
  raw_append t frame

let fsync t =
  Perm_fault.trip fp_fsync;
  Unix.fsync t.fd;
  t.fsyncs <- t.fsyncs + 1

(* Compact: snapshot the whole state as SQL, then truncate the log. Also
   the repair path the engine takes after an append/fsync failure left
   the log behind the heaps.

   Crash-atomic via the epoch protocol. Three durable steps, each safe to
   crash after:
     1. append + fsync a [Checkpoint (epoch+1)] marker — a crash here
        leaves the old snapshot; the marker's epoch exceeds it, so replay
        skips nothing and recovery is the pre-checkpoint state.
     2. write snapshot tmp (with the epoch header), fsync, rename over
        snapshot.sql, fsync the directory — a crash here leaves the new
        snapshot plus the full old log; replay sees the marker with the
        snapshot's own epoch and skips everything up to it, so committed
        work is applied exactly once.
     3. truncate the log — the steady state. *)
let checkpoint t ~snapshot_sql ~prov =
  let epoch = t.epoch + 1 in
  Perm_fault.trip fp_ckpt_mark;
  raw_append t (Checkpoint epoch);
  Unix.fsync t.fd;
  let tmp = t.snapshot_path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let b = Bytes.of_string (render_snapshot ~epoch snapshot_sql) in
  write_all fd b 0 (Bytes.length b);
  Unix.fsync fd;
  Unix.close fd;
  Perm_fault.trip fp_ckpt_publish;
  Sys.rename tmp t.snapshot_path;
  fsync_dir t.dir;
  t.epoch <- epoch;
  Perm_fault.trip fp_ckpt_truncate;
  Unix.ftruncate t.fd 8;
  t.bytes <- 8;
  t.records <- 0;
  (* prov-column metadata is engine state the SQL snapshot cannot
     express — re-log it as one committed transaction *)
  if prov <> [] then begin
    raw_append t Begin;
    List.iter (fun (tbl, cols) -> raw_append t (Prov (tbl, cols))) prov;
    raw_append t Commit
  end;
  Unix.fsync t.fd

let status t =
  {
    st_dir = t.dir;
    st_bytes = t.bytes;
    st_records = t.records;
    st_last_lsn = t.last_lsn;
    st_fsyncs = t.fsyncs;
    st_epoch = t.epoch;
    st_replay = t.replayed;
  }

let log_path t = t.log_path
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
