(** The Perm provenance management system: sessions and end-to-end SQL-PLE
    execution.

    A session runs every query through the paper's Fig. 3 pipeline:
    {e parser & analyzer} (syntactic/semantic analysis, view unfolding) →
    {e provenance rewriter} → {e planner} (optimization) → {e executor}.
    The rewriter runs unconditionally; queries without provenance
    constructs pass through unchanged.

    Lazy provenance is the default ([SELECT PROVENANCE ...] computes on the
    fly); eager provenance materializes a provenance query with
    [STORE PROVENANCE <query> INTO <table>] and registers the stored
    provenance columns so follow-up queries can re-propagate them with the
    [PROVENANCE (...)] FROM-item annotation (paper §1: "store the
    provenance of a query for later reuse"). *)

type t

val create : unit -> t

type result_set = {
  columns : string list;
  rows : Perm_storage.Tuple.t list;
}

(** The four Perm-browser panes for one query (paper Fig. 4): the input
    SQL, both algebra trees, the rewritten query as SQL, plus the rewrite
    strategy decisions taken. *)
type explain = {
  input_sql : string;
  original_tree : string;  (** marker 3: algebra tree of the original query *)
  rewritten_tree : string;  (** marker 4: tree after provenance rewriting *)
  optimized_tree : string;  (** after the planner, what actually runs *)
  rewritten_sql : string;  (** marker 2: rewritten query as SQL *)
  agg_strategies : string list;
      (** chosen aggregation rewrite strategy per rewritten aggregate *)
}

(** [EXPLAIN ANALYZE] output: the optimized tree annotated with the
    planner's cardinality {e estimate} next to the {e actual} per-operator
    row count (with an [(xN off)] marker when they disagree by 2x or
    more), loop counts, exclusive (self) and inclusive wall-clock time,
    plus the pipeline phase breakdown from the statement's trace. *)
type explain_analyze = {
  ea_sql : string;
  ea_tree : string;
      (** optimized tree; every node carries
          [(est=<n> act=<n> [(xN off)] loops=<n> self=<ms> ms time=<ms> ms)] *)
  ea_phases : (string * float) list;
      (** [(phase, milliseconds)] in pipeline order:
          analyze, rewrite, optimize, execute *)
  ea_rows : int;  (** rows the query returned *)
  ea_total_ms : float;
  ea_strategies : string list;
      (** aggregation rewrite strategies, as in {!explain} *)
}

type outcome =
  | Rows of result_set
  | Affected of int  (** INSERT / DELETE / UPDATE row count *)
  | Message of string  (** DDL confirmations *)
  | Explained of explain
  | Analyzed of explain_analyze  (** [EXPLAIN ANALYZE] *)

val execute : t -> string -> (outcome, string) result
(** Runs a single statement (optionally [;]-terminated). A shim over
    {!execute_err} that keeps the legacy message-only surface:
    [Perm_err.to_string] of the typed error. *)

val execute_err : t -> string -> (outcome, Perm_err.t) result
(** The typed entry point. Never raises: lexer/parser crashes, executor
    runtime errors, governor kills ([Timeout] / [Resource_exhausted] /
    [Cancelled]), injected faults ([Faulted]) and any escaped exception
    ([Internal]) are all mapped into the {!Perm_err.kind} taxonomy at the
    engine boundary. *)

val execute_script : t -> string -> (outcome list, string) result
(** Runs statements in order; stops at the first error (prior effects are
    kept, as with autocommit). *)

val query : t -> string -> (result_set, string) result
(** [execute] specialised to row-returning statements. *)

val query_params :
  t -> string -> Perm_value.Value.t list -> (result_set, string) result
(** Parameterized queries: positional [$1], [$2], ... are bound to the
    given values (1-based) before analysis, so parameters are safe against
    injection and participate in type checking as literals.
    [query_params e "SELECT PROVENANCE text FROM messages WHERE mid = $1"
    [Value.Int 4]] *)

val explain : t -> string -> (explain, string) result

val explain_analyze : t -> string -> (explain_analyze, string) result
(** Executes the query with per-operator instrumentation (regardless of
    {!set_instrumentation}) and reports actual rows/time per plan node. *)

(** {1 Observability}

    Each session owns a {!Perm_obs.Metrics} registry and records a span
    tree per statement. Counters maintained by the engine:
    [engine.statements], [engine.errors], [rewriter.strategy.<join|lateral>]
    (one per rewritten aggregate), [rewriter.rule.<name>] (rewrite rule
    firings); histograms [engine.statement.ms] and
    [engine.phase.<analyze|rewrite|optimize|execute>.ms]. With
    instrumentation on (or under [EXPLAIN ANALYZE]),
    [executor.rows.<kind>] / [executor.invocations.<kind>] counters
    aggregate per-operator totals. *)

val metrics : t -> Perm_obs.Metrics.t

val set_instrumentation : t -> bool -> unit
(** Per-operator executor stats for every statement. Default [false]: the
    uninstrumented hot path compiles identical closures, so sessions that
    never switch this on pay nothing per row. *)

val instrumentation : t -> bool

val last_trace : t -> Perm_obs.Trace.span option
(** Span tree of the most recent top-level statement: a [statement] root
    (with the SQL text as an attribute) and one child per pipeline phase. *)

(** {2 Statement statistics and system views}

    Every session aggregates finished top-level statements by fingerprint
    (lexer-normalized SQL, {!Perm_sql.Fingerprint}) into a
    {!Perm_obs.Stats} accumulator, and registers nine {e virtual system
    relations} queryable through the ordinary pipeline — joinable,
    filterable, orderable like any table:

    - [perm_stat_statements] — per-fingerprint calls, errors, rows,
      total/mean/max and per-phase milliseconds, rewrite-rule firings and
      the provenance flag;
    - [perm_stat_relations] — per-base-relation scan and row counters
      (populated when instrumentation is on or under [EXPLAIN ANALYZE]);
    - [perm_stat_plans] — the retained plan-node profile: per
      (fingerprint, node id) operator name, planner-estimated vs actual
      rows, self milliseconds, loop count and peak batch bytes (populated
      when instrumentation is on or under [EXPLAIN ANALYZE]; the parallel
      path reports per-stage rows/loops with estimates and leaves
      self-time to the serial profiler);
    - [perm_stat_workers] — per-domain parallel-execution totals: morsels
      claimed, busy/idle milliseconds, rows produced and the worst
      busy-time skew ratio observed in any one fan-out;
    - [perm_metrics] — the live metrics registry as rows (GC gauges are
      refreshed at scan time);
    - [perm_stat_history] — the retained per-execution telemetry history:
      one row per recorded top-level statement with sequence number,
      timestamp, structural plan hash, wall/phase milliseconds, rows out,
      the planner's total row estimate, worker skew and the error flag
      (bounded rings, see {!history});
    - [perm_stat_regressions] — the regression watchdog's findings: flagged
      executions with their baseline, slowdown factor, attributed cause
      ([plan-change] / [cardinality] / [skew] / [unknown]) and detail;
    - [perm_metrics_history] — cadence-sampled values of selected metrics
      series over time;
    - [perm_stat_anomalies] — the forensics bundle store: one row per
      captured anomaly (id, timestamp, class, fingerprint, detail, SQL);
      fetch the full bundle via {!Forensics.get}.

    Virtual relations are engine-owned: not droppable, not DML targets,
    and invisible to {!dump_sql}. *)

val statement_stats : t -> Perm_obs.Stats.statement_stat list
(** Sorted by total time descending (the rows behind
    [perm_stat_statements]). *)

val relation_stats : t -> Perm_obs.Stats.relation_stat list

val plan_profile : t -> Perm_obs.Profile.plan_node list
(** The retained per-fingerprint plan-node profile (the rows behind
    [perm_stat_plans]), sorted by fingerprint then node id. *)

val worker_profile : t -> Perm_obs.Profile.worker list
(** Per-domain parallel worker totals (the rows behind
    [perm_stat_workers]), sorted by domain index. *)

val reset_statement_stats : t -> unit
(** Clears statement/relation statistics, the plan/worker profiles and the
    telemetry history (retained executions, regressions and metric
    samples — history configuration is kept). *)

(** {2 Live query progress}

    While a top-level statement runs, the executor feeds a lock-free
    progress record (atomic counters only — no locks on the query path)
    that any other domain may sample: rows produced at the plan root and,
    on the parallel path, morsels finished out of the fan-out total. The
    record survives statement completion, so the last statement's final
    progress remains readable. Governor kills ([Timeout] /
    [Resource_exhausted] / [Cancelled]) append the last sampled progress
    to the error message, reporting {e where} the statement died. *)

type progress = {
  pr_sql : string;  (** the statement being (or last) executed *)
  pr_running : bool;
  pr_elapsed_ms : float;
      (** elapsed so far, or total runtime once finished *)
  pr_rows : int;  (** rows produced at the plan root *)
  pr_morsels_done : int;
  pr_morsels_total : int;  (** 0 unless the statement fanned out *)
}

val progress : t -> progress option
(** Snapshot of the current (or most recent) statement's progress; [None]
    before the first statement. Safe to call from any domain. *)

(** {2 Trace log and exporters} *)

val trace_log : t -> Perm_obs.Trace.span list
(** Finished root spans of all top-level statements this session, oldest
    first — the input to {!Perm_obs.Trace.to_chrome_json}. *)

val clear_trace_log : t -> unit

val set_trace_capacity : t -> int -> unit
(** Bound on retained trace roots (default 512, clamped at 1); beyond it
    the oldest spans are shed in batches, counted by the
    [engine.trace.dropped] metric. *)

val event_log : t -> Perm_obs.Eventlog.t
(** The session's event log. Every top-level statement at least as slow as
    the {!Perm_obs.Eventlog} threshold is recorded into a bounded
    in-memory ring (drops surface as the [eventlog.dropped] gauge), and
    also written as one JSON line when a sink file is open. *)

val history : t -> Perm_obs.History.t
(** The session's telemetry history and regression watchdog (the store
    behind [perm_stat_history], [perm_stat_regressions] and
    [perm_metrics_history]). Every finished top-level statement is
    recorded with its structural plan hash
    ({!Perm_executor.Executor.plan_hash} of the statement's first executed
    plan, mode-tagged serial/parallel), the planner's
    {!Perm_planner.Planner.estimate_total} and the worst worker skew; the
    watchdog's verdicts also increment [history.regressions] /
    [history.cause.*] counters, and the store's footprint is tracked by
    the [history.bytes] gauge. Configure capacities, the watchdog factor
    and the metric-sampling cadence directly through
    {!Perm_obs.History}. *)

(** {2 Cross-domain observability reads}

    The engine domain is the only writer of the telemetry stores (Stats,
    Profile, History, Eventlog, the trace log) and takes an internal lock
    only at statement-finalize/record points; readers on other domains —
    the HTTP observability plane — use the accessors below, which take the
    same lock, so they see each statement either fully recorded or not at
    all and can never block query execution for more than a finalize
    critical section. *)

val locked : t -> (unit -> 'a) -> 'a
(** Run [f] holding the engine's observability lock — required when
    reading telemetry stores ({!statement_stats}, {!trace_log},
    {!event_log}, {!history}, ...) from a domain other than the engine's.
    Not reentrant; [f] must not execute statements or call other [locked]
    accessors ({!virtual_relation}, {!recent_events},
    {!refresh_loss_gauges}). *)

val virtual_names : t -> string list
(** The registered [perm_stat_*] virtual relation names, sorted. *)

val virtual_relation :
  t -> string -> (string list * Perm_storage.Tuple.t list) option
(** Materialize a virtual system relation ([column names], [rows]) via
    the same provider closure a table scan uses, under the observability
    lock — the /stats JSON endpoints. [None] for unknown names. *)

val recent_events : t -> since:int -> int * Perm_obs.Json.t list
(** Tail the event log from a cursor (see {!Perm_obs.Eventlog.since}),
    under the observability lock — the /events SSE endpoint. *)

val refresh_loss_gauges : t -> unit
(** Refresh the telemetry-loss gauges ([eventlog.logged],
    [eventlog.dropped], [history.dropped], [history.evicted],
    [history.bytes]) from the live stores, under the observability lock.
    Called before rendering /metrics so scrapes can alert on the
    telemetry plane shedding data. *)

(** {1 Rewrite-strategy and optimizer control (the demo's "activate or
    deactivate rewrite strategies", §3)} *)

type agg_strategy_setting = Use_join | Use_lateral | Use_heuristic | Use_cost_based

val set_agg_strategy : t -> agg_strategy_setting -> unit
(** Default [Use_heuristic]. [Use_cost_based] consults the planner's cost
    model on the session's current table statistics. *)

val set_optimizer_config : t -> Perm_planner.Planner.config -> unit

(** {1 Parallel execution}

    Morsel-driven parallel execution on OCaml domains
    ({!Perm_executor.Executor.Par}). Off by default; switch on with
    {!set_parallel}. Eligible plans (scan/filter/project spines, hash-join
    probes, mergeable aggregates — as judged by
    {!Perm_planner.Planner.parallel_verdict} and re-checked by the
    executor) fan out over a session-owned worker pool, created lazily on
    the first parallel query and reused until the size changes or
    {!close}. Results are bit-identical to serial execution. Ineligible or
    small plans fall back to the serial path, leaving an
    [executor.par.fallback.<reason>] counter; parallel runs maintain
    [executor.par.queries] / [executor.par.morsels] counters and
    [executor.par.domains] / [executor.par.utilization] /
    [executor.par.skew] gauges, and attach a [parallel] child span to the
    statement's [execute] phase. Each fan-out records per-worker morsel
    slices on dedicated trace lanes ({!Perm_obs.Trace.worker_lane}), so
    {!Perm_obs.Trace.to_chrome_json} renders one timeline row per domain.
    With instrumentation on, parallel plans run parallel {e with} per-stage
    profiling (feeding [perm_stat_plans] / [perm_stat_workers]) instead of
    being forced onto the serial instrumented path. *)

type parallel_setting =
  | Par_off
  | Par_on  (** [Domain.recommended_domain_count], capped at 8 *)
  | Par_domains of int  (** explicit worker count (clamped to 0..64) *)

val set_parallel : t -> parallel_setting -> unit
val parallel_domains : t -> int
(** Configured worker count; 0 when parallel execution is off. *)

val set_parallel_threshold : t -> int -> unit
(** Minimum driving-table rows before fan-out (default
    {!Perm_planner.Planner.default_parallel_threshold}). *)

val parallel_threshold : t -> int
val set_morsel_rows : t -> int -> unit
(** Rows per morsel. 0 (the default) lets the planner size morsels from
    the driving-table estimate, the session's [batch_rows], and the
    domain count ({!Perm_planner.Planner.choose_morsel_rows}); a positive
    value pins the size. *)

val morsel_rows : t -> int

val set_batch_rows : t -> int -> unit
(** Rows per executor batch on the vectorized path (clamped to >= 1;
    default {!Perm_executor.Executor.default_batch_rows}, overridable by
    the [PERM_BATCH_ROWS] environment variable at {!create}). *)

val batch_rows : t -> int

val set_vectorized : t -> bool -> unit
(** Toggle the batch-at-a-time executor (default on; [PERM_VECTORIZED=0]
    in the environment starts sessions with it off). When off, or for
    plan shapes the batch compiler declines (Apply/Prov), statements run
    on the row-at-a-time closures. *)

val vectorized : t -> bool

val pool_size : t -> int
(** Size of the live worker pool; 0 when no pool has been created yet (no
    parallel query ran since the last {!close} / size change). *)

(** {1 Resource governor}

    Session guardrails enforced through a cooperative cancellation token
    ({!Perm_err.Token}): one fresh token per top-level statement, checked
    at operator boundaries by the serial executor and at morsel boundaries
    by every parallel worker. A governor kill surfaces as a typed error
    ([Timeout] / [Resource_exhausted] / [Cancelled]) from {!execute_err},
    bumps the matching [engine.timeout] / [engine.resource_exhausted] /
    [engine.cancelled] counter, drains the parallel generation, and leaves
    the pool — and any open transaction snapshot — intact. The error
    message carries the statement's last {!progress} snapshot (rows,
    morsels, elapsed), so a killed query reports where it died. All
    guardrails default to off (0) and cost nothing while off. *)

val set_statement_timeout : t -> float -> unit
(** Wall-clock budget in milliseconds per top-level statement; [0.] turns
    the timeout off. *)

val statement_timeout : t -> float

val set_row_limit : t -> int -> unit
(** Maximum result rows a statement may materialize; exceeding it kills
    the statement with [Resource_exhausted] (not a silent LIMIT). [0] = off. *)

val row_limit : t -> int

val set_tuple_budget : t -> int -> unit
(** Budget on tuples flowing across operator boundaries (a proxy for
    intermediate-result memory). With spill on (the default) exceeding it
    makes materializing operators degrade to disk (see {!set_spill});
    with spill off it kills the statement with [Resource_exhausted].
    [0] = off. *)

val tuple_budget : t -> int

val set_spill : t -> bool -> unit
(** Graceful spill-to-disk (default on). When on and a tuple budget is
    armed, the budget becomes a degradation threshold instead of a kill:
    sorts past the threshold run as external merge sorts and hash-join
    build sides are chunked onto temp files, with results byte-identical
    to the in-memory path. The batch and parallel executors never spill
    themselves — they fall back to the spilling serial row path (counted
    in [executor.spill.fallbacks]). When off, the tuple budget arms the
    token and blowing it raises [Resource_exhausted] as before. *)

val spill_enabled : t -> bool

val set_spill_dir : t -> string -> unit
(** Directory for spill temp files (default: the system temp dir). Files
    are created per materializing operator and removed when the statement
    finishes. *)

val spill_dir : t -> string

val cancel : t -> string -> unit
(** Cooperatively cancel the running statement from another domain; it
    stops at its next token check with kind [Cancelled]. Noticed at morsel
    boundaries always, and at per-operator checks whenever a timeout or
    tuple budget is armed. Safe to call at any time. *)

val close : t -> unit
(** Runs the {!at_close} hooks (newest first), then releases the worker
    domains. The session stays usable: the next parallel query recreates
    the pool. Idempotent (hooks run once). *)

val at_close : t -> (unit -> unit) -> unit
(** Register a shutdown hook run by {!close} — e.g. draining the HTTP
    observability server before the engine goes away. A raising hook does
    not prevent the others from running. *)

val last_report : t -> Perm_provenance.Rewriter.report option
(** Rewrite report of the most recent query execution. *)

(** {1 Introspection} *)

val catalog : t -> Perm_catalog.Catalog.t
val stats : t -> Perm_planner.Planner.stats
val provenance_columns : t -> string -> string list option
(** For a table created by [STORE PROVENANCE]: its provenance column names. *)

val dump_sql : t -> string
(** A re-executable SQL script recreating all tables (schema + rows) and
    views; feed it back through {!execute_script} to restore a session. *)

(** {1 Durability (write-ahead log)}

    With a WAL enabled, every mutating statement appends frames to an
    append-only, CRC-checksummed log ({!Perm_wal}) *after* the heaps
    applied them, and seals them with a fsynced [Commit] at the statement
    boundary (at [COMMIT] for explicit transactions). On {!enable_wal}
    the existing log is replayed: the engine recovers to the last
    committed state, discarding a torn tail and any unsealed transaction.
    A failed append/fsync marks the log dirty — logging pauses and the
    log is rebuilt from a checkpoint before the next top-level statement
    runs, so log and heaps can never silently disagree. *)

val enable_wal : t -> string -> (Perm_wal.replay, Perm_err.t) result
(** [enable_wal t dir] opens (creating if needed) the log in [dir] and
    replays it into the session. A failed replay leaves the session
    unchanged. Enabling on a session that already holds tables or views
    checkpoints immediately, so that pre-existing state becomes durable
    too. Refused inside a transaction or when a WAL is already open. *)

val disable_wal : t -> unit
(** Close the log (no implicit checkpoint); the session continues
    in-memory only. Idempotent. *)

val wal_enabled : t -> bool

val set_wal_fsync : t -> bool -> unit
(** Whether Commit frames are fsynced (default true). Off trades the
    crash-durability guarantee for speed — for benchmarks measuring the
    append overhead alone. *)

val wal_fsync_enabled : t -> bool

val checkpoint : t -> (unit, Perm_err.t) result
(** Compact the log: dump the whole session as SQL into the snapshot
    file, truncate the log, re-log provenance-column metadata. Replay
    cost becomes proportional to state size, not history length. Refused
    inside a transaction or without a WAL. *)

type wal_status = {
  ws_dir : string;
  ws_bytes : int;  (** log size in bytes *)
  ws_records : int;  (** records since the last checkpoint *)
  ws_last_lsn : int;  (** monotonic record ordinal, replay included *)
  ws_fsyncs : int;  (** fsyncs since open *)
  ws_fsync_on : bool;
  ws_dirty : bool;  (** a failed append left the log behind the heaps *)
  ws_epoch : int;  (** checkpoint epoch of the published snapshot *)
  ws_replay : Perm_wal.replay;  (** what {!enable_wal} recovered *)
}

val wal_status : t -> wal_status option
(** [None] when no WAL is enabled. *)

(** {1 Flight recorder and anomaly forensics}

    Every session carries an always-on, bounded, wait-free flight
    recorder ({!Perm_obs.Recorder}): a ring of typed structured events
    covering statement lifecycle, plan-node milestones, WAL
    append/fsync/checkpoint/replay, spill activity, GC major slices,
    fault firings, governor kills and watchdog verdicts. When a
    statement ends in an anomaly — typed error, timeout, cancellation,
    resource exhaustion, injected fault, watchdog-flagged regression or
    a parallel→serial degradation — or when startup WAL replay recovers
    prior state, the engine snapshots a {e forensics bundle}: one
    self-contained JSON document ({!Perm_obs.Bundle_schema}) holding the
    SQL and fingerprint, the plan with estimated vs actual rows per
    node, the per-statement metrics delta, the recorder's recent event
    tail, WAL status (epoch, replay counters, truncated bytes), the
    spill gauges and the session's execution settings.

    Bundles live in a bounded in-memory store (newest first; default 32)
    surfaced three ways: the [perm_stat_anomalies] virtual relation
    (id, ts, class, fingerprint, detail, sql), the CLI's [\debug]
    meta-command, and the HTTP plane's [GET /debug/bundles] endpoints
    plus an [anomaly] SSE frame on [/events]. With a directory set
    ({!Forensics.set_dir}) each bundle is also mirrored to
    [bundle-NNNNNN.json] on disk, pruned to the same bound.

    Disabling the recorder ([Recorder.set_capacity _ 0]) also disables
    bundle capture — the benchmark's off arm. *)

val recorder : t -> Perm_obs.Recorder.t
(** The session's flight recorder. Recording is wait-free and safe from
    any domain (the spill tap and GC alarm feed it concurrently); use
    {!Perm_obs.Recorder.set_capacity} to resize or disable it. *)

module Forensics : sig
  type summary = {
    fs_id : int;
    fs_ts : float;
    fs_class : string;
        (** one of {!Perm_obs.Bundle_schema.classes}: [error], [timeout],
            [cancelled], [resource_exhausted], [fault], [regression],
            [degraded], [wal_replay] *)
    fs_fingerprint : string;
    fs_detail : string;
    fs_sql : string;
  }

  val capacity : t -> int

  val set_capacity : t -> int -> unit
  (** Bound on retained bundles (default 32; 0 disables retention).
      Shrinking drops the oldest bundles immediately. *)

  val set_dir : t -> string option -> unit
  (** Mirror future bundles to [dir/bundle-NNNNNN.json] (directory
      created on first write; on-disk copies pruned to the same bound;
      write failures count [forensics.write.errors]). [None] stops
      mirroring. *)

  val list : t -> summary list
  (** Newest first — the rows behind [perm_stat_anomalies]. *)

  val get : t -> int -> Perm_obs.Json.t option
  (** The full bundle document by id; [None] if unknown or evicted. *)

  val last : t -> Perm_obs.Json.t option
end

(** {1 Plan-level access (benchmarks and tests)} *)

val plan_query : t -> string -> (Perm_algebra.Plan.t * Perm_algebra.Plan.t, string) result
(** [(analyzed plan with markers, rewritten+optimized executable plan)]. *)

val run_plan : t -> Perm_algebra.Plan.t -> (Perm_storage.Tuple.t list, string) result
(** Executes a marker-free plan against the session's storage. *)
