(** The HTTP observability plane: {!Perm_obs.Httpd} wired to an engine.

    Serves, read-only and loopback-only:
    - [GET /metrics] — the full metrics registry in Prometheus text
      exposition, plus per-fingerprint statement families labelled with
      the (escaped) fingerprint and query text
    - [GET /stats/<relation>] — any [perm_stat_*] virtual relation as
      JSON, via the engine's own provider closures
    - [GET /healthz], [GET /readyz] — liveness, governor and watchdog
      state
    - [GET /trace] — the Chrome trace export of the retained trace log
    - [GET /events] — server-sent events: the eventlog ring replayed and
      tailed, interleaved with live [Progress] snapshots of the running
      statement ([?max_ms=N] bounds the stream, for tests and CI).
      Statement records arrive as [event: statement] frames; forensics
      notifications as [event: anomaly] frames
    - [GET /debug/bundles] — the forensics bundle index (newest first:
      id, timestamp, class, fingerprint, detail, SQL), and
      [GET /debug/bundles/<id>] — one full bundle document (404 for
      unknown or evicted ids)
    - [GET /] — a plain-text index of the above

    All handlers read snapshot/atomic state under {!Engine.locked} (or
    from lock-free atomics) and never execute SQL, so a scrape cannot
    block or skew the query path. The server accounts for itself in the
    engine's registry: [http.requests] (counter), [http.responses.NNN]
    (per-status counters), [http.bytes.out], [http.rejected] (gauge) and
    per-endpoint latency histograms [http.endpoint.<name>.ms]. *)

type t

val start :
  ?max_connections:int -> port:int -> Engine.t -> (t, string) result
(** Start serving on loopback [port] (0 picks an ephemeral port) on its
    own domain(s). Also registers an {!Engine.at_close} hook so the
    server drains when the engine closes. *)

val stop : t -> unit
(** Graceful drain; idempotent. *)

val port : t -> int
val generation : t -> int

val handler : Engine.t -> Perm_obs.Httpd.handler
(** The route table itself, exposed for tests that exercise handlers
    without a socket. *)
