module Ast = Perm_sql.Ast
module Parser = Perm_sql.Parser
module Printer = Perm_sql.Printer
module Plan = Perm_algebra.Plan
module Attr = Perm_algebra.Attr
module Pretty = Perm_algebra.Pretty
module Analyzer = Perm_analyzer.Analyzer
module Rewriter = Perm_provenance.Rewriter
module Planner = Perm_planner.Planner
module Executor = Perm_executor.Executor
module Pool = Perm_executor.Pool
module Catalog = Perm_catalog.Catalog
module Schema = Perm_catalog.Schema
module Column = Perm_catalog.Column
module Store = Perm_storage.Store
module Heap = Perm_storage.Heap
module Tuple = Perm_storage.Tuple
module Spill = Perm_storage.Spill
module Wal = Perm_wal
module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
module Metrics = Perm_obs.Metrics
module Err = Perm_err
module Token = Perm_err.Token
module Trace = Perm_obs.Trace
module Stats = Perm_obs.Stats
module Eventlog = Perm_obs.Eventlog
module Json = Perm_obs.Json
module Profile = Perm_obs.Profile
module History = Perm_obs.History
module Progress = Perm_executor.Progress
module Fingerprint = Perm_sql.Fingerprint
module Recorder = Perm_obs.Recorder
module Bundle_schema = Perm_obs.Bundle_schema

type agg_strategy_setting = Use_join | Use_lateral | Use_heuristic | Use_cost_based

(* Chaos-harness injection point: fires between the commit decision and the
   snapshot drop, so an injected commit fault leaves the transaction open
   and the snapshot untouched. *)
let fp_commit = Perm_fault.point "engine.commit"

type snapshot = {
  snap_cat : Catalog.t;
  snap_store : Store.t;
  snap_prov : (string, string list) Hashtbl.t;
}

(* A virtual system relation's row source: the catalog holds the schema,
   the engine holds the closure that materializes rows at scan time. The
   estimate backs the planner's cardinality statistics without paying for
   materialization during optimization. *)
type virtual_provider = {
  vp_rows : unit -> Tuple.t list;
  vp_estimate : unit -> int;
}

(* Live progress of the most recent top-level statement. The record is
   created when the statement starts and kept after it finishes (with
   [lv_running] flipped off), so a sampler can still see where a killed
   statement died. All hot counters live behind atomics in [Progress.t];
   the other fields are written once by the engine domain. *)
type live = {
  lv_sql : string;
  lv_start_s : float;
  lv_progress : Progress.t;
  mutable lv_running : bool;
  mutable lv_end_s : float option;
}

(* One captured anomaly: the self-contained forensics document plus the
   identity fields the perm_stat_anomalies view and the \debug listing
   surface without rendering the whole JSON. *)
type bundle = {
  bu_id : int;
  bu_ts : float;
  bu_class : string;
  bu_fingerprint : string;
  bu_sql : string;
  bu_detail : string;
  bu_doc : Perm_obs.Json.t;
}

type t = {
  mutable cat : Catalog.t;
  mutable store : Store.t;
  mutable prov_tables : (string, string list) Hashtbl.t;
  mutable agg_strategy : agg_strategy_setting;
  mutable planner_config : Planner.config;
  mutable report : Rewriter.report option;
  mutable snapshot : snapshot option;  (* Some while inside a transaction *)
  metrics : Metrics.t;
  mutable instrument : bool;  (* per-operator executor stats (costly) *)
  mutable current_span : Trace.span option;  (* root of the running statement *)
  mutable last_trace : Trace.span option;
  stats_acc : Stats.t;  (* perm_stat_statements / perm_stat_relations *)
  virtuals : (string, virtual_provider) Hashtbl.t;
  mutable trace_log : Trace.span list;  (* finished roots, reverse order *)
  mutable trace_cap : int;  (* retained roots bound; oldest are shed *)
  mutable trace_len : int;
  event_log : Eventlog.t;
  history : History.t;  (* perm_stat_history / _regressions / _metrics_history *)
  mutable stmt_rules : (string * int) list;
      (* rewrite-rule firings of the statement currently running, so the
         stats accumulator attributes rules to the right fingerprint *)
  mutable parallel_domains : int;  (* 0 = parallel execution off *)
  mutable parallel_threshold : int;  (* min driving-table rows to fan out *)
  mutable morsel_rows : int;  (* rows per morsel; 0 = planner-chosen *)
  mutable batch_rows : int;  (* rows per executor batch (vectorized path) *)
  mutable vectorized : bool;  (* batch-at-a-time executor on/off *)
  mutable pool : Pool.t option;  (* lazily created, reused *)
  mutable statement_timeout_ms : float;  (* governor: 0 = off *)
  mutable row_limit : int;  (* governor: 0 = off *)
  mutable tuple_budget : int;  (* governor: 0 = off *)
  mutable token : Token.t;  (* cancellation token of the running statement *)
  profile : Profile.t;  (* perm_stat_plans / perm_stat_workers accumulator *)
  mutable stmt_fp : string;  (* fingerprint of the running top-level stmt *)
  mutable stmt_plan_hash : string;
      (* structural hash of the top-level statement's first executed plan;
         "" until a plan runs (DDL, utility statements) *)
  mutable stmt_est_rows : float;  (* planner total estimate of that plan *)
  mutable stmt_skew : float;  (* max worker skew seen by the statement *)
  mutable live : live option;  (* progress of the last top-level statement *)
  mutable wal : Wal.t option;  (* durability log; None = in-memory only *)
  mutable wal_fsync : bool;  (* fsync on commit (default); off for benches *)
  mutable wal_dirty : bool;
      (* an append/fsync failed: the log trails the heaps. Logging stops
         and the next top-level statement rebuilds the log from a
         checkpoint before running. *)
  mutable wal_begun : bool;  (* a Begin frame is open in the log *)
  mutable spill_on : bool;  (* graceful spill instead of budget kills *)
  mutable spill_dir : string;  (* where spill temp files go *)
  obs_lock : Mutex.t;
      (* Serializes engine-side telemetry-store *writes* (Stats, Profile,
         History, Eventlog, trace_log) against observability-plane *reads*
         from other domains ([locked], [virtual_relation], ...). The
         engine domain is the only writer and never needs the lock to read
         its own stores, so query execution itself stays lock-free; the
         engine takes the lock only at statement-finalize/record points,
         for microseconds per statement. Not reentrant. *)
  recorder : Recorder.t;  (* the always-on flight recorder ring *)
  mutable bundles : bundle list;  (* forensics bundles, newest first *)
  mutable bundle_cap : int;  (* retained bundle bound *)
  mutable bundle_seq : int;  (* next bundle id (session-monotone) *)
  mutable bundle_dir : string option;  (* optional on-disk mirror *)
  mutable stmt_degraded : string option;
      (* the running top-level statement fell from the parallel to the
         serial path on a worker error — an anomaly even when the serial
         retry then succeeds *)
  mutable stmt_metrics0 : (string * float) list;
      (* forensics-tracked metric values at top-level statement start, so
         a bundle can report the delta the statement caused *)
  mutable gc_pending : bool;
      (* a major cycle ended since the last statement; the alarm only
         flips this flag (recording from inside the alarm would mutate
         the ring on every [Gc.compact], which breaks benchmark harnesses
         that compact until the live-word count stabilizes) *)
  mutable gc_heap_words : int;  (* heap size at that major cycle *)
  mutable gc_major_collections : int;  (* major count at that cycle *)
  mutable on_close : (unit -> unit) list;  (* run (LIFO) by [close] *)
}

(* OCaml's [Mutex] is not reentrant and 5.1 has no [Mutex.protect]. *)
let obs_locked t f =
  Mutex.lock t.obs_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_lock) f

(* ------------------------------------------------------------------ *)
(* Virtual system relations                                            *)
(* ------------------------------------------------------------------ *)

let fnum f = Value.Float f
let fnum_opt f = if Float.is_nan f then Value.Null else Value.Float f

let statement_row (st : Stats.statement_stat) =
  [|
    Value.Text st.Stats.st_fingerprint;
    Value.Text st.Stats.st_query;
    Value.Int st.Stats.st_calls;
    Value.Int st.Stats.st_errors;
    Value.Int st.Stats.st_rows;
    fnum st.Stats.st_total_ms;
    fnum (Stats.mean_ms st);
    fnum st.Stats.st_max_ms;
    fnum (Stats.phase_ms st "analyze");
    fnum (Stats.phase_ms st "rewrite");
    fnum (Stats.phase_ms st "optimize");
    fnum (Stats.phase_ms st "execute");
    Value.Int (Stats.rule_firings st);
    Value.Text
      (String.concat ","
         (List.map
            (fun (rule, n) -> Printf.sprintf "%s=%d" rule n)
            (List.sort compare st.Stats.st_rule_counts)));
    Value.Bool st.Stats.st_provenance;
  |]

let relation_row (rel : Stats.relation_stat) =
  [|
    Value.Text rel.Stats.rel_name;
    Value.Int rel.Stats.rel_scans;
    Value.Int rel.Stats.rel_rows;
  |]

let plan_row (pn : Profile.plan_node) =
  [|
    Value.Text pn.Profile.pn_fingerprint;
    Value.Int pn.Profile.pn_node;
    Value.Text pn.Profile.pn_operator;
    fnum pn.Profile.pn_est_rows;
    Value.Int pn.Profile.pn_act_rows;
    fnum pn.Profile.pn_self_ms;
    Value.Int pn.Profile.pn_loops;
    Value.Int pn.Profile.pn_peak_bytes;
  |]

let worker_row (wk : Profile.worker) =
  [|
    Value.Int wk.Profile.wk_domain;
    Value.Int wk.Profile.wk_morsels;
    fnum wk.Profile.wk_busy_ms;
    fnum wk.Profile.wk_idle_ms;
    Value.Int wk.Profile.wk_rows;
    fnum wk.Profile.wk_max_skew;
  |]

let metric_rows metrics =
  Metrics.fold metrics
    (fun acc name m ->
      let row =
        match m with
        | Metrics.Counter { c } ->
          [|
            Value.Text name; Value.Text "counter"; fnum (float_of_int c);
            Value.Null; Value.Null; Value.Null; Value.Null; Value.Null;
            Value.Null; Value.Null;
          |]
        | Metrics.Gauge { g } ->
          [|
            Value.Text name; Value.Text "gauge"; fnum g; Value.Null;
            Value.Null; Value.Null; Value.Null; Value.Null; Value.Null;
            Value.Null;
          |]
        | Metrics.Histogram h ->
          if h.Metrics.h_count = 0 then
            [|
              Value.Text name; Value.Text "histogram"; Value.Null;
              Value.Int 0; Value.Null; Value.Null; Value.Null; Value.Null;
              Value.Null; Value.Null;
            |]
          else
            [|
              Value.Text name; Value.Text "histogram"; Value.Null;
              Value.Int h.Metrics.h_count; fnum h.Metrics.h_sum;
              fnum h.Metrics.h_min; fnum h.Metrics.h_max;
              fnum_opt (Metrics.quantile h 0.50);
              fnum_opt (Metrics.quantile h 0.95);
              fnum_opt (Metrics.quantile h 0.99);
            |]
      in
      row :: acc)
    []
  |> List.rev

let history_row (r : History.exec_record) =
  let ph name =
    match List.assoc_opt name r.History.ex_phase_ms with
    | Some v -> fnum v
    | None -> Value.Null
  in
  [|
    Value.Text r.History.ex_fingerprint;
    Value.Int r.History.ex_seq;
    fnum r.History.ex_ts;
    Value.Text r.History.ex_plan_hash;
    fnum r.History.ex_ms;
    Value.Int r.History.ex_rows;
    fnum r.History.ex_est_rows;
    fnum r.History.ex_skew;
    Value.Bool r.History.ex_error;
    ph "analyze";
    ph "rewrite";
    ph "optimize";
    ph "execute";
  |]

let regression_row (r : History.regression) =
  [|
    Value.Text r.History.rg_fingerprint;
    Value.Int r.History.rg_seq;
    fnum r.History.rg_ts;
    fnum r.History.rg_ms;
    fnum r.History.rg_baseline_ms;
    fnum r.History.rg_factor;
    Value.Text (History.cause_label r.History.rg_cause);
    Value.Text r.History.rg_detail;
    Value.Text r.History.rg_plan_hash;
  |]

let metric_sample_row (s : History.metric_sample) =
  [|
    Value.Text s.History.sm_name;
    Value.Int s.History.sm_seq;
    fnum s.History.sm_ts;
    fnum s.History.sm_value;
  |]

let anomaly_row (b : bundle) =
  [|
    Value.Int b.bu_id;
    fnum b.bu_ts;
    Value.Text b.bu_class;
    Value.Text b.bu_fingerprint;
    Value.Text b.bu_detail;
    Value.Text b.bu_sql;
  |]

let virtual_schemas =
  let col = Column.make in
  [
    ( "perm_stat_statements",
      [
        col "fingerprint" Dtype.Text; col "query" Dtype.Text;
        col "calls" Dtype.Int; col "errors" Dtype.Int; col "rows" Dtype.Int;
        col "total_ms" Dtype.Float; col "mean_ms" Dtype.Float;
        col "max_ms" Dtype.Float; col "analyze_ms" Dtype.Float;
        col "rewrite_ms" Dtype.Float; col "optimize_ms" Dtype.Float;
        col "execute_ms" Dtype.Float; col "rule_firings" Dtype.Int;
        col "rules" Dtype.Text; col "provenance" Dtype.Bool;
      ] );
    ( "perm_stat_relations",
      [ col "relation" Dtype.Text; col "scans" Dtype.Int; col "rows" Dtype.Int ] );
    ( "perm_metrics",
      [
        col "name" Dtype.Text; col "kind" Dtype.Text; col "value" Dtype.Float;
        col "count" Dtype.Int; col "sum" Dtype.Float; col "min" Dtype.Float;
        col "max" Dtype.Float; col "p50" Dtype.Float; col "p95" Dtype.Float;
        col "p99" Dtype.Float;
      ] );
    ( "perm_stat_plans",
      [
        col "fingerprint" Dtype.Text; col "node_id" Dtype.Int;
        col "operator" Dtype.Text; col "est_rows" Dtype.Float;
        col "act_rows" Dtype.Int; col "self_ms" Dtype.Float;
        col "loops" Dtype.Int; col "peak_bytes" Dtype.Int;
      ] );
    ( "perm_stat_workers",
      [
        col "domain" Dtype.Int; col "morsels" Dtype.Int;
        col "busy_ms" Dtype.Float; col "idle_ms" Dtype.Float;
        col "rows" Dtype.Int; col "max_skew" Dtype.Float;
      ] );
    ( "perm_stat_history",
      [
        col "fingerprint" Dtype.Text; col "seq" Dtype.Int;
        col "ts" Dtype.Float; col "plan_hash" Dtype.Text;
        col "total_ms" Dtype.Float; col "rows" Dtype.Int;
        col "est_rows" Dtype.Float; col "skew" Dtype.Float;
        col "error" Dtype.Bool; col "analyze_ms" Dtype.Float;
        col "rewrite_ms" Dtype.Float; col "optimize_ms" Dtype.Float;
        col "execute_ms" Dtype.Float;
      ] );
    ( "perm_stat_regressions",
      [
        col "fingerprint" Dtype.Text; col "seq" Dtype.Int;
        col "ts" Dtype.Float; col "total_ms" Dtype.Float;
        col "baseline_ms" Dtype.Float; col "factor" Dtype.Float;
        col "cause" Dtype.Text; col "detail" Dtype.Text;
        col "plan_hash" Dtype.Text;
      ] );
    ( "perm_metrics_history",
      [
        col "name" Dtype.Text; col "seq" Dtype.Int; col "ts" Dtype.Float;
        col "value" Dtype.Float;
      ] );
    ( "perm_stat_anomalies",
      [
        col "id" Dtype.Int; col "ts" Dtype.Float; col "class" Dtype.Text;
        col "fingerprint" Dtype.Text; col "detail" Dtype.Text;
        col "sql" Dtype.Text;
      ] );
  ]

(* Telemetry-loss accounting as gauges, so /metrics (and perm_metrics) can
   alert on the observability plane itself shedding data: eventlog ring
   drops, history ring wrap-around, and LRU/byte-budget fingerprint
   eviction. Unlocked: called either from the engine domain (vp_rows
   during a scan) or from an observability reader already holding
   [obs_lock] — both contexts where taking the lock again would be wrong
   (it is not reentrant). *)
let refresh_loss_gauges_unlocked t =
  Metrics.set_gauge t.metrics "eventlog.logged"
    (float_of_int (Eventlog.logged t.event_log));
  Metrics.set_gauge t.metrics "eventlog.dropped"
    (float_of_int (Eventlog.dropped t.event_log));
  Metrics.set_gauge t.metrics "history.dropped"
    (float_of_int (History.dropped t.history));
  Metrics.set_gauge t.metrics "history.evicted"
    (float_of_int (History.evicted t.history));
  Metrics.set_gauge t.metrics "history.bytes"
    (float_of_int (History.approx_bytes t.history))

let register_virtuals t =
  List.iter
    (fun (name, cols) ->
      match Catalog.add_virtual t.cat name (Schema.make_exn cols) with
      | Ok _ -> ()
      | Error msg -> invalid_arg ("registering virtual relation: " ^ msg))
    virtual_schemas;
  let add name provider = Hashtbl.replace t.virtuals name provider in
  add "perm_stat_statements"
    {
      vp_rows = (fun () -> List.map statement_row (Stats.statements t.stats_acc));
      vp_estimate = (fun () -> List.length (Stats.statements t.stats_acc));
    };
  add "perm_stat_relations"
    {
      vp_rows = (fun () -> List.map relation_row (Stats.relations t.stats_acc));
      vp_estimate = (fun () -> List.length (Stats.relations t.stats_acc));
    };
  add "perm_metrics"
    {
      vp_rows =
        (fun () ->
          (* GC and telemetry-loss gauges refresh lazily, when somebody
             actually looks *)
          Metrics.set_gc_gauges t.metrics;
          refresh_loss_gauges_unlocked t;
          metric_rows t.metrics);
      vp_estimate = (fun () -> List.length (Metrics.names t.metrics));
    };
  add "perm_stat_plans"
    {
      vp_rows = (fun () -> List.map plan_row (Profile.plan_nodes t.profile));
      vp_estimate = (fun () -> List.length (Profile.plan_nodes t.profile));
    };
  add "perm_stat_workers"
    {
      vp_rows = (fun () -> List.map worker_row (Profile.workers t.profile));
      vp_estimate = (fun () -> List.length (Profile.workers t.profile));
    };
  add "perm_stat_history"
    {
      vp_rows = (fun () -> List.map history_row (History.executions t.history));
      vp_estimate =
        (fun () -> List.length (History.executions t.history));
    };
  add "perm_stat_regressions"
    {
      vp_rows =
        (fun () -> List.map regression_row (History.regressions t.history));
      vp_estimate = (fun () -> List.length (History.regressions t.history));
    };
  add "perm_metrics_history"
    {
      vp_rows =
        (fun () ->
          List.map metric_sample_row (History.metric_samples t.history));
      vp_estimate = (fun () -> List.length (History.metric_samples t.history));
    };
  add "perm_stat_anomalies"
    {
      (* oldest first, like the other telemetry views *)
      vp_rows = (fun () -> List.rev_map anomaly_row t.bundles);
      vp_estimate = (fun () -> List.length t.bundles);
    }

let create () =
  let t =
    {
      cat = Catalog.create ();
      store = Store.create ();
      prov_tables = Hashtbl.create 8;
      agg_strategy = Use_heuristic;
      planner_config = Planner.default_config;
      report = None;
      snapshot = None;
      metrics = Metrics.create ();
      instrument = false;
      current_span = None;
      last_trace = None;
      stats_acc = Stats.create ();
      virtuals = Hashtbl.create 8;
      trace_log = [];
      trace_cap = 512;
      trace_len = 0;
      event_log = Eventlog.create ();
      history = History.create ();
      stmt_rules = [];
      parallel_domains = 0;
      parallel_threshold = Planner.default_parallel_threshold;
      morsel_rows = 0;
      batch_rows =
        (match Sys.getenv_opt "PERM_BATCH_ROWS" with
        | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n > 0 -> n
          | _ -> Executor.default_batch_rows)
        | None -> Executor.default_batch_rows);
      vectorized =
        (match Sys.getenv_opt "PERM_VECTORIZED" with
        | Some ("0" | "off" | "false") -> false
        | _ -> true);
      pool = None;
      statement_timeout_ms = 0.;
      row_limit = 0;
      tuple_budget = 0;
      token = Token.none;
      profile = Profile.create ();
      stmt_fp = "";
      stmt_plan_hash = "";
      stmt_est_rows = 0.;
      stmt_skew = 1.;
      live = None;
      wal = None;
      wal_fsync = true;
      wal_dirty = false;
      wal_begun = false;
      spill_on = true;
      spill_dir = Filename.get_temp_dir_name ();
      obs_lock = Mutex.create ();
      recorder = Recorder.create ();
      bundles = [];
      bundle_cap = 32;
      bundle_seq = 1;
      bundle_dir = None;
      stmt_degraded = None;
      stmt_metrics0 = [];
      gc_pending = false;
      gc_heap_words = 0;
      gc_major_collections = 0;
      on_close = [];
    }
  in
  Perm_fault.init_from_env ();
  register_virtuals t;
  (* GC major slices land in the flight recorder. The alarm fires at the
     end of major cycles on this domain, but it must not touch the ring
     itself: evicting a ring slot from inside the alarm changes the live
     heap on every collection, so a harness that compacts repeatedly
     waiting for the live-word count to settle (Bechamel does) would
     never converge. The alarm only stashes the stats into unboxed
     fields; the next statement emits the event. *)
  let alarm =
    Gc.create_alarm (fun () ->
        let s = Gc.quick_stat () in
        t.gc_heap_words <- s.Gc.heap_words;
        t.gc_major_collections <- s.Gc.major_collections;
        t.gc_pending <- true)
  in
  t.on_close <- (fun () -> Gc.delete_alarm alarm) :: t.on_close;
  (* Spill milestones (runs, chunks, batch-path fallback reasons) fire
     from inside the executor on whatever domain spilled; the recorder is
     domain-safe. The tap is process-global, so the engine created last
     owns it — the right semantics for the one-engine-per-process CLI and
     harmless in multi-engine tests. *)
  Spill.set_observer
    (Some
       (fun kind detail ->
         Recorder.record t.recorder (Recorder.Spill { kind; detail })));
  t

type result_set = { columns : string list; rows : Tuple.t list }

type explain = {
  input_sql : string;
  original_tree : string;
  rewritten_tree : string;
  optimized_tree : string;
  rewritten_sql : string;
  agg_strategies : string list;
}

type explain_analyze = {
  ea_sql : string;
  ea_tree : string;  (** optimized tree annotated with actual rows/time *)
  ea_phases : (string * float) list;  (** phase name, milliseconds *)
  ea_rows : int;
  ea_total_ms : float;
  ea_strategies : string list;
}

type outcome =
  | Rows of result_set
  | Affected of int
  | Message of string
  | Explained of explain
  | Analyzed of explain_analyze

let catalog t = t.cat

let stats t : Planner.stats =
  {
    Planner.table_rows =
      (fun name ->
        match Store.find t.store name with
        | Some heap -> Heap.row_count heap
        | None -> (
          match Hashtbl.find_opt t.virtuals (String.lowercase_ascii name) with
          | Some vp -> vp.vp_estimate ()
          | None -> 0));
    Planner.table_distinct =
      (fun name col ->
        match Store.find t.store name, Catalog.find_table t.cat name with
        | Some heap, Some def -> (
          match Schema.find def.Catalog.table_schema col with
          | Some (pos, _) -> max 1 (Heap.distinct_estimate heap pos)
          | None -> 1)
        | _ -> 1);
    Planner.has_index =
      (fun table column -> Catalog.has_index t.cat ~table ~column);
  }

let rewriter_config t : Rewriter.config =
  {
    Rewriter.agg_mode =
      (match t.agg_strategy with
      | Use_join -> Rewriter.Fixed Rewriter.Agg_join
      | Use_lateral -> Rewriter.Fixed Rewriter.Agg_lateral
      | Use_heuristic -> Rewriter.Heuristic
      | Use_cost_based ->
        let s = stats t in
        Rewriter.Cost_based (fun plan -> Planner.cost s plan));
  }

let set_agg_strategy t s = t.agg_strategy <- s
let set_optimizer_config t c = t.planner_config <- c

(* ------------------------------------------------------------------ *)
(* Parallel execution settings                                          *)
(* ------------------------------------------------------------------ *)

type parallel_setting = Par_off | Par_on | Par_domains of int

let shutdown_pool t =
  match t.pool with
  | Some pool ->
    Pool.shutdown pool;
    t.pool <- None
  | None -> ()

(* Changing the domain count tears down the pool; the next parallel query
   recreates it at the new size. *)
let set_parallel t setting =
  let domains =
    match setting with
    | Par_off -> 0
    | Par_on -> max 1 (min 8 (Domain.recommended_domain_count ()))
    | Par_domains n -> max 0 (min 64 n)
  in
  if domains <> t.parallel_domains then begin
    shutdown_pool t;
    t.parallel_domains <- domains
  end

let parallel_domains t = t.parallel_domains
let set_parallel_threshold t n = t.parallel_threshold <- max 0 n
let parallel_threshold t = t.parallel_threshold
let set_morsel_rows t n = t.morsel_rows <- max 0 n
let morsel_rows t = t.morsel_rows
let set_batch_rows t n = t.batch_rows <- max 1 n
let batch_rows t = t.batch_rows
let set_vectorized t b = t.vectorized <- b
let vectorized t = t.vectorized
let pool_size t = match t.pool with Some p -> Pool.size p | None -> 0

(* The executor's batch compiler declines Apply/Prov shapes; when it does
   (or the session switched vectorization off) every call site falls back
   to the row-at-a-time closures, so [None] here means "row path". *)
let active_batch_rows t = if t.vectorized then Some t.batch_rows else None

(* ------------------------------------------------------------------ *)
(* Resource governor settings                                          *)
(* ------------------------------------------------------------------ *)

let set_statement_timeout t ms = t.statement_timeout_ms <- Float.max 0. ms
let statement_timeout t = t.statement_timeout_ms
let set_row_limit t n = t.row_limit <- max 0 n
let row_limit t = t.row_limit
let set_tuple_budget t n = t.tuple_budget <- max 0 n
let tuple_budget t = t.tuple_budget
let cancel t reason = Token.cancel t.token reason
let set_spill t b = t.spill_on <- b
let spill_enabled t = t.spill_on
let set_spill_dir t dir = t.spill_dir <- dir
let spill_dir t = t.spill_dir

let active_row_limit t = if t.row_limit > 0 then Some t.row_limit else None

(* With spill on (the default) a tuple budget is a degradation threshold
   for spillable shapes: the executor spills oversized sorts and join
   builds to temp files instead of the token raising [Resource_exhausted].
   Materializations no path can spill — hash-aggregate groups, DISTINCT
   and set-op tables — still enforce the budget as a hard ceiling at the
   materialization point, so the budget is never silently ignored. [\set
   spill off] restores the hard error everywhere. *)
let active_spill t =
  if t.spill_on && t.tuple_budget > 0 then
    Some { Spill.dir = t.spill_dir; threshold = t.tuple_budget }
  else None

(* A fresh token per top-level statement, armed from the session's governor
   settings. Always a real token (never [Token.none]) so {!cancel} from
   another domain has something to fire at; the executor only installs its
   per-operator guard when a limit is actually armed. The tuple budget
   arms the token only when spilling is off — otherwise it becomes the
   spill threshold, with the executor enforcing the same value as a hard
   ceiling on non-spillable materialized state. *)
let fresh_token t =
  Token.create
    ?timeout_ms:
      (if t.statement_timeout_ms > 0. then Some t.statement_timeout_ms
       else None)
    ?tuple_budget:
      (if t.tuple_budget > 0 && not t.spill_on then Some t.tuple_budget
       else None)
    ()

(* Lazily create the reusable worker pool on the first parallel query. *)
let pool t =
  match t.pool with
  | Some pool -> pool
  | None ->
    let pool = Pool.create t.parallel_domains in
    t.pool <- Some pool;
    pool

(* Run registered shutdown hooks (LIFO — the HTTP server drains before
   anything it depends on goes away), then release the worker domains. The
   engine remains usable afterwards: the next parallel query recreates the
   pool. Hooks run once; a hook that raises does not stop the others. *)
let at_close t f = t.on_close <- f :: t.on_close

let close t =
  let hooks = t.on_close in
  t.on_close <- [];
  List.iter (fun f -> try f () with _ -> ()) hooks;
  (match t.wal with
  | Some w ->
    Wal.close w;
    t.wal <- None
  | None -> ());
  shutdown_pool t
let last_report t = t.report
let provenance_columns t name =
  Hashtbl.find_opt t.prov_tables (String.lowercase_ascii name)

let provider t : Executor.provider =
  let heap_of table =
    match Store.find t.store table with
    | Some heap -> heap
    | None ->
      raise (Executor.Runtime_error (Printf.sprintf "table %S vanished" table))
  in
  {
    Executor.scan_table =
      (fun table ->
        match Store.find t.store table with
        | Some heap -> Heap.scan heap
        | None -> (
          (* virtual system relation: materialize from the engine-owned
             provider at scan time, so the view reflects the accumulator
             as of this statement *)
          match Hashtbl.find_opt t.virtuals (String.lowercase_ascii table) with
          | Some vp -> List.to_seq (vp.vp_rows ())
          | None ->
            raise
              (Executor.Runtime_error
                 (Printf.sprintf "table %S vanished" table))));
    Executor.probe_index =
      (fun table col key ->
        let heap = heap_of table in
        (* the planner only emits Index_scan for catalogued indexes, but the
           index may have been created after the plan's statistics snapshot;
           build it on demand *)
        if not (Heap.has_index heap col) then Heap.create_index heap col;
        Heap.index_probe heap col key);
    Executor.scan_morsels =
      (fun table rows ->
        match Store.find t.store table with
        | Some heap -> Heap.scan_morsels heap ~rows
        | None -> (
          match Hashtbl.find_opt t.virtuals (String.lowercase_ascii table) with
          | Some vp -> Executor.morsels_of_list ~morsel_rows:rows (vp.vp_rows ())
          | None ->
            raise
              (Executor.Runtime_error
                 (Printf.sprintf "table %S vanished" table))));
    Executor.scan_batches =
      (fun table rows ->
        match Store.find t.store table with
        | Some heap -> Heap.scan_batches heap ~rows
        | None -> (
          match Hashtbl.find_opt t.virtuals (String.lowercase_ascii table) with
          | Some vp ->
            let tuples = vp.vp_rows () in
            let arity =
              match tuples with t0 :: _ -> Array.length t0 | [] -> 0
            in
            Executor.batches_of_list ~arity ~batch_rows:rows tuples
          | None ->
            raise
              (Executor.Runtime_error
                 (Printf.sprintf "table %S vanished" table))));
  }

let ( let* ) = Result.bind

(* Kind-tagging shims for subsystem helpers that report plain strings:
   [sem] for semantic/catalog preconditions, [dat] for data-dependent
   storage and evaluation errors. *)
let sem r = Result.map_error Err.analyze r
let dat r = Result.map_error Err.runtime r

(* The engine boundary: everything the pipeline may legitimately raise —
   executor runtime errors, cooperative-cancellation kills, injected
   faults, resource blowups — is mapped into the typed taxonomy here, so
   [execute] keeps its result contract and never raises. *)
let capture t f =
  try f () with
  | Executor.Runtime_error msg -> Error (Err.runtime msg)
  | Err.Cancel (kind, msg) -> Error (Err.make kind msg)
  | Perm_fault.Injected p ->
    Metrics.incr t.metrics ("fault.injected." ^ p);
    Recorder.record t.recorder (Recorder.Fault { point = p });
    Error (Err.faulted (Printf.sprintf "fault injected at %s" p))
  | Stack_overflow -> Error (Err.resource "stack overflow")
  | Out_of_memory -> Error (Err.resource "out of memory")
  | e -> Error (Err.internal (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let metrics t = t.metrics
let set_instrumentation t on = t.instrument <- on
let instrumentation t = t.instrument
let last_trace t = t.last_trace
let statement_stats t = Stats.statements t.stats_acc
let relation_stats t = Stats.relations t.stats_acc

let reset_statement_stats t =
  obs_locked t (fun () ->
      Stats.reset t.stats_acc;
      Profile.reset t.profile;
      History.reset t.history)

let plan_profile t = Profile.plan_nodes t.profile
let worker_profile t = Profile.workers t.profile

(* Live progress of the current (or, once finished, most recent) top-level
   statement. Readable from any domain: the counters are atomics and the
   rest of the record is written before execution starts. *)
type progress = {
  pr_sql : string;
  pr_running : bool;
  pr_elapsed_ms : float;
  pr_rows : int;
  pr_morsels_done : int;
  pr_morsels_total : int;  (* 0 = serial execution *)
}

let progress t =
  match t.live with
  | None -> None
  | Some lv ->
    let sn = Progress.snapshot lv.lv_progress in
    let until =
      match lv.lv_end_s with Some e -> e | None -> Trace.now ()
    in
    Some
      {
        pr_sql = lv.lv_sql;
        pr_running = lv.lv_running;
        pr_elapsed_ms = (until -. lv.lv_start_s) *. 1000.;
        pr_rows = sn.Progress.sn_rows;
        pr_morsels_done = sn.Progress.sn_morsels_done;
        pr_morsels_total = sn.Progress.sn_morsels_total;
      }

(* The Progress.t handed to the executor, live only while its statement
   runs — nested statements feed the enclosing statement's counters. *)
let live_progress t =
  match t.live with
  | Some lv when lv.lv_running -> Some lv.lv_progress
  | _ -> None
let trace_log t = List.rev t.trace_log

let clear_trace_log t =
  obs_locked t (fun () ->
      t.trace_log <- [];
      t.trace_len <- 0)

let set_trace_capacity t n = t.trace_cap <- max 1 n
let event_log t = t.event_log
let history t = t.history
let recorder t = t.recorder

type wal_status = {
  ws_dir : string;
  ws_bytes : int;
  ws_records : int;
  ws_last_lsn : int;
  ws_fsyncs : int;
  ws_fsync_on : bool;
  ws_dirty : bool;
  ws_epoch : int;
  ws_replay : Wal.replay;
}

let wal_status t =
  Option.map
    (fun w ->
      let s = Wal.status w in
      {
        ws_dir = s.Wal.st_dir;
        ws_bytes = s.Wal.st_bytes;
        ws_records = s.Wal.st_records;
        ws_last_lsn = s.Wal.st_last_lsn;
        ws_fsyncs = s.Wal.st_fsyncs;
        ws_fsync_on = t.wal_fsync;
        ws_dirty = t.wal_dirty;
        ws_epoch = s.Wal.st_epoch;
        ws_replay = s.Wal.st_replay;
      })
    t.wal

(* WAL health as gauges: size/records/fsyncs track log growth between
   checkpoints, the epoch shows checkpoint progression, and the replay
   family preserves what crash recovery found when the log was opened —
   rp_skipped and truncated bytes are the evidence of a mid-checkpoint or
   mid-commit crash, previously visible only in \wal status. *)
let refresh_wal_gauges t =
  (* always published, zeros included: a dashboard alerting on
     wal_replay_truncated_bytes > 0 must see the series exist before the
     first crash, and a WAL-less session reports a flat zero family *)
  let bytes, records, fsyncs, epoch, rp =
    match t.wal with
    | None -> (0, 0, 0, 0, Wal.no_replay)
    | Some w ->
      let s = Wal.status w in
      ( s.Wal.st_bytes,
        s.Wal.st_records,
        s.Wal.st_fsyncs,
        s.Wal.st_epoch,
        s.Wal.st_replay )
  in
  Metrics.set_gauge t.metrics "wal.bytes" (float_of_int bytes);
  Metrics.set_gauge t.metrics "wal.records" (float_of_int records);
  Metrics.set_gauge t.metrics "wal.fsyncs" (float_of_int fsyncs);
  Metrics.set_gauge t.metrics "wal.epoch" (float_of_int epoch);
  Metrics.set_gauge t.metrics "wal.replay.records"
    (float_of_int rp.Wal.rp_records);
  Metrics.set_gauge t.metrics "wal.replay.committed"
    (float_of_int rp.Wal.rp_committed);
  Metrics.set_gauge t.metrics "wal.replay.skipped"
    (float_of_int rp.Wal.rp_skipped);
  Metrics.set_gauge t.metrics "wal.replay.truncated_bytes"
    (float_of_int rp.Wal.rp_truncated_bytes)

(* The spill gauges are always published (zeros included), so dashboards
   and the prom_lint-validated /metrics scrape can alert on them without
   waiting for a first spill to make the series appear. *)
let refresh_spill_gauges t =
  let sc = Spill.counters () in
  Metrics.set_gauge t.metrics "executor.spill.spills"
    (float_of_int sc.Spill.c_spills);
  Metrics.set_gauge t.metrics "executor.spill.runs"
    (float_of_int sc.Spill.c_runs);
  Metrics.set_gauge t.metrics "executor.spill.chunks"
    (float_of_int sc.Spill.c_chunks);
  Metrics.set_gauge t.metrics "executor.spill.rows"
    (float_of_int sc.Spill.c_rows);
  Metrics.set_gauge t.metrics "executor.spill.bytes"
    (float_of_int sc.Spill.c_bytes);
  Metrics.set_gauge t.metrics "executor.spill.fallbacks"
    (float_of_int sc.Spill.c_fallbacks)

(* ------------------------------------------------------------------ *)
(* Forensics bundles                                                   *)
(* ------------------------------------------------------------------ *)

(* The metric series a bundle reports as a delta over the statement.
   Lookups by name are a few mutex-guarded hashtable probes — cheap
   enough to baseline at every statement start while the recorder is on,
   unlike a full Metrics.snapshot. *)
let forensics_counters =
  [
    "engine.statements"; "engine.errors"; "engine.timeout";
    "engine.cancelled"; "engine.resource_exhausted"; "executor.par.degraded";
    "history.regressions"; "wal.checkpoints"; "wal.repairs";
  ]

let forensics_gauges =
  [
    "wal.bytes"; "wal.records"; "wal.fsyncs"; "wal.epoch";
    "executor.spill.spills"; "executor.spill.runs"; "executor.spill.chunks";
    "executor.spill.rows"; "executor.spill.bytes";
    "executor.spill.fallbacks";
  ]

let forensics_snapshot t =
  List.map
    (fun n -> (n, float_of_int (Metrics.counter t.metrics n)))
    forensics_counters
  @ List.map
      (fun n -> (n, Option.value ~default:0. (Metrics.gauge t.metrics n)))
      forensics_gauges

let forensics_delta t =
  List.map
    (fun (n, v) ->
      let v0 =
        match List.assoc_opt n t.stmt_metrics0 with Some v0 -> v0 | None -> 0.
      in
      (n, Json.Float (v -. v0)))
    (forensics_snapshot t)

let replay_json (rp : Wal.replay) =
  Json.Obj
    [
      ("snapshot", Json.Bool rp.Wal.rp_snapshot);
      ("records", Json.Int rp.Wal.rp_records);
      ("committed", Json.Int rp.Wal.rp_committed);
      ("discarded", Json.Int rp.Wal.rp_discarded);
      ("skipped", Json.Int rp.Wal.rp_skipped);
      ("truncated_bytes", Json.Int rp.Wal.rp_truncated_bytes);
    ]

let wal_status_json t =
  match wal_status t with
  | None -> Json.Null
  | Some ws ->
    Json.Obj
      [
        ("dir", Json.String ws.ws_dir);
        ("bytes", Json.Int ws.ws_bytes);
        ("records", Json.Int ws.ws_records);
        ("last_lsn", Json.Int ws.ws_last_lsn);
        ("fsyncs", Json.Int ws.ws_fsyncs);
        ("fsync_on", Json.Bool ws.ws_fsync_on);
        ("dirty", Json.Bool ws.ws_dirty);
        ("epoch", Json.Int ws.ws_epoch);
        ("replay", replay_json ws.ws_replay);
      ]

let spill_json () =
  let sc = Spill.counters () in
  Json.Obj
    [
      ("spills", Json.Int sc.Spill.c_spills);
      ("runs", Json.Int sc.Spill.c_runs);
      ("chunks", Json.Int sc.Spill.c_chunks);
      ("rows", Json.Int sc.Spill.c_rows);
      ("bytes", Json.Int sc.Spill.c_bytes);
      ("fallbacks", Json.Int sc.Spill.c_fallbacks);
    ]

let settings_json t =
  Json.Obj
    [
      ("parallel", Json.Int t.parallel_domains);
      ("parallel_threshold", Json.Int t.parallel_threshold);
      ("morsel_rows", Json.Int t.morsel_rows);
      ("batch_rows", Json.Int t.batch_rows);
      ("vectorized", Json.Bool t.vectorized);
      ("timeout_ms", Json.Float t.statement_timeout_ms);
      ("row_limit", Json.Int t.row_limit);
      ("tuple_budget", Json.Int t.tuple_budget);
      ("spill", Json.Bool t.spill_on);
      ("wal_fsync", Json.Bool t.wal_fsync);
    ]

let gc_json () =
  let s = Gc.quick_stat () in
  Json.Obj
    [
      ("heap_words", Json.Int s.Gc.heap_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
    ]

let plan_json t ~fingerprint ~plan_hash ~est_rows =
  let nodes =
    if fingerprint = "" then []
    else
      List.filter
        (fun (pn : Profile.plan_node) -> pn.Profile.pn_fingerprint = fingerprint)
        (Profile.plan_nodes t.profile)
  in
  Json.Obj
    [
      ("plan_hash", Json.String plan_hash);
      ("est_rows", Json.Float est_rows);
      ( "nodes",
        Json.List
          (List.map
             (fun (pn : Profile.plan_node) ->
               Json.Obj
                 [
                   ("node", Json.Int pn.Profile.pn_node);
                   ("operator", Json.String pn.Profile.pn_operator);
                   ("est_rows", Json.Float pn.Profile.pn_est_rows);
                   ("act_rows", Json.Int pn.Profile.pn_act_rows);
                   ("self_ms", Json.Float pn.Profile.pn_self_ms);
                   ("loops", Json.Int pn.Profile.pn_loops);
                 ])
             nodes) );
    ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let bundle_events_limit = 64

let rec list_take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: list_take (n - 1) xs

(* Snapshot one forensics bundle. Called with [obs_lock] held (statement
   finalize) or from the engine domain before any server starts (startup
   WAL replay) — both contexts where mutating the bundle store and the
   event log is safe. Disabled recorder (capacity 0) disables bundle
   capture with it: that is the bench's off-arm. *)
let capture_bundle_unlocked t ~cls ~detail ~sql ~fingerprint ~plan_hash
    ~est_rows ~ms ~rows ~phases =
  if Recorder.enabled t.recorder then begin
    let ts = Trace.now () in
    let id = t.bundle_seq in
    t.bundle_seq <- id + 1;
    let events = Recorder.recent ~limit:bundle_events_limit t.recorder in
    let doc =
      Json.Obj
        [
          ("schema", Json.String Bundle_schema.schema_tag);
          ("id", Json.Int id);
          ("ts", Json.Float ts);
          ("class", Json.String cls);
          ("detail", Json.String detail);
          ("sql", Json.String sql);
          ("fingerprint", Json.String fingerprint);
          ("ms", Json.Float ms);
          ("rows", Json.Int rows);
          ("plan", plan_json t ~fingerprint ~plan_hash ~est_rows);
          ("phases", Json.Obj (List.map (fun (n, d) -> (n, Json.Float d)) phases));
          ("metrics_delta", Json.Obj (forensics_delta t));
          ("events", Json.List (List.map Recorder.event_to_json events));
          ("wal", wal_status_json t);
          ("spill", spill_json ());
          ("settings", settings_json t);
          ("gc", gc_json ());
        ]
    in
    let b =
      {
        bu_id = id;
        bu_ts = ts;
        bu_class = cls;
        bu_fingerprint = fingerprint;
        bu_sql = sql;
        bu_detail = detail;
        bu_doc = doc;
      }
    in
    t.bundles <- b :: t.bundles;
    if List.length t.bundles > t.bundle_cap then
      t.bundles <- list_take t.bundle_cap t.bundles;
    Metrics.incr t.metrics "forensics.bundles";
    Metrics.incr t.metrics ("forensics.class." ^ cls);
    (* optional on-disk mirror, bounded like the in-memory store: each new
       bundle evicts the file that just fell off the retention window *)
    (match t.bundle_dir with
    | Some dir -> (
      try
        mkdir_p dir;
        let path = Filename.concat dir (Printf.sprintf "bundle-%06d.json" id) in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Json.to_pretty_string doc));
        let victim = id - t.bundle_cap in
        if victim >= 1 then
          try
            Sys.remove
              (Filename.concat dir (Printf.sprintf "bundle-%06d.json" victim))
          with Sys_error _ -> ()
      with _ -> Metrics.incr t.metrics "forensics.write.errors")
    | None -> ());
    (* the SSE plane tails the event log; an "anomaly" event there becomes
       an `event: anomaly` frame on /events *)
    Eventlog.log t.event_log
      (Json.Obj
         [
           ("ts", Json.Float ts);
           ("event", Json.String "anomaly");
           ("id", Json.Int id);
           ("class", Json.String cls);
           ("fingerprint", Json.String fingerprint);
           ("detail", Json.String detail);
           ("sql", Json.String sql);
         ])
  end

(* Map a finished top-level statement to its anomaly class, if any. Typed
   failures win over a watchdog flag (errors never fold into the baseline
   anyway), which wins over a successful-but-degraded execution. *)
let statement_anomaly t result rg_opt =
  match result with
  | Error (e : Err.t) ->
    let cls =
      match e.Err.kind with
      | Err.Timeout -> "timeout"
      | Err.Cancelled -> "cancelled"
      | Err.Resource_exhausted -> "resource_exhausted"
      | Err.Faulted -> "fault"
      | Err.Parse | Err.Analyze | Err.Runtime | Err.Internal -> "error"
    in
    Some (cls, Err.to_string e)
  | Ok _ -> (
    match rg_opt with
    | Some (rg : History.regression) ->
      Some
        ( "regression",
          Printf.sprintf "%.1fx over baseline %.2f ms (%s): %s"
            rg.History.rg_factor rg.History.rg_baseline_ms
            (History.cause_label rg.History.rg_cause)
            rg.History.rg_detail )
    | None -> (
      match t.stmt_degraded with
      | Some reason -> Some ("degraded", reason)
      | None -> None))

(* ------------------------------------------------------------------ *)
(* Cross-domain observability reads (the HTTP plane)                   *)
(* ------------------------------------------------------------------ *)

let locked t f = obs_locked t f

let refresh_loss_gauges t =
  obs_locked t (fun () -> refresh_loss_gauges_unlocked t)

let virtual_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.virtuals [])

(* Materialize a perm_stat_* view outside a query, for the /stats JSON
   endpoints: same provider closure a scan uses, but under [obs_lock] so
   it can run on a server domain while the engine executes statements.
   [t.virtuals] itself is only written at engine creation, so the lookup
   needs no lock. *)
let virtual_relation t name =
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt t.virtuals name with
  | None -> None
  | Some vp ->
    let columns =
      match List.assoc_opt name virtual_schemas with
      | Some cols -> List.map (fun (c : Column.t) -> c.Column.name) cols
      | None -> []
    in
    Some (columns, obs_locked t (fun () -> vp.vp_rows ()))

let recent_events t ~since =
  obs_locked t (fun () -> Eventlog.since t.event_log since)

(* Runs [f] as a named phase under the current statement span, so its
   duration shows up in the trace tree and in the per-phase histograms. *)
let phase t name f =
  match t.current_span with
  | None -> f ()
  | Some root -> Trace.timed root name f

(* Like [phase], but hands the phase span (when tracing) to [f] so it can
   attach child spans or attributes — used by the parallel execute path. *)
let phase_sp t name f =
  match t.current_span with
  | None -> f None
  | Some root ->
    let sp = Trace.child root name in
    Fun.protect ~finally:(fun () -> Trace.finish sp) (fun () -> f (Some sp))

let strategy_names (report : Rewriter.report) =
  List.map
    (function
      | Rewriter.Agg_join -> "join"
      | Rewriter.Agg_lateral -> "lateral")
    report.Rewriter.agg_choices

let record_rewrite_metrics t (report : Rewriter.report) =
  List.iter
    (fun name -> Metrics.incr t.metrics ("rewriter.strategy." ^ name))
    (strategy_names report);
  List.iter
    (fun (rule, n) ->
      Metrics.incr t.metrics ~by:n ("rewriter.rule." ^ rule);
      (* also accumulate per-statement so perm_stat_statements attributes
         firings to the fingerprint of the statement that triggered them
         (including rewrites of statements nested under DML helpers) *)
      t.stmt_rules <- (rule, n) :: t.stmt_rules)
    report.Rewriter.rule_counts

let record_exec_stats t stats =
  List.iter
    (fun (ns : Executor.node_stats) ->
      Metrics.incr t.metrics ~by:ns.Executor.stat_rows
        ("executor.rows." ^ ns.Executor.stat_kind);
      Metrics.incr t.metrics ~by:ns.Executor.stat_invocations
        ("executor.invocations." ^ ns.Executor.stat_kind))
    (Executor.stats_entries stats);
  obs_locked t (fun () ->
      List.iter
        (fun (table, (ns : Executor.node_stats)) ->
          Stats.record_scan t.stats_acc ~relation:table
            ~rows:ns.Executor.stat_rows)
        (Executor.scan_stats stats))

(* Planner estimates for every node of the executed plan, keyed by physical
   identity — the pre-order position doubles as the stable node id. *)
let plan_estimates t plan = Planner.node_estimates (stats t) plan

let estimate_of ests node =
  match List.find_opt (fun (n, _) -> n == node) ests with
  | Some (_, e) -> e
  | None -> 0.

(* Fold a finalized serial execution profile into the retained
   per-fingerprint plan-profile store behind perm_stat_plans. Helper nodes
   the executor synthesized (stat_id < 0) are skipped: they are not part
   of the optimized plan the ids describe. *)
let record_plan_profile t plan exec_stats =
  if t.stmt_fp <> "" then begin
    let ests = plan_estimates t plan in
    obs_locked t @@ fun () ->
    List.iter
      (fun (node, (ns : Executor.node_stats)) ->
        if ns.Executor.stat_id >= 0 then begin
          Profile.record_plan_node t.profile ~fingerprint:t.stmt_fp
            ~node:ns.Executor.stat_id
            ~operator:(Plan.operator_name node)
            ~est_rows:(estimate_of ests node)
            ~act_rows:ns.Executor.stat_rows
            ~self_ms:(ns.Executor.stat_self_s *. 1000.)
            ~loops:ns.Executor.stat_invocations
            ~peak_bytes:ns.Executor.stat_peak_bytes;
          Recorder.record t.recorder
            (Recorder.Plan_node
               {
                 fingerprint = t.stmt_fp;
                 node = ns.Executor.stat_id;
                 operator = Plan.operator_name node;
                 est_rows = estimate_of ests node;
                 act_rows = ns.Executor.stat_rows;
               })
        end)
      (Executor.stats_nodes exec_stats)
  end

(* ------------------------------------------------------------------ *)
(* Query pipeline: analyze -> rewrite -> optimize -> execute            *)
(* ------------------------------------------------------------------ *)

let prepare t (q : Ast.query) =
  let* analyzed =
    sem (phase t "analyze" (fun () -> Analyzer.analyze_query t.cat q))
  in
  let* rewritten, report =
    sem
      (phase t "rewrite" (fun () ->
           try Ok (Rewriter.rewrite ~config:(rewriter_config t) analyzed)
           with Rewriter.Rewrite_error msg ->
             Error ("provenance rewrite failed: " ^ msg)))
  in
  t.report <- Some report;
  record_rewrite_metrics t report;
  let optimized =
    phase t "optimize" (fun () ->
        Planner.optimize ~config:t.planner_config (stats t) rewritten)
  in
  Ok (analyzed, rewritten, optimized)

(* Morsel-driven parallel execution is attempted when the session has
   parallelism on, the planner's verdict is favourable, and the executor
   accepts the plan shape. Session instrumentation no longer forces the
   serial path: the parallel executor carries its own plan-node profiler
   (atomic per-stage counters), so [profile] is switched on instead.
   Every fallback leaves a reason counter in the metrics so "why didn't
   this parallelize?" is answerable from perm_metrics. *)
let try_parallel t optimized =
  if t.parallel_domains <= 0 then None
  else
    match
      Planner.parallel_verdict ~threshold:t.parallel_threshold (stats t)
        optimized
    with
    | Planner.Par_fallback reason ->
      Metrics.incr t.metrics ("executor.par.fallback." ^ reason);
      None
    | Planner.Par_ok { par_est_rows; _ } -> (
      let morsel_rows =
        if t.morsel_rows > 0 then t.morsel_rows
        else if t.vectorized then
          Planner.choose_morsel_rows ~batch_rows:t.batch_rows
            ~driving_rows:par_est_rows ~domains:t.parallel_domains
        else Executor.Par.default_morsel_rows
      in
      match
        Executor.Par.prepare ~provider:(provider t) ~pool:(pool t)
          ~morsel_rows ?batch_rows:(active_batch_rows t) ~token:t.token
          ?row_limit:(active_row_limit t) ?progress:(live_progress t)
          ~profile:t.instrument ?spill:(active_spill t) optimized
      with
      | None ->
        (* the planner mirror accepted a shape the executor declined *)
        Metrics.incr t.metrics "executor.par.fallback.shape";
        None
      | Some run -> Some run)

(* The top-level statement's first executed plan defines its plan hash and
   estimate total for the telemetry history; nested executions (DML
   helpers re-entering run_query) keep the enclosing statement's. The
   execution mode is part of the hash: the parallel verdict flipping for
   the same statement shape is a plan change the watchdog should see. *)
let note_plan t optimized ~parallel =
  if t.stmt_plan_hash = "" then begin
    let mode =
      if parallel then "parallel"
      else if t.vectorized && Executor.batch_eligible optimized then "vector"
      else "serial"
    in
    t.stmt_plan_hash <- Executor.plan_hash ~mode optimized;
    t.stmt_est_rows <- Planner.estimate_total (stats t) optimized
  end

let record_par_report t plan (r : Executor.Par.report) =
  obs_locked t @@ fun () ->
  Metrics.incr t.metrics "executor.par.queries";
  Metrics.incr t.metrics ~by:r.Executor.Par.par_morsels "executor.par.morsels";
  Metrics.set_gauge t.metrics "executor.par.domains"
    (float_of_int r.Executor.Par.par_domains);
  if r.Executor.Par.par_morsels > 0 then
    Metrics.set_gauge t.metrics "executor.par.utilization"
      (float_of_int r.Executor.Par.par_participants
      /. float_of_int r.Executor.Par.par_domains);
  (* per-worker accounting: busy from the pool's slice timings, idle as the
     rest of the batch wall time, skew as busy over the batch mean *)
  let rp = r.Executor.Par.par_pool in
  let workers = rp.Pool.rp_workers in
  let nw = Array.length workers in
  if nw > 0 then begin
    let total_busy =
      Array.fold_left (fun acc w -> acc +. w.Pool.ws_busy_s) 0. workers
    in
    let mean_busy = total_busy /. float_of_int nw in
    let max_skew = ref 1. in
    Array.iteri
      (fun i (w : Pool.worker_stat) ->
        let skew =
          if mean_busy > 0. then w.Pool.ws_busy_s /. mean_busy else 1.
        in
        if skew > !max_skew then max_skew := skew;
        Profile.record_worker t.profile ~domain:i ~morsels:w.Pool.ws_morsels
          ~busy_ms:(w.Pool.ws_busy_s *. 1000.)
          ~idle_ms:
            (Float.max 0. (rp.Pool.rp_wall_s -. w.Pool.ws_busy_s) *. 1000.)
          ~rows:w.Pool.ws_rows ~skew)
      workers;
    Metrics.set_gauge t.metrics "executor.par.skew" !max_skew;
    if !max_skew > t.stmt_skew then t.stmt_skew <- !max_skew;
    (* the statement root carries skew/utilization so the trace export
       shows imbalance without drilling into lanes *)
    match t.current_span with
    | None -> ()
    | Some root ->
      Trace.annotate root "executor.par.skew"
        (Printf.sprintf "%.2f" !max_skew);
      Trace.annotate root "executor.par.utilization"
        (Printf.sprintf "%.2f"
           (float_of_int r.Executor.Par.par_participants
           /. float_of_int (max 1 r.Executor.Par.par_domains)))
  end;
  (* plan-node cardinalities from the parallel stage counters; self time is
     not attributable per node on the push-based path, so it stays 0 *)
  match r.Executor.Par.par_nodes with
  | [] -> ()
  | nodes ->
    if t.stmt_fp <> "" then begin
      let ids = Executor.node_ids plan in
      let ests = plan_estimates t plan in
      List.iter
        (fun (np : Executor.Par.node_profile) ->
          let kind = Plan.operator_kind np.Executor.Par.np_node in
          Metrics.incr t.metrics ~by:np.Executor.Par.np_rows
            ("executor.rows." ^ kind);
          Metrics.incr t.metrics ~by:np.Executor.Par.np_loops
            ("executor.invocations." ^ kind);
          (match np.Executor.Par.np_node with
          | Plan.Scan { table; _ } ->
            Stats.record_scan t.stats_acc ~relation:table
              ~rows:np.Executor.Par.np_rows
          | _ -> ());
          match
            List.find_opt (fun (n, _) -> n == np.Executor.Par.np_node) ids
          with
          | None -> ()
          | Some (node, id) ->
            Profile.record_plan_node t.profile ~fingerprint:t.stmt_fp ~node:id
              ~operator:(Plan.operator_name node)
              ~est_rows:(estimate_of ests node)
              ~act_rows:np.Executor.Par.np_rows ~self_ms:0.
              ~loops:np.Executor.Par.np_loops ~peak_bytes:0;
            Recorder.record t.recorder
              (Recorder.Plan_node
                 {
                   fingerprint = t.stmt_fp;
                   node = id;
                   operator = Plan.operator_name node;
                   est_rows = estimate_of ests node;
                   act_rows = np.Executor.Par.np_rows;
                 }))
        nodes
    end

(* Execute a prepared plan, collecting per-operator stats when the session
   has instrumentation switched on. *)
(* Per-morsel slices and per-worker summaries attach under the "parallel"
   span on each worker's lane, so the Chrome trace export renders one
   swimlane per domain. The summary slice spans the whole batch even for
   idle workers, guaranteeing every domain's lane exists in the export. *)
let attach_worker_lanes psp (r : Executor.Par.report) =
  let rp = r.Executor.Par.par_pool in
  Array.iteri
    (fun i (w : Pool.worker_stat) ->
      ignore
        (Trace.add_slice psp
           (Printf.sprintf "worker %d" i)
           ~start_s:rp.Pool.rp_start_s ~dur_s:rp.Pool.rp_wall_s
           ~lane:(Trace.worker_lane i)
           [
             ("morsels", string_of_int w.Pool.ws_morsels);
             ("rows", string_of_int w.Pool.ws_rows);
             ("busy_ms", Printf.sprintf "%.3f" (w.Pool.ws_busy_s *. 1000.));
           ]))
    rp.Pool.rp_workers;
  List.iter
    (fun (s : Pool.task_slice) ->
      ignore
        (Trace.add_slice psp
           (Printf.sprintf "morsel %d" s.Pool.ts_task)
           ~start_s:s.Pool.ts_start ~dur_s:s.Pool.ts_dur_s
           ~lane:(Trace.worker_lane s.Pool.ts_worker)
           [ ("rows", string_of_int s.Pool.ts_rows) ]))
    rp.Pool.rp_slices

let exec_plan t optimized =
  let run_serial () =
    Executor.run ~token:t.token ?row_limit:(active_row_limit t)
      ?progress:(live_progress t) ?batch_rows:(active_batch_rows t)
      ?spill:(active_spill t) ~provider:(provider t) optimized
  in
  match try_parallel t optimized with
  | Some run ->
    note_plan t optimized ~parallel:true;
    phase_sp t "execute" (fun sp ->
        let run_par () =
          let par_sp = Option.map (fun s -> Trace.child s "parallel") sp in
          Fun.protect
            ~finally:(fun () -> Option.iter Trace.finish par_sp)
            (fun () ->
              let result = run () in
              (match par_sp, result with
              | Some psp, Ok (_, r) ->
                Trace.annotate psp "domains"
                  (string_of_int r.Executor.Par.par_domains);
                Trace.annotate psp "morsels"
                  (string_of_int r.Executor.Par.par_morsels);
                Trace.annotate psp "participants"
                  (string_of_int r.Executor.Par.par_participants);
                attach_worker_lanes psp r
              | _ -> ());
              result)
        in
        match run_par () with
        | Ok (rows, report) ->
          record_par_report t optimized report;
          Ok rows
        | Error msg -> Error (Err.runtime msg)
        | exception (Err.Cancel _ as e) ->
          (* a governor kill is not a worker failure: the generation has
             already drained, so re-raise for the boundary — no retry *)
          raise e
        | exception Spill.Fallback_needed _ ->
          (* a build side or sort blew the spill threshold: the parallel
             path never spills, the serial row path does *)
          Spill.note_fallback ();
          Metrics.incr t.metrics "executor.par.fallback.spill";
          dat (run_serial ())
        | exception e ->
          (* a worker blew past the executor's error contract (injected
             fault, poisoned generation): degrade to the serial path once.
             If the failure is deterministic it will surface again there,
             typed, through the boundary. *)
          (match e with
          | Perm_fault.Injected p ->
            Metrics.incr t.metrics ("fault.injected." ^ p);
            Recorder.record t.recorder (Recorder.Fault { point = p })
          | _ -> ());
          Metrics.incr t.metrics "executor.par.fallback.error";
          Metrics.incr t.metrics "executor.par.degraded";
          (* an anomaly even when the serial retry succeeds: the bundle
             shows which worker failure forced the degradation *)
          let reason =
            Printf.sprintf "parallel execution degraded to serial: %s"
              (Printexc.to_string e)
          in
          if t.stmt_degraded = None then t.stmt_degraded <- Some reason;
          Recorder.record t.recorder (Recorder.Degraded { reason });
          dat (run_serial ()))
  | None ->
    note_plan t optimized ~parallel:false;
    if t.instrument then
      let* rows, exec_stats =
        dat
          (phase t "execute" (fun () ->
               Executor.run_instrumented ~token:t.token
                 ?row_limit:(active_row_limit t)
                 ?progress:(live_progress t)
                 ?batch_rows:(active_batch_rows t) ?spill:(active_spill t)
                 ~provider:(provider t) optimized))
      in
      record_exec_stats t exec_stats;
      record_plan_profile t optimized exec_stats;
      Ok rows
    else dat (phase t "execute" run_serial)

let run_query t (q : Ast.query) =
  let* analyzed, _rewritten, optimized = prepare t q in
  let* rows = exec_plan t optimized in
  (* column names come from the analyzed plan's schema: the marker schema
     already includes the provenance attributes with their public names *)
  let columns = Analyzer.output_names analyzed in
  Ok { columns; rows }

let plan_query t sql =
  match Parser.parse_query sql with
  | Error e -> Error (Parser.error_to_string ~input:sql e)
  | Ok q ->
    Result.map_error Err.to_string
      (capture t (fun () ->
           let* analyzed, _rewritten, optimized = prepare t q in
           Ok (analyzed, optimized)))

let run_plan t plan =
  t.token <- fresh_token t;
  Result.map_error Err.to_string
    (capture t (fun () ->
         dat
           (Executor.run ~token:t.token ?row_limit:(active_row_limit t)
              ?batch_rows:(active_batch_rows t) ?spill:(active_spill t)
              ~provider:(provider t) plan)))

let explain_query t sql (q : Ast.query) =
  let* analyzed, rewritten, optimized = prepare t q in
  let report = Option.get t.report in
  (* the executable tree carries cost/row estimates, EXPLAIN-style *)
  let s = stats t in
  let annotate plan =
    Printf.sprintf "(cost=%.0f rows=%.0f)" (Planner.cost s plan)
      (Planner.estimate_rows s plan)
  in
  Ok
    {
      input_sql = sql;
      original_tree = Pretty.plan_to_string ~show_attrs:false analyzed;
      rewritten_tree = Pretty.plan_to_string ~show_attrs:false rewritten;
      optimized_tree = Pretty.plan_to_string ~show_attrs:false ~annotate optimized;
      rewritten_sql = Sqlgen.plan_to_sql rewritten;
      agg_strategies = strategy_names report;
    }

let explain_analyze_query t sql (q : Ast.query) =
  let* _analyzed, _rewritten, optimized = prepare t q in
  note_plan t optimized ~parallel:false;
  let report = Option.get t.report in
  (* EXPLAIN ANALYZE always instruments, whatever the session setting; it
     stays on the serial path because per-node self times need the
     pull-based profiler *)
  let* rows, exec_stats =
    dat
      (phase t "execute" (fun () ->
           Executor.run_instrumented ~token:t.token
             ?row_limit:(active_row_limit t) ?progress:(live_progress t)
             ?batch_rows:(active_batch_rows t) ~provider:(provider t)
             optimized))
  in
  record_exec_stats t exec_stats;
  record_plan_profile t optimized exec_stats;
  let ests = plan_estimates t optimized in
  let annotate plan =
    match Executor.lookup exec_stats plan with
    | Some ns ->
      let est = estimate_of ests plan in
      let act = ns.Executor.stat_rows in
      (* flag misestimates: the larger of est/act over the other, floored
         at one row on each side so empty results don't divide by zero *)
      let ratio =
        let e = Float.max est 1. and a = float_of_int (max act 1) in
        Float.max (e /. a) (a /. e)
      in
      let off =
        if ratio >= 2. then Printf.sprintf " (x%.0f off)" ratio else ""
      in
      Printf.sprintf "(est=%.0f act=%d%s loops=%d self=%.3f ms time=%.3f ms)"
        est act off ns.Executor.stat_invocations
        (ns.Executor.stat_self_s *. 1000.)
        (ns.Executor.stat_time_s *. 1000.)
    | None -> "(never executed)"
  in
  let phases, total_ms =
    match t.current_span with
    | Some root ->
      ( List.map
          (fun sp -> (Trace.name sp, Trace.duration_ms sp))
          (Trace.children root),
        Trace.duration_ms root )
    | None -> ([], 0.)
  in
  Ok
    {
      ea_sql = sql;
      ea_tree = Pretty.plan_to_string ~show_attrs:false ~annotate optimized;
      ea_phases = phases;
      ea_rows = List.length rows;
      ea_total_ms = total_ms;
      ea_strategies = strategy_names report;
    }

(* ------------------------------------------------------------------ *)
(* Schema derivation for CREATE TABLE AS / STORE PROVENANCE            *)
(* ------------------------------------------------------------------ *)

(* Result columns may repeat names and carry the Any type (all-NULL
   columns); stored tables need unique names and concrete types. *)
let schema_of_plan plan =
  let seen = Hashtbl.create 8 in
  let cols =
    List.map
      (fun (a : Attr.t) ->
        let base = a.Attr.name in
        let name =
          match Hashtbl.find_opt seen base with
          | None ->
            Hashtbl.replace seen base 1;
            base
          | Some n ->
            Hashtbl.replace seen base (n + 1);
            Printf.sprintf "%s_%d" base n
        in
        let ty = match a.Attr.ty with Dtype.Any -> Dtype.Text | ty -> ty in
        Column.make name ty)
      (Plan.schema plan)
  in
  Schema.make cols

(* ------------------------------------------------------------------ *)
(* Write-ahead logging: canonical DDL and logged mutation entry points  *)
(* ------------------------------------------------------------------ *)

(* Canonical SQL renderers, shared by [dump_sql] (the \save script and the
   WAL checkpoint snapshot) and the Create/Drop WAL frames, so replay
   re-executes exactly the DDL the dump would. *)
let create_table_sql (def : Catalog.table_def) =
  Printf.sprintf "CREATE TABLE %s (%s);" def.Catalog.table_name
    (String.concat ", "
       (List.map
          (fun (c : Column.t) -> c.Column.name ^ " " ^ Dtype.to_string c.Column.ty)
          (Schema.columns def.Catalog.table_schema)))

let create_index_sql (d : Catalog.index_def) =
  Printf.sprintf "CREATE INDEX %s ON %s (%s);" d.Catalog.index_name
    d.Catalog.index_table d.Catalog.index_column

let create_view_sql (v : Catalog.view_def) =
  Printf.sprintf "CREATE VIEW %s AS %s;" v.Catalog.view_name v.Catalog.view_sql

(* Append one frame, opening the statement's transaction lazily (read-only
   statements never touch the log). Mutations are logged *after* they hit
   the heap, so the frame records what actually happened — including a
   partially applied insert. On an append failure the log is marked dirty:
   logging stops (the heaps are ahead of the log) and the next top-level
   statement rebuilds the log from a checkpoint before running. *)
let wal_append t frame =
  match t.wal with
  | None -> ()
  | Some w ->
    if not t.wal_dirty then begin
      try
        if not t.wal_begun then begin
          t.wal_begun <- true;
          Wal.append w Wal.Begin;
          Recorder.record t.recorder (Recorder.Wal_append { frame = "begin" })
        end;
        Wal.append w frame;
        Recorder.record t.recorder
          (Recorder.Wal_append { frame = Wal.frame_label frame })
      with e ->
        t.wal_dirty <- true;
        Metrics.incr t.metrics "wal.append.errors";
        raise e
    end

(* The single logged entry points every DML/DDL path goes through, so the
   WAL and the heaps can never disagree on the applied row set. *)

(* [insert_all] keeps the inserted prefix when a later row fails
   validation; log exactly the rows that landed. *)
let logged_insert t name heap rows =
  let before = Heap.row_count heap in
  let result = Heap.insert_all heap rows in
  let after = Heap.row_count heap in
  if after > before then
    wal_append t
      (Wal.Insert
         ( name,
           Array.to_list (Heap.scan_chunk heap ~pos:before ~len:(after - before))
         ));
  result

(* [replace_all] is atomic (validates everything first), so on [Ok] the
   heap holds exactly [rows]. *)
let logged_replace t name heap rows =
  let result = Heap.replace_all heap rows in
  (match result with Ok () -> wal_append t (Wal.Replace (name, rows)) | Error _ -> ());
  result

let logged_truncate t name heap =
  Heap.truncate heap;
  wal_append t (Wal.Delete name)

let create_relation t name schema rows =
  let* def = sem (Catalog.add_table t.cat name schema) in
  let* heap = sem (Store.create_table t.store name schema) in
  wal_append t (Wal.Create (create_table_sql def));
  let* () = dat (logged_insert t name heap rows) in
  Ok ()

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let find_heap t name =
  match Catalog.find_table t.cat name, Store.find t.store name with
  | Some def, Some heap -> Ok (def, heap)
  | None, _ when Catalog.find_view t.cat name <> None ->
    Error (Err.analyze (Printf.sprintf "%S is a view; DML targets must be tables" name))
  | None, _ when Catalog.find_virtual t.cat name <> None ->
    Error
      (Err.analyze
         (Printf.sprintf
            "%S is a virtual system relation; DML targets must be tables" name))
  | _ -> Error (Err.analyze (Printf.sprintf "table %S does not exist" name))

let insert_values t name rows =
  let* _def, heap = find_heap t name in
  let rec eval_rows acc = function
    | [] -> Ok (List.rev acc)
    | row :: rest ->
      let rec eval_row acc_v = function
        | [] -> Ok (Array.of_list (List.rev acc_v))
        | e :: es ->
          let* e' = sem (Analyzer.const_expr e) in
          let* v = dat (Executor.eval_const e') in
          eval_row (v :: acc_v) es
      in
      let* r = eval_row [] row in
      eval_rows (r :: acc) rest
  in
  let* rows = eval_rows [] rows in
  let* () = dat (logged_insert t name heap rows) in
  Ok (List.length rows)

let insert_select t name q =
  let* _def, heap = find_heap t name in
  let* { rows; _ } = run_query t q in
  let* () = dat (logged_insert t name heap rows) in
  Ok (List.length rows)

(* DELETE/UPDATE row selection reuses the analyzer+executor through a
   synthesized [SELECT * FROM name WHERE pred] plan so predicate semantics
   (3VL, subqueries as WHERE conjuncts) match queries exactly. *)
let matching_rows t name where =
  let select =
    {
      Ast.empty_select with
      Ast.items = [ Ast.Star ];
      from = [ Ast.plain_from (Ast.From_table name) ];
      where;
    }
  in
  let* rs = run_query t (Ast.select_query select) in
  Ok rs.rows

let delete_rows t name where =
  let* _def, heap = find_heap t name in
  match where with
  | None ->
    let n = Heap.row_count heap in
    logged_truncate t name heap;
    Ok n
  | Some _ ->
    let* matched = matching_rows t name where in
    let victims = Tuple.Hash.create 64 in
    List.iter (fun r -> Tuple.Hash.replace victims r ()) matched;
    let keep =
      List.filter (fun r -> not (Tuple.Hash.mem victims r)) (Heap.to_list heap)
    in
    let deleted = Heap.row_count heap - List.length keep in
    let* () = dat (logged_replace t name heap keep) in
    Ok deleted

let update_rows t name assigns where =
  let* def, heap = find_heap t name in
  let schema = def.Catalog.table_schema in
  (* validate the assigned columns exist *)
  let* () =
    List.fold_left
      (fun acc (col, _) ->
        let* () = acc in
        match Schema.find schema col with
        | Some _ -> Ok ()
        | None -> Error (Err.analyze (Printf.sprintf "column %S does not exist" col)))
      (Ok ()) assigns
  in
  (* one synthesized query yields the updated images of matching rows *)
  let items =
    List.map
      (fun (c : Column.t) ->
        match List.assoc_opt c.name (List.map (fun (k, v) -> (String.lowercase_ascii k, v)) assigns) with
        | Some e -> Ast.Sel_expr (e, Some c.name)
        | None -> Ast.Sel_expr (Ast.Ref (None, c.name), Some c.name))
      (Schema.columns schema)
  in
  let select =
    {
      Ast.empty_select with
      Ast.items;
      from = [ Ast.plain_from (Ast.From_table name) ];
      where;
    }
  in
  let* updated = run_query t (Ast.select_query select) in
  let* matched = matching_rows t name where in
  let victims = Tuple.Hash.create 64 in
  List.iter (fun r -> Tuple.Hash.replace victims r ()) matched;
  let keep =
    List.filter (fun r -> not (Tuple.Hash.mem victims r)) (Heap.to_list heap)
  in
  let* () = dat (logged_replace t name heap (keep @ updated.rows)) in
  Ok (List.length updated.rows)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Mark the query's leftmost SELECT with a PROVENANCE flag, exactly as if
   the user had written [SELECT PROVENANCE ...] — so eager computation is
   lazy computation plus materialization, by construction (including the
   marker-vs-ORDER BY/LIMIT placement). *)
let rec mark_provenance (q : Ast.query) =
  match q.Ast.body with
  | Ast.Select s ->
    { q with Ast.body = Ast.Select { s with Ast.provenance = Some Ast.Influence } }
  | Ast.Set_op { kind; all; left; right } ->
    {
      q with
      Ast.body = Ast.Set_op { kind; all; left = mark_provenance left; right };
    }

let store_provenance t q name =
  (* Eager provenance: make sure the query computes provenance (mark it if
     the user did not write SELECT PROVENANCE), materialize, and remember
     the provenance columns for later re-propagation. *)
  let q = if Ast.query_uses_provenance q then q else mark_provenance q in
  let* analyzed, _rewritten, optimized = prepare t q in
  let* rows = exec_plan t optimized in
  let* schema = sem (schema_of_plan analyzed) in
  let* () = create_relation t name schema rows in
  let prov_cols =
    List.filter
      (fun (c : Column.t) ->
        String.length c.name >= 5 && String.sub c.name 0 5 = "prov_")
      (Schema.columns schema)
  in
  let prov_names = List.map (fun (c : Column.t) -> c.name) prov_cols in
  Hashtbl.replace t.prov_tables (String.lowercase_ascii name) prov_names;
  wal_append t (Wal.Prov (String.lowercase_ascii name, prov_names));
  Ok
    (Message
       (Printf.sprintf "stored provenance of query into table %S (%d rows, %d provenance columns)"
          name (List.length rows) (List.length prov_cols)))

(* ------------------------------------------------------------------ *)
(* CSV import/export and dumps                                          *)
(* ------------------------------------------------------------------ *)

let copy_from t name path =
  let* def, heap = find_heap t name in
  let* text =
    try Ok (In_channel.with_open_text path In_channel.input_all)
    with Sys_error msg -> Error (Err.runtime msg)
  in
  let* rows = dat (Csv.parse text) in
  let cols = Array.of_list (Schema.columns def.Catalog.table_schema) in
  let rec load n = function
    | [] -> Ok n
    | fields :: rest ->
      if List.length fields <> Array.length cols then
        Error
          (Err.runtime
             (Printf.sprintf "CSV row %d has %d fields, table %S has %d columns"
                (n + 1) (List.length fields) name (Array.length cols)))
      else
        let rec build i acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | field :: fields -> (
            match field with
            | None -> build (i + 1) (Value.Null :: acc) fields
            | Some text -> (
              match Value.cast cols.(i).Column.ty (Value.Text text) with
              | Ok v -> build (i + 1) (v :: acc) fields
              | Error msg ->
                Error
                  (Err.runtime
                     (Printf.sprintf "CSV row %d, column %S: %s" (n + 1)
                        cols.(i).Column.name msg))))
        in
        let* row = build 0 [] fields in
        let* () = dat (Heap.insert heap row) in
        load (n + 1) rest
  in
  (* rows land one at a time (an invalid CSV row keeps the loaded prefix);
     the WAL gets the applied prefix as a single Insert frame either way *)
  let before = Heap.row_count heap in
  let result = load 0 rows in
  let after = Heap.row_count heap in
  if after > before then
    wal_append t
      (Wal.Insert
         ( name,
           Array.to_list (Heap.scan_chunk heap ~pos:before ~len:(after - before))
         ));
  let* n = result in
  Ok (Affected n)

let copy_to t name path =
  let* _def, heap = find_heap t name in
  let buf = Buffer.create 4096 in
  Seq.iter
    (fun row ->
      let fields =
        Array.to_list
          (Array.map
             (fun v ->
               if Value.is_null v then None else Some (Value.to_string v))
             row)
      in
      Buffer.add_string buf (Csv.render_row fields);
      Buffer.add_char buf '\n')
    (Heap.scan heap);
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf))
  with
  | () -> Ok (Affected (Heap.row_count heap))
  | exception Sys_error msg -> Error (Err.runtime msg)

(* A re-executable SQL script recreating the session's tables, rows and
   views — the CLI's \save command. *)
let dump_sql t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (def : Catalog.table_def) ->
      Buffer.add_string buf (create_table_sql def);
      Buffer.add_char buf '\n';
      match Store.find t.store def.Catalog.table_name with
      | None -> ()
      | Some heap ->
        let rows = Heap.to_list heap in
        let rec batches = function
          | [] -> ()
          | rows ->
            let batch = List.filteri (fun i _ -> i < 200) rows in
            let rest = List.filteri (fun i _ -> i >= 200) rows in
            Buffer.add_string buf
              (Printf.sprintf "INSERT INTO %s VALUES %s;\n" def.Catalog.table_name
                 (String.concat ", "
                    (List.map
                       (fun row ->
                         "("
                         ^ String.concat ", "
                             (Array.to_list (Array.map Value.to_sql row))
                         ^ ")")
                       batch)));
            batches rest
        in
        batches rows)
    (Catalog.tables t.cat);
  List.iter
    (fun (def : Catalog.table_def) ->
      List.iter
        (fun (d : Catalog.index_def) ->
          Buffer.add_string buf (create_index_sql d);
          Buffer.add_char buf '\n')
        (Catalog.indexes_on t.cat def.Catalog.table_name))
    (Catalog.tables t.cat);
  List.iter
    (fun (v : Catalog.view_def) ->
      Buffer.add_string buf (create_view_sql v);
      Buffer.add_char buf '\n')
    (Catalog.views t.cat);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* WAL commit protocol                                                 *)
(* ------------------------------------------------------------------ *)

let wal_error t = function
  | Perm_fault.Injected p ->
    Metrics.incr t.metrics ("fault.injected." ^ p);
    Recorder.record t.recorder (Recorder.Fault { point = p });
    Error (Err.faulted (Printf.sprintf "fault injected at %s" p))
  | Unix.Unix_error (err, fn, _) ->
    Error (Err.runtime (Printf.sprintf "WAL %s: %s" fn (Unix.error_message err)))
  | Sys_error msg -> Error (Err.runtime ("WAL: " ^ msg))
  | e -> raise e

let prov_list t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.prov_tables [])

(* Compact the log into a snapshot of the current heaps. Also the repair
   path for a dirty log: the snapshot is taken from the heaps, which are
   authoritative, so afterwards log and heaps agree again. *)
let wal_rebuild t w =
  match Wal.checkpoint w ~snapshot_sql:(dump_sql t) ~prov:(prov_list t) with
  | () ->
    t.wal_dirty <- false;
    t.wal_begun <- false;
    Metrics.incr t.metrics "wal.checkpoints";
    Recorder.record t.recorder
      (Recorder.Wal_checkpoint { epoch = (Wal.status w).Wal.st_epoch; ok = true });
    Ok ()
  | exception e ->
    Metrics.incr t.metrics "wal.checkpoint.errors";
    Recorder.record t.recorder
      (Recorder.Wal_checkpoint { epoch = (Wal.status w).Wal.st_epoch; ok = false });
    wal_error t e

(* Dirty-log repair, run before each top-level statement (never inside a
   transaction: the heaps hold uncommitted state there). Deliberately not
   run at statement end — a crash right after the fault must leave the
   torn log for recovery to discard, not a freshly repaired one. *)
let wal_repair t =
  match t.wal with
  | Some w when t.wal_dirty && t.snapshot = None -> (
    match wal_rebuild t w with
    | Ok () -> Metrics.incr t.metrics "wal.repairs"
    | Error _ -> (* still dirty; logging stays off, retried next statement *) ())
  | _ -> ()

(* Append Commit and make it durable (fsync unless [\set wal_fsync off]).
   On failure the log is dirty: the Commit may or may not have hit the
   platter, and the next repair rebuilds from the heaps either way. *)
let wal_commit_frames t w =
  match
    Wal.append w Wal.Commit;
    if t.wal_fsync then Wal.fsync w
  with
  | () ->
    t.wal_begun <- false;
    Recorder.record t.recorder (Recorder.Wal_append { frame = "commit" });
    if t.wal_fsync then
      Recorder.record t.recorder
        (Recorder.Wal_fsync { fsyncs = (Wal.status w).Wal.st_fsyncs });
    Ok ()
  | exception e ->
    t.wal_dirty <- true;
    t.wal_begun <- false;
    Metrics.incr t.metrics "wal.append.errors";
    wal_error t e

(* Statement-boundary commit, outside explicit transactions. A dirty log
   is left for the next statement's repair (see [wal_repair]). *)
let wal_seal_statement t =
  match t.wal with
  | None -> Ok ()
  | Some w ->
    if t.wal_dirty || not t.wal_begun then Ok () else wal_commit_frames t w

(* COMMIT of an explicit transaction: the heaps hold exactly the committed
   state here, so a dirty log is rebuilt from them on the spot. *)
let wal_txn_seal t =
  match t.wal with
  | None -> Ok ()
  | Some w ->
    if t.wal_dirty then wal_rebuild t w
    else if not t.wal_begun then Ok ()
    else wal_commit_frames t w

(* ROLLBACK: the Abort frame is advisory (replay discards unsealed frames
   anyway), so failures here only mark the log dirty. *)
let wal_abort t =
  match t.wal with
  | Some w when t.wal_begun ->
    t.wal_begun <- false;
    if not t.wal_dirty then (
      try Wal.append w Wal.Abort
      with _ ->
        t.wal_dirty <- true;
        Metrics.incr t.metrics "wal.append.errors")
  | _ -> ()

let run_statement t sql (st : Ast.statement) =
  match st with
  | Ast.St_query q ->
    let* rs = run_query t q in
    Ok (Rows rs)
  | Ast.St_explain q ->
    let* e = explain_query t sql q in
    Ok (Explained e)
  | Ast.St_explain_analyze q ->
    let* ea = explain_analyze_query t sql q in
    Ok (Analyzed ea)
  | Ast.St_create_table (name, cols) ->
    let* schema = sem (Schema.make (List.map (fun (n, ty) -> Column.make n ty) cols)) in
    let* () = create_relation t name schema [] in
    Ok (Message (Printf.sprintf "created table %S" name))
  | Ast.St_create_table_as (name, q) ->
    let* analyzed = sem (Analyzer.analyze_query t.cat q) in
    let* schema = sem (schema_of_plan analyzed) in
    let* rs = run_query t q in
    let* () = create_relation t name schema rs.rows in
    Ok (Message (Printf.sprintf "created table %S (%d rows)" name (List.length rs.rows)))
  | Ast.St_create_view (name, q) ->
    (* validate now; store the SQL text for unfolding *)
    let* analyzed = sem (Analyzer.analyze_query t.cat q) in
    let* schema = sem (schema_of_plan analyzed) in
    let* def = sem (Catalog.add_view t.cat name ~sql:(Printer.query_to_string q) schema) in
    wal_append t (Wal.Create (create_view_sql def));
    Ok (Message (Printf.sprintf "created view %S" name))
  | Ast.St_drop_table name ->
    let* () = sem (Catalog.drop_table t.cat name) in
    let* () = sem (Store.drop_table t.store name) in
    Catalog.drop_table_indexes t.cat name;
    Hashtbl.remove t.prov_tables (String.lowercase_ascii name);
    wal_append t (Wal.Drop (Printf.sprintf "DROP TABLE %s;" name));
    Ok (Message (Printf.sprintf "dropped table %S" name))
  | Ast.St_create_index { index; table; column } ->
    let* def = sem (Catalog.add_index t.cat ~name:index ~table ~column) in
    (match Store.find t.store table, Catalog.find_table t.cat table with
    | Some heap, Some tdef -> (
      match Schema.find tdef.Catalog.table_schema def.Catalog.index_column with
      | Some (pos, _) -> Heap.create_index heap pos
      | None -> ())
    | _ -> ());
    wal_append t (Wal.Create (create_index_sql def));
    Ok (Message (Printf.sprintf "created index %S on %s(%s)" index table column))
  | Ast.St_drop_index name ->
    let* def = sem (Catalog.drop_index t.cat name) in
    (match
       ( Store.find t.store def.Catalog.index_table,
         Catalog.find_table t.cat def.Catalog.index_table )
     with
    | Some heap, Some tdef -> (
      match Schema.find tdef.Catalog.table_schema def.Catalog.index_column with
      | Some (pos, _) -> Heap.drop_index heap pos
      | None -> ())
    | _ -> ());
    wal_append t (Wal.Drop (Printf.sprintf "DROP INDEX %s;" def.Catalog.index_name));
    Ok (Message (Printf.sprintf "dropped index %S" name))
  | Ast.St_drop_view name ->
    let* () = sem (Catalog.drop_view t.cat name) in
    wal_append t (Wal.Drop (Printf.sprintf "DROP VIEW %s;" name));
    Ok (Message (Printf.sprintf "dropped view %S" name))
  | Ast.St_insert_values (name, rows) ->
    let* n = insert_values t name rows in
    Ok (Affected n)
  | Ast.St_insert_select (name, q) ->
    let* n = insert_select t name q in
    Ok (Affected n)
  | Ast.St_delete (name, where) ->
    let* n = delete_rows t name where in
    Ok (Affected n)
  | Ast.St_update (name, assigns, where) ->
    let* n = update_rows t name assigns where in
    Ok (Affected n)
  | Ast.St_store_provenance (q, name) -> store_provenance t q name
  | Ast.St_copy_from (name, path) -> copy_from t name path
  | Ast.St_copy_to (name, path) -> copy_to t name path
  | Ast.St_begin ->
    if t.snapshot <> None then Error (Err.runtime "already inside a transaction")
    else begin
      t.snapshot <-
        Some
          {
            snap_cat = Catalog.copy t.cat;
            snap_store = Store.copy t.store;
            snap_prov = Hashtbl.copy t.prov_tables;
          };
      Ok (Message "transaction started")
    end
  | Ast.St_commit -> (
    match t.snapshot with
    | None -> Error (Err.runtime "no transaction in progress")
    | Some _ ->
      (* the injection point sits before the snapshot drop: a faulted
         commit leaves the transaction open and the snapshot intact *)
      Perm_fault.trip fp_commit;
      (* seal the transaction's frames (fsynced) before dropping the
         rollback snapshot; on failure the transaction stays open *)
      let* () = wal_txn_seal t in
      t.snapshot <- None;
      Ok (Message "transaction committed"))
  | Ast.St_rollback -> (
    match t.snapshot with
    | None -> Error (Err.runtime "no transaction in progress")
    | Some snap ->
      t.cat <- snap.snap_cat;
      t.store <- snap.snap_store;
      t.prov_tables <- snap.snap_prov;
      t.snapshot <- None;
      wal_abort t;
      Ok (Message "transaction rolled back"))

(* ------------------------------------------------------------------ *)
(* WAL lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

(* Replay callback: run a snapshot script or one canonical DDL statement
   against the live state. [t.wal] is not installed while replay runs, so
   nothing is re-logged. *)
let replay_sql t sql =
  match Parser.parse_script sql with
  | Error e -> Error (Parser.error_to_string ~input:sql e)
  | Ok statements ->
    let rec go = function
      | [] -> Ok ()
      | st :: rest -> (
        match
          capture t (fun () -> run_statement t (Printer.statement_to_string st) st)
        with
        | Ok _ -> go rest
        | Error e -> Error (Err.to_string e))
    in
    go statements

let wal_enabled t = t.wal <> None
let set_wal_fsync t b = t.wal_fsync <- b
let wal_fsync_enabled t = t.wal_fsync

let enable_wal t dir =
  if t.wal <> None then Error (Err.runtime "WAL is already enabled")
  else if t.snapshot <> None then
    Error (Err.runtime "cannot enable WAL inside a transaction")
  else begin
    let had_state = Catalog.tables t.cat <> [] || Catalog.views t.cat <> [] in
    (* replay mutates live state; keep a copy so a failed replay leaves
       the session exactly as it was *)
    let save_cat = Catalog.copy t.cat in
    let save_store = Store.copy t.store in
    let save_prov = Hashtbl.copy t.prov_tables in
    let heap_of name =
      match Store.find t.store name with
      | Some heap -> Ok heap
      | None -> Error (Printf.sprintf "WAL replay: table %S does not exist" name)
    in
    let apply =
      {
        Wal.ap_sql = (fun sql -> replay_sql t sql);
        Wal.ap_insert =
          (fun name rows ->
            Result.bind (heap_of name) (fun h -> Heap.insert_all h rows));
        Wal.ap_truncate =
          (fun name -> Result.map (fun h -> Heap.truncate h) (heap_of name));
        Wal.ap_replace =
          (fun name rows ->
            Result.bind (heap_of name) (fun h -> Heap.replace_all h rows));
        Wal.ap_prov =
          (fun name cols ->
            Hashtbl.replace t.prov_tables (String.lowercase_ascii name) cols;
            Ok ());
      }
    in
    let restore () =
      t.cat <- save_cat;
      t.store <- save_store;
      t.prov_tables <- save_prov
    in
    match (try Ok (Wal.open_ ~dir ~apply) with e -> Error e) with
    | Error e ->
      restore ();
      wal_error t e
    | Ok (Error msg) ->
      restore ();
      Error (Err.runtime msg)
    | Ok (Ok (w, replay)) ->
      t.wal <- Some w;
      t.wal_dirty <- false;
      t.wal_begun <- false;
      Metrics.incr t.metrics "wal.opens";
      Recorder.record t.recorder
        (Recorder.Wal_replay
           {
             records = replay.Wal.rp_records;
             committed = replay.Wal.rp_committed;
             discarded = replay.Wal.rp_discarded;
             skipped = replay.Wal.rp_skipped;
             truncated_bytes = replay.Wal.rp_truncated_bytes;
           });
      (* state created before WAL was switched on is not in the log:
         capture it in a checkpoint right away *)
      if had_state then (match wal_rebuild t w with Ok () | Error _ -> ());
      refresh_wal_gauges t;
      (* recovering prior state at startup is itself an anomaly worth a
         bundle: it is the only trace a crash leaves behind, and the
         replay counters (skipped records, truncated bytes) are the
         forensic evidence of how the previous process died *)
      if replay.Wal.rp_snapshot || replay.Wal.rp_records > 0 then
        obs_locked t (fun () ->
            capture_bundle_unlocked t ~cls:"wal_replay"
              ~detail:
                (Printf.sprintf
                   "WAL replay: %d records, %d committed, %d discarded, %d \
                    skipped, %d torn bytes truncated%s"
                   replay.Wal.rp_records replay.Wal.rp_committed
                   replay.Wal.rp_discarded replay.Wal.rp_skipped
                   replay.Wal.rp_truncated_bytes
                   (if replay.Wal.rp_snapshot then " (snapshot applied)"
                    else ""))
              ~sql:"" ~fingerprint:"" ~plan_hash:"" ~est_rows:0. ~ms:0.
              ~rows:0 ~phases:[]);
      Ok replay
  end

let disable_wal t =
  match t.wal with
  | None -> ()
  | Some w ->
    Wal.close w;
    t.wal <- None;
    t.wal_dirty <- false;
    t.wal_begun <- false

let checkpoint t =
  match t.wal with
  | None -> Error (Err.runtime "WAL is not enabled")
  | Some w ->
    if t.snapshot <> None then
      Error (Err.runtime "cannot checkpoint inside a transaction")
    else wal_rebuild t w

let statement_uses_provenance (st : Ast.statement) =
  match st with
  | Ast.St_query q
  | Ast.St_explain q
  | Ast.St_explain_analyze q
  | Ast.St_create_table_as (_, q)
  | Ast.St_create_view (_, q)
  | Ast.St_insert_select (_, q) -> Ast.query_uses_provenance q
  | Ast.St_store_provenance _ -> true  (* eager provenance by definition *)
  | _ -> false

let outcome_rows = function
  | Ok (Rows rs) -> List.length rs.rows
  | Ok (Affected n) -> n
  | Ok (Analyzed ea) -> ea.ea_rows
  | Ok (Message _ | Explained _) | Error _ -> 0

(* One finished top-level statement folds into the statistics accumulator
   and, past the slow-query threshold, the structured event log. Returns
   the watchdog's verdict so the caller can fold a flagged regression into
   the statement's anomaly classification. *)
let record_statement_stats t sql (st : Ast.statement) root result =
  let ms = Trace.duration_ms root in
  let phases =
    List.map
      (fun sp -> (Trace.name sp, Trace.duration_ms sp))
      (Trace.children root)
  in
  let fingerprint = Fingerprint.of_sql sql in
  Stats.record_statement t.stats_acc ~fingerprint ~sql ~ms ~phases
    ~rules:(List.rev t.stmt_rules)
    ~provenance:(statement_uses_provenance st)
    ~rows:(outcome_rows result)
    ~error:(Result.is_error result);
  let rg_opt =
    History.record t.history ~fingerprint ~ts:(Trace.start_s root)
      ~plan_hash:t.stmt_plan_hash ~ms ~rows:(outcome_rows result)
      ~est_rows:t.stmt_est_rows ~skew:t.stmt_skew
      ~error:(Result.is_error result) ~phases
  in
  (match rg_opt with
  | Some rg ->
    Metrics.incr t.metrics "history.regressions";
    Metrics.incr t.metrics
      ("history.cause." ^ History.cause_label rg.History.rg_cause);
    Recorder.record t.recorder
      (Recorder.Watchdog
         {
           fingerprint;
           factor = rg.History.rg_factor;
           cause = History.cause_label rg.History.rg_cause;
         })
  | None -> ());
  let now = Trace.now () in
  if History.sample_due t.history ~now then begin
    (* tracked series may include gc.* gauges; refresh them only when a
       sample is actually due. The history self-accounting gauges ride
       the same cadence: both need a scan over the retained rings, which
       would dominate sub-millisecond statements if taken per statement *)
    Metrics.set_gc_gauges t.metrics;
    refresh_loss_gauges_unlocked t;
    History.sample t.history t.metrics ~now
  end;
  (* the in-memory ring always records past the threshold (bounded, so a
     chatty session just forgets old events); the sink write inside [log]
     additionally needs a file open *)
  if ms >= Eventlog.min_ms t.event_log then
    Eventlog.log t.event_log
      (Json.Obj
         ([
            ("ts", Json.Float (Trace.start_s root));
            ("event", Json.String "statement");
            ("sql", Json.String sql);
            ("fingerprint", Json.String fingerprint);
            ("ms", Json.Float ms);
            ("rows", Json.Int (outcome_rows result));
            ("provenance", Json.Bool (statement_uses_provenance st));
            ( "phases",
              Json.Obj (List.map (fun (n, d) -> (n, Json.Float d)) phases) );
          ]
         @ match result with
           | Error e ->
             [
               ("error", Json.String (Err.to_string e));
               ("error_kind", Json.String (Err.kind_label e.Err.kind));
             ]
           | Ok _ -> []));
  if Eventlog.dropped t.event_log > 0 then
    Metrics.set_gauge t.metrics "eventlog.dropped"
      (float_of_int (Eventlog.dropped t.event_log));
  rg_opt

(* Every top-level statement runs under a root span; pipeline phases attach
   to it via [phase]. The finished trace feeds [last_trace], the trace log,
   the statement-statistics accumulator, the per-phase latency histograms
   and the statement/error counters. Nested statement executions (DML
   helpers re-entering through [run_query]) attach as children instead of
   clobbering the root, and fold into the enclosing statement's stats. *)
let execute_statement t sql (st : Ast.statement) =
  let saved = t.current_span in
  let root =
    match saved with Some parent -> Trace.child parent "statement" | None -> Trace.start "statement"
  in
  Trace.annotate root "sql" sql;
  t.current_span <- Some root;
  if saved = None then begin
    t.stmt_rules <- [];
    t.stmt_fp <- Fingerprint.of_sql sql;
    t.stmt_plan_hash <- "";
    t.stmt_est_rows <- 0.;
    t.stmt_skew <- 1.;
    t.stmt_degraded <- None;
    (* the metric snapshot for the bundle's delta; skipped entirely when
       the recorder is off so the disabled path stays at its baseline *)
    if Recorder.enabled t.recorder then
      t.stmt_metrics0 <- forensics_snapshot t;
    (* flush the major-cycle note the GC alarm stashed (see [create]) *)
    if t.gc_pending then begin
      t.gc_pending <- false;
      Recorder.record t.recorder
        (Recorder.Gc_major
           {
             heap_words = t.gc_heap_words;
             major_collections = t.gc_major_collections;
           })
    end;
    Recorder.record t.recorder
      (Recorder.Stmt_start { sql; fingerprint = t.stmt_fp });
    t.live <-
      Some
        {
          lv_sql = sql;
          lv_start_s = Trace.start_s root;
          lv_progress = Progress.create ();
          lv_running = true;
          lv_end_s = None;
        };
    (* a fresh governor token per top-level statement; nested statements
       share the enclosing statement's token (and its deadline) *)
    t.token <- fresh_token t;
    (* a dirty log (failed append/fsync) is rebuilt from a checkpoint
       before anything else runs, closing the window where the log
       trailed the heaps *)
    wal_repair t
  end;
  let result =
    Fun.protect
      ~finally:(fun () ->
        Trace.finish root;
        t.current_span <- saved)
      (fun () -> capture t (fun () -> run_statement t sql st))
  in
  (* A governor kill reports where the statement died: the progress
     counters the sampler would have seen, appended to the message. *)
  let result =
    match result with
    | Error e
      when saved = None
           && (match e.Err.kind with
              | Err.Timeout | Err.Cancelled | Err.Resource_exhausted -> true
              | _ -> false) -> (
      match progress t with
      | Some pr ->
        let where =
          if pr.pr_morsels_total > 0 then
            Printf.sprintf " [died at %d rows, morsel %d/%d, %.0f ms]"
              pr.pr_rows pr.pr_morsels_done pr.pr_morsels_total
              (Trace.duration_ms root)
          else
            Printf.sprintf " [died at %d rows, %.0f ms]" pr.pr_rows
              (Trace.duration_ms root)
        in
        Error (Err.make e.Err.kind (e.Err.msg ^ where))
      | None -> result)
    | _ -> result
  in
  (* Statement-boundary WAL commit, outside explicit transactions. Even a
     failed statement may have mutated the heaps (partially applied
     insert), so its frames are sealed either way — the log tracks the
     heaps, not the statement's verdict. A commit failure downgrades an
     [Ok] outcome: the caller must not believe the work is durable. *)
  let result =
    if saved = None && t.snapshot = None then
      match wal_seal_statement t with
      | Ok () -> result
      | Error e -> ( match result with Error _ -> result | Ok _ -> Error e)
    else result
  in
  Metrics.incr t.metrics "engine.statements";
  (match result with
  | Error e ->
    Metrics.incr t.metrics "engine.errors";
    (match e.Err.kind with
    | Err.Timeout ->
      Metrics.incr t.metrics "engine.timeout";
      Recorder.record t.recorder
        (Recorder.Governor { verdict = "timeout"; detail = e.Err.msg })
    | Err.Cancelled ->
      Metrics.incr t.metrics "engine.cancelled";
      Recorder.record t.recorder
        (Recorder.Governor { verdict = "cancelled"; detail = e.Err.msg })
    | Err.Resource_exhausted ->
      Metrics.incr t.metrics "engine.resource_exhausted";
      Recorder.record t.recorder
        (Recorder.Governor
           { verdict = "resource_exhausted"; detail = e.Err.msg })
    | _ -> ())
  | Ok _ -> ());
  Metrics.observe t.metrics "engine.statement.ms" (Trace.duration_ms root);
  List.iter
    (fun sp ->
      Metrics.observe t.metrics
        ("engine.phase." ^ Trace.name sp ^ ".ms")
        (Trace.duration_ms sp))
    (Trace.children root);
  (* graceful-degradation telemetry: the process-global spill counters
     mirrored as always-present gauges (zeros included, so dashboards can
     alert on them without existence checks), plus the WAL's size and
     replay history so /metrics tracks log growth between checkpoints *)
  refresh_spill_gauges t;
  refresh_wal_gauges t;
  (* counters above are already bumped, so a metric sample taken while
     recording statement stats sees this statement too *)
  if saved = None then begin
    (match t.live with
    | Some lv ->
      lv.lv_running <- false;
      lv.lv_end_s <- Some (Trace.now ())
    | None -> ());
    (* single critical section for the whole finalize: trace log, stats
       accumulator, history/watchdog, event log — an observability-plane
       reader sees the statement either fully recorded or not at all *)
    obs_locked t (fun () ->
        t.last_trace <- Some root;
        t.trace_log <- root :: t.trace_log;
        t.trace_len <- t.trace_len + 1;
        (* bound the retained trace roots like every other telemetry
           store: trim in batches (amortized O(1) per statement),
           counting drops *)
        if t.trace_len > 2 * t.trace_cap then begin
          let dropped = t.trace_len - t.trace_cap in
          t.trace_log <- List.filteri (fun i _ -> i < t.trace_cap) t.trace_log;
          t.trace_len <- t.trace_cap;
          Metrics.incr t.metrics ~by:dropped "engine.trace.dropped"
        end;
        let rg_opt = record_statement_stats t sql st root result in
        Recorder.record t.recorder
          (Recorder.Stmt_finish
             {
               fingerprint = t.stmt_fp;
               ms = Trace.duration_ms root;
               rows = outcome_rows result;
               error =
                 (match result with
                 | Error e -> Some (Err.kind_label e.Err.kind)
                 | Ok _ -> None);
             });
        (* anomaly? snapshot the forensics bundle while every input is
           still at hand: the root span, the typed outcome, the watchdog
           verdict and the recorder tail all describe *this* statement *)
        match statement_anomaly t result rg_opt with
        | Some (cls, detail) ->
          capture_bundle_unlocked t ~cls ~detail ~sql ~fingerprint:t.stmt_fp
            ~plan_hash:t.stmt_plan_hash ~est_rows:t.stmt_est_rows
            ~ms:(Trace.duration_ms root) ~rows:(outcome_rows result)
            ~phases:
              (List.map
                 (fun sp -> (Trace.name sp, Trace.duration_ms sp))
                 (Trace.children root))
        | None -> ())
  end;
  result

(* The typed entry point. Lexer/parser failures are caught here too (the
   lexer may raise on pathological input), so arbitrary bytes can never
   crash a session. *)
let execute_err t sql =
  match
    capture t (fun () ->
        Result.map_error
          (fun e -> Err.parse (Parser.error_to_string ~input:sql e))
          (Parser.parse_statement sql))
  with
  | Error e -> Error e
  | Ok st -> execute_statement t sql st

(* The legacy stringly surface: same pipeline, message-only errors. *)
let execute t sql = Result.map_error Err.to_string (execute_err t sql)

let execute_script t sql =
  match Parser.parse_script sql with
  | Error e -> Error (Parser.error_to_string ~input:sql e)
  | Ok statements ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | st :: rest -> (
        match execute_statement t (Printer.statement_to_string st) st with
        | Ok outcome -> go (outcome :: acc) rest
        | Error e -> Error (Err.to_string e))
    in
    go [] statements

let query t sql =
  let* outcome = execute t sql in
  match outcome with
  | Rows rs -> Ok rs
  | Affected _ | Message _ | Explained _ | Analyzed _ ->
    Error "statement did not return rows"

let query_params t sql values =
  match Parser.parse_query sql with
  | Error e -> Error (Parser.error_to_string ~input:sql e)
  | Ok q ->
    t.token <- fresh_token t;
    Result.map_error Err.to_string
      (capture t (fun () ->
           let* bound = sem (Ast.bind_params values q) in
           run_query t bound))

let explain t sql =
  match Parser.parse_query sql with
  | Error e -> Error (Parser.error_to_string ~input:sql e)
  | Ok q ->
    Result.map_error Err.to_string (capture t (fun () -> explain_query t sql q))

let explain_analyze t sql =
  match Parser.parse_query sql with
  | Error e -> Error (Parser.error_to_string ~input:sql e)
  | Ok q -> (
    (* route through execute_statement so a root span exists and the phase
       breakdown is populated *)
    match execute_statement t sql (Ast.St_explain_analyze q) with
    | Error e -> Error (Err.to_string e)
    | Ok (Analyzed ea) -> Ok ea
    | Ok (Rows _ | Affected _ | Message _ | Explained _) ->
      Error "EXPLAIN ANALYZE produced an unexpected outcome")

(* ------------------------------------------------------------------ *)
(* Forensics bundles: the anomaly store's public surface               *)
(* ------------------------------------------------------------------ *)

module Forensics = struct
  type summary = {
    fs_id : int;
    fs_ts : float;
    fs_class : string;
    fs_fingerprint : string;
    fs_detail : string;
    fs_sql : string;
  }

  let capacity t = t.bundle_cap

  let set_capacity t n =
    obs_locked t (fun () ->
        t.bundle_cap <- max 0 n;
        t.bundles <- list_take t.bundle_cap t.bundles)

  let set_dir t dir = obs_locked t (fun () -> t.bundle_dir <- dir)

  let summary_of b =
    {
      fs_id = b.bu_id;
      fs_ts = b.bu_ts;
      fs_class = b.bu_class;
      fs_fingerprint = b.bu_fingerprint;
      fs_detail = b.bu_detail;
      fs_sql = b.bu_sql;
    }

  (* newest first, like the underlying store *)
  let list t = obs_locked t (fun () -> List.map summary_of t.bundles)

  let get t id =
    obs_locked t (fun () ->
        match List.find_opt (fun b -> b.bu_id = id) t.bundles with
        | Some b -> Some b.bu_doc
        | None -> None)

  let last t =
    obs_locked t (fun () ->
        match t.bundles with b :: _ -> Some b.bu_doc | [] -> None)
end
