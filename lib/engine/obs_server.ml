module Httpd = Perm_obs.Httpd
module Metrics = Perm_obs.Metrics
module Prometheus = Perm_obs.Prometheus
module Json = Perm_obs.Json
module Trace = Perm_obs.Trace
module Stats = Perm_obs.Stats
module History = Perm_obs.History
module Eventlog = Perm_obs.Eventlog
module Value = Perm_value.Value

type t = {
  httpd : Httpd.t;
  engine : Engine.t;
  saved_minor_heap : int option;  (* restore on stop; None = untouched *)
  restored : bool Atomic.t;
}

let port t = Httpd.port t.httpd
let generation t = Httpd.generation t.httpd

(* With a second domain alive, every minor collection is a cross-domain
   stop-the-world barrier — around a millisecond on a loaded single-core
   box, and an allocation-heavy query runs a dozen of them. While the
   plane is up we raise the minor heap so those barriers are rare; the
   previous size comes back when the server stops. 4 M words = 32 MB on
   64-bit, enough to take a heavy provenance join from ~14 minor
   collections to one or two. *)
let server_minor_heap_words = 4 * 1024 * 1024

let grow_minor_heap () =
  let cur = (Gc.get ()).Gc.minor_heap_size in
  if cur < server_minor_heap_words then begin
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = server_minor_heap_words };
    Some cur
  end
  else None

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let value_to_json (v : Value.t) =
  match v with
  | Value.Null -> Json.Null
  | Value.Int n -> Json.Int n
  | Value.Float f -> Json.Float f
  | Value.Bool b -> Json.Bool b
  | Value.Text s -> Json.String s
  | Value.Date _ -> Json.String (Value.to_string v)

let json_response ?(status = 200) json =
  Httpd.Fixed
    {
      status;
      content_type = "application/json";
      body = Json.to_string json ^ "\n";
    }

let text_response ?(status = 200) body =
  Httpd.Fixed { status; content_type = "text/plain"; body }

(* ------------------------------------------------------------------ *)
(* /metrics                                                            *)
(* ------------------------------------------------------------------ *)

(* Per-fingerprint statement families, labelled with the fingerprint and
   the raw query text — arbitrary SQL in a label value is exactly what the
   exposition escaping rules exist for. Built under the engine lock so a
   statement finalizing concurrently cannot tear a record. *)
let statement_families engine =
  let stmts = Engine.locked engine (fun () -> Engine.statement_stats engine) in
  if stmts = [] then []
  else
    let labels (st : Stats.statement_stat) =
      [
        ("fingerprint", st.Stats.st_fingerprint);
        ("query", st.Stats.st_query);
      ]
    in
    let counter_family ~name ~help value =
      {
        Prometheus.f_name = name;
        f_help = help;
        f_kind = Prometheus.Counter;
        f_samples =
          List.map
            (fun st ->
              {
                Prometheus.s_name = name ^ "_total";
                s_labels = labels st;
                s_value = value st;
              })
            stmts;
      }
    in
    [
      counter_family ~name:"perm_stat_statements_calls"
        ~help:"Calls per statement fingerprint"
        (fun st -> float_of_int st.Stats.st_calls);
      counter_family ~name:"perm_stat_statements_errors"
        ~help:"Errors per statement fingerprint"
        (fun st -> float_of_int st.Stats.st_errors);
      counter_family ~name:"perm_stat_statements_ms"
        ~help:"Accumulated wall milliseconds per statement fingerprint"
        (fun st -> st.Stats.st_total_ms);
    ]

let metrics_endpoint engine server_ref =
  let m = Engine.metrics engine in
  Metrics.set_gc_gauges m;
  Engine.refresh_loss_gauges engine;
  (match !server_ref with
  | Some httpd ->
    Metrics.set_gauge m "http.rejected" (float_of_int (Httpd.rejected httpd))
  | None -> ());
  let body = Prometheus.render_metrics ~extra:(statement_families engine) m in
  Httpd.Fixed
    { status = 200; content_type = "text/plain; version=0.0.4"; body }

(* ------------------------------------------------------------------ *)
(* /stats/<relation>                                                   *)
(* ------------------------------------------------------------------ *)

let stats_endpoint engine relation =
  match Engine.virtual_relation engine relation with
  | None ->
    json_response ~status:404
      (Json.Obj
         [
           ("error", Json.String ("unknown relation: " ^ relation));
           ( "relations",
             Json.List
               (List.map
                  (fun n -> Json.String n)
                  (Engine.virtual_names engine)) );
         ])
  | Some (columns, rows) ->
    json_response
      (Json.Obj
         [
           ("relation", Json.String (String.lowercase_ascii relation));
           ("columns", Json.List (List.map (fun c -> Json.String c) columns));
           ( "rows",
             Json.List
               (List.map
                  (fun row ->
                    Json.Obj
                      (List.mapi
                         (fun i c ->
                           ( c,
                             if i < Array.length row then
                               value_to_json row.(i)
                             else Json.Null ))
                         columns))
                  rows) );
           ("count", Json.Int (List.length rows));
         ])

(* ------------------------------------------------------------------ *)
(* /healthz and /readyz                                                *)
(* ------------------------------------------------------------------ *)

let healthz engine server_ref start_s =
  let m = Engine.metrics engine in
  let running =
    match Engine.progress engine with
    | Some pr -> pr.Engine.pr_running
    | None -> false
  in
  json_response
    (Json.Obj
       [
         ("status", Json.String "ok");
         ( "generation",
           Json.Int
             (match !server_ref with
             | Some httpd -> Httpd.generation httpd
             | None -> 0) );
         ("uptime_s", Json.Float (Unix.gettimeofday () -. start_s));
         ("statements", Json.Int (Metrics.counter m "engine.statements"));
         ("errors", Json.Int (Metrics.counter m "engine.errors"));
         ("statement_running", Json.Bool running);
         ("parallel_domains", Json.Int (Engine.parallel_domains engine));
         ("pool_size", Json.Int (Engine.pool_size engine));
         ("regressions", Json.Int (Metrics.counter m "history.regressions"));
         ( "wal",
           match Engine.wal_status engine with
           | None -> Json.Obj [ ("enabled", Json.Bool false) ]
           | Some ws ->
             Json.Obj
               [
                 ("enabled", Json.Bool true);
                 ("dir", Json.String ws.Engine.ws_dir);
                 ("bytes", Json.Int ws.Engine.ws_bytes);
                 ("records", Json.Int ws.Engine.ws_records);
                 ("last_lsn", Json.Int ws.Engine.ws_last_lsn);
                 ("fsyncs", Json.Int ws.Engine.ws_fsyncs);
                 ("fsync", Json.Bool ws.Engine.ws_fsync_on);
                 ("dirty", Json.Bool ws.Engine.ws_dirty);
                 ("epoch", Json.Int ws.Engine.ws_epoch);
                 ( "replay",
                   Json.Obj
                     [
                       ( "snapshot",
                         Json.Bool ws.Engine.ws_replay.Perm_wal.rp_snapshot );
                       ( "records",
                         Json.Int ws.Engine.ws_replay.Perm_wal.rp_records );
                       ( "committed",
                         Json.Int ws.Engine.ws_replay.Perm_wal.rp_committed );
                       ( "discarded",
                         Json.Int ws.Engine.ws_replay.Perm_wal.rp_discarded );
                       ( "skipped",
                         Json.Int ws.Engine.ws_replay.Perm_wal.rp_skipped );
                       ( "truncated_bytes",
                         Json.Int ws.Engine.ws_replay.Perm_wal.rp_truncated_bytes
                       );
                     ] );
               ] );
       ])

let readyz engine =
  let history = Engine.history engine in
  let event_log = Engine.event_log engine in
  let watchdog_factor, regressions, ev_logged, ev_dropped, ev_capacity =
    Engine.locked engine (fun () ->
        ( History.factor history,
          List.length (History.regressions history),
          Eventlog.logged event_log,
          Eventlog.dropped event_log,
          Eventlog.capacity event_log ))
  in
  json_response
    (Json.Obj
       [
         ("status", Json.String "ok");
         ( "governor",
           Json.Obj
             [
               ( "statement_timeout_ms",
                 Json.Float (Engine.statement_timeout engine) );
               ("row_limit", Json.Int (Engine.row_limit engine));
               ("tuple_budget", Json.Int (Engine.tuple_budget engine));
               ("parallel_domains", Json.Int (Engine.parallel_domains engine));
             ] );
         ( "watchdog",
           Json.Obj
             [
               ("factor", Json.Float watchdog_factor);
               ("regressions", Json.Int regressions);
             ] );
         ( "eventlog",
           Json.Obj
             [
               ("capacity", Json.Int ev_capacity);
               ("logged", Json.Int ev_logged);
               ("dropped", Json.Int ev_dropped);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* /trace                                                              *)
(* ------------------------------------------------------------------ *)

let trace_endpoint engine =
  (* roots in the trace log are finished spans: grab the list under the
     lock, serialize outside it *)
  let spans = Engine.locked engine (fun () -> Engine.trace_log engine) in
  json_response (Trace.to_chrome_json spans)

(* ------------------------------------------------------------------ *)
(* /events: server-sent events                                         *)
(* ------------------------------------------------------------------ *)

let sse_frame event data = Printf.sprintf "event: %s\ndata: %s\n\n" event data

let progress_json (pr : Engine.progress) =
  Json.Obj
    [
      ("sql", Json.String pr.Engine.pr_sql);
      ("running", Json.Bool pr.Engine.pr_running);
      ("elapsed_ms", Json.Float pr.Engine.pr_elapsed_ms);
      ("rows", Json.Int pr.Engine.pr_rows);
      ("morsels_done", Json.Int pr.Engine.pr_morsels_done);
      ("morsels_total", Json.Int pr.Engine.pr_morsels_total);
    ]

(* Replay the retained eventlog ring, then tail it and the live progress
   atomics at ~150 ms cadence. Every poll reads only the eventlog cursor
   (under the engine lock, microseconds) and the lock-free progress
   snapshot, so a slow SSE consumer costs the query path nothing. *)
let events_stream engine query push =
  let deadline =
    match List.assoc_opt "max_ms" query with
    | Some v -> (
      match float_of_string_opt v with
      | Some ms when ms > 0. -> Some (Unix.gettimeofday () +. (ms /. 1000.))
      | _ -> None)
    | None -> None
  in
  let cursor = ref 0 in
  let last_progress = ref "" in
  (* the eventlog ring carries two record kinds: slow/finished statements
     and anomaly notifications from the forensics plane — dispatch each to
     its own SSE frame name so consumers can listen selectively *)
  let frame_name ev =
    match Json.member "event" ev with
    | Some (Json.String "anomaly") -> "anomaly"
    | _ -> "statement"
  in
  let push_events () =
    let next, events = Engine.recent_events engine ~since:!cursor in
    cursor := next;
    List.for_all
      (fun ev -> push (sse_frame (frame_name ev) (Json.to_string ev)))
      events
  in
  let push_progress () =
    match Engine.progress engine with
    | None -> true
    | Some pr ->
      let payload = Json.to_string (progress_json pr) in
      if payload = !last_progress then true
      else begin
        last_progress := payload;
        push (sse_frame "progress" payload)
      end
  in
  let expired () =
    match deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  if push "retry: 2000\n\n" then begin
    let ticks = ref 0 in
    let rec loop () =
      if push_events () && push_progress () && not (expired ()) then begin
        incr ticks;
        (* a comment line every ~15 s keeps idle connections alive and
           detects silently-gone clients *)
        if !ticks mod 100 <> 0 || push ": keepalive\n\n" then begin
          Unix.sleepf 0.15;
          loop ()
        end
      end
    in
    loop ()
  end

(* ------------------------------------------------------------------ *)
(* /debug/bundles: forensics bundle store                               *)
(* ------------------------------------------------------------------ *)

let bundles_index engine =
  let bundles = Engine.Forensics.list engine in
  json_response
    (Json.Obj
       [
         ( "bundles",
           Json.List
             (List.map
                (fun (s : Engine.Forensics.summary) ->
                  Json.Obj
                    [
                      ("id", Json.Int s.Engine.Forensics.fs_id);
                      ("ts", Json.Float s.Engine.Forensics.fs_ts);
                      ("class", Json.String s.Engine.Forensics.fs_class);
                      ( "fingerprint",
                        Json.String s.Engine.Forensics.fs_fingerprint );
                      ("detail", Json.String s.Engine.Forensics.fs_detail);
                      ("sql", Json.String s.Engine.Forensics.fs_sql);
                    ])
                bundles) );
         ("count", Json.Int (List.length bundles));
         ("capacity", Json.Int (Engine.Forensics.capacity engine));
       ])

let bundle_endpoint engine id_str =
  match int_of_string_opt id_str with
  | None ->
    json_response ~status:404
      (Json.Obj [ ("error", Json.String ("bad bundle id: " ^ id_str)) ])
  | Some id -> (
    match Engine.Forensics.get engine id with
    | Some doc -> json_response doc
    | None ->
      json_response ~status:404
        (Json.Obj
           [
             ( "error",
               Json.String
                 (Printf.sprintf "no bundle %d (evicted or never captured)"
                    id) );
           ]))

(* ------------------------------------------------------------------ *)
(* Routing and self-accounting                                         *)
(* ------------------------------------------------------------------ *)

let index_body =
  "perm observability plane\n\n\
   GET /metrics            Prometheus text exposition\n\
   GET /stats/<relation>   perm_stat_* virtual relation as JSON\n\
   GET /healthz            engine liveness\n\
   GET /readyz             governor and watchdog state\n\
   GET /trace              Chrome trace export (ui.perfetto.dev)\n\
   GET /events             server-sent events (eventlog + live progress +\n\
  \                        anomaly notifications)\n\
   GET /debug/bundles      forensics bundle index (newest first)\n\
   GET /debug/bundles/<id> one full forensics bundle as JSON\n"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let route engine server_ref start_s (req : Httpd.request) =
  match req.Httpd.rq_path with
  | "/" -> text_response index_body
  | "/metrics" -> metrics_endpoint engine server_ref
  | "/healthz" -> healthz engine server_ref start_s
  | "/readyz" -> readyz engine
  | "/trace" -> trace_endpoint engine
  | "/events" ->
    Httpd.Stream
      {
        content_type = "text/event-stream";
        write = events_stream engine req.Httpd.rq_query;
      }
  | "/debug/bundles" -> bundles_index engine
  | p when starts_with ~prefix:"/debug/bundles/" p ->
    bundle_endpoint engine (String.sub p 15 (String.length p - 15))
  | p when starts_with ~prefix:"/stats/" p ->
    stats_endpoint engine (String.sub p 7 (String.length p - 7))
  | _ -> text_response ~status:404 "not found\n"

(* Endpoint label for the self-accounting metrics: the first path segment
   ("/stats/perm_metrics" accounts as "stats" — per-relation histograms
   would be unbounded cardinality for no insight). *)
let endpoint_key path =
  match String.split_on_char '/' path with
  | "" :: "" :: _ | [ "" ] -> "index"
  | "" :: seg :: _ -> seg
  | seg :: _ -> seg
  | [] -> "index"

let accounted metrics inner (req : Httpd.request) =
  let key = endpoint_key req.Httpd.rq_path in
  let t0 = Unix.gettimeofday () in
  Metrics.incr metrics "http.requests";
  let record status bytes =
    Metrics.incr metrics (Printf.sprintf "http.status.%dxx" (status / 100));
    Metrics.incr metrics ~by:bytes "http.bytes.out";
    Metrics.observe metrics
      ("http.endpoint." ^ key ^ ".ms")
      ((Unix.gettimeofday () -. t0) *. 1000.)
  in
  match inner req with
  | Httpd.Fixed { status; content_type = _; body } as resp ->
    record status (String.length body);
    resp
  | Httpd.Stream { content_type; write } ->
    (* streams account when they finish: wrap the writer to count bytes,
       then record on return *)
    Httpd.Stream
      {
        content_type;
        write =
          (fun push ->
            let bytes = ref 0 in
            let counted chunk =
              let ok = push chunk in
              if ok then bytes := !bytes + String.length chunk;
              ok
            in
            Fun.protect
              ~finally:(fun () -> record 200 !bytes)
              (fun () -> write counted));
      }

let handler_with engine server_ref =
  let start_s = Unix.gettimeofday () in
  accounted (Engine.metrics engine) (route engine server_ref start_s)

let handler engine = handler_with engine (ref None)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let stop t =
  Httpd.stop t.httpd;
  if not (Atomic.exchange t.restored true) then
    match t.saved_minor_heap with
    | Some words -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = words }
    | None -> ()

let start ?max_connections ~port engine =
  let server_ref = ref None in
  match
    Httpd.start ?max_connections ~port (handler_with engine server_ref)
  with
  | Error _ as e -> e
  | Ok httpd ->
    server_ref := Some httpd;
    let t =
      {
        httpd;
        engine;
        saved_minor_heap = grow_minor_heap ();
        restored = Atomic.make false;
      }
    in
    (* drain before the engine's pool goes away; stop is idempotent so a
       manual \serve off followed by engine close is fine *)
    Engine.at_close engine (fun () -> stop t);
    Ok t
