(** The system catalog: registered base tables and views.

    Views are stored as their original SQL text plus the output schema
    computed at [CREATE VIEW] time; the analyzer re-parses the text when it
    unfolds a view (paper Fig. 3, "view unfolding"). Storing text rather
    than a parsed tree keeps the catalog independent of the SQL front end,
    mirroring how PostgreSQL stores view definitions in [pg_views]. *)

type table_def = { table_name : string; table_schema : Schema.t }

type view_def = {
  view_name : string;
  view_sql : string;  (** the defining [SELECT ...] text *)
  view_schema : Schema.t;
}

type index_def = {
  index_name : string;
  index_table : string;
  index_column : string;
}

type virtual_def = { virtual_name : string; virtual_schema : Schema.t }
(** A virtual system relation: schema lives in the catalog, rows come from
    an engine-owned provider at scan time ([perm_stat_statements],
    [perm_metrics], ...). Not droppable, not a DML target. *)

type t

val create : unit -> t
val copy : t -> t
(** Snapshot for transactions. *)

val add_table : t -> string -> Schema.t -> (table_def, string) result
(** Fails if a table or view with that (case-insensitive) name exists. *)

val add_view : t -> string -> sql:string -> Schema.t -> (view_def, string) result

val add_virtual : t -> string -> Schema.t -> (virtual_def, string) result
(** Register a virtual system relation; fails on any name collision. *)

val drop_table : t -> string -> (unit, string) result
(** Fails with a dedicated message when the name is a virtual relation. *)

val drop_view : t -> string -> (unit, string) result
val find_table : t -> string -> table_def option
val find_view : t -> string -> view_def option
val find_virtual : t -> string -> virtual_def option
val mem : t -> string -> bool
(** True if the name is a table, a view, or a virtual relation. *)

val tables : t -> table_def list
(** Sorted by name. *)

val views : t -> view_def list

val virtuals : t -> virtual_def list
(** Sorted by name. *)

(** {1 Indexes} *)

val add_index : t -> name:string -> table:string -> column:string -> (index_def, string) result
(** Fails if the index name is taken or the table/column does not exist. *)

val drop_index : t -> string -> (index_def, string) result
(** Returns the dropped definition so the caller can update storage. *)

val find_index : t -> string -> index_def option
val indexes_on : t -> string -> index_def list
(** All indexes of a table, sorted by name. *)

val has_index : t -> table:string -> column:string -> bool
val drop_table_indexes : t -> string -> unit
