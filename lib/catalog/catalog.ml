type table_def = { table_name : string; table_schema : Schema.t }

type view_def = {
  view_name : string;
  view_sql : string;
  view_schema : Schema.t;
}

type index_def = {
  index_name : string;
  index_table : string;
  index_column : string;
}

type virtual_def = { virtual_name : string; virtual_schema : Schema.t }

type t = {
  table_defs : (string, table_def) Hashtbl.t;
  view_defs : (string, view_def) Hashtbl.t;
  index_defs : (string, index_def) Hashtbl.t;
  virtual_defs : (string, virtual_def) Hashtbl.t;
}

let create () =
  {
    table_defs = Hashtbl.create 16;
    view_defs = Hashtbl.create 16;
    index_defs = Hashtbl.create 16;
    virtual_defs = Hashtbl.create 8;
  }

let copy t =
  {
    table_defs = Hashtbl.copy t.table_defs;
    view_defs = Hashtbl.copy t.view_defs;
    index_defs = Hashtbl.copy t.index_defs;
    virtual_defs = Hashtbl.copy t.virtual_defs;
  }
let norm = String.lowercase_ascii

let mem t name =
  let name = norm name in
  Hashtbl.mem t.table_defs name
  || Hashtbl.mem t.view_defs name
  || Hashtbl.mem t.virtual_defs name

let add_table t name schema =
  let name = norm name in
  if mem t name then Error (Printf.sprintf "relation %S already exists" name)
  else begin
    let def = { table_name = name; table_schema = schema } in
    Hashtbl.replace t.table_defs name def;
    Ok def
  end

let add_view t name ~sql schema =
  let name = norm name in
  if mem t name then Error (Printf.sprintf "relation %S already exists" name)
  else begin
    let def = { view_name = name; view_sql = sql; view_schema = schema } in
    Hashtbl.replace t.view_defs name def;
    Ok def
  end

(* Virtual relations are engine-registered (system views over telemetry):
   they exist from [create] onward and are never user-droppable, so the
   only failure mode is a name collision at registration time. *)
let add_virtual t name schema =
  let name = norm name in
  if mem t name then Error (Printf.sprintf "relation %S already exists" name)
  else begin
    let def = { virtual_name = name; virtual_schema = schema } in
    Hashtbl.replace t.virtual_defs name def;
    Ok def
  end

let drop_table t name =
  let name = norm name in
  if Hashtbl.mem t.table_defs name then begin
    Hashtbl.remove t.table_defs name;
    Ok ()
  end
  else if Hashtbl.mem t.virtual_defs name then
    Error (Printf.sprintf "%S is a virtual system relation and cannot be dropped" name)
  else Error (Printf.sprintf "table %S does not exist" name)

let drop_view t name =
  let name = norm name in
  if Hashtbl.mem t.view_defs name then begin
    Hashtbl.remove t.view_defs name;
    Ok ()
  end
  else Error (Printf.sprintf "view %S does not exist" name)

let find_table t name = Hashtbl.find_opt t.table_defs (norm name)
let find_view t name = Hashtbl.find_opt t.view_defs (norm name)
let find_virtual t name = Hashtbl.find_opt t.virtual_defs (norm name)

let sorted_values tbl extract =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> String.compare (extract a) (extract b))

let tables t = sorted_values t.table_defs (fun d -> d.table_name)
let views t = sorted_values t.view_defs (fun d -> d.view_name)
let virtuals t = sorted_values t.virtual_defs (fun d -> d.virtual_name)

let add_index t ~name ~table ~column =
  let name = norm name and table = norm table and column = norm column in
  if Hashtbl.mem t.index_defs name then
    Error (Printf.sprintf "index %S already exists" name)
  else
    match Hashtbl.find_opt t.table_defs table with
    | None -> Error (Printf.sprintf "table %S does not exist" table)
    | Some def -> (
      match Schema.find def.table_schema column with
      | None ->
        Error (Printf.sprintf "column %S does not exist in table %S" column table)
      | Some _ ->
        let d = { index_name = name; index_table = table; index_column = column } in
        Hashtbl.replace t.index_defs name d;
        Ok d)

let drop_index t name =
  let name = norm name in
  match Hashtbl.find_opt t.index_defs name with
  | Some d ->
    Hashtbl.remove t.index_defs name;
    Ok d
  | None -> Error (Printf.sprintf "index %S does not exist" name)

let find_index t name = Hashtbl.find_opt t.index_defs (norm name)

let indexes_on t table =
  let table = norm table in
  Hashtbl.fold
    (fun _ d acc -> if String.equal d.index_table table then d :: acc else acc)
    t.index_defs []
  |> List.sort (fun a b -> String.compare a.index_name b.index_name)

let has_index t ~table ~column =
  let table = norm table and column = norm column in
  Hashtbl.fold
    (fun _ d acc ->
      acc || (String.equal d.index_table table && String.equal d.index_column column))
    t.index_defs false

let drop_table_indexes t table =
  List.iter
    (fun d -> Hashtbl.remove t.index_defs d.index_name)
    (indexes_on t table)
