(* Columnar batch: the unit of exchange for the vectorized executor.

   A batch carries [rows] physical rows as [arity] column arrays plus a
   selection vector marking which rows are live. Filters narrow the
   selection in place of materializing rows; projections on dense batches
   share column pointers. The representation is deliberately unclever —
   [Value.t array] columns keep every kernel a plain loop over a uniform
   array, which is what buys the speedup over per-row closure dispatch. *)

module Value = Perm_value.Value

type t = {
  cols : Value.t array array;  (* arity columns, each of length [rows] *)
  rows : int;                  (* physical row count *)
  sel : int array;             (* live row indices, ascending; unused if [all] *)
  nsel : int;                  (* live count when not [all] *)
  all : bool;                  (* true: every physical row is live *)
}

let empty_sel : int array = [||]

let dense cols rows =
  { cols; rows; sel = empty_sel; nsel = rows; all = true }

let with_sel b sel nsel =
  if nsel = b.rows then { b with sel = empty_sel; nsel; all = true }
  else { b with sel; nsel; all = false }

(* Same liveness, different columns (each of physical length [rows]) —
   lets an all-attribute projection share column pointers instead of
   compacting. *)
let with_cols b cols = { b with cols }

let arity b = Array.length b.cols
let live b = if b.all then b.rows else b.nsel
let is_dense b = b.all

(* Physical index of the [i]-th live row. *)
let idx b i = if b.all then i else b.sel.(i)

let col b c = b.cols.(c)

(* Materialize the [i]-th live row as a tuple (allocates). *)
let row b i =
  let p = idx b i in
  Array.map (fun col -> col.(p)) b.cols

let of_rows ~arity (rows : Value.t array array) ~pos ~len =
  let cols = Array.init arity (fun c ->
      Array.init len (fun i -> rows.(pos + i).(c)))
  in
  dense cols len

let of_tuple_list ~arity tuples =
  let n = List.length tuples in
  let cols = Array.make arity [||] in
  for c = 0 to arity - 1 do
    cols.(c) <- Array.make n Value.Null
  done;
  List.iteri (fun i t ->
      for c = 0 to arity - 1 do
        cols.(c).(i) <- t.(c)
      done)
    tuples;
  dense cols n

(* Fresh array of live physical indices (used by kernels that narrow). *)
let sel_array b =
  if b.all then begin
    let sel = Array.make b.rows 0 in
    for i = 1 to b.rows - 1 do
      Array.unsafe_set sel i i
    done;
    sel
  end
  else Array.sub b.sel 0 b.nsel

(* Compact live rows of each column into fresh dense arrays. *)
let compact b =
  if b.all then b
  else
    let n = b.nsel in
    let cols =
      Array.map (fun col -> Array.init n (fun i -> col.(b.sel.(i)))) b.cols
    in
    dense cols n

let iter_live f b =
  if b.all then
    for i = 0 to b.rows - 1 do f i done
  else
    for i = 0 to b.nsel - 1 do f b.sel.(i) done

let to_tuples b =
  let acc = ref [] in
  let a = arity b in
  iter_live
    (fun p ->
      let t = Array.make a Value.Null in
      for c = 0 to a - 1 do t.(c) <- b.cols.(c).(p) done;
      acc := t :: !acc)
    b;
  List.rev !acc

(* Exact heap footprint in bytes of everything reachable from the batch —
   the profiler's peak_bytes measurement on the vectorized path. *)
let measured_bytes b =
  Obj.reachable_words (Obj.repr b) * (Sys.word_size / 8)
