(** Graceful spill-to-disk for memory-hungry operators.

    When the governor's tuple budget would otherwise kill a statement, the
    executor's serial row path degrades gracefully: sorts become external
    merge sorts and hash-join build sides are chunked, both backed by temp
    files created here. The batch and parallel paths raise
    {!Fallback_needed} instead; the engine re-runs the plan on the
    spilling row path. *)

type config = {
  dir : string;  (** temp-file directory; created on first use *)
  threshold : int;  (** max rows an operator may hold in memory *)
}

exception Fallback_needed of string
(** Raised by the batch/parallel paths when a materialization exceeds
    [threshold]; the engine catches it and retries on the row path. *)

(** {1 Process-global accounting} — the [executor.spill.*] metric family *)

type counters = {
  c_spills : int;  (** operator instances that spilled *)
  c_runs : int;  (** external-sort run files written *)
  c_chunks : int;  (** join build chunks *)
  c_rows : int;  (** values written to spill files *)
  c_bytes : int;  (** bytes written to spill files *)
  c_fallbacks : int;  (** batch/parallel plans re-run on the row path *)
}

val counters : unit -> counters
val note_spill : unit -> unit
val note_run : unit -> unit
val note_chunk : unit -> unit
val note_fallback : unit -> unit

val set_observer : (string -> string -> unit) option -> unit
(** Install (or clear) the process-global spill event tap. Every
    [note_*] call invokes it as [f kind detail] with [kind] one of
    ["spill"], ["run"], ["chunk"], ["fallback"]; the executor's batch
    path additionally reports the fallback reason via {!observe}. The
    callback runs on whichever domain spilled — it must be cheap and
    domain-safe. The engine points this at its flight recorder. *)

val observe : string -> string -> unit
(** Feed one event to the installed observer (a no-op without one). *)

(** {1 Spill files}

    Write-only until {!rewind}, read-only after. Values are marshalled;
    files are process-private and removed on {!release}. Single-domain
    use only (the serial row path). *)

type 'a file

val create : config -> 'a file
val push : 'a file -> 'a -> unit
val count : 'a file -> int

val rewind : 'a file -> unit
(** End the write phase and start reading from the beginning. *)

val next : 'a file -> 'a option
val release : 'a file -> unit

val release_all : unit -> unit
(** Release every live spill file — the executor's statement-end hook, so
    abandoned lazy consumers (LIMIT over a spilled sort) cannot leak temp
    files. *)
