(** Columnar batch + selection vector: the unit of exchange between
    operators on the vectorized executor path. A batch holds [rows]
    physical rows as per-column [Value.t] arrays; the selection vector
    marks the live subset (filters narrow it without materializing
    rows). *)

module Value = Perm_value.Value

type t = private {
  cols : Value.t array array;
  rows : int;
  sel : int array;
  nsel : int;
  all : bool;
}

val dense : Value.t array array -> int -> t
(** [dense cols rows]: batch where every physical row is live. *)

val with_sel : t -> int array -> int -> t
(** [with_sel b sel n]: same columns, live rows = [sel.(0..n-1)]
    (ascending physical indices). Normalizes back to dense when [n =
    b.rows]. *)

val with_cols : t -> Value.t array array -> t
(** [with_cols b cols]: same selection, new columns (each of physical
    length [rows]) — an all-attribute projection shares column pointers
    through this instead of compacting live rows. *)

val arity : t -> int
val live : t -> int
(** Number of live rows. *)

val is_dense : t -> bool
val idx : t -> int -> int
(** Physical index of the [i]-th live row. *)

val col : t -> int -> Value.t array
val row : t -> int -> Value.t array
(** Materialize the [i]-th live row (allocates a tuple). *)

val of_rows : arity:int -> Value.t array array -> pos:int -> len:int -> t
(** Transpose a row-array slice into a dense batch. *)

val of_tuple_list : arity:int -> Value.t array list -> t
val sel_array : t -> int array
(** Fresh array of the live physical indices. *)

val compact : t -> t
(** Gather live rows into a fresh dense batch (no-op when dense). *)

val iter_live : (int -> unit) -> t -> unit
(** Iterate physical indices of live rows in order. *)

val to_tuples : t -> Value.t array list
val measured_bytes : t -> int
(** Exact reachable-heap bytes of the batch (profiler peak_bytes). *)
