module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
module Schema = Perm_catalog.Schema
module Column = Perm_catalog.Column

(* one hash index: value -> positions in the row vector, newest first *)
module Value_key = struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end

module Value_hash = Hashtbl.Make (Value_key)

(* Chaos-harness injection points (no-ops unless armed via Perm_fault). *)
let fp_scan = Perm_fault.point "heap.scan"
let fp_insert = Perm_fault.point "heap.insert"

type index = int list Value_hash.t

type t = {
  schema : Schema.t;
  rows : Tuple.t Vec.t;
  mutable distinct_cache : int array option;
  mutable batch_cache : (int * Batch.t array) option;
      (* (batch_rows, columnar image) — transposed once per table version
         and shared by every vectorized scan until the next mutation *)
  indexes : (int, index) Hashtbl.t;  (* column position -> index *)
}

let create schema =
  {
    schema;
    rows = Vec.create ();
    distinct_cache = None;
    batch_cache = None;
    indexes = Hashtbl.create 4;
  }

let copy t =
  let indexes = Hashtbl.create (Hashtbl.length t.indexes) in
  Hashtbl.iter (fun col idx -> Hashtbl.replace indexes col (Value_hash.copy idx)) t.indexes;
  {
    schema = t.schema;
    rows = Vec.copy t.rows;
    distinct_cache = t.distinct_cache;
    (* batches are immutable, so the image can be shared; each copy
       invalidates its own cache on its own mutations *)
    batch_cache = t.batch_cache;
    indexes;
  }

let schema t = t.schema
let row_count t = Vec.length t.rows

let index_add idx key pos =
  if not (Value.is_null key) then
    let prev = match Value_hash.find_opt idx key with Some l -> l | None -> [] in
    Value_hash.replace idx key (pos :: prev)

let coerce_cell (col : Column.t) v =
  match v, col.ty with
  | Value.Null, _ -> Ok Value.Null
  | Value.Int i, Dtype.Float -> Ok (Value.Float (float_of_int i))
  | v, ty ->
    if Dtype.equal (Value.type_of v) ty then Ok v
    else
      Error
        (Printf.sprintf "column %S expects %s, got %s (%s)" col.name
           (Dtype.to_string ty)
           (Dtype.to_string (Value.type_of v))
           (Value.to_string v))

let insert t row =
  Perm_fault.trip fp_insert;
  let cols = Array.of_list (Schema.columns t.schema) in
  if Array.length row <> Array.length cols then
    Error
      (Printf.sprintf "expected %d values, got %d" (Array.length cols)
         (Array.length row))
  else
    let out = Array.make (Array.length row) Value.Null in
    let rec fill i =
      if i >= Array.length row then begin
        let pos = Vec.length t.rows in
        Vec.push t.rows out;
        Hashtbl.iter (fun col idx -> index_add idx out.(col) pos) t.indexes;
        t.distinct_cache <- None;
        t.batch_cache <- None;
        Ok ()
      end
      else
        match coerce_cell cols.(i) row.(i) with
        | Ok v ->
          out.(i) <- v;
          fill (i + 1)
        | Error e -> Error e
    in
    fill 0

let insert_all t rows =
  let rec go = function
    | [] -> Ok ()
    | r :: rest -> ( match insert t r with Ok () -> go rest | Error e -> Error e)
  in
  go rows

(* All-or-nothing rebuild for DELETE/UPDATE: every row is validated and
   coerced into a staging list before the heap is touched, so a bad row —
   or an injected fault, tripped before any mutation — leaves the table
   exactly as it was. The commit step below is pure pushes and cannot
   fail. *)
let replace_all t rows =
  Perm_fault.trip fp_insert;
  let cols = Array.of_list (Schema.columns t.schema) in
  let stage row =
    if Array.length row <> Array.length cols then
      Error
        (Printf.sprintf "expected %d values, got %d" (Array.length cols)
           (Array.length row))
    else
      let out = Array.make (Array.length row) Value.Null in
      let rec fill i =
        if i >= Array.length row then Ok out
        else
          match coerce_cell cols.(i) row.(i) with
          | Ok v ->
            out.(i) <- v;
            fill (i + 1)
          | Error e -> Error e
      in
      fill 0
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest -> ( match stage r with Ok o -> go (o :: acc) rest | Error e -> Error e)
  in
  match go [] rows with
  | Error e -> Error e
  | Ok staged ->
    Vec.clear t.rows;
    Hashtbl.iter (fun _ idx -> Value_hash.reset idx) t.indexes;
    List.iter
      (fun out ->
        let pos = Vec.length t.rows in
        Vec.push t.rows out;
        Hashtbl.iter (fun col idx -> index_add idx out.(col) pos) t.indexes)
      staged;
    t.distinct_cache <- None;
    t.batch_cache <- None;
    Ok ()

let truncate t =
  Vec.clear t.rows;
  t.distinct_cache <- None;
  t.batch_cache <- None;
  (* keep index definitions, drop their contents *)
  Hashtbl.iter (fun _ idx -> Value_hash.reset idx) t.indexes

let scan t =
  Perm_fault.trip fp_scan;
  Vec.to_seq t.rows

let to_list t = Vec.to_list t.rows

(* Chunked access for morsel-driven parallel scans: contiguous row slices
   in insertion order, so concatenating the chunks reproduces [scan]. *)
let scan_chunk t ~pos ~len = Vec.sub t.rows pos len

let scan_morsels t ~rows =
  Perm_fault.trip fp_scan;
  Vec.chunks t.rows ~size:rows

(* Columnar scan for the vectorized executor. The transpose runs once per
   (table version, batch size) and the resulting image — column arrays
   shared by every batch — is reused by all later scans; any mutation
   drops it. The fault point trips per scan, like [scan_morsels], so
   chaos schedules are unchanged by caching. *)
let scan_batches t ~rows =
  Perm_fault.trip fp_scan;
  let size = max 1 rows in
  match t.batch_cache with
  | Some (sz, batches) when sz = size -> batches
  | _ ->
    let n = Vec.length t.rows in
    let arity = Schema.arity t.schema in
    let batches =
      Array.init
        ((n + size - 1) / size)
        (fun bi ->
          let pos = bi * size in
          let len = min size (n - pos) in
          let cols =
            Array.init arity (fun c ->
                Array.init len (fun i -> (Vec.get t.rows (pos + i)).(c)))
          in
          Batch.dense cols len)
    in
    t.batch_cache <- Some (size, batches);
    batches

let distinct_estimate t col =
  let counts =
    match t.distinct_cache with
    | Some c -> c
    | None ->
      let arity = Schema.arity t.schema in
      let sets = Array.init arity (fun _ -> Hashtbl.create 64) in
      Vec.iter
        (fun row ->
          Array.iteri
            (fun i v -> Hashtbl.replace sets.(i) (Value.hash v, v) ())
            row)
        t.rows;
      let c = Array.map Hashtbl.length sets in
      t.distinct_cache <- Some c;
      c
  in
  if col < 0 || col >= Array.length counts then
    invalid_arg "Heap.distinct_estimate: column out of range"
  else counts.(col)

let create_index t col =
  if col < 0 || col >= Schema.arity t.schema then
    invalid_arg "Heap.create_index: column out of range";
  if not (Hashtbl.mem t.indexes col) then begin
    let idx = Value_hash.create 256 in
    Vec.iteri (fun pos row -> index_add idx row.(col) pos) t.rows;
    Hashtbl.replace t.indexes col idx
  end

let drop_index t col = Hashtbl.remove t.indexes col
let has_index t col = Hashtbl.mem t.indexes col

let index_probe t col key =
  match Hashtbl.find_opt t.indexes col with
  | None -> invalid_arg "Heap.index_probe: column is not indexed"
  | Some idx ->
    if Value.is_null key then Seq.empty
    else (
      match Value_hash.find_opt idx key with
      | None -> Seq.empty
      | Some positions ->
        List.to_seq (List.rev_map (fun pos -> Vec.get t.rows pos) positions))
