(* Graceful spill-to-disk for memory-hungry operators.

   When the governor's tuple budget would otherwise kill a statement, the
   executor's serial row path degrades instead: sort materializations
   become external merge sorts and hash-join build sides are split into
   budget-sized chunks, both backed by temp files created here. The batch
   and parallel paths do not spill themselves — they raise
   {!Fallback_needed} and the engine re-runs the statement on the spilling
   row path (counted by the [fallbacks] counter).

   Files hold marshalled OCaml values, one per [push]; they are private to
   the process and never survive it, so the representation does not need
   to be stable. Counters are process-global atomics surfaced by the
   engine as the [executor.spill.*] metric family. *)

type config = {
  dir : string;  (** temp-file directory; created on first use *)
  threshold : int;  (** max rows an operator may hold in memory *)
}

exception Fallback_needed of string
(** Raised by the batch/parallel paths when a materialization exceeds
    [threshold]: the engine catches it and retries on the serial row path,
    which spills instead of raising. *)

(* ---- process-global accounting ----------------------------------- *)

let n_spills = Atomic.make 0 (* operator instances that spilled *)
let n_runs = Atomic.make 0 (* external-sort run files *)
let n_chunks = Atomic.make 0 (* join build chunks *)
let n_rows = Atomic.make 0 (* values written to spill files *)
let n_bytes = Atomic.make 0 (* bytes written to spill files *)
let n_fallbacks = Atomic.make 0 (* batch/parallel plans re-run on the row path *)

type counters = {
  c_spills : int;
  c_runs : int;
  c_chunks : int;
  c_rows : int;
  c_bytes : int;
  c_fallbacks : int;
}

let counters () =
  {
    c_spills = Atomic.get n_spills;
    c_runs = Atomic.get n_runs;
    c_chunks = Atomic.get n_chunks;
    c_rows = Atomic.get n_rows;
    c_bytes = Atomic.get n_bytes;
    c_fallbacks = Atomic.get n_fallbacks;
  }

(* Optional process-global event tap: the engine's flight recorder hooks
   in here so spill milestones land in the forensics event ring as they
   happen, not just as end-of-statement counter deltas. The callback must
   be cheap and domain-safe (spill notes fire from worker domains). *)
let observer : (string -> string -> unit) option Atomic.t = Atomic.make None

let set_observer f = Atomic.set observer f

let observe kind detail =
  match Atomic.get observer with None -> () | Some f -> f kind detail

let note_spill () =
  Atomic.incr n_spills;
  observe "spill" ""

let note_run () =
  Atomic.incr n_runs;
  observe "run" ""

let note_chunk () =
  Atomic.incr n_chunks;
  observe "chunk" ""

let note_fallback () =
  Atomic.incr n_fallbacks;
  observe "fallback" ""

(* ---- spill files -------------------------------------------------- *)

(* A file moves through exactly two phases: write-only (push), then
   read-only after [rewind]. Single-domain use only — spilling happens on
   the engine's serial row path. *)
type 'a file = {
  path : string;
  mutable oc : out_channel option;
  mutable ic : in_channel option;
  mutable count : int;
  mutable released : bool;
}

(* Every live file is tracked so an abandoned lazy consumer (e.g. LIMIT
   over a spilled sort) cannot leak temp files past the statement: the
   executor's entry points call [release_all] when the statement
   finishes. *)
let live : (unit -> unit) list ref = ref []

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let release file =
  if not file.released then begin
    file.released <- true;
    (match file.oc with
    | Some oc ->
      close_out_noerr oc;
      file.oc <- None
    | None -> ());
    (match file.ic with
    | Some ic ->
      close_in_noerr ic;
      file.ic <- None
    | None -> ());
    try Sys.remove file.path with Sys_error _ -> ()
  end

let create cfg =
  ensure_dir cfg.dir;
  let path = Filename.temp_file ~temp_dir:cfg.dir "perm_spill_" ".bin" in
  let file =
    { path; oc = Some (open_out_bin path); ic = None; count = 0; released = false }
  in
  live := (fun () -> release file) :: !live;
  file

let push file v =
  match file.oc with
  | Some oc ->
    Marshal.to_channel oc v [];
    file.count <- file.count + 1;
    Atomic.incr n_rows
  | None -> invalid_arg "Spill.push: file is not in its write phase"

let count file = file.count

(* End the write phase and start reading from the beginning. *)
let rewind file =
  (match file.oc with
  | Some oc ->
    let bytes = pos_out oc in
    Atomic.set n_bytes (Atomic.get n_bytes + bytes);
    close_out oc;
    file.oc <- None
  | None -> ());
  (match file.ic with Some ic -> close_in_noerr ic | None -> ());
  file.ic <- Some (open_in_bin file.path)

let next file =
  match file.ic with
  | None -> invalid_arg "Spill.next: file is not in its read phase"
  | Some ic -> ( try Some (Marshal.from_channel ic) with End_of_file -> None)

let release_all () =
  let fs = !live in
  live := [];
  List.iter (fun f -> f ()) fs
