(** An in-memory heap relation: the rows of one base table.

    Insertion validates arity and types against the table schema (with
    implicit int→float widening, as PostgreSQL does on assignment). *)

type t

val create : Perm_catalog.Schema.t -> t

val copy : t -> t
(** Snapshot for transactions: rows are shared (tuples are never mutated in
    place — DML rebuilds), index structures are duplicated. *)

val schema : t -> Perm_catalog.Schema.t
val row_count : t -> int
val insert : t -> Tuple.t -> (unit, string) result
val insert_all : t -> Tuple.t list -> (unit, string) result
(** Fails atomically-per-row: rows before the offending one are kept (the
    engine wraps DML so callers see the error). *)

val replace_all : t -> Tuple.t list -> (unit, string) result
(** Atomically replace the heap's contents: every row is validated (and
    type-coerced) {e before} the first mutation, so on [Error] — or an
    injected [heap.insert] fault — the table and its indexes are
    untouched. The write path behind DELETE/UPDATE rebuilds. *)

val truncate : t -> unit
val scan : t -> Tuple.t Seq.t
val to_list : t -> Tuple.t list

val scan_chunk : t -> pos:int -> len:int -> Tuple.t array
(** Contiguous slice of the heap in insertion order.
    @raise Invalid_argument when the range is out of bounds. *)

val scan_morsels : t -> rows:int -> Tuple.t array array
(** The heap partitioned into fixed-size morsels (the last may be short)
    in insertion order, for morsel-driven parallel scans: concatenating
    the morsels reproduces {!scan}. *)

val scan_batches : t -> rows:int -> Batch.t array
(** The heap as columnar batches of at most [rows] rows each, in
    insertion order: their live tuples reproduce {!scan}. The transpose
    runs once per (table version, batch size) and is cached until the
    next write, so repeated vectorized scans share one immutable columnar
    image. Callers must not mutate the column arrays. *)

val distinct_estimate : t -> int -> int
(** [distinct_estimate h col] is the exact number of distinct values in
    column [col], computed on demand and cached until the next write. Used
    by the planner's cardinality model (paper: "cost-based solution for
    choosing the best rewrite strategy"). *)

(** {1 Hash indexes}

    Equality indexes on single columns, maintained incrementally on insert
    and dropped content-wise by {!truncate} (the index definition
    survives; DML that rebuilds the heap re-populates it). NULL keys are
    not indexed — SQL equality never matches them. *)

val create_index : t -> int -> unit
(** Indexes column [col]; idempotent. Builds from existing rows. *)

val drop_index : t -> int -> unit
val has_index : t -> int -> bool

val index_probe : t -> int -> Perm_value.Value.t -> Tuple.t Seq.t
(** Rows whose column [col] equals the key under SQL [=] (NULL probes
    return nothing).
    @raise Invalid_argument if the column is not indexed. *)
