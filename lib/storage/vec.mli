(** A growable array, used as the backing store for heap relations.
    (OCaml 5.1 predates [Dynarray].) *)

type 'a t

val create : unit -> 'a t

val copy : 'a t -> 'a t
(** Shallow copy: elements are shared. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val push : 'a t -> 'a -> unit
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list

(** [sub t pos len] copies the slice [pos .. pos+len-1] into a fresh array.
    @raise Invalid_argument when the range is out of bounds. *)
val sub : 'a t -> int -> int -> 'a array

(** Fixed-size slices in element order — the morsels of morsel-driven
    parallel execution. The final chunk may be short; an empty vector has
    no chunks. Concatenating the chunks reproduces the vector.
    @raise Invalid_argument when [size <= 0]. *)
val chunks : 'a t -> size:int -> 'a array array
val of_list : 'a list -> 'a t
val to_seq : 'a t -> 'a Seq.t
(** The sequence is evaluated lazily against the live vector; elements
    appended after creation are included, which scan iterators rely on not
    happening mid-query (the engine never mutates during a read). *)
