type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let copy t = { data = Array.copy t.data; len = t.len }
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let grow t elt =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap elt in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let clear t =
  t.data <- [||];
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Vec.sub: range out of bounds";
  Array.sub t.data pos len

(* Fixed-size slices in element order: the morsels of morsel-driven
   execution. The final chunk may be short; an empty vector has none. *)
let chunks t ~size =
  if size <= 0 then invalid_arg "Vec.chunks: size must be positive";
  let n = (t.len + size - 1) / size in
  Array.init n (fun i ->
      let pos = i * size in
      Array.sub t.data pos (min size (t.len - pos)))

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let to_seq t =
  let rec node i () =
    if i >= t.len then Seq.Nil else Seq.Cons (t.data.(i), node (i + 1))
  in
  node 0
