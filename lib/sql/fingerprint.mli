(** Lexer-based statement fingerprints for statistics aggregation.

    Literals ([42], [3.14], ['abc']) and parameter markers ([$1]) normalize
    to [?]; bare identifiers and keywords lowercase; whitespace collapses;
    trailing semicolons drop. Quoted identifiers keep their case (they are
    names, not values). Statements the lexer rejects fall back to the
    lowercased, whitespace-collapsed raw text, so every statement — even a
    malformed one — gets a stable fingerprint. *)

val of_sql : string -> string
