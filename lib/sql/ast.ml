(** Abstract syntax of the SQL-PLE dialect (SQL plus Perm's provenance
    language extension, paper §2.4).

    The SQL-PLE surface constructs are:
    - [SELECT PROVENANCE ...] — compute provenance of this (sub)query;
    - [... ON CONTRIBUTION (INFLUENCE | COPY | COPY COMPLETE)] — pick the
      contribution semantics;
    - [<from-item> BASERELATION] — treat a view/subquery as a base relation
      (stop the rewrite at this boundary);
    - [<from-item> PROVENANCE (a1, ..., an)] — declare existing columns as
      externally produced provenance attributes to be propagated. *)

module Value = Perm_value.Value
module Dtype = Perm_value.Dtype

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | And
  | Or
  | Concat
  | Like

type unop = Not | Neg

type agg_func = Count | Sum | Avg | Min | Max | Bool_and | Bool_or

(** Contribution semantics (paper §2.4): [INFLUENCE] is Perm's
    Why-provenance flavour; [COPY] variants are Where-provenance flavours
    ("several types of Where-provenance"): [Copy_partial] keeps provenance
    for a base tuple if {e any} of its attributes is copied to the output,
    [Copy_complete] only if {e all} output values stemming from that
    relation are copies. *)
type contribution = Influence | Copy_partial | Copy_complete

type order_dir = Asc | Desc

type expr =
  | Lit of Value.t
  | Param of int  (** positional parameter [$n]; bound before analysis *)
  | Ref of string option * string  (** [qualifier.column] or bare [column] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_null of { negated : bool; arg : expr }
  | Between of { negated : bool; arg : expr; low : expr; high : expr }
  | In_list of { negated : bool; arg : expr; candidates : expr list }
  | In_query of { negated : bool; arg : expr; subquery : query }
  | Exists of { negated : bool; subquery : query }
  | Scalar_subquery of query
  | Case of {
      operand : expr option;
      branches : (expr * expr) list;
      else_ : expr option;
    }
  | Cast of expr * Dtype.t
  | Func of string * expr list  (** scalar function call *)
  | Agg of { func : agg_func; distinct : bool; arg : expr option }
      (** [arg = None] only for count-star *)

and select_item =
  | Star  (** [SELECT *] *)
  | Table_star of string  (** [SELECT t.*] *)
  | Sel_expr of expr * string option  (** expression with optional alias *)

and from_item = {
  source : from_source;
  alias : string option;
  baserelation : bool;  (** SQL-PLE [BASERELATION] *)
  prov_attrs : string list option;  (** SQL-PLE [PROVENANCE (a, ...)] *)
}

and from_source =
  | From_table of string
  | From_subquery of query
  | From_join of {
      kind : join_kind;
      left : from_item;
      right : from_item;
      cond : expr option;  (** [None] only for [Cross] *)
    }

and join_kind = Inner | Left | Right | Full | Cross

and select = {
  provenance : contribution option;  (** [SELECT PROVENANCE ...] marker *)
  distinct : bool;
  items : select_item list;
  from : from_item list;  (** comma-separated items are a cross product *)
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and query_body =
  | Select of select
  | Set_op of { kind : set_kind; all : bool; left : query; right : query }

and set_kind = Union | Intersect | Except

and query = {
  body : query_body;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
}

type statement =
  | St_query of query
  | St_create_table of string * (string * Dtype.t) list
  | St_create_table_as of string * query
  | St_create_view of string * query
  | St_drop_table of string
  | St_drop_view of string
  | St_insert_values of string * expr list list
  | St_insert_select of string * query
  | St_delete of string * expr option
  | St_update of string * (string * expr) list * expr option
  | St_store_provenance of query * string
      (** [STORE PROVENANCE <query> INTO <table>] — eager provenance
          (engine-level SQL-PLE extension; equivalent to Perm's
          [CREATE TABLE t AS SELECT PROVENANCE ...]) *)
  | St_explain of query
      (** [EXPLAIN <query>] — the Perm-browser panes as text *)
  | St_explain_analyze of query
      (** [EXPLAIN ANALYZE <query>] — actually execute the optimized plan
          with per-operator instrumentation and report actual row counts
          and wall-clock time per node plus the phase breakdown *)
  | St_copy_from of string * string
      (** [COPY <table> FROM '<path>'] — CSV import *)
  | St_copy_to of string * string
      (** [COPY <table> TO '<path>'] — CSV export *)
  | St_create_index of { index : string; table : string; column : string }
      (** [CREATE INDEX <name> ON <table> (<column>)] — hash index *)
  | St_drop_index of string
  | St_begin  (** [BEGIN [TRANSACTION]] — snapshot the session state *)
  | St_commit  (** [COMMIT] — discard the snapshot, keep changes *)
  | St_rollback  (** [ROLLBACK] — restore the snapshot *)

(** {1 Constructors} *)

let simple_query body = { body; order_by = []; limit = None; offset = None }

let plain_from ?(alias = None) source =
  { source; alias; baserelation = false; prov_attrs = None }

let select_query sel = simple_query (Select sel)

let empty_select =
  {
    provenance = None;
    distinct = false;
    items = [];
    from = [];
    where = None;
    group_by = [];
    having = None;
  }

(** {1 Inspection helpers} *)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | And -> "and"
  | Or -> "or"
  | Concat -> "||"
  | Like -> "like"

let agg_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Bool_and -> "bool_and"
  | Bool_or -> "bool_or"

let contribution_name = function
  | Influence -> "influence"
  | Copy_partial -> "copy"
  | Copy_complete -> "copy complete"

(** [query_uses_provenance q] is true when any (sub)select of [q] carries a
    [PROVENANCE] marker — used by the engine to decide whether the
    provenance rewriter must run at all. *)
(* [bind_params values q] replaces every positional parameter [$n] by the
   n-th (1-based) value; fails if a parameter exceeds the binding list.
   Extra values are allowed (and ignored). *)
let bind_params values q =
  let n = List.length values in
  let missing = ref None in
  let value k =
    if k >= 1 && k <= n then Lit (List.nth values (k - 1))
    else begin
      if !missing = None then missing := Some k;
      Param k
    end
  in
  let rec expr = function
    | Lit _ as e -> e
    | Param k -> value k
    | Ref _ as e -> e
    | Binop (op, a, b) -> Binop (op, expr a, expr b)
    | Unop (op, a) -> Unop (op, expr a)
    | Is_null r -> Is_null { r with arg = expr r.arg }
    | Between r ->
      Between { r with arg = expr r.arg; low = expr r.low; high = expr r.high }
    | In_list r ->
      In_list { r with arg = expr r.arg; candidates = List.map expr r.candidates }
    | In_query r -> In_query { r with arg = expr r.arg; subquery = query r.subquery }
    | Exists r -> Exists { r with subquery = query r.subquery }
    | Scalar_subquery q -> Scalar_subquery (query q)
    | Case { operand; branches; else_ } ->
      Case
        {
          operand = Option.map expr operand;
          branches = List.map (fun (c, r) -> (expr c, expr r)) branches;
          else_ = Option.map expr else_;
        }
    | Cast (e, ty) -> Cast (expr e, ty)
    | Func (name, args) -> Func (name, List.map expr args)
    | Agg r -> Agg { r with arg = Option.map expr r.arg }
  and item = function
    | (Star | Table_star _) as i -> i
    | Sel_expr (e, alias) -> Sel_expr (expr e, alias)
  and from (f : from_item) =
    {
      f with
      source =
        (match f.source with
        | From_table _ as s -> s
        | From_subquery q -> From_subquery (query q)
        | From_join r ->
          From_join
            { r with left = from r.left; right = from r.right; cond = Option.map expr r.cond });
    }
  and select (s : select) =
    {
      s with
      items = List.map item s.items;
      from = List.map from s.from;
      where = Option.map expr s.where;
      group_by = List.map expr s.group_by;
      having = Option.map expr s.having;
    }
  and body = function
    | Select s -> Select (select s)
    | Set_op r -> Set_op { r with left = query r.left; right = query r.right }
  and query (q : query) =
    {
      q with
      body = body q.body;
      order_by = List.map (fun (e, d) -> (expr e, d)) q.order_by;
    }
  in
  let q2 = query q in
  match !missing with
  | Some k ->
    Error (Printf.sprintf "query references $%d but only %d value(s) were bound" k n)
  | None -> Ok q2

let rec query_uses_provenance q = body_uses_provenance q.body

and body_uses_provenance = function
  | Select s ->
    s.provenance <> None
    || List.exists item_uses (List.map (fun i -> `Item i) s.items)
    || List.exists from_uses s.from
    || opt_uses s.where || opt_uses s.having
    || List.exists expr_uses s.group_by
  | Set_op { left; right; _ } ->
    query_uses_provenance left || query_uses_provenance right

and item_uses = function
  | `Item (Sel_expr (e, _)) -> expr_uses e
  | `Item (Star | Table_star _) -> false

and from_uses (f : from_item) =
  match f.source with
  | From_table _ -> false
  | From_subquery q -> query_uses_provenance q
  | From_join { left; right; cond; _ } ->
    from_uses left || from_uses right || opt_uses cond

and opt_uses = function None -> false | Some e -> expr_uses e

and expr_uses = function
  | Lit _ | Param _ | Ref _ -> false
  | Binop (_, a, b) -> expr_uses a || expr_uses b
  | Unop (_, a) | Cast (a, _) -> expr_uses a
  | Is_null { arg; _ } -> expr_uses arg
  | Between { arg; low; high; _ } ->
    expr_uses arg || expr_uses low || expr_uses high
  | In_list { arg; candidates; _ } ->
    expr_uses arg || List.exists expr_uses candidates
  | In_query { arg; subquery; _ } ->
    expr_uses arg || query_uses_provenance subquery
  | Exists { subquery; _ } -> query_uses_provenance subquery
  | Scalar_subquery q -> query_uses_provenance q
  | Case { operand; branches; else_ } ->
    opt_uses operand || opt_uses else_
    || List.exists (fun (c, r) -> expr_uses c || expr_uses r) branches
  | Func (_, args) -> List.exists expr_uses args
  | Agg { arg; _ } -> opt_uses arg
