module Value = Perm_value.Value
module Dtype = Perm_value.Dtype

type error = { message : string; pos : int }

exception Parse_error of error

type state = { tokens : Token.located array; mutable pos : int }

let fail st message =
  let pos =
    if st.pos < Array.length st.tokens then st.tokens.(st.pos).Token.pos else 0
  in
  raise (Parse_error { message; pos })

let peek st = st.tokens.(st.pos).Token.token

let peek_ahead st n =
  let i = st.pos + n in
  if i < Array.length st.tokens then st.tokens.(i).Token.token else Token.Eof

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

(* Keywords that terminate an expression/alias position; a bare identifier in
   alias position must not be one of these. *)
let reserved =
  [
    "select"; "from"; "where"; "group"; "having"; "order"; "limit"; "offset";
    "union"; "intersect"; "except"; "on"; "join"; "inner"; "left"; "right";
    "full"; "cross"; "outer"; "and"; "or"; "not"; "as"; "by"; "asc"; "desc";
    "in"; "is"; "null"; "like"; "between"; "exists"; "case"; "when"; "then";
    "else"; "end"; "distinct"; "all"; "into"; "values"; "set"; "using";
    "natural";
  ]
(* [provenance] and [baserelation] are context-sensitive SQL-PLE keywords:
   they stay valid column names and aliases in plain SQL positions. *)

let is_reserved s = List.mem s reserved

let expect st tok what =
  if Token.equal (peek st) tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" what
         (Token.to_string (peek st)))

let accept st tok =
  if Token.equal (peek st) tok then begin
    advance st;
    true
  end
  else false

(* Keyword helpers: keywords arrive as lower-cased Ident tokens. *)
let accept_kw st kw =
  match peek st with
  | Token.Ident s when String.equal s kw ->
    advance st;
    true
  | _ -> false

let expect_kw st kw =
  if not (accept_kw st kw) then
    fail st
      (Printf.sprintf "expected keyword %s but found %s"
         (String.uppercase_ascii kw)
         (Token.to_string (peek st)))

let is_kw st kw =
  match peek st with Token.Ident s -> String.equal s kw | _ -> false

let is_kw_ahead st n kw =
  match peek_ahead st n with
  | Token.Ident s -> String.equal s kw
  | _ -> false

let parse_ident st what =
  match next st with
  | Token.Ident s -> s
  | Token.Quoted_ident s -> String.lowercase_ascii s
  | t ->
    fail st
      (Printf.sprintf "expected %s but found %s" what (Token.to_string t))

let parse_name st what =
  let name = parse_ident st what in
  if is_reserved name then
    fail st (Printf.sprintf "reserved word %S cannot be used as %s" name what)
  else name

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let agg_of_name = function
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | "bool_and" -> Some Ast.Bool_and
  | "bool_or" -> Some Ast.Bool_or
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept_kw st "or" then Ast.Binop (Ast.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "and" then Ast.Binop (Ast.And, left, parse_and st) else left

and parse_not st =
  if accept_kw st "not" then Ast.Unop (Ast.Not, parse_not st)
  else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  let negated = accept_kw st "not" in
  match peek st with
  | Token.Eq ->
    advance st;
    let e = Ast.Binop (Ast.Eq, left, parse_additive st) in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Neq ->
    advance st;
    let e = Ast.Binop (Ast.Neq, left, parse_additive st) in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Lt ->
    advance st;
    let e = Ast.Binop (Ast.Lt, left, parse_additive st) in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Leq ->
    advance st;
    let e = Ast.Binop (Ast.Leq, left, parse_additive st) in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Gt ->
    advance st;
    let e = Ast.Binop (Ast.Gt, left, parse_additive st) in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Geq ->
    advance st;
    let e = Ast.Binop (Ast.Geq, left, parse_additive st) in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Ident "is" ->
    advance st;
    let neg2 = accept_kw st "not" in
    expect_kw st "null";
    let e = Ast.Is_null { negated = neg2; arg = left } in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Ident "like" ->
    advance st;
    let e = Ast.Binop (Ast.Like, left, parse_additive st) in
    if negated then Ast.Unop (Ast.Not, e) else e
  | Token.Ident "between" ->
    advance st;
    let low = parse_additive st in
    expect_kw st "and";
    let high = parse_additive st in
    Ast.Between { negated; arg = left; low; high }
  | Token.Ident "in" ->
    advance st;
    expect st Token.Lparen "'(' after IN";
    if is_kw st "select" then begin
      let q = parse_query_inner st in
      expect st Token.Rparen "')' closing IN subquery";
      Ast.In_query { negated; arg = left; subquery = q }
    end
    else begin
      let candidates = parse_expr_list st in
      expect st Token.Rparen "')' closing IN list";
      Ast.In_list { negated; arg = left; candidates }
    end
  | _ ->
    if negated then fail st "expected comparison after NOT";
    left

and parse_additive st =
  let rec go left =
    match peek st with
    | Token.Plus ->
      advance st;
      go (Ast.Binop (Ast.Add, left, parse_multiplicative st))
    | Token.Minus ->
      advance st;
      go (Ast.Binop (Ast.Sub, left, parse_multiplicative st))
    | Token.Concat ->
      advance st;
      go (Ast.Binop (Ast.Concat, left, parse_multiplicative st))
    | _ -> left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    match peek st with
    | Token.Star ->
      advance st;
      go (Ast.Binop (Ast.Mul, left, parse_unary st))
    | Token.Slash ->
      advance st;
      go (Ast.Binop (Ast.Div, left, parse_unary st))
    | Token.Percent ->
      advance st;
      go (Ast.Binop (Ast.Mod, left, parse_unary st))
    | _ -> left
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.Minus ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Token.Plus ->
    advance st;
    parse_unary st
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Token.Int_lit i ->
    advance st;
    Ast.Lit (Value.Int i)
  | Token.Float_lit f ->
    advance st;
    Ast.Lit (Value.Float f)
  | Token.String_lit s ->
    advance st;
    Ast.Lit (Value.Text s)
  | Token.Param n ->
    advance st;
    Ast.Param n
  | Token.Lparen ->
    advance st;
    if is_kw st "select" then begin
      let q = parse_query_inner st in
      expect st Token.Rparen "')' closing scalar subquery";
      Ast.Scalar_subquery q
    end
    else begin
      let e = parse_expr st in
      expect st Token.Rparen "')' closing parenthesised expression";
      e
    end
  | Token.Ident "null" ->
    advance st;
    Ast.Lit Value.Null
  | Token.Ident "true" ->
    advance st;
    Ast.Lit (Value.Bool true)
  | Token.Ident "false" ->
    advance st;
    Ast.Lit (Value.Bool false)
  | Token.Ident "date" when (match peek_ahead st 1 with Token.String_lit _ -> true | _ -> false) ->
    advance st;
    (match next st with
    | Token.String_lit s -> (
      match Value.date_of_string s with
      | Ok v -> Ast.Lit v
      | Error msg -> fail st msg)
    | _ -> assert false)
  | Token.Ident "exists" ->
    advance st;
    expect st Token.Lparen "'(' after EXISTS";
    let q = parse_query_inner st in
    expect st Token.Rparen "')' closing EXISTS subquery";
    Ast.Exists { negated = false; subquery = q }
  | Token.Ident "case" -> parse_case st
  | Token.Ident "cast" ->
    advance st;
    expect st Token.Lparen "'(' after CAST";
    let e = parse_expr st in
    expect_kw st "as";
    let ty_name = parse_ident st "type name" in
    let ty =
      match Dtype.of_string ty_name with
      | Some ty -> ty
      | None -> fail st (Printf.sprintf "unknown type %S in CAST" ty_name)
    in
    expect st Token.Rparen "')' closing CAST";
    Ast.Cast (e, ty)
  | Token.Ident name when not (is_reserved name) -> parse_ident_expr st name
  | t ->
    fail st (Printf.sprintf "unexpected token %s in expression" (Token.to_string t))

and parse_ident_expr st name =
  advance st;
  match peek st with
  | Token.Lparen -> begin
    advance st;
    match agg_of_name name with
    | Some func ->
      if accept st Token.Star then begin
        if func <> Ast.Count then
          fail st "only COUNT may take * as its argument";
        expect st Token.Rparen "')' closing COUNT(*)";
        Ast.Agg { func; distinct = false; arg = None }
      end
      else begin
        let distinct = accept_kw st "distinct" in
        let arg = parse_expr st in
        expect st Token.Rparen "')' closing aggregate";
        Ast.Agg { func; distinct; arg = Some arg }
      end
    | None ->
      let args = if is_kw st "" then [] else parse_func_args st in
      expect st Token.Rparen "')' closing function call";
      Ast.Func (name, args)
  end
  | Token.Dot ->
    advance st;
    let col = parse_ident st "column name after '.'" in
    Ast.Ref (Some name, col)
  | _ -> Ast.Ref (None, name)

and parse_func_args st =
  if Token.equal (peek st) Token.Rparen then [] else parse_expr_list st

and parse_case st =
  expect_kw st "case";
  let operand =
    if is_kw st "when" || is_kw st "else" || is_kw st "end" then None
    else Some (parse_expr st)
  in
  let rec branches acc =
    if accept_kw st "when" then begin
      let cond = parse_expr st in
      expect_kw st "then";
      let result = parse_expr st in
      branches ((cond, result) :: acc)
    end
    else List.rev acc
  in
  let branches = branches [] in
  if branches = [] then fail st "CASE requires at least one WHEN branch";
  let else_ = if accept_kw st "else" then Some (parse_expr st) else None in
  expect_kw st "end";
  Ast.Case { operand; branches; else_ }

and parse_expr_list st =
  let first = parse_expr st in
  let rec go acc =
    if accept st Token.Comma then go (parse_expr st :: acc) else List.rev acc
  in
  go [ first ]

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

and parse_query_inner st =
  let body = parse_set_expr st in
  let order_by =
    if is_kw st "order" then begin
      expect_kw st "order";
      expect_kw st "by";
      let parse_key () =
        let e = parse_expr st in
        let dir =
          if accept_kw st "desc" then Ast.Desc
          else begin
            ignore (accept_kw st "asc");
            Ast.Asc
          end
        in
        (e, dir)
      in
      let first = parse_key () in
      let rec go acc =
        if accept st Token.Comma then go (parse_key () :: acc)
        else List.rev acc
      in
      go [ first ]
    end
    else []
  in
  let parse_count what =
    match next st with
    | Token.Int_lit i when i >= 0 -> i
    | t ->
      fail st
        (Printf.sprintf "expected a non-negative integer after %s, found %s"
           what (Token.to_string t))
  in
  (* LIMIT and OFFSET accepted in either order, as in PostgreSQL. *)
  let limit = ref None and offset = ref None in
  let rec tail () =
    if accept_kw st "limit" then begin
      limit := Some (parse_count "LIMIT");
      tail ()
    end
    else if accept_kw st "offset" then begin
      offset := Some (parse_count "OFFSET");
      tail ()
    end
  in
  tail ();
  { Ast.body; order_by; limit = !limit; offset = !offset }

(* Set operations: INTERSECT binds tighter than UNION/EXCEPT. *)
and parse_set_expr st =
  let left = parse_intersect st in
  let rec go left =
    let kind =
      if is_kw st "union" then Some Ast.Union
      else if is_kw st "except" then Some Ast.Except
      else None
    in
    match kind with
    | None -> left
    | Some kind ->
      advance st;
      let all = accept_kw st "all" in
      ignore (accept_kw st "distinct");
      let right = parse_intersect st in
      go
        (Ast.Set_op
           {
             kind;
             all;
             left = Ast.simple_query left;
             right = Ast.simple_query right;
           })
  in
  go left

and parse_intersect st =
  let left = parse_query_primary st in
  let rec go left =
    if is_kw st "intersect" then begin
      advance st;
      let all = accept_kw st "all" in
      ignore (accept_kw st "distinct");
      let right = parse_query_primary st in
      go
        (Ast.Set_op
           {
             kind = Ast.Intersect;
             all;
             left = Ast.simple_query left;
             right = Ast.simple_query right;
           })
    end
    else left
  in
  go left

and parse_query_primary st =
  if accept st Token.Lparen then begin
    let q = parse_query_inner st in
    expect st Token.Rparen "')' closing parenthesised query";
    q.Ast.body
  end
  else Ast.Select (parse_select st)

and parse_select st =
  expect_kw st "select";
  let provenance =
    if
      is_kw st "provenance"
      (* disambiguate the marker from a column named provenance: the marker
         is followed by another select item, never by , or FROM *)
      && not (Token.equal (peek_ahead st 1) Token.Comma)
      && not (is_kw_ahead st 1 "from")
    then begin
      advance st;
      if accept_kw st "on" then begin
        expect_kw st "contribution";
        expect st Token.Lparen "'(' after ON CONTRIBUTION";
        let c =
          if accept_kw st "influence" then Ast.Influence
          else if accept_kw st "copy" then
            if accept_kw st "complete" then Ast.Copy_complete
            else begin
              ignore (accept_kw st "partial");
              Ast.Copy_partial
            end
          else
            fail st "expected INFLUENCE or COPY in ON CONTRIBUTION (...)"
        in
        expect st Token.Rparen "')' closing ON CONTRIBUTION";
        Some c
      end
      else Some Ast.Influence
    end
    else None
  in
  let distinct =
    if accept_kw st "distinct" then true
    else begin
      ignore (accept_kw st "all");
      false
    end
  in
  let items = parse_select_items st in
  let from =
    if accept_kw st "from" then begin
      let first = parse_from_item st in
      let rec go acc =
        if accept st Token.Comma then go (parse_from_item st :: acc)
        else List.rev acc
      in
      go [ first ]
    end
    else []
  in
  let where = if accept_kw st "where" then Some (parse_expr st) else None in
  let group_by =
    if is_kw st "group" then begin
      expect_kw st "group";
      expect_kw st "by";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_kw st "having" then Some (parse_expr st) else None in
  { Ast.provenance; distinct; items; from; where; group_by; having }

and parse_select_items st =
  let parse_item () =
    if accept st Token.Star then Ast.Star
    else
      match peek st, peek_ahead st 1, peek_ahead st 2 with
      | Token.Ident t, Token.Dot, Token.Star when not (is_reserved t) ->
        advance st;
        advance st;
        advance st;
        Ast.Table_star t
      | _ ->
        let e = parse_expr st in
        let alias =
          if accept_kw st "as" then Some (parse_ident st "alias after AS")
          else
            match peek st with
            | Token.Ident a when not (is_reserved a) ->
              advance st;
              Some a
            | Token.Quoted_ident a ->
              advance st;
              Some (String.lowercase_ascii a)
            | _ -> None
        in
        Ast.Sel_expr (e, alias)
  in
  let first = parse_item () in
  let rec go acc =
    if accept st Token.Comma then go (parse_item () :: acc) else List.rev acc
  in
  go [ first ]

(* ------------------------------------------------------------------ *)
(* FROM items with SQL-PLE modifiers                                   *)
(* ------------------------------------------------------------------ *)

and parse_from_item st =
  let rec joins left =
    let kind =
      if is_kw st "join" || is_kw st "inner" then begin
        ignore (accept_kw st "inner");
        expect_kw st "join";
        Some Ast.Inner
      end
      else if is_kw st "left" then begin
        advance st;
        ignore (accept_kw st "outer");
        expect_kw st "join";
        Some Ast.Left
      end
      else if is_kw st "right" then begin
        advance st;
        ignore (accept_kw st "outer");
        expect_kw st "join";
        Some Ast.Right
      end
      else if is_kw st "full" then begin
        advance st;
        ignore (accept_kw st "outer");
        expect_kw st "join";
        Some Ast.Full
      end
      else if is_kw st "cross" then begin
        advance st;
        expect_kw st "join";
        Some Ast.Cross
      end
      else None
    in
    match kind with
    | None -> left
    | Some kind ->
      let right = parse_from_primary st in
      let cond =
        if kind = Ast.Cross then None
        else begin
          expect_kw st "on";
          Some (parse_expr st)
        end
      in
      joins
        (Ast.plain_from (Ast.From_join { kind; left; right; cond }))
  in
  joins (parse_from_primary st)

and parse_from_primary st =
  let source =
    if accept st Token.Lparen then begin
      let q = parse_query_inner st in
      expect st Token.Rparen "')' closing subquery in FROM";
      Ast.From_subquery q
    end
    else Ast.From_table (parse_name st "table name in FROM")
  in
  let alias =
    if accept_kw st "as" then Some (parse_ident st "alias after AS")
    else
      match peek st with
      (* a bare alias must not swallow the SQL-PLE FROM-item modifiers *)
      | Token.Ident "baserelation" -> None
      | Token.Ident "provenance" when Token.equal (peek_ahead st 1) Token.Lparen ->
        None
      | Token.Ident a when not (is_reserved a) ->
        advance st;
        Some a
      | Token.Quoted_ident a ->
        advance st;
        Some (String.lowercase_ascii a)
      | _ -> None
  in
  (* SQL-PLE modifiers, in either order *)
  let baserelation = ref false and prov_attrs = ref None in
  let rec mods () =
    if accept_kw st "baserelation" then begin
      baserelation := true;
      mods ()
    end
    else if is_kw st "provenance" && Token.equal (peek_ahead st 1) Token.Lparen
    then begin
      advance st;
      advance st;
      let first = parse_ident st "provenance attribute name" in
      let rec go acc =
        if accept st Token.Comma then
          go (parse_ident st "provenance attribute name" :: acc)
        else List.rev acc
      in
      let attrs = go [ first ] in
      expect st Token.Rparen "')' closing PROVENANCE attribute list";
      prov_attrs := Some attrs;
      mods ()
    end
  in
  mods ();
  { Ast.source; alias; baserelation = !baserelation; prov_attrs = !prov_attrs }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_column_defs st =
  expect st Token.Lparen "'(' starting column definitions";
  let parse_col () =
    let name = parse_name st "column name" in
    let ty_name = parse_ident st "column type" in
    match Dtype.of_string ty_name with
    | Some ty -> (name, ty)
    | None -> fail st (Printf.sprintf "unknown column type %S" ty_name)
  in
  let first = parse_col () in
  let rec go acc =
    if accept st Token.Comma then go (parse_col () :: acc) else List.rev acc
  in
  let cols = go [ first ] in
  expect st Token.Rparen "')' closing column definitions";
  cols

let parse_statement_inner st =
  if is_kw st "select" || Token.equal (peek st) Token.Lparen then
    Ast.St_query (parse_query_inner st)
  else if accept_kw st "create" then
    if accept_kw st "table" then begin
      let name = parse_name st "table name" in
      if accept_kw st "as" then Ast.St_create_table_as (name, parse_query_inner st)
      else Ast.St_create_table (name, parse_column_defs st)
    end
    else if accept_kw st "view" then begin
      let name = parse_name st "view name" in
      expect_kw st "as";
      Ast.St_create_view (name, parse_query_inner st)
    end
    else if accept_kw st "index" then begin
      let index = parse_name st "index name" in
      expect_kw st "on";
      let table = parse_name st "table name" in
      expect st Token.Lparen "'(' before the indexed column";
      let column = parse_name st "column name" in
      expect st Token.Rparen "')' after the indexed column";
      Ast.St_create_index { index; table; column }
    end
    else fail st "expected TABLE, VIEW or INDEX after CREATE"
  else if accept_kw st "drop" then
    if accept_kw st "table" then Ast.St_drop_table (parse_name st "table name")
    else if accept_kw st "view" then Ast.St_drop_view (parse_name st "view name")
    else if accept_kw st "index" then Ast.St_drop_index (parse_name st "index name")
    else fail st "expected TABLE, VIEW or INDEX after DROP"
  else if accept_kw st "insert" then begin
    expect_kw st "into";
    let name = parse_name st "table name" in
    if accept_kw st "values" then begin
      let parse_row () =
        expect st Token.Lparen "'(' starting a VALUES row";
        let row = parse_expr_list st in
        expect st Token.Rparen "')' closing a VALUES row";
        row
      in
      let first = parse_row () in
      let rec go acc =
        if accept st Token.Comma then go (parse_row () :: acc)
        else List.rev acc
      in
      Ast.St_insert_values (name, go [ first ])
    end
    else Ast.St_insert_select (name, parse_query_inner st)
  end
  else if accept_kw st "delete" then begin
    expect_kw st "from";
    let name = parse_name st "table name" in
    let where = if accept_kw st "where" then Some (parse_expr st) else None in
    Ast.St_delete (name, where)
  end
  else if accept_kw st "update" then begin
    let name = parse_name st "table name" in
    expect_kw st "set";
    let parse_assign () =
      let col = parse_name st "column name" in
      expect st Token.Eq "'=' in SET assignment";
      (col, parse_expr st)
    in
    let first = parse_assign () in
    let rec go acc =
      if accept st Token.Comma then go (parse_assign () :: acc)
      else List.rev acc
    in
    let assigns = go [ first ] in
    let where = if accept_kw st "where" then Some (parse_expr st) else None in
    Ast.St_update (name, assigns, where)
  end
  else if accept_kw st "store" then begin
    expect_kw st "provenance";
    let q = parse_query_inner st in
    expect_kw st "into";
    Ast.St_store_provenance (q, parse_name st "table name")
  end
  else if accept_kw st "explain" then
    if accept_kw st "analyze" then Ast.St_explain_analyze (parse_query_inner st)
    else Ast.St_explain (parse_query_inner st)
  else if accept_kw st "begin" then begin
    ignore (accept_kw st "transaction");
    Ast.St_begin
  end
  else if accept_kw st "start" then begin
    expect_kw st "transaction";
    Ast.St_begin
  end
  else if accept_kw st "commit" then Ast.St_commit
  else if accept_kw st "rollback" then Ast.St_rollback
  else if accept_kw st "copy" then begin
    let name = parse_name st "table name" in
    let direction =
      if accept_kw st "from" then `From
      else if accept_kw st "to" then `To
      else fail st "expected FROM or TO after COPY <table>"
    in
    let path =
      match next st with
      | Token.String_lit s -> s
      | t ->
        fail st
          (Printf.sprintf "expected a quoted file path, found %s"
             (Token.to_string t))
    in
    match direction with
    | `From -> Ast.St_copy_from (name, path)
    | `To -> Ast.St_copy_to (name, path)
  end
  else
    fail st
      (Printf.sprintf "expected a statement, found %s"
         (Token.to_string (peek st)))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let with_tokens input f =
  match Lexer.tokenize input with
  | Error { Lexer.message; pos } -> Error { message; pos }
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    try Ok (f st) with Parse_error e -> Error e)

let parse_query input =
  with_tokens input (fun st ->
      let q = parse_query_inner st in
      ignore (accept st Token.Semicolon);
      if not (Token.equal (peek st) Token.Eof) then
        fail st
          (Printf.sprintf "unexpected trailing input: %s"
             (Token.to_string (peek st)));
      q)

let parse_statement input =
  with_tokens input (fun st ->
      let s = parse_statement_inner st in
      ignore (accept st Token.Semicolon);
      if not (Token.equal (peek st) Token.Eof) then
        fail st
          (Printf.sprintf "unexpected trailing input: %s"
             (Token.to_string (peek st)));
      s)

let parse_script input =
  with_tokens input (fun st ->
      let rec go acc =
        if Token.equal (peek st) Token.Eof then List.rev acc
        else if accept st Token.Semicolon then go acc
        else begin
          let s = parse_statement_inner st in
          if
            not
              (Token.equal (peek st) Token.Semicolon
              || Token.equal (peek st) Token.Eof)
          then
            fail st
              (Printf.sprintf "expected ';' between statements, found %s"
                 (Token.to_string (peek st)));
          go (s :: acc)
        end
      in
      go [])

let error_to_string ~input { message; pos } =
  Printf.sprintf "syntax error at %s: %s"
    (Lexer.describe_position input pos)
    message
