(* Statement fingerprints for statistics aggregation: two statements that
   differ only in literal values, parameter markers, whitespace or keyword
   casing should land in the same perm_stat_statements bucket, while any
   structural difference keeps them apart.

   The normalization is lexer-based, not parser-based: it works on any
   statement the lexer accepts (including ones the parser later rejects),
   so failed statements are still attributable to a fingerprint. *)

let normalize_token tok =
  match tok with
  | Token.Int_lit _ | Token.Float_lit _ | Token.String_lit _ | Token.Param _ ->
    "?"
  | Token.Ident s -> String.lowercase_ascii s
  (* quoted identifiers are case-sensitive names, not literals: keep them *)
  | Token.Quoted_ident s -> "\"" ^ s ^ "\""
  | t -> Token.to_string t

(* Lexing failed (unterminated string, stray character, ...): fall back to
   lowercased, whitespace-collapsed raw text so even unlexable statements
   get a stable bucket. *)
let fallback sql =
  String.lowercase_ascii sql
  |> String.split_on_char '\n'
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun s -> s <> "")
  |> String.concat " "

(* Collapse literal runs so parameterized statements that differ only in
   arity land in one bucket: [IN (1, 2, 3)] and [IN (4)] both become
   [in ( ? )], and multi-row [VALUES (1, 2), (3, 4)] folds to a single
   [( ? )] row group. One left-to-right pass rewrites [? , ?] into [?]
   and [( ? ) , ( ? )] into [( ? )]; collapsing a run can expose an
   enclosing group run (the VALUES rows only look identical after their
   members collapse), so the whole rewrite iterates to a fixpoint. *)
let rec collapse_step = function
  | "?" :: "," :: "?" :: rest -> collapse_step ("?" :: rest)
  | "(" :: "?" :: ")" :: "," :: "(" :: "?" :: ")" :: rest ->
    collapse_step ("(" :: "?" :: ")" :: rest)
  | tok :: rest -> tok :: collapse_step rest
  | [] -> []

let rec collapse_runs toks =
  let toks' = collapse_step toks in
  if toks' = toks then toks else collapse_runs toks'

let of_sql sql =
  match Lexer.tokenize sql with
  | Error _ -> fallback sql
  | Ok tokens ->
    tokens
    |> List.filter_map (fun { Token.token; _ } ->
           match token with
           | Token.Eof | Token.Semicolon -> None
           | t -> Some (normalize_token t))
    |> collapse_runs
    |> String.concat " "
