(* Statement fingerprints for statistics aggregation: two statements that
   differ only in literal values, parameter markers, whitespace or keyword
   casing should land in the same perm_stat_statements bucket, while any
   structural difference keeps them apart.

   The normalization is lexer-based, not parser-based: it works on any
   statement the lexer accepts (including ones the parser later rejects),
   so failed statements are still attributable to a fingerprint. *)

let normalize_token tok =
  match tok with
  | Token.Int_lit _ | Token.Float_lit _ | Token.String_lit _ | Token.Param _ ->
    "?"
  | Token.Ident s -> String.lowercase_ascii s
  (* quoted identifiers are case-sensitive names, not literals: keep them *)
  | Token.Quoted_ident s -> "\"" ^ s ^ "\""
  | t -> Token.to_string t

(* Lexing failed (unterminated string, stray character, ...): fall back to
   lowercased, whitespace-collapsed raw text so even unlexable statements
   get a stable bucket. *)
let fallback sql =
  String.lowercase_ascii sql
  |> String.split_on_char '\n'
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun s -> s <> "")
  |> String.concat " "

let of_sql sql =
  match Lexer.tokenize sql with
  | Error _ -> fallback sql
  | Ok tokens ->
    tokens
    |> List.filter_map (fun { Token.token; _ } ->
           match token with
           | Token.Eof | Token.Semicolon -> None
           | t -> Some (normalize_token t))
    |> String.concat " "
